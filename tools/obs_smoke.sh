#!/usr/bin/env bash
# Observability smoke for ploop_serve.
#
#   obs_smoke.sh <ploop_serve binary> <ploop_client binary> [--chaos]
#
# Default mode, against the real binary over stdio at PLOOP_THREADS=1
# and 4:
#   1. a `trace: true` search returns a span tree whose root is
#      "request", whose phases include decode/execute/serialize, and
#      whose sibling durations sum to at most the root's duration
#      (recursively);
#   2. repeating the traced search is answered from the ResultCache:
#      the trace transport key cannot change the request fingerprint;
#   3. the metrics op returns a valid Prometheus exposition -- strict
#      format check via check_prometheus.py -- covering the required
#      inventory (per-op latency, caches, pool, protection events);
#   4. health reports p99_ms and stats reports per-op latency rows;
#   5. --slow-request-ms/--obs-log write a JSONL offender line with
#      the trace attached.
#
# --chaos: the same server under deterministic fault injection
# (PLOOP_FAULTS) behind a real socket; after a faulted client
# session, a metrics scrape through the socket must still be strictly
# valid and the ploop_faults_injected_total counters must be > 0 --
# injected faults are OBSERVABLE, not just survivable.
set -euo pipefail

SERVE="$1"
CLIENT="$2"
CHAOS=0
[ "${3:-}" = "--chaos" ] && CHAOS=1
TOOLS_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
TMP="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

TAG="obs_smoke"
[ "$CHAOS" -eq 1 ] && TAG="obs_smoke[chaos]"
fail() { echo "$TAG: FAIL: $*" >&2; exit 1; }

SEARCH='{"op":"search","id":1,"layer":{"name":"c","k":16,"c":16,"p":7,"q":7,"r":3,"s":3},"options":{"random_samples":12,"hill_climb_rounds":2,"seed":5}}'
TRACED="${SEARCH%\}},\"trace\":true}"

# Pull .body out of a metrics response line (stdin) as raw text.
extract_body() {
    python3 -c '
import json, sys
resp = json.loads(sys.stdin.readline())
assert resp.get("ok") is True, resp
sys.stdout.write(resp["body"])
'
}

# Assert the span-tree contract on a traced response line (stdin):
# root "request", required phases present, and every node's children
# durations sum to at most the node's own duration.
check_trace() { # expect_cached
    python3 -c '
import json, sys

expect_cached = sys.argv[1] == "cached"
resp = json.loads(sys.stdin.readline())
assert resp.get("ok") is True, resp
assert resp.get("from_result_cache") is expect_cached, resp
root = resp["trace"]
assert root["name"] == "request", root["name"]

def walk(node):
    kids = node.get("children", [])
    total = sum(k["dur_us"] for k in kids)
    assert total <= node["dur_us"] + 1e-6, (
        "children of %r sum to %g > %g"
        % (node["name"], total, node["dur_us"]))
    names = {k["name"] for k in kids}
    for k in kids:
        walk(k)
    return names

phases = walk(root)
for phase in ("decode", "execute", "serialize"):
    assert phase in phases, "missing phase %r in %r" % (phase, phases)
' "$1" || fail "trace contract violated (see assertion above)"
}

REQUIRED_FAMILIES=(
    ploop_request_latency_seconds
    ploop_request_errors_total
    ploop_eval_cache_hits_total
    ploop_result_cache_entries
    ploop_thread_pool_size
    ploop_thread_pool_active_workers
    ploop_protection_events_total
    ploop_uptime_seconds
)

check_exposition() { # body_file extra_require...
    local body="$1"; shift
    local args=()
    for fam in "${REQUIRED_FAMILIES[@]}" "$@"; do
        args+=(--require "$fam")
    done
    python3 "$TOOLS_DIR/check_prometheus.py" "$body" "${args[@]}" \
        || fail "metrics exposition failed the strict checker"
}

stdio_pass() { # threads
    local t="$1" out="$TMP/stdio_$1.out"
    {
        echo "$TRACED"
        echo "$TRACED"
        echo '{"op":"metrics","id":"m"}'
        echo '{"op":"health","id":"h"}'
        echo '{"op":"stats","id":"s"}'
    } | PLOOP_THREADS="$t" "$SERVE" >"$out" 2>"$TMP/stdio_$t.err"
    [ "$(wc -l <"$out")" -eq 5 ] || fail "threads=$t: expected 5 responses"

    # 1+2: cold trace with the execute breakdown, then a warm repeat
    # (the trace key must not perturb the fingerprint).
    sed -n 1p "$out" | check_trace cold
    sed -n 1p "$out" | grep -q '"name":"random_search"' \
        || fail "threads=$t: cold trace lacks the search breakdown"
    sed -n 2p "$out" | check_trace cached

    # 3: strictly valid Prometheus text with the required inventory.
    sed -n 3p "$out" | extract_body >"$TMP/metrics_$t.txt" \
        || fail "threads=$t: metrics op failed"
    check_exposition "$TMP/metrics_$t.txt"
    grep -q 'ploop_request_latency_seconds_count{op="search"} 2' \
        "$TMP/metrics_$t.txt" \
        || fail "threads=$t: search latency count != 2 in scrape"

    # 4: quantiles surface in health and stats.
    sed -n 4p "$out" | grep -q '"p99_ms":' \
        || fail "threads=$t: health lacks p99_ms"
    sed -n 5p "$out" | grep -q '"latency":{.*"search":{"count":2' \
        || fail "threads=$t: stats lacks the search latency row"
}

slow_log_pass() {
    local log="$TMP/slow.jsonl"
    # Heavy enough (~20 ms at one thread) that the 1 ms threshold is
    # crossed with an order-of-magnitude margin even on a loaded
    # runner; the tiny $SEARCH request answers in ~0.2 ms.
    echo '{"op":"search","id":"heavy","layer":{"name":"c","k":64,"c":64,"p":28,"q":28,"r":3,"s":3},"options":{"random_samples":20000,"hill_climb_rounds":8,"seed":5}}' \
        | "$SERVE" --slow-request-ms 1 --obs-log "$log" \
        >/dev/null 2>&1 || fail "--slow-request-ms run failed"
    [ -s "$log" ] || fail "slow-request log is empty"
    grep -q '"slow_request":true' "$log" || fail "no offender line in $log"
    grep -q '"op":"search"' "$log" || fail "offender line lost its op"
    grep -q '"trace":{"name":"request"' "$log" \
        || fail "offender line lacks its trace"
}

chaos_pass() {
    local PORT_FILE="$TMP/port"
    PLOOP_FAULTS="short_read=35,short_write=35,eintr=25,stall=20,seed=9" \
        "$SERVE" --listen 0 --port-file "$PORT_FILE" \
        2>"$TMP/server.err" &
    SERVER_PID=$!
    for i in $(seq 200); do [ -s "$PORT_FILE" ] && break; sleep 0.05; done
    [ -s "$PORT_FILE" ] || fail "server never wrote its port file"
    local PORT; PORT="$(cat "$PORT_FILE")"

    # Enough faulted traffic to guarantee injections fire.
    local REQS="$TMP/chaos_reqs.jsonl"
    for seed in 5 6 7; do
        echo '{"op":"search","id":'"$seed"',"layer":{"name":"c","k":16,"c":16,"p":7,"q":7,"r":3,"s":3},"options":{"random_samples":12,"hill_climb_rounds":2,"seed":'"$seed"'}}'
    done >"$REQS"
    "$CLIENT" --port "$PORT" --retries 5 --script "$REQS" \
        >"$TMP/chaos_client.out" || fail "faulted client failed"

    # A scrape THROUGH the faulted socket: still strictly valid, now
    # with the serving-layer families, and the fault counters > 0.
    echo '{"op":"metrics","id":"m"}' \
        | "$CLIENT" --port "$PORT" --retries 5 \
        | extract_body >"$TMP/chaos_metrics.txt" \
        || fail "metrics scrape over the socket failed"
    check_exposition "$TMP/chaos_metrics.txt" \
        ploop_faults_injected_total \
        ploop_connections_accepted_total \
        ploop_connections_open \
        ploop_queue_depth \
        ploop_queue_wait_seconds \
        ploop_request_run_seconds
    python3 -c '
import re, sys
text = open(sys.argv[1], encoding="utf-8").read()
total = sum(float(m) for m in re.findall(
    r"^ploop_faults_injected_total\{[^}]*\} (\S+)$", text, re.M))
assert total > 0, "no faults surfaced in the scrape"
' "$TMP/chaos_metrics.txt" \
        || fail "ploop_faults_injected_total never counted a fault"

    echo '{"op":"shutdown"}' | "$CLIENT" --port "$PORT" --retries 5 \
        >/dev/null || fail "shutdown request failed"
    wait "$SERVER_PID" || fail "server exited non-zero"
    SERVER_PID=""
}

if [ "$CHAOS" -eq 1 ]; then
    chaos_pass
    echo "$TAG: OK (faults observable through a valid scrape)"
else
    stdio_pass 1
    stdio_pass 4
    slow_log_pass
    echo "$TAG: OK (trace + metrics + slow log at threads 1 and 4)"
fi
