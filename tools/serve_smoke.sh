#!/usr/bin/env bash
# Protocol smoke + warm-start checks for ploop_serve.
#
#   serve_smoke.sh <ploop_serve binary> [smoke|warm|all]
#
# smoke: pipe a scripted request sequence through the server and
#        assert the responses (ping, evaluate, search, sweep, stats,
#        error handling).
# warm:  run the same search request in fresh processes sharing a
#        persisted cache store, at PLOOP_THREADS=1 and 4, and assert
#        (a) the second request of a session and the first request
#        after a restart answer fully warm (fresh_evals == 0, hits
#        > 0), and (b) the best mapping and its energy/runtime are
#        BIT-identical across cold/warm and thread counts.
set -euo pipefail

SERVE="$1"
MODE="${2:-all}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

fail() { echo "serve_smoke: FAIL: $*" >&2; exit 1; }

# Extract the first "key":"value" / "key":value for a key from line $2.
jget() { # key line
    printf '%s\n' "$2" | grep -o "\"$1\":\"[^\"]*\"\|\"$1\":[^,}]*" \
        | head -n1 | sed -e 's/^"[^"]*"://' -e 's/^"//' -e 's/"$//'
}

SEARCH_REQ='{"op":"search","id":1,"arch":{"scaling":"conservative"},"layer":{"name":"conv","k":32,"c":32,"p":14,"q":14,"r":3,"s":3},"options":{"random_samples":30,"hill_climb_rounds":6,"seed":11}}'

smoke() {
    local out="$TMP/smoke.out"
    {
        echo '{"op":"ping","id":"p1"}'
        echo '{"op":"capabilities","id":"c1"}'
        echo '{"op":"evaluate","id":2,"layer":{"name":"l","k":16,"c":16,"p":7,"q":7,"r":3,"s":3},"mapping":"weight-stationary"}'
        echo "$SEARCH_REQ"
        echo '{"op":"sweep","id":3,"layer":{"k":16,"c":16,"p":7,"q":7,"r":3,"s":3},"grid":[{"knob":"output_reuse","values":[3,9]}],"options":{"random_samples":10,"hill_climb_rounds":2}}'
        echo '{"op":"stats","id":4}'
        echo '{"op":"frobnicate","id":5}'
        echo '{"op":"search","id":6,"layer":{"k":16,"sneaky_field":1}}'
        echo 'this is not json'
    } | "$SERVE" >"$out" 2>"$TMP/smoke.err"

    [ "$(wc -l <"$out")" -eq 9 ] || fail "expected 9 responses, got $(wc -l <"$out")"
    sed -n 1p "$out" | grep -q '"ok":true.*"op":"ping".*"id":"p1"' || fail "ping response: $(sed -n 1p "$out")"
    sed -n 2p "$out" | grep -q '"sweep_knobs":\["input_reuse"' || fail "capabilities response: $(sed -n 2p "$out" | head -c 200)"
    sed -n 3p "$out" | grep -q '"ok":true.*"energy_total_j"' || fail "evaluate response"
    sed -n 4p "$out" | grep -q '"mapping_key":"0x' || fail "search response"
    sed -n 5p "$out" | grep -q '"points":\[{"coords":{"output_reuse":3' || fail "sweep response: $(sed -n 5p "$out" | head -c 200)"
    # Distinct archs: the default config (shared by evaluate, search
    # and the output_reuse=3 sweep point, which IS the default) plus
    # the output_reuse=9 point => exactly 2 builds.
    sed -n 6p "$out" | grep -q '"models_built":2' || fail "stats response (2 distinct archs): $(sed -n 6p "$out")"
    # Error responses echo op/id too (pipelined clients correlate
    # failures exactly like successes).
    sed -n 7p "$out" | grep -q '"ok":false.*unknown op' || fail "unknown-op response"
    sed -n 7p "$out" | grep -q '"op":"frobnicate".*"id":5' || fail "unknown-op response lost op/id: $(sed -n 7p "$out")"
    # Strict decoding: unknown request fields are rejected BY NAME.
    sed -n 8p "$out" | grep -q '"ok":false.*unknown field .layer.sneaky_field.' || fail "unknown-field response: $(sed -n 8p "$out")"
    sed -n 8p "$out" | grep -q '"op":"search".*"id":6' || fail "decode-error response lost op/id: $(sed -n 8p "$out")"
    sed -n 9p "$out" | grep -q '"ok":false.*bad JSON' || fail "malformed-line response"
    echo "serve_smoke: smoke OK"
}

warm() {
    local store="$TMP/warm.plc"
    printf '%s\n%s\n' "$SEARCH_REQ" "$SEARCH_REQ" >"$TMP/req.jsonl"

    run() { # threads outfile
        PLOOP_THREADS="$1" "$SERVE" --cache-store "$store" \
            --script "$TMP/req.jsonl" >"$2" 2>/dev/null
    }

    rm -f "$store"
    run 1 "$TMP/cold.out"   # session 1: cold then in-session warm
    run 1 "$TMP/warm1.out"  # session 2: warm from the store
    run 4 "$TMP/warm4.out"  # session 3: warm, multi-threaded

    local r1 r2 w1 w4
    r1="$(sed -n 1p "$TMP/cold.out")"
    r2="$(sed -n 2p "$TMP/cold.out")"
    w1="$(sed -n 1p "$TMP/warm1.out")"
    w4="$(sed -n 1p "$TMP/warm4.out")"

    # Cold first request computes; the in-session repeat is answered
    # WHOLE from the result cache.
    [ "$(jget fresh_evals "$r1")" != "0" ] || fail "cold run reported no fresh evaluations"
    [ "$(jget from_result_cache "$r1")" = "false" ] || fail "cold run claimed a result-cache hit: $r1"
    [ "$(jget from_result_cache "$r2")" = "true" ] || fail "in-session repeat missed the result cache: $r2"
    [ "$(jget fresh_evals "$r2")" = "0" ] || fail "in-session repeat was not fully warm: $r2"

    # Restarted sessions answer their FIRST request fully warm from
    # the persisted EvalCache (the result cache is NOT persisted, so
    # this is the per-candidate warm path).
    for line in "$w1" "$w4"; do
        [ "$(jget from_result_cache "$line")" = "false" ] || fail "restart claimed a result-cache hit: $line"
        [ "$(jget fresh_evals "$line")" = "0" ] || fail "restart was not fully warm: $line"
        [ "$(jget cache_hits "$line")" != "0" ] || fail "restart reported no hits"
    done

    # Bit-identity of the result across cold/warm and thread counts.
    local key bits
    key="$(jget mapping_key "$r1")"
    bits="$(jget energy_bits "$r1")$(jget runtime_bits "$r1")"
    [ -n "$key" ] || fail "no mapping_key in cold response"
    for line in "$r2" "$w1" "$w4"; do
        [ "$(jget mapping_key "$line")" = "$key" ] || fail "mapping diverged: $line"
        [ "$(jget energy_bits "$line")$(jget runtime_bits "$line")" = "$bits" ] \
            || fail "energy/runtime bits diverged: $line"
    done
    echo "serve_smoke: warm-start OK (mapping $key)"
}

case "$MODE" in
  smoke) smoke ;;
  warm) warm ;;
  all) smoke; warm ;;
  *) fail "unknown mode '$MODE'" ;;
esac
