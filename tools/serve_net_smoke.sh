#!/usr/bin/env bash
# Multi-client loopback smoke for ploop_serve --listen.
#
#   serve_net_smoke.sh <ploop_serve binary> <ploop_client binary> [--chaos]
#
# Asserts, against a real server process on an ephemeral port:
#   1. N=4 CONCURRENT clients each receive responses bit-identical
#      (mapping_key / energy_bits / runtime_bits) to a serial
#      single-client stdio session answering the same requests;
#   2. the clients share ONE warm session: a separate warm-up
#      connection computes the 3 searches first, so ALL 12 concurrent
#      responses must report from_result_cache -- cross-client
#      result-cache hits, deterministic at any thread count;
#   3. killing a client mid-request (kill -9) leaves the server
#      answering everyone else;
#   4. the stats op grows "connections" and "queue" sections;
#   5. shutdown drains gracefully and the server process exits 0.
#
# --chaos re-runs the whole flow with the deterministic
# fault-injection harness active on every server-side connection
# (PLOOP_FAULTS: short reads/writes, EINTR bursts, write stalls) and
# the hardening knobs on, then additionally asserts:
#   6. surviving responses stay BIT-IDENTICAL to the clean serial
#      reference -- fault injection must be invisible to results;
#   7. a ping flood trips the per-connection rate limiter: rejects
#      carry code=rate_limited and retry_after_ms, and echo op/id;
#   8. a wedged connection (bytes but never a full line) is idle-
#      reaped without disturbing the others;
#   9. a search with timeout_ms=1 returns code=deadline_exceeded and
#      the SAME request without the deadline then succeeds warm;
#  10. the stats robustness section counts all of the above.
#
# The in-process equivalents live in tests/test_net.cpp and
# tests/test_cancel.cpp; this script checks the same contracts across
# real process/socket boundaries.
set -euo pipefail

SERVE="$1"
CLIENT="$2"
CHAOS=0
[ "${3:-}" = "--chaos" ] && CHAOS=1
TMP="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

TAG="serve_net_smoke"
[ "$CHAOS" -eq 1 ] && TAG="serve_net_smoke[chaos]"
fail() { echo "$TAG: FAIL: $*" >&2; exit 1; }

# Extract the first "key":"value" / "key":value for a key from $2.
jget() { # key line
    printf '%s\n' "$2" | grep -o "\"$1\":\"[^\"]*\"\|\"$1\":[^,}]*" \
        | head -n1 | sed -e 's/^"[^"]*"://' -e 's/^"//' -e 's/"$//'
}

# Chaos mode: clients retry through injected trouble; the server gets
# the full hardening config and deterministic fault injection.
CLIENT_RETRY=""
SERVER_HARDEN=""
FAULT_SPEC=""
if [ "$CHAOS" -eq 1 ]; then
    CLIENT_RETRY="--retries 5"
    SERVER_HARDEN="--idle-timeout-ms 1000 --rate-limit 40 --rate-limit-burst 40 --shed-queue-wait-ms 2000"
    FAULT_SPEC="short_read=35,short_write=35,eintr=25,stall=20,seed=9"
fi

# Three distinct small searches, ids 1..3 (seed varies).
REQS="$TMP/requests.jsonl"
for seed in 5 6 7; do
    echo '{"op":"search","id":'"$seed"',"layer":{"name":"c","k":16,"c":16,"p":7,"q":7,"r":3,"s":3},"options":{"random_samples":12,"hill_climb_rounds":2,"seed":'"$seed"'}}'
done >"$REQS"

# ---- 1. serial single-client reference (stdio transport) ----------
# Always a CLEAN run (no faults): in chaos mode this is the oracle the
# injected run must match bit for bit.
"$SERVE" <"$REQS" >"$TMP/serial.out" 2>/dev/null
[ "$(wc -l <"$TMP/serial.out")" -eq 3 ] || fail "serial run: expected 3 responses"

# ---- start the shared server --------------------------------------
PORT_FILE="$TMP/port"
PLOOP_FAULTS="$FAULT_SPEC" "$SERVE" --listen 0 --port-file "$PORT_FILE" \
    $SERVER_HARDEN 2>"$TMP/server.err" &
SERVER_PID=$!
for i in $(seq 200); do [ -s "$PORT_FILE" ] && break; sleep 0.05; done
[ -s "$PORT_FILE" ] || fail "server never wrote its port file"
PORT="$(cat "$PORT_FILE")"

# ---- 2. four concurrent clients -----------------------------------
# Warm the shared session through one connection first: every
# concurrent client below must then be answered whole from the
# ResultCache that a DIFFERENT connection populated -- cross-client
# warmth, deterministic at any thread count.
"$CLIENT" --port "$PORT" $CLIENT_RETRY --script "$REQS" >"$TMP/warmer.out" \
    || fail "warmup client failed"
[ "$(wc -l <"$TMP/warmer.out")" -eq 3 ] || fail "warmer: expected 3 responses"
while IFS= read -r line; do
    [ "$(jget ok "$line")" = "true" ] || fail "warmer response not ok: $line"
done <"$TMP/warmer.out"

CLIENT_PIDS=()
for c in 1 2 3 4; do
    "$CLIENT" --port "$PORT" $CLIENT_RETRY --script "$REQS" >"$TMP/client$c.out" \
        2>"$TMP/client$c.err" &
    CLIENT_PIDS+=($!)
done
for pid in "${CLIENT_PIDS[@]}"; do
    wait "$pid" || fail "a concurrent client exited non-zero"
done

warm_hits=0
for c in 1 2 3 4; do
    [ "$(wc -l <"$TMP/client$c.out")" -eq 3 ] \
        || fail "client $c: expected 3 responses"
    for i in 1 2 3; do
        ref="$(sed -n ${i}p "$TMP/serial.out")"
        got="$(sed -n ${i}p "$TMP/client$c.out")"
        [ "$(jget ok "$got")" = "true" ] || fail "client $c response $i not ok: $got"
        [ "$(jget id "$got")" = "$(jget id "$ref")" ] \
            || fail "client $c response $i id mismatch"
        for key in mapping_key energy_bits runtime_bits; do
            [ "$(jget $key "$got")" = "$(jget $key "$ref")" ] \
                || fail "client $c response $i: $key diverged from the serial run"
        done
        [ "$(jget from_result_cache "$got")" = "true" ] \
            && warm_hits=$((warm_hits + 1))
    done
done
# All 12 responses were computed by the warmer's CONNECTION, so all
# 12 must be cross-client result-cache hits.
[ "$warm_hits" -eq 12 ] \
    || fail "expected 12 cross-client result-cache hits, got $warm_hits"

# ---- 3. kill a client mid-request ---------------------------------
echo '{"op":"search","id":"doomed","layer":{"k":32,"c":32,"p":14,"q":14,"r":3,"s":3},"options":{"random_samples":800,"hill_climb_rounds":8,"seed":3}}' \
    >"$TMP/heavy.jsonl"
"$CLIENT" --port "$PORT" --script "$TMP/heavy.jsonl" \
    >/dev/null 2>&1 &
DOOMED=$!
sleep 0.1
kill -9 "$DOOMED" 2>/dev/null || true
wait "$DOOMED" 2>/dev/null || true

# The survivors still get real answers.
SURV="$("$CLIENT" --port "$PORT" $CLIENT_RETRY --script "$REQS")" \
    || fail "client after the kill could not be served"
[ "$(printf '%s\n' "$SURV" | wc -l)" -eq 3 ] || fail "survivor: expected 3 responses"
printf '%s\n' "$SURV" | while IFS= read -r line; do
    [ "$(jget ok "$line")" = "true" ] || fail "survivor response not ok: $line"
done

# ---- 4. stats sections --------------------------------------------
STATS="$(echo '{"op":"stats","id":"s"}' | "$CLIENT" --port "$PORT")"
printf '%s' "$STATS" | grep -q '"connections":{' || fail "stats lacks connections section: $STATS"
printf '%s' "$STATS" | grep -q '"queue":{' || fail "stats lacks queue section: $STATS"
printf '%s' "$STATS" | grep -q '"max_queue":' || fail "stats lacks max_queue: $STATS"
printf '%s' "$STATS" | grep -q '"robustness":{' || fail "stats lacks robustness section: $STATS"
[ "$(jget accepted "$STATS")" -ge 6 ] || fail "stats accepted too low: $STATS"

# Error responses over the wire still echo the id (pipelined
# correlation; the backpressure equivalent is tested in-process).
ERR="$(echo '{"op":"search","id":"e9","layer":{"sneaky":1}}' | "$CLIENT" --port "$PORT")"
[ "$(jget ok "$ERR")" = "false" ] || fail "bad request was accepted: $ERR"
[ "$(jget id "$ERR")" = "e9" ] || fail "error response lost its id: $ERR"

# The health op answers on the wire.
HEALTH="$(echo '{"op":"health","id":"h"}' | "$CLIENT" --port "$PORT")"
[ "$(jget ok "$HEALTH")" = "true" ] || fail "health op failed: $HEALTH"
case "$(jget status "$HEALTH")" in
    ok|degraded|overloaded) ;;
    *) fail "health status unrecognized: $HEALTH" ;;
esac

if [ "$CHAOS" -eq 1 ]; then
    # ---- 7. ping flood trips the per-connection rate limiter ------
    FLOOD="$TMP/flood.jsonl"
    for i in $(seq 80); do
        echo '{"op":"ping","id":'"$i"'}'
    done >"$FLOOD"
    # Pipelined on ONE connection (its own token bucket; retries are
    # meaningless for a flood we EXPECT to be partially rejected).
    "$CLIENT" --port "$PORT" --pipeline --script "$FLOOD" \
        >"$TMP/flood.out" || fail "flood client lost its connection"
    [ "$(wc -l <"$TMP/flood.out")" -eq 80 ] \
        || fail "flood: every request deserves a response line"
    flood_ok=0; flood_limited=0
    while IFS= read -r line; do
        if [ "$(jget ok "$line")" = "true" ]; then
            flood_ok=$((flood_ok + 1))
            continue
        fi
        [ "$(jget code "$line")" = "rate_limited" ] \
            || fail "flood reject without code=rate_limited: $line"
        [ -n "$(jget retry_after_ms "$line")" ] \
            || fail "rate-limit reject lacks retry_after_ms: $line"
        [ "$(jget op "$line")" = "ping" ] \
            || fail "rate-limit reject lost its op: $line"
        [ -n "$(jget id "$line")" ] \
            || fail "rate-limit reject lost its id: $line"
        flood_limited=$((flood_limited + 1))
    done <"$TMP/flood.out"
    [ "$flood_ok" -ge 1 ] || fail "flood: burst allowance admitted nothing"
    [ "$flood_limited" -ge 10 ] \
        || fail "flood: expected >=10 rate-limited rejects, got $flood_limited"

    # ---- 8. a wedged connection is idle-reaped --------------------
    # Opens a raw socket, dribbles bytes that never form a line, and
    # goes silent -- the classic stuck client holding a slot hostage.
    exec 3<>"/dev/tcp/127.0.0.1/$PORT" \
        || fail "could not open the wedge socket"
    printf 'not json and never a newline' >&3
    sleep 2  # idle-timeout 1000ms + reap-poll slack
    exec 3>&- 3<&- || true
    STATS2="$(echo '{"op":"stats"}' | "$CLIENT" --port "$PORT" $CLIENT_RETRY)"
    [ "$(jget idle_reaped "$STATS2")" -ge 1 ] \
        || fail "wedged connection was not idle-reaped: $STATS2"

    # ---- 9. request deadlines ------------------------------------
    DL='{"op":"search","id":"dl","layer":{"k":32,"c":32,"p":14,"q":14,"r":3,"s":3},"options":{"random_samples":4000,"hill_climb_rounds":10,"seed":3,"timeout_ms":1}}'
    DLRESP="$(printf '%s\n' "$DL" | "$CLIENT" --port "$PORT" $CLIENT_RETRY)"
    [ "$(jget ok "$DLRESP")" = "false" ] \
        || fail "timeout_ms=1 search was not cut off: $DLRESP"
    [ "$(jget code "$DLRESP")" = "deadline_exceeded" ] \
        || fail "deadline reject lacks its code: $DLRESP"
    [ "$(jget op "$DLRESP")" = "search" ] || fail "deadline reject lost op: $DLRESP"
    [ "$(jget id "$DLRESP")" = "dl" ] || fail "deadline reject lost id: $DLRESP"
    # The SAME request minus the deadline completes (warm from the
    # cancelled attempt's EvalCache; the cancelled attempt must NOT
    # have leaked a partial answer into the ResultCache).
    OKRESP="$(printf '%s\n' "$DL" | sed 's/,"timeout_ms":1//' \
        | "$CLIENT" --port "$PORT" $CLIENT_RETRY)"
    [ "$(jget ok "$OKRESP")" = "true" ] \
        || fail "deadline-free retry failed: $OKRESP"
    [ "$(jget from_result_cache "$OKRESP")" = "false" ] \
        || fail "cancelled attempt polluted the ResultCache: $OKRESP"

    # ---- 10. robustness counters saw all of it --------------------
    RSTATS="$(echo '{"op":"stats"}' | "$CLIENT" --port "$PORT" $CLIENT_RETRY)"
    ROB="$(printf '%s' "$RSTATS" | grep -o '"robustness":{[^}]*}')"
    [ -n "$ROB" ] || fail "stats lost the robustness section: $RSTATS"
    [ "$(jget deadline_exceeded "$ROB")" -ge 1 ] \
        || fail "robustness missed the deadline: $ROB"
    [ "$(jget rate_limited "$ROB")" -ge 10 ] \
        || fail "robustness missed the rate limiting: $ROB"
    [ "$(jget idle_reaped "$ROB")" -ge 1 ] \
        || fail "robustness missed the idle reap: $ROB"
fi

# ---- 5. graceful drain-then-exit ----------------------------------
BYE="$(echo '{"op":"shutdown","id":"z"}' | "$CLIENT" --port "$PORT" $CLIENT_RETRY)"
[ "$(jget ok "$BYE")" = "true" ] || fail "shutdown refused: $BYE"
wait "$SERVER_PID" || fail "server exited non-zero after shutdown"
SERVER_PID=""
grep -q "drained" "$TMP/server.err" || fail "server did not report a drained exit"

if [ "$CHAOS" -eq 1 ]; then
    echo "$TAG: OK (bit-identical under injected faults; $flood_limited rate-limited, wedge reaped, deadline enforced)"
else
    echo "$TAG: OK (4 concurrent clients bit-identical, $warm_hits cross-client warm hits)"
fi
