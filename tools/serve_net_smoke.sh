#!/usr/bin/env bash
# Multi-client loopback smoke for ploop_serve --listen.
#
#   serve_net_smoke.sh <ploop_serve binary> <ploop_client binary>
#
# Asserts, against a real server process on an ephemeral port:
#   1. N=4 CONCURRENT clients each receive responses bit-identical
#      (mapping_key / energy_bits / runtime_bits) to a serial
#      single-client stdio session answering the same requests;
#   2. the clients share ONE warm session: a separate warm-up
#      connection computes the 3 searches first, so ALL 12 concurrent
#      responses must report from_result_cache -- cross-client
#      result-cache hits, deterministic at any thread count;
#   3. killing a client mid-request (kill -9) leaves the server
#      answering everyone else;
#   4. the stats op grows "connections" and "queue" sections;
#   5. shutdown drains gracefully and the server process exits 0.
#
# The in-process equivalents live in tests/test_net.cpp; this script
# checks the same contracts across real process/socket boundaries.
set -euo pipefail

SERVE="$1"
CLIENT="$2"
TMP="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

fail() { echo "serve_net_smoke: FAIL: $*" >&2; exit 1; }

# Extract the first "key":"value" / "key":value for a key from $2.
jget() { # key line
    printf '%s\n' "$2" | grep -o "\"$1\":\"[^\"]*\"\|\"$1\":[^,}]*" \
        | head -n1 | sed -e 's/^"[^"]*"://' -e 's/^"//' -e 's/"$//'
}

# Three distinct small searches, ids 1..3 (seed varies).
REQS="$TMP/requests.jsonl"
for seed in 5 6 7; do
    echo '{"op":"search","id":'"$seed"',"layer":{"name":"c","k":16,"c":16,"p":7,"q":7,"r":3,"s":3},"options":{"random_samples":12,"hill_climb_rounds":2,"seed":'"$seed"'}}'
done >"$REQS"

# ---- 1. serial single-client reference (stdio transport) ----------
"$SERVE" <"$REQS" >"$TMP/serial.out" 2>/dev/null
[ "$(wc -l <"$TMP/serial.out")" -eq 3 ] || fail "serial run: expected 3 responses"

# ---- start the shared server --------------------------------------
PORT_FILE="$TMP/port"
"$SERVE" --listen 0 --port-file "$PORT_FILE" 2>"$TMP/server.err" &
SERVER_PID=$!
for i in $(seq 200); do [ -s "$PORT_FILE" ] && break; sleep 0.05; done
[ -s "$PORT_FILE" ] || fail "server never wrote its port file"
PORT="$(cat "$PORT_FILE")"

# ---- 2. four concurrent clients -----------------------------------
# Warm the shared session through one connection first: every
# concurrent client below must then be answered whole from the
# ResultCache that a DIFFERENT connection populated -- cross-client
# warmth, deterministic at any thread count.
"$CLIENT" --port "$PORT" --script "$REQS" >"$TMP/warmer.out" \
    || fail "warmup client failed"
[ "$(wc -l <"$TMP/warmer.out")" -eq 3 ] || fail "warmer: expected 3 responses"
while IFS= read -r line; do
    [ "$(jget ok "$line")" = "true" ] || fail "warmer response not ok: $line"
done <"$TMP/warmer.out"

CLIENT_PIDS=()
for c in 1 2 3 4; do
    "$CLIENT" --port "$PORT" --script "$REQS" >"$TMP/client$c.out" \
        2>"$TMP/client$c.err" &
    CLIENT_PIDS+=($!)
done
for pid in "${CLIENT_PIDS[@]}"; do
    wait "$pid" || fail "a concurrent client exited non-zero"
done

warm_hits=0
for c in 1 2 3 4; do
    [ "$(wc -l <"$TMP/client$c.out")" -eq 3 ] \
        || fail "client $c: expected 3 responses"
    for i in 1 2 3; do
        ref="$(sed -n ${i}p "$TMP/serial.out")"
        got="$(sed -n ${i}p "$TMP/client$c.out")"
        [ "$(jget ok "$got")" = "true" ] || fail "client $c response $i not ok: $got"
        [ "$(jget id "$got")" = "$(jget id "$ref")" ] \
            || fail "client $c response $i id mismatch"
        for key in mapping_key energy_bits runtime_bits; do
            [ "$(jget $key "$got")" = "$(jget $key "$ref")" ] \
                || fail "client $c response $i: $key diverged from the serial run"
        done
        [ "$(jget from_result_cache "$got")" = "true" ] \
            && warm_hits=$((warm_hits + 1))
    done
done
# All 12 responses were computed by the warmer's CONNECTION, so all
# 12 must be cross-client result-cache hits.
[ "$warm_hits" -eq 12 ] \
    || fail "expected 12 cross-client result-cache hits, got $warm_hits"

# ---- 3. kill a client mid-request ---------------------------------
echo '{"op":"search","id":"doomed","layer":{"k":32,"c":32,"p":14,"q":14,"r":3,"s":3},"options":{"random_samples":800,"hill_climb_rounds":8,"seed":3}}' \
    >"$TMP/heavy.jsonl"
"$CLIENT" --port "$PORT" --script "$TMP/heavy.jsonl" \
    >/dev/null 2>&1 &
DOOMED=$!
sleep 0.1
kill -9 "$DOOMED" 2>/dev/null || true
wait "$DOOMED" 2>/dev/null || true

# The survivors still get real answers.
SURV="$("$CLIENT" --port "$PORT" --script "$REQS")" \
    || fail "client after the kill could not be served"
[ "$(printf '%s\n' "$SURV" | wc -l)" -eq 3 ] || fail "survivor: expected 3 responses"
printf '%s\n' "$SURV" | while IFS= read -r line; do
    [ "$(jget ok "$line")" = "true" ] || fail "survivor response not ok: $line"
done

# ---- 4. stats sections --------------------------------------------
STATS="$(echo '{"op":"stats","id":"s"}' | "$CLIENT" --port "$PORT")"
printf '%s' "$STATS" | grep -q '"connections":{' || fail "stats lacks connections section: $STATS"
printf '%s' "$STATS" | grep -q '"queue":{' || fail "stats lacks queue section: $STATS"
printf '%s' "$STATS" | grep -q '"max_queue":' || fail "stats lacks max_queue: $STATS"
[ "$(jget accepted "$STATS")" -ge 6 ] || fail "stats accepted too low: $STATS"

# Error responses over the wire still echo the id (pipelined
# correlation; the backpressure equivalent is tested in-process).
ERR="$(echo '{"op":"search","id":"e9","layer":{"sneaky":1}}' | "$CLIENT" --port "$PORT")"
[ "$(jget ok "$ERR")" = "false" ] || fail "bad request was accepted: $ERR"
[ "$(jget id "$ERR")" = "e9" ] || fail "error response lost its id: $ERR"

# ---- 5. graceful drain-then-exit ----------------------------------
BYE="$(echo '{"op":"shutdown","id":"z"}' | "$CLIENT" --port "$PORT")"
[ "$(jget ok "$BYE")" = "true" ] || fail "shutdown refused: $BYE"
wait "$SERVER_PID" || fail "server exited non-zero after shutdown"
SERVER_PID=""
grep -q "drained" "$TMP/server.err" || fail "server did not report a drained exit"

echo "serve_net_smoke: OK (4 concurrent clients bit-identical, $warm_hits cross-client warm hits)"
