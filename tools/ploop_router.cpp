/**
 * @file
 * ploop_router: a sharded cluster front-end for ploop_serve.  One
 * listening endpoint, N workers; each request line is forwarded to
 * the worker owning its semantic fingerprint on a consistent-hash
 * ring, so repeats hit the worker whose caches are already warm.
 * See cluster/router.hpp for the routing policy (which ops are
 * answered locally, fanned out, or forwarded) and the failure model.
 *
 *   ploop_router [--listen PORT] [--port-file PATH]
 *                {--workers PORT[,PORT...] | --spawn N}
 *                [--worker-bin PATH] [--cache-store-dir DIR]
 *                [--failover {next,reject}]
 *                [--probe-interval-ms MS] [--probe-timeout-ms MS]
 *                [--eject-after K] [--vnodes N]
 *                [--max-connections N] [--drain-timeout-ms MS]
 *                [--no-observe] [--obs-log FILE]
 *                [--slow-request-ms MS]
 *
 * Worker sources (exactly one):
 *  - --workers: loopback ports of externally-managed ploop_serve
 *    --listen instances ("PORT" or "127.0.0.1:PORT"; the router, like
 *    the rest of the serving layer, is loopback-only).  Shutting the
 *    router down leaves these workers running.
 *  - --spawn N: fork N local ploop_serve workers on ephemeral ports
 *    (port-file handshake); with --cache-store-dir each worker gets
 *    its own store DIR/worker-<i>.plc.  After the router drains, the
 *    workers are sent shutdown ops (so they save their stores) and
 *    reaped.
 *
 * Diagnostics go to stderr; the protocol flows over TCP only.
 */

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "cluster/router.hpp"
#include "net/line_client.hpp"
#include "net/port_file.hpp"
#include "net/socket.hpp"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--listen PORT] [--port-file PATH]\n"
        "          {--workers PORT[,PORT...] | --spawn N}\n"
        "          [--worker-bin PATH] [--cache-store-dir DIR]\n"
        "          [--failover {next,reject}]\n"
        "          [--probe-interval-ms MS] [--probe-timeout-ms MS]\n"
        "          [--eject-after K] [--vnodes N]\n"
        "          [--max-connections N] [--drain-timeout-ms MS]\n"
        "          [--no-observe] [--obs-log FILE]\n"
        "          [--slow-request-ms MS]\n"
        "\n"
        "Fingerprint-affinity router in front of N ploop_serve\n"
        "workers: one endpoint, consistent-hash request placement,\n"
        "health-probe ejection/re-admission, failover (--failover\n"
        "next) or fast rejects with code \"upstream_unavailable\"\n"
        "(--failover reject).  ping/health/shutdown are answered by\n"
        "the router; stats/metrics/save_cache fan out to every\n"
        "healthy worker and merge.  --listen 0 binds an ephemeral\n"
        "port (written to --port-file).  --workers takes loopback\n"
        "ports of externally-managed workers; --spawn forks local\n"
        "ones (per-worker cache stores under --cache-store-dir) and\n"
        "shuts them down after the router drains.  --obs-log writes\n"
        "operational events (ejections, readmissions, reconnects,\n"
        "failover redispatches, spawn/stop, drain) as JSONL;\n"
        "--slow-request-ms adds a slow_request offender line\n"
        "carrying the stitched router+worker trace for any forward\n"
        "at or over the threshold (stderr when no --obs-log).\n",
        argv0);
    return 2;
}

ploop::ClusterRouter *g_router = nullptr;

void
onSignal(int)
{
    // requestStop() is one relaxed atomic store: async-signal-safe.
    if (g_router)
        g_router->requestStop();
}

/** "PORT" or "127.0.0.1:PORT" / "localhost:PORT" -> port, or -1. */
int
parseWorkerSpec(const std::string &spec, std::string *error)
{
    std::string text = spec;
    const std::size_t colon = text.rfind(':');
    if (colon != std::string::npos) {
        const std::string host = text.substr(0, colon);
        if (host != "127.0.0.1" && host != "localhost") {
            *error = "worker '" + spec +
                     "': only loopback workers are supported "
                     "(the serving layer binds 127.0.0.1 only)";
            return -1;
        }
        text = text.substr(colon + 1);
    }
    char *end = nullptr;
    errno = 0;
    unsigned long port = std::strtoul(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE ||
        port < 1 || port > 65535) {
        *error = "worker '" + spec + "': bad port";
        return -1;
    }
    return int(port);
}

struct SpawnedWorker
{
    pid_t pid = -1;
    std::uint16_t port = 0;
};

/** Fork one ploop_serve --listen 0 worker; port via the port-file
 *  handshake.  False (with everything cleaned up by the caller) on
 *  any failure. */
bool
spawnWorker(const std::string &worker_bin,
            const std::string &port_file,
            const std::string &cache_store, SpawnedWorker &out)
{
    ::unlink(port_file.c_str());
    std::vector<std::string> args = {worker_bin, "--listen", "0",
                                     "--port-file", port_file};
    if (!cache_store.empty()) {
        args.push_back("--cache-store");
        args.push_back(cache_store);
    }
    std::vector<char *> argv;
    argv.reserve(args.size() + 1);
    for (std::string &a : args)
        argv.push_back(a.data());
    argv.push_back(nullptr);

    pid_t pid = ::fork();
    if (pid < 0) {
        std::fprintf(stderr, "ploop_router: fork: %s\n",
                     std::strerror(errno));
        return false;
    }
    if (pid == 0) {
        ::execv(worker_bin.c_str(), argv.data());
        std::fprintf(stderr, "ploop_router: execv %s: %s\n",
                     worker_bin.c_str(), std::strerror(errno));
        std::_Exit(127);
    }
    std::string err;
    int port = ploop::readPortFile(port_file, 10000, &err);
    if (port < 0) {
        std::fprintf(stderr,
                     "ploop_router: worker %s never published its "
                     "port: %s\n",
                     worker_bin.c_str(), err.c_str());
        ::kill(pid, SIGKILL);
        ::waitpid(pid, nullptr, 0);
        return false;
    }
    out.pid = pid;
    out.port = std::uint16_t(port);
    return true;
}

/** Politely shut one spawned worker down (shutdown op saves its
 *  cache store), then reap it -- SIGKILL only past the timeout. */
void
stopWorker(const SpawnedWorker &w, ploop::EventLog *events)
{
    using ploop::JsonValue;
    if (events)
        events->emit(
            "worker_stopped",
            {{"pid", JsonValue::number(double(w.pid))},
             {"port", JsonValue::number(double(w.port))}});
    {
        ploop::LineClient client;
        std::string resp;
        if (client.connect(w.port, 2000) &&
            client.sendLine("{\"op\":\"shutdown\"}"))
            client.recvLine(resp);
    }
    for (int i = 0; i < 50; ++i) { // up to ~5s of polite waiting
        int status = 0;
        pid_t rc = ::waitpid(w.pid, &status, WNOHANG);
        if (rc == w.pid || (rc < 0 && errno == ECHILD))
            return;
        ::usleep(100 * 1000);
    }
    ::kill(w.pid, SIGKILL);
    ::waitpid(w.pid, nullptr, 0);
}

/** Directory of /proc/self/exe, for the default --worker-bin. */
std::string
siblingBinary(const char *name)
{
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return name; // PATH lookup as a last resort
    buf[n] = '\0';
    std::string path(buf);
    const std::size_t slash = path.rfind('/');
    if (slash == std::string::npos)
        return name;
    return path.substr(0, slash + 1) + name;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ploop;

    RouterConfig cfg;
    std::string port_file;
    std::string workers_spec;
    std::string worker_bin = siblingBinary("ploop_serve");
    std::string cache_store_dir;
    std::string obs_log;
    std::size_t spawn = 0;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        // Strict parse: a typo'd cap must not silently mean
        // "unbounded" (ploop_serve's idiom).
        auto cap_value = [&]() -> std::size_t {
            const char *text = value();
            char *end = nullptr;
            errno = 0;
            unsigned long long cap = std::strtoull(text, &end, 10);
            if (end == text || *end != '\0' || errno == ERANGE ||
                std::strchr(text, '-') != nullptr) {
                std::fprintf(stderr,
                             "%s '%s' is not a non-negative "
                             "integer\n",
                             arg.c_str(), text);
                std::exit(2);
            }
            return static_cast<std::size_t>(cap);
        };
        if (arg == "--listen") {
            std::size_t port = cap_value();
            if (port > 65535) {
                std::fprintf(stderr,
                             "--listen port %zu out of range\n",
                             port);
                return 2;
            }
            cfg.port = std::uint16_t(port);
        } else if (arg == "--port-file") {
            port_file = value();
        } else if (arg == "--workers") {
            workers_spec = value();
        } else if (arg == "--spawn") {
            spawn = cap_value();
        } else if (arg == "--worker-bin") {
            worker_bin = value();
        } else if (arg == "--cache-store-dir") {
            cache_store_dir = value();
        } else if (arg == "--failover") {
            std::string mode = value();
            if (mode == "next") {
                cfg.failover = RouterConfig::Failover::Next;
            } else if (mode == "reject") {
                cfg.failover = RouterConfig::Failover::Reject;
            } else {
                std::fprintf(stderr,
                             "--failover must be 'next' or "
                             "'reject', not '%s'\n",
                             mode.c_str());
                return 2;
            }
        } else if (arg == "--probe-interval-ms") {
            cfg.health.probe_interval_ms = cap_value();
        } else if (arg == "--probe-timeout-ms") {
            cfg.health.probe_timeout_ms = cap_value();
        } else if (arg == "--eject-after") {
            std::size_t k = cap_value();
            if (k < 1) {
                std::fprintf(stderr,
                             "--eject-after must be >= 1\n");
                return 2;
            }
            cfg.health.eject_after = unsigned(k);
        } else if (arg == "--vnodes") {
            std::size_t v = cap_value();
            if (v < 1 || v > 4096) {
                std::fprintf(stderr,
                             "--vnodes must be in [1, 4096]\n");
                return 2;
            }
            cfg.vnodes = unsigned(v);
        } else if (arg == "--max-connections") {
            cfg.max_connections = cap_value();
        } else if (arg == "--drain-timeout-ms") {
            cfg.drain_timeout_ms = int(cap_value());
        } else if (arg == "--no-observe") {
            cfg.observe = false;
        } else if (arg == "--obs-log") {
            obs_log = value();
        } else if (arg == "--slow-request-ms") {
            cfg.slow_request_ms = unsigned(cap_value());
        } else if (arg == "--help" || arg == "-h") {
            return usage(argv[0]);
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n",
                         arg.c_str());
            return usage(argv[0]);
        }
    }

    if (workers_spec.empty() == (spawn == 0)) {
        std::fprintf(stderr,
                     "exactly one of --workers or --spawn is "
                     "required\n");
        return usage(argv[0]);
    }

    // A worker (or client) disconnecting mid-write must be an EPIPE
    // on that connection, never a process-killing SIGPIPE.
    std::signal(SIGPIPE, SIG_IGN);

    // Chaos visibility, same as ploop_serve: the injector silently
    // ignores a bad spec; the tool reports it.
    if (const char *spec = std::getenv("PLOOP_FAULTS")) {
        FaultInjector::Config faults;
        std::string fault_err;
        if (!FaultInjector::parse(spec, faults, &fault_err))
            std::fprintf(stderr,
                         "ploop_router: ignoring PLOOP_FAULTS: "
                         "%s\n",
                         fault_err.c_str());
        else if (faults.enabled())
            std::fprintf(stderr,
                         "ploop_router: fault injection ACTIVE "
                         "(PLOOP_FAULTS=%s)\n",
                         spec);
    }

    // The event log outlives the router (worker spawn/stop events
    // bracket its lifetime) and is shared with it by pointer.  It
    // also exists -- writing to stderr -- when only the slow-request
    // log is armed, mirroring ploop_serve's obs-log fallback.
    std::unique_ptr<EventLog> event_log;
    if (!obs_log.empty() || cfg.slow_request_ms > 0)
        event_log = std::make_unique<EventLog>(obs_log);
    cfg.event_log = event_log.get();

    std::vector<SpawnedWorker> spawned;
    if (spawn > 0) {
        // Spawned workers must NOT inherit the router's fault
        // injection: the chaos harness targets the router's
        // sockets; faulting both sides at once makes failures
        // unattributable.
        ::unsetenv("PLOOP_FAULTS");
        char dir_template[] = "/tmp/ploop_router.XXXXXX";
        const char *dir = ::mkdtemp(dir_template);
        if (!dir) {
            std::fprintf(stderr, "ploop_router: mkdtemp: %s\n",
                         std::strerror(errno));
            return 1;
        }
        for (std::size_t i = 0; i < spawn; ++i) {
            const std::string pf =
                std::string(dir) + "/worker-" +
                std::to_string(i) + ".port";
            std::string store;
            if (!cache_store_dir.empty())
                store = cache_store_dir + "/worker-" +
                        std::to_string(i) + ".plc";
            SpawnedWorker w;
            if (!spawnWorker(worker_bin, pf, store, w)) {
                for (const SpawnedWorker &s : spawned) {
                    ::kill(s.pid, SIGKILL);
                    ::waitpid(s.pid, nullptr, 0);
                }
                return 1;
            }
            std::fprintf(stderr,
                         "ploop_router: spawned worker %zu (pid "
                         "%d) on 127.0.0.1:%u\n",
                         i, int(w.pid), unsigned(w.port));
            if (event_log)
                event_log->emit(
                    "worker_spawned",
                    {{"index", JsonValue::number(double(i))},
                     {"pid", JsonValue::number(double(w.pid))},
                     {"port",
                      JsonValue::number(double(w.port))}});
            spawned.push_back(w);
            cfg.worker_ports.push_back(w.port);
        }
    } else {
        std::size_t pos = 0;
        while (pos <= workers_spec.size()) {
            std::size_t comma = workers_spec.find(',', pos);
            const std::string tok = workers_spec.substr(
                pos, (comma == std::string::npos
                          ? workers_spec.size()
                          : comma) -
                         pos);
            pos = comma == std::string::npos
                      ? workers_spec.size() + 1
                      : comma + 1;
            if (tok.empty())
                continue;
            std::string err;
            int port = parseWorkerSpec(tok, &err);
            if (port < 0) {
                std::fprintf(stderr, "ploop_router: %s\n",
                             err.c_str());
                return 2;
            }
            cfg.worker_ports.push_back(std::uint16_t(port));
        }
        if (cfg.worker_ports.empty()) {
            std::fprintf(stderr,
                         "--workers needs at least one port\n");
            return 2;
        }
    }

    ClusterRouter router(cfg);
    std::string error;
    if (!router.open(&error)) {
        std::fprintf(stderr, "ploop_router: %s\n", error.c_str());
        for (const SpawnedWorker &s : spawned)
            stopWorker(s, event_log.get());
        return 1;
    }
    if (!port_file.empty()) {
        std::string pf_err;
        if (!writePortFile(port_file, router.port(), &pf_err)) {
            std::fprintf(stderr, "ploop_router: %s\n",
                         pf_err.c_str());
            for (const SpawnedWorker &s : spawned)
                stopWorker(s, event_log.get());
            return 1;
        }
    }
    g_router = &router;
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    std::fprintf(stderr,
                 "ploop_router: listening on 127.0.0.1:%u in front "
                 "of %zu workers (failover %s)\n",
                 unsigned(router.port()), cfg.worker_ports.size(),
                 cfg.failover == RouterConfig::Failover::Next
                     ? "next"
                     : "reject");
    std::uint64_t served = router.run();
    g_router = nullptr;
    std::fprintf(stderr,
                 "ploop_router: drained; served %llu client "
                 "connections\n",
                 static_cast<unsigned long long>(served));

    for (const SpawnedWorker &s : spawned)
        stopWorker(s, event_log.get());
    return 0;
}
