/**
 * @file
 * ploop_serve: the long-lived evaluation server.  Speaks the
 * line-oriented JSON protocol of ServeSession on stdin/stdout (one
 * request per line, one response per line), or replays a request
 * script with --script (batch mode).  Protocol documentation lives
 * in serve_session.hpp; the README section "The evaluation service"
 * shows end-to-end examples.
 *
 *   ploop_serve [--cache-store PATH] [--cache-max-entries N]
 *               [--script FILE]
 *
 * With --cache-store, warm EvalCache entries are merged from PATH at
 * startup (graceful cold start on a missing/damaged file) and saved
 * back on shutdown/EOF and on the save_cache op -- so repeated runs
 * of the same study answer from warm entries immediately.
 *
 * Diagnostics go to stderr; stdout carries protocol lines only.
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "service/serve_session.hpp"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--cache-store PATH] [--cache-max-entries N]\n"
        "          [--result-cache-max-entries N] [--script FILE]\n"
        "\n"
        "Line-oriented JSON evaluation service (one request object\n"
        "per line on stdin, one response per line on stdout; ops:\n"
        "ping, capabilities, evaluate, search, sweep, network,\n"
        "stats, save_cache, shutdown).  --script replays FILE\n"
        "instead of stdin; blank lines and lines starting with '#'\n"
        "are skipped.  --result-cache-max-entries bounds the\n"
        "whole-response memoization (0 disables it).\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ploop;

    ServeConfig cfg;
    std::string script;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        // Strict parse: a typo'd cap must not silently mean
        // "unbounded" (the PLOOP_THREADS atol lesson).
        auto cap_value = [&]() -> std::size_t {
            const char *text = value();
            char *end = nullptr;
            errno = 0;
            unsigned long long cap = std::strtoull(text, &end, 10);
            if (end == text || *end != '\0' || errno == ERANGE ||
                std::strchr(text, '-') != nullptr) {
                std::fprintf(stderr,
                             "%s '%s' is not a non-negative "
                             "integer\n",
                             arg.c_str(), text);
                std::exit(2);
            }
            return static_cast<std::size_t>(cap);
        };
        if (arg == "--cache-store") {
            cfg.cache_store = value();
        } else if (arg == "--cache-max-entries") {
            cfg.cache_max_entries = cap_value();
        } else if (arg == "--result-cache-max-entries") {
            cfg.result_cache_max_entries = cap_value();
        } else if (arg == "--script") {
            script = value();
        } else if (arg == "--help" || arg == "-h") {
            return usage(argv[0]);
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n",
                         arg.c_str());
            return usage(argv[0]);
        }
    }

    ServeSession session(cfg);
    std::fprintf(stderr, "ploop_serve: %s\n",
                 session.storeLoad().detail.c_str());

    std::ifstream script_in;
    if (!script.empty()) {
        script_in.open(script);
        if (!script_in.is_open()) {
            std::fprintf(stderr, "cannot open script '%s'\n",
                         script.c_str());
            return 2;
        }
    }
    std::istream &in = script.empty() ? std::cin : script_in;

    std::string line;
    while (!session.shutdownRequested() && std::getline(in, line)) {
        // Script convenience: blank lines and #-comments.
        std::size_t first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#')
            continue;
        std::fputs(session.handleLine(line).c_str(), stdout);
        std::fputc('\n', stdout);
        std::fflush(stdout);
    }

    // EOF without a shutdown op: still persist, so piped one-shot
    // sessions warm the next run.
    if (!session.shutdownRequested()) {
        std::string detail;
        if (session.saveStore(&detail))
            std::fprintf(stderr, "ploop_serve: %s\n", detail.c_str());
    }
    return 0;
}
