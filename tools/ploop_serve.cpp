/**
 * @file
 * ploop_serve: the long-lived evaluation server.  Speaks the
 * line-oriented JSON protocol of ServeSession on stdin/stdout (one
 * request per line, one response per line), replays a request script
 * with --script (batch mode), or serves MANY CONCURRENT CLIENTS over
 * loopback TCP with --listen (see net/server.hpp).  Protocol
 * documentation lives in serve_session.hpp; the README sections "The
 * evaluation service" and "Serving multiple clients" show end-to-end
 * examples.
 *
 *   ploop_serve [--cache-store PATH] [--cache-max-entries N]
 *               [--result-cache-max-entries N]
 *               [--cache-store-max-entries N]
 *               [--script FILE]
 *               [--listen PORT] [--port-file PATH]
 *               [--max-connections N] [--max-queue N]
 *               [--idle-timeout-ms MS] [--rate-limit RPS]
 *               [--rate-limit-burst N] [--shed-queue-wait-ms MS]
 *               [--slow-request-ms MS] [--obs-log FILE]
 *               [--no-observe] [--compact]
 *
 * Observability (README "Observability"): the session keeps per-op
 * latency histograms, cache/queue/pool gauges and fault counters,
 * scraped via the `metrics` op (Prometheus text format); any request
 * may carry `"trace": true` for a span-tree breakdown.
 * --slow-request-ms logs every slower request as one JSONL object
 * (with its trace) to stderr or --obs-log FILE; --no-observe turns
 * the whole layer off (the overhead bench's baseline).
 *
 * Hardening knobs (all off by default; see README "Operating under
 * load"): --idle-timeout-ms reaps silent connections, --rate-limit
 * bounds each connection's sustained request rate (rejects carry
 * retry_after_ms), --shed-queue-wait-ms sheds new work once queued
 * requests wait too long.  The PLOOP_FAULTS environment variable
 * enables the deterministic fault-injection harness (chaos testing;
 * see net/socket.hpp).
 *
 * With --cache-store, warm EvalCache entries are merged from PATH at
 * startup (graceful cold start on a missing/damaged file) and saved
 * back on shutdown/EOF and on the save_cache op -- so repeated runs
 * of the same study answer from warm entries immediately.
 * --cache-store-max-entries bounds saves to the N most-reused
 * entries.  --compact is a one-shot maintenance mode: load the
 * store, verify it, rewrite it bounded and freshly checksummed, and
 * exit (no serving).
 *
 * With --listen, all connected clients share ONE warm session:
 * every client benefits from every other client's evaluations.
 * --listen 0 binds a kernel-chosen port; --port-file writes the
 * bound port for scripts to discover.
 *
 * Diagnostics go to stderr; stdout carries protocol lines only.
 */

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "mapper/cache_store.hpp"
#include "net/port_file.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "service/serve_session.hpp"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--cache-store PATH] [--cache-max-entries N]\n"
        "          [--result-cache-max-entries N]\n"
        "          [--cache-store-max-entries N] [--script FILE]\n"
        "          [--listen PORT] [--port-file PATH]\n"
        "          [--max-connections N] [--max-queue N]\n"
        "          [--idle-timeout-ms MS] [--rate-limit RPS]\n"
        "          [--rate-limit-burst N]\n"
        "          [--shed-queue-wait-ms MS]\n"
        "          [--slow-request-ms MS] [--obs-log FILE]\n"
        "          [--no-observe] [--compact]\n"
        "\n"
        "Line-oriented JSON evaluation service (one request object\n"
        "per line, one response per line; ops: ping, capabilities,\n"
        "evaluate, search, sweep, network, stats, save_cache,\n"
        "shutdown).  Default transport is stdin/stdout; --script\n"
        "replays FILE (blank lines and '#' comments skipped);\n"
        "--listen serves concurrent clients on 127.0.0.1:PORT (0 =\n"
        "ephemeral port, written to --port-file).  All clients share\n"
        "one warm cache session.  --max-connections/--max-queue\n"
        "bound the serving layer; excess requests get backpressure\n"
        "error responses.  --cache-store-max-entries bounds store\n"
        "saves to the N most-reused entries;\n"
        "--result-cache-max-entries bounds whole-response\n"
        "memoization (0 disables it).  --idle-timeout-ms reaps\n"
        "connections silent that long; --rate-limit/-burst bound\n"
        "each connection's request rate (rejects carry\n"
        "retry_after_ms); --shed-queue-wait-ms sheds new work once\n"
        "queued requests wait too long.  The metrics op serves\n"
        "Prometheus text; any request may carry \"trace\": true.\n"
        "--slow-request-ms logs slower requests as JSONL (with\n"
        "traces) to stderr or --obs-log FILE; --no-observe disables\n"
        "the observability layer.  --compact loads, verifies,\n"
        "compacts and rewrites the cache store, then exits.\n",
        argv0);
    return 2;
}

/** One-shot store maintenance (--compact): see file comment. */
int
compactStore(const ploop::ServeConfig &cfg)
{
    using namespace ploop;
    if (cfg.cache_store.empty()) {
        std::fprintf(stderr,
                     "--compact needs --cache-store PATH\n");
        return 2;
    }
    EvalCache cache;
    CacheStoreLoad load = loadCacheStore(cache, cfg.cache_store,
                                         cfg.store_fingerprint);
    if (!load.loaded) {
        std::fprintf(stderr, "ploop_serve --compact: %s\n",
                     load.detail.c_str());
        return 1;
    }
    std::size_t written =
        saveCacheStore(cache, cfg.cache_store, cfg.store_fingerprint,
                       cfg.cache_store_max_entries);
    std::fprintf(stderr,
                 "ploop_serve --compact: %s; rewrote %zu of %zu "
                 "entries (bound %zu) with a fresh checksum\n",
                 load.detail.c_str(), written, load.entries,
                 cfg.cache_store_max_entries);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ploop;

    ServeConfig cfg;
    NetConfig net;
    std::string script;
    std::string port_file;
    bool listen = false;
    bool compact = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        // Strict parse: a typo'd cap must not silently mean
        // "unbounded" (the PLOOP_THREADS atol lesson).
        auto cap_value = [&]() -> std::size_t {
            const char *text = value();
            char *end = nullptr;
            errno = 0;
            unsigned long long cap = std::strtoull(text, &end, 10);
            if (end == text || *end != '\0' || errno == ERANGE ||
                std::strchr(text, '-') != nullptr) {
                std::fprintf(stderr,
                             "%s '%s' is not a non-negative "
                             "integer\n",
                             arg.c_str(), text);
                std::exit(2);
            }
            return static_cast<std::size_t>(cap);
        };
        if (arg == "--cache-store") {
            cfg.cache_store = value();
        } else if (arg == "--cache-max-entries") {
            cfg.cache_max_entries = cap_value();
        } else if (arg == "--result-cache-max-entries") {
            cfg.result_cache_max_entries = cap_value();
        } else if (arg == "--cache-store-max-entries") {
            cfg.cache_store_max_entries = cap_value();
        } else if (arg == "--script") {
            script = value();
        } else if (arg == "--listen") {
            std::size_t port = cap_value();
            if (port > 65535) {
                std::fprintf(stderr,
                             "--listen port %zu out of range\n",
                             port);
                return 2;
            }
            net.port = static_cast<std::uint16_t>(port);
            listen = true;
        } else if (arg == "--port-file") {
            port_file = value();
        } else if (arg == "--max-connections") {
            cfg.max_connections = cap_value();
        } else if (arg == "--max-queue") {
            cfg.max_queue = cap_value();
        } else if (arg == "--idle-timeout-ms") {
            cfg.idle_timeout_ms = cap_value();
        } else if (arg == "--rate-limit") {
            cfg.rate_limit_rps = double(cap_value());
        } else if (arg == "--rate-limit-burst") {
            cfg.rate_limit_burst = double(cap_value());
        } else if (arg == "--shed-queue-wait-ms") {
            cfg.shed_queue_wait_ms = cap_value();
        } else if (arg == "--slow-request-ms") {
            cfg.slow_request_ms = cap_value();
        } else if (arg == "--obs-log") {
            cfg.obs_log = value();
        } else if (arg == "--no-observe") {
            cfg.observe = false;
        } else if (arg == "--compact") {
            compact = true;
        } else if (arg == "--help" || arg == "-h") {
            return usage(argv[0]);
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n",
                         arg.c_str());
            return usage(argv[0]);
        }
    }

    if (compact)
        return compactStore(cfg);
    if (listen && !script.empty()) {
        std::fprintf(stderr,
                     "--listen and --script are exclusive\n");
        return 2;
    }

    cfg.transport = listen ? "tcp" : (script.empty() ? "stdio"
                                                     : "script");

    // The injector itself silently ignores an unparsable spec (a
    // typo must degrade to clean serving); the TOOL is where the
    // operator learns about it -- and that chaos is active at all.
    if (const char *spec = std::getenv("PLOOP_FAULTS")) {
        FaultInjector::Config faults;
        std::string fault_err;
        if (!FaultInjector::parse(spec, faults, &fault_err))
            std::fprintf(stderr,
                         "ploop_serve: ignoring PLOOP_FAULTS: %s\n",
                         fault_err.c_str());
        else if (faults.enabled())
            std::fprintf(stderr,
                         "ploop_serve: fault injection ACTIVE "
                         "(PLOOP_FAULTS=%s)\n",
                         spec);
    }

    ServeSession session(cfg);
    std::fprintf(stderr, "ploop_serve: %s\n",
                 session.storeLoad().detail.c_str());

    if (listen) {
        // A client disconnecting mid-write must be an EPIPE on that
        // connection, never a process-killing SIGPIPE (sends use
        // MSG_NOSIGNAL too; this covers any stray write).
        std::signal(SIGPIPE, SIG_IGN);

        NetServer server(session, net);
        std::string error;
        if (!server.open(&error)) {
            std::fprintf(stderr, "ploop_serve: %s\n", error.c_str());
            return 1;
        }
        if (!port_file.empty()) {
            std::string pf_err;
            if (!writePortFile(port_file, server.port(),
                               &pf_err)) {
                std::fprintf(stderr, "ploop_serve: %s\n",
                             pf_err.c_str());
                return 1;
            }
        }
        std::fprintf(stderr,
                     "ploop_serve: listening on 127.0.0.1:%u "
                     "(max %zu connections, queue %zu)\n",
                     unsigned(server.port()), cfg.max_connections,
                     cfg.max_queue);
        std::uint64_t served = server.run();
        std::fprintf(stderr,
                     "ploop_serve: drained; served %llu "
                     "connections\n",
                     static_cast<unsigned long long>(served));
        return 0;
    }

    std::ifstream script_in;
    if (!script.empty()) {
        script_in.open(script);
        if (!script_in.is_open()) {
            std::fprintf(stderr, "cannot open script '%s'\n",
                         script.c_str());
            return 2;
        }
    }
    std::istream &in = script.empty() ? std::cin : script_in;

    std::string line;
    while (!session.shutdownRequested() && std::getline(in, line)) {
        // Script convenience: blank lines and #-comments.
        std::size_t first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#')
            continue;
        std::fputs(session.handleLine(line).c_str(), stdout);
        std::fputc('\n', stdout);
        std::fflush(stdout);
    }

    // EOF without a shutdown op: still persist, so piped one-shot
    // sessions warm the next run.
    if (!session.shutdownRequested()) {
        std::string detail;
        if (session.saveStore(&detail))
            std::fprintf(stderr, "ploop_serve: %s\n", detail.c_str());
    }
    return 0;
}
