#!/usr/bin/env python3
"""Strict Prometheus text-exposition checker for the metrics op.

Reads an exposition body (file argument, or stdin) and enforces the
format contract the `metrics` op promises -- strictly enough that a
regression in the renderer fails CI rather than a scrape three tools
downstream:

  * every sample is preceded by its family's `# HELP` (non-empty) and
    `# TYPE` (counter | gauge | histogram) lines, in that order, and
    belongs to the family declared by the nearest header (samples of
    one family are contiguous);
  * family names match ^ploop_[a-z0-9_]+$ (the project naming
    contract; see tools/lint_invariants.py rule metric-naming);
  * histogram samples use only the _bucket/_sum/_count suffixes;
    counter and gauge samples use the bare family name;
  * no duplicate series (same sample name + label set);
  * label values are well-formed (balanced quotes, known escapes);
  * every value parses as a finite number; counters and bucket
    counts are non-negative;
  * per histogram series: le bounds strictly increase, cumulative
    bucket counts never decrease, the +Inf bucket is present and
    equals _count, and _sum/_count are present exactly once.

`--require NAME` (repeatable) additionally demands that family be
present -- the smoke uses it to pin the required metric inventory.

Exit 0 and a one-line summary on success; one `line N: message` per
violation and exit 1 otherwise.
"""

import argparse
import math
import re
import sys

FAMILY_NAME = re.compile(r"^ploop_[a-z0-9_]+$")
TYPES = ("counter", "gauge", "histogram")
HIST_SUFFIXES = ("_bucket", "_sum", "_count")

SAMPLE = re.compile(
    r"^([A-Za-z_:][A-Za-z0-9_:]*)"  # sample name
    r"(?:\{(.*)\})?"                # optional label block
    r" (\S+)"                       # value
    r"(?: \d+)?$")                  # optional timestamp

LABEL = re.compile(r'([A-Za-z_][A-Za-z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_labels(block, errors, lineno):
    """The label block as a sorted tuple of (name, value) pairs, or
    None when malformed."""
    if block is None or block == "":
        return ()
    pos, labels = 0, []
    while pos < len(block):
        m = LABEL.match(block, pos)
        if not m:
            errors.append("line %d: malformed label block at '%s'"
                          % (lineno, block[pos:pos + 20]))
            return None
        labels.append((m.group(1), m.group(2)))
        pos = m.end()
        if pos < len(block):
            if block[pos] != ",":
                errors.append("line %d: expected ',' between labels"
                              % lineno)
                return None
            pos += 1
    return tuple(sorted(labels))


def parse_value(text, errors, lineno):
    try:
        v = float(text)
    except ValueError:
        errors.append("line %d: unparseable value '%s'"
                      % (lineno, text))
        return None
    if math.isnan(v) or math.isinf(v):
        errors.append("line %d: non-finite sample value '%s'"
                      % (lineno, text))
        return None
    return v


def check(text, required):
    errors = []
    helps = {}    # family -> help text
    types = {}    # family -> type
    current = None
    seen_series = set()
    # histogram family -> base labelset -> {"buckets": [(le, v)...],
    #                                       "sum": v|None, "count": v|None}
    histograms = {}

    for lineno, raw in enumerate(text.splitlines(), 1):
        if raw.strip() == "":
            errors.append("line %d: blank line in exposition"
                          % lineno)
            continue
        if raw.startswith("#"):
            m = re.match(r"^# (HELP|TYPE) (\S+)(?: (.*))?$", raw)
            if not m:
                errors.append("line %d: malformed comment line"
                              % lineno)
                continue
            kind, family, rest = m.group(1), m.group(2), m.group(3)
            if not FAMILY_NAME.match(family):
                errors.append(
                    "line %d: family '%s' violates the naming "
                    "contract (^ploop_[a-z0-9_]+$)"
                    % (lineno, family))
            if kind == "HELP":
                if family in helps:
                    errors.append("line %d: duplicate HELP for '%s'"
                                  % (lineno, family))
                if not (rest or "").strip():
                    errors.append("line %d: empty HELP text for '%s'"
                                  % (lineno, family))
                helps[family] = rest or ""
            else:
                if family not in helps:
                    errors.append(
                        "line %d: TYPE for '%s' precedes its HELP"
                        % (lineno, family))
                if family in types:
                    errors.append("line %d: duplicate TYPE for '%s'"
                                  % (lineno, family))
                if rest not in TYPES:
                    errors.append(
                        "line %d: TYPE '%s' for '%s' not one of %s"
                        % (lineno, rest, family, "/".join(TYPES)))
                types[family] = rest
                current = family
            continue

        m = SAMPLE.match(raw)
        if not m:
            errors.append("line %d: malformed sample line: %s"
                          % (lineno, raw[:60]))
            continue
        name, label_block, value_text = m.groups()
        if current is None:
            errors.append("line %d: sample before any TYPE header"
                          % lineno)
            continue
        ftype = types.get(current)
        if ftype == "histogram":
            if not (name.startswith(current) and
                    name[len(current):] in HIST_SUFFIXES):
                errors.append(
                    "line %d: sample '%s' does not belong to "
                    "histogram family '%s'" % (lineno, name, current))
                continue
        elif name != current:
            errors.append(
                "line %d: sample '%s' does not belong to %s family "
                "'%s' (samples must follow their header)"
                % (lineno, name, ftype, current))
            continue

        labels = parse_labels(label_block, errors, lineno)
        if labels is None:
            continue
        series = (name, labels)
        if series in seen_series:
            errors.append("line %d: duplicate series %s%s"
                          % (lineno, name, dict(labels)))
        seen_series.add(series)

        value = parse_value(value_text, errors, lineno)
        if value is None:
            continue
        if ftype in ("counter", "histogram") and value < 0:
            errors.append("line %d: negative %s value in '%s'"
                          % (lineno, ftype, name))

        if ftype == "histogram":
            base = tuple(kv for kv in labels if kv[0] != "le")
            h = histograms.setdefault(current, {}).setdefault(
                base, {"buckets": [], "sum": None, "count": None})
            suffix = name[len(current):]
            if suffix == "_bucket":
                le = dict(labels).get("le")
                if le is None:
                    errors.append(
                        "line %d: _bucket sample without le"
                        % lineno)
                    continue
                bound = math.inf if le == "+Inf" else None
                if bound is None:
                    try:
                        bound = float(le)
                    except ValueError:
                        errors.append(
                            "line %d: unparseable le '%s'"
                            % (lineno, le))
                        continue
                h["buckets"].append((bound, value, lineno))
            elif suffix == "_sum":
                h["sum"] = (value, lineno)
            else:
                h["count"] = (value, lineno)

    for family, by_labels in sorted(histograms.items()):
        for base, h in by_labels.items():
            where = "%s%s" % (family, dict(base))
            bounds = [b for b, _, _ in h["buckets"]]
            if bounds != sorted(bounds) or len(set(bounds)) != len(
                    bounds):
                errors.append("histogram %s: le bounds not strictly "
                              "increasing" % where)
            counts = [v for _, v, _ in h["buckets"]]
            if any(b > a for a, b in zip(counts[1:], counts)):
                errors.append("histogram %s: cumulative bucket "
                              "counts decrease" % where)
            if not bounds or bounds[-1] != math.inf:
                errors.append("histogram %s: missing +Inf bucket"
                              % where)
            if h["count"] is None:
                errors.append("histogram %s: missing _count" % where)
            if h["sum"] is None:
                errors.append("histogram %s: missing _sum" % where)
            if (h["count"] is not None and bounds and
                    bounds[-1] == math.inf and
                    counts[-1] != h["count"][0]):
                errors.append(
                    "histogram %s: +Inf bucket (%g) != _count (%g)"
                    % (where, counts[-1], h["count"][0]))

    for family in sorted(types):
        if family not in helps:
            errors.append("family '%s' has TYPE but no HELP" % family)
    for family in required:
        if family not in types:
            errors.append("required family '%s' is absent" % family)

    return errors, len(types), len(seen_series)


def main():
    parser = argparse.ArgumentParser(
        description="strict Prometheus text-format checker")
    parser.add_argument("file", nargs="?",
                        help="exposition body (default: stdin)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="FAMILY",
                        help="fail unless this family is present "
                             "(repeatable)")
    args = parser.parse_args()

    if args.file:
        with open(args.file, encoding="utf-8") as f:
            text = f.read()
    else:
        text = sys.stdin.read()

    errors, families, series = check(text, args.require)
    for e in errors:
        print("check_prometheus: %s" % e)
    if errors:
        print("check_prometheus: %d violation(s)" % len(errors))
        return 1
    print("check_prometheus: OK (%d families, %d series)"
          % (families, series))
    return 0


if __name__ == "__main__":
    sys.exit(main())
