#!/usr/bin/env bash
# Cluster smoke for ploop_router in front of N ploop_serve workers.
#
#   cluster_smoke.sh <ploop_serve> <ploop_client> <ploop_router> [--chaos]
#
# Asserts, against real processes on ephemeral loopback ports:
#   1. responses routed through a 2-worker cluster are bit-identical
#      (mapping_key / energy_bits / runtime_bits, and the echoed id)
#      to a serial single-worker stdio session answering the same
#      requests;
#   2. fingerprint affinity: repeating the same requests reports
#      from_result_cache -- the repeat landed on the worker whose
#      result cache the first pass warmed, across 4 CONCURRENT
#      clients sharing the router;
#   3. kill -9 of one worker leaves the other client streams correct:
#      under --failover next the doomed worker's keys are re-
#      dispatched and every response stays bit-identical; a
#      --failover reject router answers code=upstream_unavailable
#      (echoing op and id) instead;
#   4. the router's `metrics` op merges its own ploop_router_*
#      families (including the per-worker upstream latency histograms
#      and in-flight gauges) with worker-labeled worker families and
#      the merged exposition passes the strict check_prometheus.py
#      checker;
#   5. stats fans out (a "router" section plus per-worker entries),
#      shutdown drains the ROUTER while externally-managed workers
#      keep running, and --spawn mode owns its workers end to end;
#   6. a `trace: true` search through the router returns ONE stitched
#      span tree -- router spans (route_decision, upstream_wait) on
#      top, the worker's subtree grafted under upstream_wait -- with
#      child durations summing to at most each parent's, and the
#      trace key does not break cache affinity; a request failed over
#      from a kill -9'd worker carries a failover_redispatch span;
#   7. the router's --obs-log event log is valid JSONL ({ts_ms,
#      event, ...} per line, never torn) recording the lifecycle:
#      failover_redispatch, worker_ejected, drain_begin/drain_end,
#      and worker_spawned/worker_stopped in --spawn mode.
#
# --chaos re-runs the flow with deterministic fault injection
# (PLOOP_FAULTS: short reads/writes, EINTR bursts, write stalls)
# active on the ROUTER process only -- both its client-facing and its
# worker-facing sockets misbehave -- and asserts the surviving
# responses stay bit-identical to the clean serial oracle, stitched
# traces stay well-formed, and no event-log line is ever malformed.
#
# The in-process equivalents live in tests/test_cluster.cpp; this
# script checks the same contracts across real process boundaries,
# where kill -9 and execv are possible.
set -euo pipefail

SERVE="$1"
CLIENT="$2"
ROUTER="$3"
CHAOS=0
[ "${4:-}" = "--chaos" ] && CHAOS=1
TMP="$(mktemp -d)"
TOOLS_DIR="$(cd "$(dirname "$0")" && pwd)"
PIDS=()
cleanup() {
    for pid in "${PIDS[@]}"; do kill -9 "$pid" 2>/dev/null || true; done
    rm -rf "$TMP"
}
trap cleanup EXIT

TAG="cluster_smoke"
[ "$CHAOS" -eq 1 ] && TAG="cluster_smoke[chaos]"
fail() { echo "$TAG: FAIL: $*" >&2; exit 1; }

# Extract the first "key":"value" / "key":value for a key from $2.
jget() { # key line
    printf '%s\n' "$2" | grep -o "\"$1\":\"[^\"]*\"\|\"$1\":[^,}]*" \
        | head -n1 | sed -e 's/^"[^"]*"://' -e 's/^"//' -e 's/"$//'
}

# Pull .body out of a metrics response line (stdin) as raw text.
extract_body() {
    python3 -c '
import json, sys
resp = json.loads(sys.stdin.readline())
assert resp.get("ok") is True, resp
sys.stdout.write(resp["body"])
'
}

wait_port_file() { # path
    for i in $(seq 200); do [ -s "$1" ] && break; sleep 0.05; done
    [ -s "$1" ] || fail "$1 was never written"
    cat "$1"
}

# Assert the stitched-trace contract on a traced routed response line
# (stdin): one tree rooted at "request" whose top-level children
# include the ROUTER's spans, whose final upstream_wait carries the
# WORKER's grafted subtree (with the worker phases), and whose child
# durations sum to at most each parent's, recursively.
check_stitched_trace() { # cached|cold|any [failover]
    python3 -c '
import json, sys

cache_mode = sys.argv[1]
need_failover = len(sys.argv) > 2 and sys.argv[2] == "failover"
resp = json.loads(sys.stdin.readline())
assert resp.get("ok") is True, resp
if cache_mode != "any":
    assert resp.get("from_result_cache") is (cache_mode == "cached"), resp
root = resp["trace"]
assert root["name"] == "request", root["name"]

def walk(node, names):
    kids = node.get("children", [])
    total = sum(k["dur_us"] for k in kids)
    assert total <= node["dur_us"] + 1e-6, (
        "children of %r sum to %g > %g"
        % (node["name"], total, node["dur_us"]))
    names.add(node["name"])
    for k in kids:
        walk(k, names)

walk(root, set())
top = {k["name"] for k in root["children"]}
assert "route_decision" in top, top
assert "upstream_wait" in top, top
if need_failover:
    assert "failover_redispatch" in top, top
wait = [k for k in root["children"] if k["name"] == "upstream_wait"][-1]
assert wait.get("transit_us", 0) >= 0, wait
grafted = [k for k in wait.get("children", []) if k["name"] == "request"]
assert grafted, "no worker subtree under upstream_wait: %r" % wait
worker_names = set()
walk(grafted[0], worker_names)
for phase in ("decode", "execute", "serialize"):
    assert phase in worker_names, (phase, worker_names)
' "$@" || fail "stitched trace contract violated (see assertion above)"
}

# Assert every line of an event log ($1) is one well-formed JSON
# object opening with ts_ms then event (chaos: a faulted router
# socket must never tear a line), and that the named events ($2...)
# all appear.
check_event_log() { # path event...
    python3 -c '
import json, sys

path, required = sys.argv[1], set(sys.argv[2:])
seen = set()
with open(path) as f:
    for n, line in enumerate(f, 1):
        assert line.endswith("\n"), "torn final line %d: %r" % (n, line)
        entry = json.loads(line)
        keys = list(entry)
        assert keys[:2] == ["ts_ms", "event"], "line %d: %r" % (n, keys)
        assert isinstance(entry["ts_ms"], (int, float)), entry
        seen.add(entry["event"])
missing = required - seen
assert not missing, "events never logged: %r (saw %r)" % (missing, seen)
' "$@" || fail "event log contract violated (see assertion above)"
}

# Chaos mode: the ROUTER gets deterministic fault injection; workers
# and the serial oracle stay clean, and clients retry through the
# injected trouble.
CLIENT_RETRY=""
FAULT_SPEC=""
if [ "$CHAOS" -eq 1 ]; then
    CLIENT_RETRY="--retries 5"
    FAULT_SPEC="short_read=35,short_write=35,eintr=25,stall=20,seed=9"
fi

# Three distinct small searches, ids 1..3 (seed varies).
REQS="$TMP/requests.jsonl"
for seed in 5 6 7; do
    echo '{"op":"search","id":'"$seed"',"layer":{"name":"c","k":16,"c":16,"p":7,"q":7,"r":3,"s":3},"options":{"random_samples":12,"hill_climb_rounds":2,"seed":'"$seed"'}}'
done >"$REQS"

# ---- serial single-worker reference (stdio transport) -------------
# Always a CLEAN run: the oracle every routed response must match bit
# for bit (modulo stats.wall_time_s, which jget never reads).
"$SERVE" <"$REQS" >"$TMP/serial.out" 2>/dev/null
[ "$(wc -l <"$TMP/serial.out")" -eq 3 ] || fail "serial run: expected 3 responses"

# Compare one response line against the serial oracle line $1.
check_identity() { # index line
    local ref got
    ref="$(sed -n "$1"p "$TMP/serial.out")"
    got="$2"
    [ "$(jget ok "$got")" = "true" ] || fail "response $1 not ok: $got"
    [ "$(jget id "$got")" = "$(jget id "$ref")" ] \
        || fail "response $1 id mismatch: $got"
    for key in mapping_key energy_bits runtime_bits; do
        [ "$(jget $key "$got")" = "$(jget $key "$ref")" ] \
            || fail "response $1: $key diverged from the serial run"
    done
}

# ---- start 2 script-owned workers + the router --------------------
# The script (not --spawn) owns the workers so kill -9 is possible.
"$SERVE" --listen 0 --port-file "$TMP/w1.port" 2>"$TMP/w1.err" &
W1_PID=$!; PIDS+=($W1_PID)
"$SERVE" --listen 0 --port-file "$TMP/w2.port" 2>"$TMP/w2.err" &
W2_PID=$!; PIDS+=($W2_PID)
W1="$(wait_port_file "$TMP/w1.port")"
W2="$(wait_port_file "$TMP/w2.port")"

PLOOP_FAULTS="$FAULT_SPEC" "$ROUTER" --listen 0 \
    --port-file "$TMP/r.port" --workers "$W1,$W2" --failover next \
    --probe-interval-ms 200 --probe-timeout-ms 500 --eject-after 2 \
    --obs-log "$TMP/events.jsonl" \
    2>"$TMP/router.err" &
ROUTER_PID=$!; PIDS+=($ROUTER_PID)
RPORT="$(wait_port_file "$TMP/r.port")"

# ---- 1. bit-identity through the router (cold pass) ---------------
"$CLIENT" --port "$RPORT" $CLIENT_RETRY --script "$REQS" \
    >"$TMP/cold.out" || fail "cold client through the router failed"
[ "$(wc -l <"$TMP/cold.out")" -eq 3 ] || fail "cold pass: expected 3 responses"
for i in 1 2 3; do
    check_identity "$i" "$(sed -n ${i}p "$TMP/cold.out")"
done

# ---- 2. fingerprint affinity: repeats are result-cache hits -------
# The cold pass warmed whichever worker owns each fingerprint; every
# repeat must land on the SAME worker and be answered from its result
# cache -- across 4 concurrent clients sharing the router.
CLIENT_PIDS=()
for c in 1 2 3 4; do
    "$CLIENT" --port "$RPORT" $CLIENT_RETRY --script "$REQS" \
        >"$TMP/client$c.out" 2>"$TMP/client$c.err" &
    CLIENT_PIDS+=($!)
done
for pid in "${CLIENT_PIDS[@]}"; do
    wait "$pid" || fail "a concurrent client exited non-zero"
done
for c in 1 2 3 4; do
    [ "$(wc -l <"$TMP/client$c.out")" -eq 3 ] \
        || fail "client $c: expected 3 responses"
    for i in 1 2 3; do
        line="$(sed -n ${i}p "$TMP/client$c.out")"
        check_identity "$i" "$line"
        [ "$(jget from_result_cache "$line")" = "true" ] \
            || fail "client $c response $i missed the warm worker (affinity broken): $line"
    done
done

# ---- 6. cross-process trace stitching -----------------------------
# A traced repeat of request 1: the trace transport key must not
# change the fingerprint (still routed to the warm worker, still a
# result-cache hit) and the response carries ONE stitched span tree
# with the router's spans on top and the worker's subtree inside.
TRACED1="$(sed -n 1p "$REQS" | sed 's/}$/,"trace":true}/')"
echo "$TRACED1" | "$CLIENT" --port "$RPORT" $CLIENT_RETRY \
    | check_stitched_trace cached

# ---- ping / health / unknown op are byte-compatible ----------------
PING="$(echo '{"op":"ping","id":"p1"}' | "$CLIENT" --port "$RPORT" $CLIENT_RETRY)"
PING_REF="$(echo '{"op":"ping","id":"p1"}' | "$SERVE" 2>/dev/null)"
[ "$PING" = "$PING_REF" ] || fail "router ping not byte-identical: $PING vs $PING_REF"
HEALTH="$(echo '{"op":"health","id":"h"}' | "$CLIENT" --port "$RPORT" $CLIENT_RETRY)"
[ "$(jget ok "$HEALTH")" = "true" ] || fail "router health failed: $HEALTH"
[ "$(jget status "$HEALTH")" = "ok" ] || fail "router health not ok with 2 live workers: $HEALTH"
[ "$(jget workers_healthy "$HEALTH")" = "2" ] || fail "router health workers_healthy: $HEALTH"
# Unknown ops are forwarded so the WORKER authors the canonical error.
BOGUS="$(echo '{"op":"bogus","id":"b"}' | "$CLIENT" --port "$RPORT" $CLIENT_RETRY)"
BOGUS_REF="$(echo '{"op":"bogus","id":"b"}' | "$SERVE" 2>/dev/null)"
[ "$BOGUS" = "$BOGUS_REF" ] || fail "unknown-op error diverged: $BOGUS vs $BOGUS_REF"

# ---- stats fans out ------------------------------------------------
STATS="$(echo '{"op":"stats","id":"s"}' | "$CLIENT" --port "$RPORT" $CLIENT_RETRY)"
printf '%s' "$STATS" | grep -q '"router":{' || fail "stats lacks router section: $STATS"
printf '%s' "$STATS" | grep -q '"workers":\[' || fail "stats lacks workers array: $STATS"
printf '%s' "$STATS" | grep -q "\"worker\":\"127.0.0.1:$W1\"" \
    || fail "stats lacks worker $W1 entry: $STATS"

# ---- 4. merged metrics pass the strict Prometheus checker ---------
echo '{"op":"metrics","id":"m"}' | "$CLIENT" --port "$RPORT" $CLIENT_RETRY \
    | extract_body >"$TMP/metrics.txt" \
    || fail "metrics op through the router failed"
python3 "$TOOLS_DIR/check_prometheus.py" "$TMP/metrics.txt" \
    --require ploop_router_requests_total \
    --require ploop_router_forwards_total \
    --require ploop_router_workers_healthy \
    --require ploop_router_upstream_latency_seconds \
    --require ploop_router_upstream_inflight \
    --require ploop_uptime_seconds \
    || fail "merged metrics exposition failed the strict checker"
# The searches all landed SOMEWHERE: at least one per-worker per-op
# histogram row must exist (which worker depends on the ring).
grep -q 'ploop_router_upstream_latency_seconds[^ ]*worker="127\.0\.0\.1:' \
    "$TMP/metrics.txt" \
    || fail "upstream latency histogram lacks worker-labeled rows"
grep -q 'ploop_router_upstream_latency_seconds[^ ]*op="search"' \
    "$TMP/metrics.txt" \
    || fail "upstream latency histogram lacks op=\"search\" rows"
grep -q "worker=\"127.0.0.1:$W1\"" "$TMP/metrics.txt" \
    || fail "merged metrics lack worker-labeled samples for $W1"
grep -q "worker=\"127.0.0.1:$W2\"" "$TMP/metrics.txt" \
    || fail "merged metrics lack worker-labeled samples for $W2"

# ---- 3a. kill -9 one worker: failover keeps every stream correct --
# Pick the victim DETERMINISTICALLY: probe each request directly
# against w2 -- a result-cache hit means the ring routed that
# fingerprint to w2 -- so the post-kill traced request provably maps
# to the dead worker and must exercise failover.  (The probe warms
# the non-owner too; identity checks don't read the cache flag.)
VICTIM_SEED=""
for i in 1 2 3; do
    line="$(sed -n ${i}p "$REQS")"
    resp="$(printf '%s\n' "$line" | "$CLIENT" --port "$W2")"
    if [ "$(jget from_result_cache "$resp")" = "true" ]; then
        VICTIM_SEED="$(jget id "$resp")"
        break
    fi
done
if [ -n "$VICTIM_SEED" ]; then
    VICTIM_PID=$W2_PID
    SURVIVOR=$W1 SURVIVOR_PID=$W1_PID
else
    # w2 owned none of the three: w1 owns them all.
    VICTIM_SEED=5
    VICTIM_PID=$W1_PID
    SURVIVOR=$W2 SURVIVOR_PID=$W2_PID
fi
kill -9 "$VICTIM_PID" 2>/dev/null || true
wait "$VICTIM_PID" 2>/dev/null || true
# A traced request whose fingerprint maps to the corpse: the router
# redispatches it AND shows that in the stitched tree (the survivor's
# subtree grafted under the final upstream_wait).  Under chaos the
# client may retry past the ejection window, so the redispatch span
# is only guaranteed on the clean run; well-formedness always holds.
TRACED_FAILOVER="$(grep "\"id\":$VICTIM_SEED," "$REQS" \
    | sed 's/}$/,"trace":true}/')"
if [ "$CHAOS" -eq 0 ]; then
    echo "$TRACED_FAILOVER" | "$CLIENT" --port "$RPORT" \
        | check_stitched_trace any failover
else
    echo "$TRACED_FAILOVER" | "$CLIENT" --port "$RPORT" $CLIENT_RETRY \
        | check_stitched_trace any
fi
# The doomed worker's keys re-dispatch to the survivor (cold there,
# so from_result_cache may flip false); bit-identity must hold.
"$CLIENT" --port "$RPORT" $CLIENT_RETRY --script "$REQS" \
    >"$TMP/failover.out" || fail "client after the worker kill failed"
[ "$(wc -l <"$TMP/failover.out")" -eq 3 ] || fail "failover pass: expected 3 responses"
for i in 1 2 3; do
    check_identity "$i" "$(sed -n ${i}p "$TMP/failover.out")"
done
# The probe loop notices within ~eject_after * interval.
sleep 1
HEALTH2="$(echo '{"op":"health","id":"h2"}' | "$CLIENT" --port "$RPORT" $CLIENT_RETRY)"
[ "$(jget status "$HEALTH2")" = "degraded" ] \
    || fail "router health should be degraded after losing a worker: $HEALTH2"

# ---- router shutdown drains; the external worker keeps running ----
BYE="$(echo '{"op":"shutdown","id":"z"}' | "$CLIENT" --port "$RPORT" $CLIENT_RETRY)"
[ "$(jget ok "$BYE")" = "true" ] || fail "router shutdown not ok: $BYE"
printf '%s' "$BYE" | grep -q "workers keep running" \
    || fail "router shutdown detail missing: $BYE"
wait "$ROUTER_PID" || fail "router exited non-zero after shutdown"
grep -q "drained" "$TMP/router.err" || fail "router never logged its drain"
# The surviving EXTERNAL worker still answers directly.
DIRECT="$(echo '{"op":"ping","id":"d"}' | "$CLIENT" --port "$SURVIVOR")"
[ "$(jget ok "$DIRECT")" = "true" ] \
    || fail "external worker died with the router: $DIRECT"
echo '{"op":"shutdown"}' | "$CLIENT" --port "$SURVIVOR" >/dev/null
wait "$SURVIVOR_PID" || fail "surviving worker exited non-zero after shutdown"

# ---- 7. the event log recorded the whole lifecycle ----------------
# Valid JSONL throughout (chaos: faults must never tear a line); the
# ejection, the drain bracket, and the reconnect probes against the
# corpse must all be there.  The redispatch record is only guaranteed
# on the clean run (see the traced failover above).
REQUIRED_EVENTS=(worker_ejected reconnect_attempt drain_begin drain_end)
[ "$CHAOS" -eq 0 ] && REQUIRED_EVENTS+=(failover_redispatch)
check_event_log "$TMP/events.jsonl" "${REQUIRED_EVENTS[@]}"

# ---- 3b. reject mode answers upstream_unavailable -----------------
"$SERVE" --listen 0 --port-file "$TMP/w3.port" 2>"$TMP/w3.err" &
W3_PID=$!; PIDS+=($W3_PID)
W3="$(wait_port_file "$TMP/w3.port")"
PLOOP_FAULTS="$FAULT_SPEC" "$ROUTER" --listen 0 \
    --port-file "$TMP/r2.port" --workers "$W3" --failover reject \
    --probe-interval-ms 200 --probe-timeout-ms 500 --eject-after 2 \
    2>"$TMP/router2.err" &
R2_PID=$!; PIDS+=($R2_PID)
R2PORT="$(wait_port_file "$TMP/r2.port")"
# Healthy first, then the only worker dies: no failover target left.
OK1="$(echo '{"op":"ping","id":"p"}' | "$CLIENT" --port "$R2PORT" $CLIENT_RETRY)"
[ "$(jget ok "$OK1")" = "true" ] || fail "reject-mode router did not start healthy: $OK1"
kill -9 "$W3_PID" 2>/dev/null || true
wait "$W3_PID" 2>/dev/null || true
REJ="$(head -n1 "$REQS" | "$CLIENT" --port "$R2PORT")" \
    || fail "reject-mode client lost its connection"
[ "$(jget ok "$REJ")" = "false" ] || fail "reject-mode request was answered ok: $REJ"
[ "$(jget code "$REJ")" = "upstream_unavailable" ] \
    || fail "reject without code=upstream_unavailable: $REJ"
[ "$(jget op "$REJ")" = "search" ] || fail "reject lost its op: $REJ"
[ "$(jget id "$REJ")" = "5" ] || fail "reject lost its id: $REJ"
echo '{"op":"shutdown"}' | "$CLIENT" --port "$R2PORT" $CLIENT_RETRY >/dev/null
wait "$R2_PID" || fail "reject-mode router exited non-zero"

# ---- 5. --spawn mode owns its workers end to end ------------------
PLOOP_FAULTS="$FAULT_SPEC" "$ROUTER" --listen 0 \
    --port-file "$TMP/rs.port" --spawn 2 --worker-bin "$SERVE" \
    --obs-log "$TMP/spawn_events.jsonl" \
    2>"$TMP/spawn.err" &
RS_PID=$!; PIDS+=($RS_PID)
RSPORT="$(wait_port_file "$TMP/rs.port")"
"$CLIENT" --port "$RSPORT" $CLIENT_RETRY --script "$REQS" \
    >"$TMP/spawn.out" || fail "client against the spawned cluster failed"
for i in 1 2 3; do
    check_identity "$i" "$(sed -n ${i}p "$TMP/spawn.out")"
done
echo '{"op":"shutdown","id":"z"}' | "$CLIENT" --port "$RSPORT" $CLIENT_RETRY >/dev/null
wait "$RS_PID" || fail "spawning router exited non-zero"
# Owned workers leave a spawn/stop record around the drain bracket.
check_event_log "$TMP/spawn_events.jsonl" \
    worker_spawned worker_stopped drain_begin drain_end

echo "$TAG: PASS"
