#!/usr/bin/env python3
"""Project-invariant linter: structural rules clang cannot know.

The declarative request API and the annotated locking discipline both
rest on conventions that hold the codebase together but live outside
any one translation unit, so neither the compiler nor clang-tidy can
check them.  This linter does, as a ctest and a CI step:

  api-field-visited   every data member of a struct that has a
                      describeFields() overload in src/api/requests.hpp
                      must be visited by that overload -- a field left
                      out silently drops out of the wire format, the
                      fingerprint AND the capabilities schema at once.
  api-field-marked    every visited field must carry an explicit
                      semantic marking: FieldMeta{...} (semantic,
                      folded into the request fingerprint) or
                      nonSemantic(...) (excluded).  An unmarked visit
                      means nobody decided whether the field changes
                      WHAT a request computes or only HOW.
  knob-dispatch       the sweepKnobNames() list (which feeds the
                      capabilities schema via schema.cpp and the
                      unknown-knob error message) must exactly match
                      the `knob == "..."` dispatch in applySweepKnob()
                      -- a knob in one but not the other is either
                      advertised-but-broken or secret.
  raw-mutex           no raw std::mutex / lock_guard / unique_lock /
                      scoped_lock / condition_variable outside
                      src/common/annotations.hpp: every lock must be a
                      ploop::Mutex so clang Thread Safety Analysis
                      sees it (see annotations.hpp's house rules).
  error-response      protocol-level error responses in src/net/,
                      src/cluster/ and src/service/ must route through
                      protocolErrorResponse() (serve_session.cpp), not
                      hand-rolled {"ok":false,...} JSON -- hand-rolled
                      errors lose the op/id echo and the
                      code/retry_after_ms contract clients rely on.
  metric-naming       every literal-named metric registration
                      (counter/counterFn/gauge/histogram on a
                      MetricsRegistry) must use a name matching
                      ^ploop_[a-z0-9_]+$ and carry non-empty help
                      text -- the registry fatal()s on violations at
                      runtime, but only on code paths that run; this
                      catches the series nobody exercised.  Scans all
                      of src/ (including src/cluster/'s router
                      families, e.g. the per-worker upstream
                      histograms) and tools/.

Output: one `file:line: rule-name: message` per violation on stdout;
exit status 1 when any fired, 0 on a clean tree.  `--root` points at
the repo root (default: the parent of this script's directory), which
is how the self-tests feed seeded-violation fixture trees.
"""

import argparse
import os
import re
import sys


def strip_comments(text):
    """Remove // and /* */ comments, preserving line structure and
    string literals (so `"// not a comment"` survives)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == '"':
            out.append(c)
            i += 1
            while i < n and text[i] != '"':
                if text[i] == "\\" and i + 1 < n:
                    out.append(text[i : i + 2])
                    i += 2
                    continue
                out.append(text[i])
                i += 1
            if i < n:
                out.append('"')
                i += 1
        elif c == "'":
            out.append(c)
            i += 1
            while i < n and text[i] != "'":
                if text[i] == "\\" and i + 1 < n:
                    out.append(text[i : i + 2])
                    i += 2
                    continue
                out.append(text[i])
                i += 1
            if i < n:
                out.append("'")
                i += 1
        elif text.startswith("//", i):
            while i < n and text[i] != "\n":
                i += 1
        elif text.startswith("/*", i):
            end = text.find("*/", i + 2)
            end = n if end < 0 else end + 2
            # Keep newlines so line numbers stay right.
            out.append("\n" * text.count("\n", i, end))
            i = end
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return "%s:%d: %s: %s" % (self.path, self.line, self.rule,
                                  self.message)


def source_files(root, subdirs, exts=(".hpp", ".cpp")):
    for sub in subdirs:
        base = os.path.join(root, sub)
        for dirpath, _, names in os.walk(base):
            for name in sorted(names):
                if name.endswith(exts):
                    yield os.path.join(dirpath, name)


def read(path):
    with open(path, encoding="utf-8") as f:
        return f.read()


def relpath(root, path):
    return os.path.relpath(path, root)


def matched_brace_block(text, open_idx):
    """Return (body, end_idx) for the brace block opening at
    text[open_idx] == '{' (body excludes the braces)."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return text[open_idx + 1 : i], i
    return text[open_idx + 1 :], len(text)


def split_statements(body):
    """Split a brace-depth-0 body into ';'-terminated statements
    (nested braces/parens are kept whole)."""
    stmts, start, depth = [], 0, 0
    for i, c in enumerate(body):
        if c in "{(":
            depth += 1
        elif c in "})":
            depth -= 1
        elif c == ";" and depth == 0:
            stmts.append((body[start:i], start))
            start = i + 1
    return stmts


def struct_members(body):
    """Yield (name, offset) for the data members of a struct body
    (methods, statics, usings and nested types are skipped)."""
    for stmt, offset in split_statements(body):
        text = stmt.strip()
        if not text:
            continue
        # Drop a leading access specifier glued on by the split.
        text = re.sub(r"^\s*(public|private|protected)\s*:\s*", "",
                      text)
        # Point at the declaration itself, not the whitespace run
        # trailing the previous statement's ';'.
        offset += len(stmt) - len(stmt.lstrip())
        first = text.split()[0] if text.split() else ""
        if first in ("static", "using", "friend", "typedef", "struct",
                     "class", "enum", "template", "explicit"):
            continue
        paren = text.find("(")
        eq = text.find("=")
        if paren >= 0 and (eq < 0 or paren < eq):
            continue  # function declaration / constructor
        # Multi-declarator statements (`std::uint64_t n = 1, k = 1;`)
        # declare one member per comma-separated declarator; commas
        # inside template arguments or initializers do not split.
        parts, start, depth = [], 0, 0
        for i, ch in enumerate(text):
            if ch in "<({[":
                depth += 1
            elif ch in ">)}]":
                depth -= 1
            elif ch == "," and depth == 0:
                parts.append(text[start:i])
                start = i + 1
        parts.append(text[start:])
        first_decl = True
        for part in parts:
            eq = part.find("=")
            decl = part[:eq] if eq >= 0 else part
            decl = decl.split("[")[0]  # arrays: name precedes bound
            idents = re.findall(r"[A-Za-z_]\w*", decl)
            if first_decl and len(idents) < 2:
                break  # no type + name pair: not a data member
            if idents:
                yield idents[-1], offset
            first_decl = False


def check_api_fields(root):
    """api-field-visited + api-field-marked over requests.hpp."""
    requests_path = os.path.join(root, "src", "api", "requests.hpp")
    if not os.path.isfile(requests_path):
        return []
    text = strip_comments(read(requests_path))
    violations = []

    # Every describeFields overload in the file, with its parameter
    # name and body.
    overloads = {}
    for m in re.finditer(
            r"describeFields\(\s*V\s*&\s*\w+\s*,\s*(\w+)\s*&\s*(\w+)"
            r"\s*\)", text):
        struct_name, var = m.group(1), m.group(2)
        open_idx = text.find("{", m.end())
        if open_idx < 0:
            continue
        body, _ = matched_brace_block(text, open_idx)
        overloads[struct_name] = (var, body)

    # Struct definitions live in requests.hpp or elsewhere under src/
    # (AlbireoConfig, SearchOptions); find each by name.
    def find_struct(name):
        pat = re.compile(r"\bstruct\s+" + name + r"\b[^;{]*\{")
        for path in [requests_path] + sorted(
                source_files(root, ["src"], exts=(".hpp",))):
            if not os.path.isfile(path):
                continue
            body_text = strip_comments(read(path))
            m = pat.search(body_text)
            if m:
                body, _ = matched_brace_block(body_text, m.end() - 1)
                return path, body_text, m.end() - 1, body
        return None

    for struct_name, (var, fields_body) in sorted(overloads.items()):
        found = find_struct(struct_name)
        if not found:
            continue
        path, struct_text, body_start, body = found
        rel = relpath(root, path)
        for member, offset in struct_members(body):
            line = line_of(struct_text, body_start + 1 + offset)
            ref = re.compile(r"\b" + var + r"\." + member + r"\b")
            referencing = [
                stmt for stmt, _ in split_statements(fields_body)
                if ref.search(stmt)
            ]
            if not referencing:
                violations.append(Violation(
                    rel, line, "api-field-visited",
                    "%s::%s is not visited by describeFields(V&, "
                    "%s&) -- it is absent from the wire format, the "
                    "fingerprint and the schema" %
                    (struct_name, member, struct_name)))
                continue
            if not any("FieldMeta{" in s or "nonSemantic(" in s
                       for s in referencing):
                violations.append(Violation(
                    rel, line, "api-field-marked",
                    "%s::%s is visited without a FieldMeta{...} / "
                    "nonSemantic(...) marking -- decide whether it "
                    "is folded into the request fingerprint" %
                    (struct_name, member)))
    return violations


def check_knob_dispatch(root):
    """knob-dispatch over requests.cpp."""
    path = os.path.join(root, "src", "api", "requests.cpp")
    if not os.path.isfile(path):
        return []
    text = strip_comments(read(path))
    rel = relpath(root, path)

    m = re.search(r"applySweepKnob\([^)]*\)\s*\{", text)
    if not m:
        return []
    dispatch_body, _ = matched_brace_block(text, m.end() - 1)
    dispatched = set(re.findall(r'knob\s*==\s*"([^"]+)"',
                                dispatch_body))

    m2 = re.search(r"sweepKnobNames\(\)\s*\{", text)
    if not m2:
        return []
    names_line = line_of(text, m2.start())
    names_body, _ = matched_brace_block(text, m2.end() - 1)
    advertised = set(re.findall(r'"([^"]+)"', names_body))

    violations = []
    for knob in sorted(advertised - dispatched):
        violations.append(Violation(
            rel, names_line, "knob-dispatch",
            "knob '%s' is advertised by sweepKnobNames() (and so by "
            "the capabilities schema) but applySweepKnob() has no "
            "dispatch arm for it" % knob))
    for knob in sorted(dispatched - advertised):
        violations.append(Violation(
            rel, names_line, "knob-dispatch",
            "knob '%s' is dispatched by applySweepKnob() but missing "
            "from sweepKnobNames() -- a working knob the schema "
            "never advertises" % knob))
    return violations


RAW_LOCK = re.compile(
    r"std::(mutex|recursive_mutex|shared_mutex|timed_mutex|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock|"
    r"condition_variable(_any)?)\b")


def check_raw_mutex(root):
    """raw-mutex over src/ and tools/."""
    allowed = os.path.join(root, "src", "common", "annotations.hpp")
    violations = []
    for path in sorted(source_files(root, ["src", "tools"])):
        if os.path.abspath(path) == os.path.abspath(allowed):
            continue
        text = strip_comments(read(path))
        for m in RAW_LOCK.finditer(text):
            violations.append(Violation(
                relpath(root, path), line_of(text, m.start()),
                "raw-mutex",
                "raw std::%s -- use ploop::Mutex / MutexLock / "
                "CondVar from common/annotations.hpp so the lock is "
                "visible to thread safety analysis" % m.group(1)))
    return violations


# Hand-rolled {"ok":false,...} JSON text, or building the same
# response through the JSON layer.
RAW_ERROR_JSON = re.compile(r'\\"ok\\"\s*:\s*false')
BUILT_ERROR_JSON = re.compile(
    r'set\(\s*"ok"\s*,\s*JsonValue::boolean\(\s*false\s*\)\s*\)')


def check_error_response(root):
    """error-response over src/net/, src/cluster/ and src/service/."""
    exempt = os.path.join(root, "src", "service", "serve_session.cpp")
    violations = []
    for path in sorted(source_files(root,
                                    [os.path.join("src", "net"),
                                     os.path.join("src", "cluster"),
                                     os.path.join("src", "service")])):
        if os.path.abspath(path) == os.path.abspath(exempt):
            # protocolErrorResponse() itself plus the session's
            # in-request-path error construction live here.
            continue
        text = strip_comments(read(path))
        for pat in (RAW_ERROR_JSON, BUILT_ERROR_JSON):
            for m in pat.finditer(text):
                violations.append(Violation(
                    relpath(root, path), line_of(text, m.start()),
                    "error-response",
                    "error response constructed by hand -- route it "
                    "through protocolErrorResponse() so the op/id "
                    "echo and code/retry_after_ms contract hold"))
    return violations


# A registration call with a LITERAL name (and help): method name,
# then one-or-more adjacent string literals for the name, a comma,
# and one-or-more adjacent literals for the help.  Variable-named
# registrations are the registry's runtime fatal()'s job; literals
# are checkable here, before any code runs.  counterFn precedes
# counter so the alternation cannot split it.
METRIC_CALL = re.compile(
    r"\b(counterFn|counter|gauge|histogram)\(\s*"
    r'("[^"]*"(?:\s*"[^"]*")*)\s*,\s*'
    r'("[^"]*"(?:\s*"[^"]*")*)\s*[,)]')

METRIC_NAME = re.compile(r"ploop_[a-z0-9_]+\Z")


def check_metric_naming(root):
    """metric-naming over src/ and tools/."""
    violations = []
    for path in sorted(source_files(root, ["src", "tools"])):
        text = strip_comments(read(path))
        for m in METRIC_CALL.finditer(text):
            name = "".join(re.findall(r'"([^"]*)"', m.group(2)))
            help_text = "".join(re.findall(r'"([^"]*)"', m.group(3)))
            if not METRIC_NAME.match(name):
                violations.append(Violation(
                    relpath(root, path), line_of(text, m.start()),
                    "metric-naming",
                    "metric name '%s' violates the naming contract "
                    "(^ploop_[a-z0-9_]+$)" % name))
            if not help_text.strip():
                violations.append(Violation(
                    relpath(root, path), line_of(text, m.start()),
                    "metric-naming",
                    "metric '%s' is registered with empty help text"
                    % name))
    return violations


def main():
    parser = argparse.ArgumentParser(
        description="ploop project-invariant linter")
    parser.add_argument(
        "--root",
        default=os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))),
        help="repo root to lint (default: this script's repo)")
    args = parser.parse_args()
    root = os.path.abspath(args.root)

    violations = []
    violations += check_api_fields(root)
    violations += check_knob_dispatch(root)
    violations += check_raw_mutex(root)
    violations += check_error_response(root)
    violations += check_metric_naming(root)

    for v in violations:
        print(v)
    if violations:
        print("lint_invariants: %d violation(s)" % len(violations))
        return 1
    print("lint_invariants: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
