/**
 * @file
 * ploop_client: a small line client for a ploop_serve --listen
 * server.  Reads request lines from stdin (or --script FILE), sends
 * them over loopback TCP, and prints each response line to stdout --
 * the socket twin of `... | ploop_serve`.
 *
 *   ploop_client --port PORT [--script FILE] [--pipeline]
 *                [--retries N] [--timeout-ms MS] [--verbose]
 *
 * Default mode is lockstep: send one request, wait for its response,
 * print it, repeat -- the natural shape for shell scripts comparing
 * responses line by line.  --pipeline sends every request first and
 * then reads all responses (exercises server-side queueing and
 * per-connection response ordering).
 *
 * Resilience (lockstep only -- see RetryingLineClient for why a
 * pipelined window cannot be retried): --retries N reconnects and
 * resends through transport failures and honors server retry_after_ms
 * hints with exponential backoff; --timeout-ms bounds connection
 * establishment.  Every ploop op is idempotent (deterministic
 * request/response), so resending after an ambiguous failure is safe.
 *
 * Blank lines and lines starting with '#' are skipped, like
 * ploop_serve --script.  Exit status: 0 when every request got a
 * response line, 1 on connection failure or a server that closed
 * early, 2 on usage errors.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "net/line_client.hpp"
#include "net/port_file.hpp"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s {--port PORT | --port-file PATH}\n"
                 "          [--script FILE] [--pipeline]\n"
                 "          [--retries N] [--timeout-ms MS] "
                 "[--verbose]\n"
                 "\n"
                 "--port-file reads the port a server wrote with\n"
                 "ploop_serve --port-file (waits briefly for the\n"
                 "handshake).  --retries/--timeout-ms add\n"
                 "reconnect-and-resend resilience (lockstep mode\n"
                 "only; retry semantics for a pipelined window are\n"
                 "ambiguous).\n",
                 argv0);
    return 2;
}

long
parseCount(const char *arg, const char *text, long max)
{
    char *end = nullptr;
    long v = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || v < 0 || v > max) {
        std::fprintf(stderr, "bad %s '%s'\n", arg, text);
        std::exit(2);
    }
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ploop;

    long port = -1;
    std::string script;
    bool pipeline = false;
    bool verbose = false;
    bool retries_set = false;
    RetryPolicy policy;
    policy.retries = 0; // plain behavior unless --retries asks
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--port") {
            port = parseCount("--port", value(), 65535);
            if (port < 1) {
                std::fprintf(stderr, "bad --port %ld\n", port);
                return 2;
            }
        } else if (arg == "--port-file") {
            std::string pf_err;
            port = readPortFile(value(), 5000, &pf_err);
            if (port < 0) {
                std::fprintf(stderr, "ploop_client: %s\n",
                             pf_err.c_str());
                return 1;
            }
        } else if (arg == "--script") {
            script = value();
        } else if (arg == "--pipeline") {
            pipeline = true;
        } else if (arg == "--retries") {
            policy.retries = static_cast<unsigned>(
                parseCount("--retries", value(), 1000));
            retries_set = true;
        } else if (arg == "--timeout-ms") {
            policy.connect_timeout_ms = static_cast<int>(
                parseCount("--timeout-ms", value(), 3600 * 1000));
        } else if (arg == "--verbose") {
            verbose = true;
        } else if (arg == "--help" || arg == "-h") {
            return usage(argv[0]);
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n",
                         arg.c_str());
            return usage(argv[0]);
        }
    }
    if (port < 0)
        return usage(argv[0]);
    if (retries_set && pipeline) {
        std::fprintf(stderr,
                     "--retries needs lockstep mode: a pipelined "
                     "window cannot be retried safely (which of the "
                     "unacked requests failed?)\n");
        return 2;
    }

    std::ifstream script_in;
    if (!script.empty()) {
        script_in.open(script);
        if (!script_in.is_open()) {
            std::fprintf(stderr, "cannot open script '%s'\n",
                         script.c_str());
            return 2;
        }
    }
    std::istream &in = script.empty() ? std::cin : script_in;

    RetryingLineClient client(static_cast<std::uint16_t>(port),
                              policy);
    if (!client.connected() && !retries_set) {
        std::fprintf(stderr, "cannot connect to 127.0.0.1:%ld\n",
                     port);
        return 1;
    }

    std::string line, resp;
    std::size_t sent = 0, answered = 0;
    bool ok = true;
    while (std::getline(in, line)) {
        std::size_t first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#')
            continue;
        if (pipeline) {
            if (!client.raw().sendLine(line)) {
                std::fprintf(stderr,
                             "server closed the connection\n");
                ok = false;
                break;
            }
            ++sent;
            // Drain whatever responses already arrived so a deep
            // pipeline can never deadlock against a server that
            // stops reading while our unread responses pile up.
            while (client.raw().tryRecvLine(resp)) {
                ++answered;
                std::puts(resp.c_str());
            }
            continue;
        }
        // Lockstep: the retrying round trip reconnects and resends
        // through transport failures and waits out retry_after_ms
        // rejects (no-op with --retries 0).
        ++sent;
        resp = client.roundTrip(line);
        if (resp.empty()) {
            std::fprintf(stderr,
                         "no response (server closed early)\n");
            ok = false;
            break;
        }
        ++answered;
        std::puts(resp.c_str());
        std::fflush(stdout);
    }
    while (ok && answered < sent) {
        if (!client.raw().recvLine(resp)) {
            std::fprintf(stderr,
                         "missing %zu responses (server closed "
                         "early)\n",
                         sent - answered);
            ok = false;
            break;
        }
        ++answered;
        std::puts(resp.c_str());
        std::fflush(stdout);
    }
    if (verbose)
        std::fprintf(stderr, "ploop_client: %zu sent, %zu answered, "
                             "%llu retries used\n",
                     sent, answered,
                     static_cast<unsigned long long>(
                         client.retriesUsed()));
    return ok ? 0 : 1;
}
