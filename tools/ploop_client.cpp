/**
 * @file
 * ploop_client: a small line client for a ploop_serve --listen
 * server.  Reads request lines from stdin (or --script FILE), sends
 * them over loopback TCP, and prints each response line to stdout --
 * the socket twin of `... | ploop_serve`.
 *
 *   ploop_client --port PORT [--script FILE] [--pipeline]
 *
 * Default mode is lockstep: send one request, wait for its response,
 * print it, repeat -- the natural shape for shell scripts comparing
 * responses line by line.  --pipeline sends every request first and
 * then reads all responses (exercises server-side queueing and
 * per-connection response ordering).
 *
 * Blank lines and lines starting with '#' are skipped, like
 * ploop_serve --script.  Exit status: 0 when every request got a
 * response line, 1 on connection failure or a server that closed
 * early, 2 on usage errors.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "net/line_client.hpp"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s --port PORT [--script FILE] "
                 "[--pipeline]\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ploop;

    long port = -1;
    std::string script;
    bool pipeline = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--port") {
            char *end = nullptr;
            const char *text = value();
            port = std::strtol(text, &end, 10);
            if (end == text || *end != '\0' || port < 1 ||
                port > 65535) {
                std::fprintf(stderr, "bad --port '%s'\n", text);
                return 2;
            }
        } else if (arg == "--script") {
            script = value();
        } else if (arg == "--pipeline") {
            pipeline = true;
        } else if (arg == "--help" || arg == "-h") {
            return usage(argv[0]);
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n",
                         arg.c_str());
            return usage(argv[0]);
        }
    }
    if (port < 0)
        return usage(argv[0]);

    std::ifstream script_in;
    if (!script.empty()) {
        script_in.open(script);
        if (!script_in.is_open()) {
            std::fprintf(stderr, "cannot open script '%s'\n",
                         script.c_str());
            return 2;
        }
    }
    std::istream &in = script.empty() ? std::cin : script_in;

    LineClient client(static_cast<std::uint16_t>(port));
    if (!client.connected()) {
        std::fprintf(stderr, "cannot connect to 127.0.0.1:%ld\n",
                     port);
        return 1;
    }

    std::string line, resp;
    std::size_t sent = 0, answered = 0;
    bool ok = true;
    while (std::getline(in, line)) {
        std::size_t first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#')
            continue;
        if (!client.sendLine(line)) {
            std::fprintf(stderr, "server closed the connection\n");
            ok = false;
            break;
        }
        ++sent;
        if (pipeline) {
            // Drain whatever responses already arrived so a deep
            // pipeline can never deadlock against a server that
            // stops reading while our unread responses pile up.
            while (client.tryRecvLine(resp)) {
                ++answered;
                std::puts(resp.c_str());
            }
            continue;
        }
        if (!client.recvLine(resp)) {
            std::fprintf(stderr,
                         "no response (server closed early)\n");
            ok = false;
            break;
        }
        ++answered;
        std::puts(resp.c_str());
        std::fflush(stdout);
    }
    while (ok && answered < sent) {
        if (!client.recvLine(resp)) {
            std::fprintf(stderr,
                         "missing %zu responses (server closed "
                         "early)\n",
                         sent - answered);
            ok = false;
            break;
        }
        ++answered;
        std::puts(resp.c_str());
        std::fflush(stdout);
    }
    return ok ? 0 : 1;
}
