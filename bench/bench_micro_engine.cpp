/**
 * @file
 * Micro-benchmarks of the modeling engine itself: tile analysis, nest
 * analysis, full evaluation, mapspace sampling, and mapper search.
 * These time the tool (the paper's "fast design space exploration"
 * claim rests on evaluation being cheap), not the modeled hardware.
 */

#include <random>

#include <benchmark/benchmark.h>

#include "albireo/albireo_arch.hpp"
#include "bench_common.hpp"
#include "mapper/mapper.hpp"
#include "model/evaluator.hpp"
#include "workload/model_zoo.hpp"

namespace {

using namespace ploop;
using namespace ploop::bench;

struct Fixture
{
    EnergyRegistry registry = makeDefaultRegistry();
    ArchSpec arch = buildAlbireoArch(
        AlbireoConfig::paperDefault(ScalingProfile::Conservative));
    Evaluator evaluator{arch, registry};
    LayerShape layer = bestCaseLayer();
    Mapping mapping = Mapper(evaluator).search(layer).mapping;
};

Fixture &
fixture()
{
    static Fixture f;
    return f;
}

void
BM_TileAnalysis(benchmark::State &state)
{
    Fixture &f = fixture();
    for (auto _ : state) {
        TileAnalysis tiles(f.arch, f.layer, f.mapping);
        benchmark::DoNotOptimize(tiles.keptWords(0));
    }
}
BENCHMARK(BM_TileAnalysis);

void
BM_AccessCounts(benchmark::State &state)
{
    Fixture &f = fixture();
    TileAnalysis tiles(f.arch, f.layer, f.mapping);
    for (auto _ : state) {
        AccessCounts counts =
            computeAccessCounts(f.arch, f.layer, f.mapping, tiles);
        benchmark::DoNotOptimize(counts.macs);
    }
}
BENCHMARK(BM_AccessCounts);

void
BM_FullEvaluation(benchmark::State &state)
{
    Fixture &f = fixture();
    for (auto _ : state) {
        EvalResult r = f.evaluator.evaluate(f.layer, f.mapping);
        benchmark::DoNotOptimize(r.counts.macs);
    }
}
BENCHMARK(BM_FullEvaluation);

void
BM_RandomSample(benchmark::State &state)
{
    Fixture &f = fixture();
    Mapspace mapspace(f.arch, f.layer);
    std::mt19937_64 rng(1);
    for (auto _ : state) {
        Mapping m = mapspace.randomSample(rng);
        benchmark::DoNotOptimize(m.coverage(Dim::K));
    }
}
BENCHMARK(BM_RandomSample);

/** Surface SearchStats (cache behavior, wall time) on a bench. */
void
reportSearchStats(benchmark::State &state, const SearchStats &stats)
{
    state.counters["evals"] =
        static_cast<double>(stats.evaluated);
    state.counters["cache_hits"] =
        static_cast<double>(stats.cache_hits);
    state.counters["cache_misses"] =
        static_cast<double>(stats.cache_misses);
    state.counters["hit_rate"] = stats.cacheHitRate();
    state.counters["search_wall_s"] = stats.wall_time_s;
    state.SetLabel(stats.str());
}

void
BM_MapperSearchDefault(benchmark::State &state)
{
    Fixture &f = fixture();
    Mapper mapper(f.evaluator);
    SearchStats last;
    for (auto _ : state) {
        MapperResult r = mapper.search(f.layer);
        benchmark::DoNotOptimize(r.result.counts.macs);
        last = r.stats;
    }
    reportSearchStats(state, last);
}
BENCHMARK(BM_MapperSearchDefault)->Unit(benchmark::kMillisecond);

void
BM_MapperSearchResNetLayer(benchmark::State &state)
{
    Fixture &f = fixture();
    Network net = makeResNet18();
    const LayerShape &layer = net.layerByName("layer3.0.conv1");
    Mapper mapper(f.evaluator);
    SearchStats last;
    for (auto _ : state) {
        MapperResult r = mapper.search(layer);
        benchmark::DoNotOptimize(r.result.counts.macs);
        last = r.stats;
    }
    reportSearchStats(state, last);
}
BENCHMARK(BM_MapperSearchResNetLayer)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
