/**
 * @file
 * Reproduces paper Fig. 2: modeled vs. reported best-case energy
 * breakdown (pJ/MAC) of the Albireo accelerator (+ off-chip laser)
 * under conservative / moderate / aggressive photonic scaling.
 *
 * Prints the stacked breakdown for each scaling profile, the
 * per-profile total error, and the average overall energy error (the
 * paper reports 0.4%).  Then runs a google-benchmark timing of the
 * underlying evaluation.
 */

#include <cstdio>

#include <benchmark/benchmark.h>

#include "albireo/albireo_arch.hpp"
#include "bench_common.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "mapper/mapper.hpp"
#include "report/export.hpp"

namespace {

using namespace ploop;
using namespace ploop::bench;

EvalResult
bestCaseResult(ScalingProfile scaling, const EnergyRegistry &registry)
{
    AlbireoConfig cfg = AlbireoConfig::paperDefault(scaling);
    ArchSpec arch = buildAlbireoArch(cfg);
    Evaluator evaluator(arch, registry);
    Mapper mapper(evaluator);
    return mapper.search(bestCaseLayer()).result;
}

void
report()
{
    EnergyRegistry registry = makeDefaultRegistry();

    std::printf("=== Fig. 2: Accelerator energy breakdown "
                "validation ===\n");
    std::printf("workload: best-case 3x3 conv (%s)\n\n",
                bestCaseLayer().str().c_str());

    BarChart chart("Best-case energy (pJ/MAC)", "pJ/MAC");
    chart.setSegments(fig2Categories());

    Table table("Per-component pJ/MAC (Model vs Reported)");
    std::vector<std::string> header = {"scaling", "series"};
    for (const auto &cat : fig2Categories())
        header.push_back(cat);
    header.push_back("total");
    table.setHeader(header);

    double total_err_pct = 0.0;
    int n_profiles = 0;
    std::vector<ResultRow> csv_rows;
    for (const Fig2Reported &rep : fig2ReportedData()) {
        EvalResult result = bestCaseResult(rep.scaling, registry);
        csv_rows.push_back(flattenResult(
            scalingProfileName(rep.scaling), result));
        auto modeled = fig2PjPerMac(result);
        const std::map<std::string, double> reported = {
            {"MRR", rep.mrr},     {"MZM", rep.mzm},
            {"Laser", rep.laser}, {"AO/AE", rep.ao_ae},
            {"DE/AE", rep.de_ae}, {"AE/DE", rep.ae_de},
            {"Cache", rep.cache},
        };

        auto row = [&](const std::string &series,
                       const std::map<std::string, double> &vals) {
            std::vector<std::string> cells = {
                scalingProfileName(rep.scaling), series};
            std::vector<double> segs;
            double total = 0.0;
            for (const auto &cat : fig2Categories()) {
                double v = vals.count(cat) ? vals.at(cat) : 0.0;
                cells.push_back(strFormat("%.3f", v));
                segs.push_back(v);
                total += v;
            }
            cells.push_back(strFormat("%.3f", total));
            table.addRow(cells);
            chart.addBar(std::string(
                             scalingProfileName(rep.scaling)) +
                             " " + series,
                         segs);
            return total;
        };
        double m_total = row("Model", modeled);
        double r_total = row("Reported", reported);
        table.addSeparator();
        total_err_pct += pctError(m_total, r_total);
        ++n_profiles;
    }

    std::printf("%s\n", table.render().c_str());
    std::printf("%s\n", chart.render().c_str());
    std::printf("average overall energy error: %.2f%% "
                "(paper: 0.4%%)\n\n",
                total_err_pct / n_profiles);

    writeFile("fig2_results.csv", toCsv(csv_rows));
    std::printf("per-profile results written to fig2_results.csv\n\n");
}

void
BM_BestCaseEvaluation(benchmark::State &state)
{
    EnergyRegistry registry = makeDefaultRegistry();
    AlbireoConfig cfg =
        AlbireoConfig::paperDefault(ScalingProfile::Conservative);
    ArchSpec arch = buildAlbireoArch(cfg);
    Evaluator evaluator(arch, registry);
    Mapper mapper(evaluator);
    Mapping mapping = mapper.search(bestCaseLayer()).mapping;
    LayerShape layer = bestCaseLayer();
    for (auto _ : state) {
        EvalResult r = evaluator.evaluate(layer, mapping);
        benchmark::DoNotOptimize(r.counts.macs);
    }
}
BENCHMARK(BM_BestCaseEvaluation);

} // namespace

int
main(int argc, char **argv)
{
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
