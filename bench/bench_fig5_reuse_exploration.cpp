/**
 * @file
 * Reproduces paper Fig. 5: architecture exploration of analog/optical
 * reuse on the aggressively-scaled Albireo (accelerator only, no
 * DRAM), running ResNet18.
 *
 * Sweeps output reuse OR in {3, 9, 15} x input reuse IR in {9, 27,
 * 45} x {original, more-weight-reuse}.  More reuse cuts conversion
 * energy (converting once and sharing spatially) at the cost of
 * extra optical splitting loss (larger star couplers -> more laser
 * power -> "Other AO" grows).
 *
 * Expected shape (paper §III.4): best point cuts data-converter
 * energy ~42% and accelerator energy ~31% vs. the original Albireo
 * (IR=9, OR=3).
 */

#include <cstdio>

#include <benchmark/benchmark.h>

#include "albireo/albireo_arch.hpp"
#include "bench_common.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "service/eval_service.hpp"
#include "workload/model_zoo.hpp"

namespace {

using namespace ploop;
using namespace ploop::bench;

SearchOptions
fig5Search()
{
    SearchOptions opts;
    opts.objective = Objective::Energy;
    opts.random_samples = 20;
    opts.hill_climb_rounds = 6;
    return opts;
}

struct Point
{
    double or_factor;
    double ir_factor;
    bool more_weight_reuse;
};

struct PointResult
{
    double pj_per_mac = 0;
    double converter_pj = 0;
    std::map<std::string, double> segments; // pJ/MAC by category.
};

PointResult
runPoint(EvalService &service, const Point &p)
{
    // One declarative network request per exploration point; the
    // shared service session reuses registered archs and warm cache
    // entries across points and repeats.
    NetworkRequest req;
    req.arch =
        AlbireoConfig::paperDefault(ScalingProfile::Aggressive);
    req.arch.output_reuse = p.or_factor;
    req.arch.input_reuse = p.ir_factor;
    req.arch.weight_reuse = p.more_weight_reuse ? 3.0 : 1.0;
    req.network = "resnet18";
    req.options = fig5Search();
    NetworkRunResult run = service.network(req).result;

    PointResult out;
    for (const LayerRunResult &lr : run.layers) {
        for (const EnergyEntry &e : lr.result.energy.entries) {
            out.segments[fig4Category(e)] += e.energy_j;
            // "Data converters" in the paper's sense: ADCs and DACs
            // (the DE/AE and AE/DE crossings).
            if (e.klass == "adc" || e.klass == "dac")
                out.converter_pj += e.energy_j;
        }
    }
    for (auto &[cat, j] : out.segments)
        j = j / run.total_macs * 1e12;
    out.converter_pj = out.converter_pj / run.total_macs * 1e12;
    out.pj_per_mac = run.energyPerMac() * 1e12;
    return out;
}

void
report()
{
    EvalService service;

    std::printf("=== Fig. 5: Architecture exploration of "
                "analog/optical reuse ===\n");
    std::printf("aggressively-scaled Albireo, ResNet18, accelerator "
                "only\n\n");

    BarChart chart("ResNet18 energy (pJ/MAC) by (OR, IR)", "pJ/MAC");
    chart.setSegments(fig4Categories());

    double original_total = 0, original_conv = 0;
    double best_total = 0, best_conv = 0;

    Table table("Reuse sweep");
    table.setHeader({"variant", "OR", "IR", "pJ/MAC",
                     "converter pJ/MAC", "vs original"});
    for (bool more_wr : {false, true}) {
        for (double orf : {3.0, 9.0, 15.0}) {
            for (double irf : {9.0, 27.0, 45.0}) {
                Point p{orf, irf, more_wr};
                PointResult r = runPoint(service, p);
                std::string variant =
                    more_wr ? "More Weight Reuse" : "Original";
                if (!more_wr && orf == 3.0 && irf == 9.0) {
                    original_total = r.pj_per_mac;
                    original_conv = r.converter_pj;
                    variant += " (Albireo paper)";
                }
                if (best_total == 0 || r.pj_per_mac < best_total) {
                    best_total = r.pj_per_mac;
                    best_conv = r.converter_pj;
                }
                std::vector<double> segs;
                for (const auto &cat : fig4Categories()) {
                    segs.push_back(r.segments.count(cat)
                                       ? r.segments.at(cat)
                                       : 0.0);
                }
                chart.addBar(strFormat("%s OR=%-2.0f IR=%-2.0f",
                                       more_wr ? "WR" : "--", orf,
                                       irf),
                             segs);
                table.addRow(
                    {variant, strFormat("%.0f", orf),
                     strFormat("%.0f", irf),
                     strFormat("%.4f", r.pj_per_mac),
                     strFormat("%.4f", r.converter_pj),
                     original_total > 0
                         ? strFormat("%.2fx",
                                     original_total / r.pj_per_mac)
                         : "-"});
            }
        }
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("%s\n", chart.render().c_str());
    std::printf(
        "data-converter energy reduction at best point: %.0f%% "
        "(paper: 42%%)\naccelerator energy reduction at best point: "
        "%.0f%% (paper: 31%%)\n\n",
        (1.0 - best_conv / original_conv) * 100.0,
        (1.0 - best_total / original_total) * 100.0);
}

void
BM_ReusePointResNet18(benchmark::State &state)
{
    // A fresh session per iteration keeps the old cold-run timing
    // semantics (arch build + searches, no warm-cache carryover).
    for (auto _ : state) {
        EvalService service;
        PointResult r = runPoint(service, {3.0, 9.0, false});
        benchmark::DoNotOptimize(r.pj_per_mac);
    }
}
BENCHMARK(BM_ReusePointResNet18)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
