/**
 * @file
 * Mapper-search scaling bench: throughput (evals/sec) of the parallel
 * cache-aware engine at 1/2/4/8 threads against a faithful replica of
 * the original serial seed path (single RNG stream, double
 * validation, full mapping copy per hill-climb probe, no
 * memoization).  Emits a BENCH_search.json summary line for CI
 * tracking and asserts the determinism contract across thread counts.
 *
 * Plain main() harness (not google-benchmark): each measurement is a
 * full end-to-end search pass, and we want one JSON line, not
 * statistics over micro-iterations.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "albireo/albireo_arch.hpp"
#include "common/error.hpp"
#include "bench_common.hpp"
#include "mapper/factorize.hpp"
#include "mapper/mapper.hpp"
#include "model/evaluator.hpp"
#include "workload/model_zoo.hpp"

namespace {

using namespace ploop;
using namespace ploop::bench;

double
now_s()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/**
 * The seed repository's search path, reproduced verbatim in spirit:
 * serial, evaluate() re-validates every pre-validated candidate,
 * every hill-climb probe copies the whole Mapping, nothing is
 * memoized.  This is the baseline the tentpole is measured against.
 */
MapperResult
legacySearch(const Evaluator &evaluator, const LayerShape &layer,
             const SearchOptions &options)
{
    Mapspace mapspace(evaluator.arch(), layer);
    SearchStats stats;

    std::optional<Candidate> best;
    double best_val = 0.0;
    auto consider = [&](const Mapping &mapping) {
        if (!evaluator.isValidMapping(layer, mapping))
            return;
        EvalResult result = evaluator.evaluate(layer, mapping);
        ++stats.evaluated;
        double val = objectiveValue(options.objective, result);
        if (!best || val < best_val) {
            best_val = val;
            best = Candidate(mapping, std::move(result));
        }
    };
    consider(mapspace.greedySeed());
    consider(mapspace.outerSeed());

    std::mt19937_64 rng(options.seed);
    for (unsigned i = 0; i < options.random_samples; ++i) {
        Mapping candidate = mapspace.randomSample(rng);
        if (!evaluator.isValidMapping(layer, candidate))
            continue;
        EvalResult result = evaluator.evaluate(layer, candidate);
        ++stats.evaluated;
        double val = objectiveValue(options.objective, result);
        if (!best || val < best_val) {
            best_val = val;
            best = Candidate(std::move(candidate), std::move(result));
        }
    }

    fatalIf(!best, "bench: no valid seed or random candidate");
    const std::size_t nlevels = best->first.numLevels();
    for (unsigned round = 0; round < options.hill_climb_rounds;
         ++round) {
        bool improved = false;
        for (Dim d : kAllDims) {
            for (std::size_t a = 0; a < nlevels; ++a) {
                for (std::size_t b = 0; b < nlevels; ++b) {
                    if (a == b)
                        continue;
                    for (std::uint64_t ratio : {2ull, 3ull, 5ull, 7ull}) {
                        Mapping cand = best->first; // full copy/probe
                        std::uint64_t from = cand.level(a).t(d);
                        std::uint64_t to = cand.level(b).t(d);
                        if (!moveFactor(from, to, ratio))
                            continue;
                        cand.level(a).setT(d, from);
                        cand.level(b).setT(d, to);
                        if (!evaluator.isValidMapping(layer, cand))
                            continue;
                        EvalResult result =
                            evaluator.evaluate(layer, cand);
                        ++stats.evaluated;
                        double val =
                            objectiveValue(options.objective, result);
                        if (val < best_val) {
                            best_val = val;
                            best = Candidate(std::move(cand),
                                             std::move(result));
                            improved = true;
                        }
                    }
                }
            }
        }
        if (!improved)
            break;
    }
    return MapperResult(std::move(best->first), std::move(best->second),
                        stats);
}

struct Sample
{
    double wall_s = 0;
    double evals_per_s = 0;
    double hit_rate = 0;
    double best_energy = 0;
};

} // namespace

int
main()
{
    EnergyRegistry registry = makeDefaultRegistry();
    ArchSpec arch = buildAlbireoArch(
        AlbireoConfig::paperDefault(ScalingProfile::Conservative));
    Evaluator evaluator(arch, registry);

    // A mapper-search workload shaped like real use: one search per
    // distinct layer shape, as runNetwork and every sweep point
    // execute.  Hill-climb refinement dominates, as it does
    // end-to-end.
    Network net = makeResNet18();
    std::vector<LayerShape> layers = {bestCaseLayer(),
                                      net.layerByName("conv1"),
                                      net.layerByName("layer2.0.conv1"),
                                      net.layerByName("layer3.0.conv1"),
                                      net.layerByName("layer4.1.conv2")};

    SearchOptions options;
    options.random_samples = 64;
    options.hill_climb_rounds = 64;
    options.seed = 42;

    const unsigned reps = 3;
    std::printf("workload: %zu layers on %s (samples=%u rounds=%u)\n",
                layers.size(), arch.name().c_str(),
                options.random_samples, options.hill_climb_rounds);

    // Best-of-reps aggregate of a full pass over the layers.
    auto runAll =
        [&](const std::function<MapperResult(const LayerShape &)>
                &search) {
            Sample total;
            for (unsigned r = 0; r < reps; ++r) {
                double wall = 0, energy = 0;
                std::uint64_t evals = 0, hits = 0, misses = 0;
                for (const LayerShape &layer : layers) {
                    double t0 = now_s();
                    MapperResult result = search(layer);
                    wall += now_s() - t0;
                    evals += result.stats.evaluated;
                    hits += result.stats.cache_hits;
                    misses += result.stats.cache_misses;
                    energy += result.result.totalEnergy();
                }
                if (r == 0 || wall < total.wall_s) {
                    total.wall_s = wall;
                    // Model evaluations actually computed: cache
                    // hits are excluded so the legacy path (no
                    // cache, hits == 0) and the engine report the
                    // same quantity.
                    total.evals_per_s = (evals - hits) / wall;
                    total.hit_rate =
                        hits + misses > 0 ? static_cast<double>(hits) /
                                                (hits + misses)
                                          : 0.0;
                    total.best_energy = energy;
                }
            }
            return total;
        };

    Sample legacy = runAll([&](const LayerShape &layer) {
        return legacySearch(evaluator, layer, options);
    });
    std::printf("legacy serial seed path: %8.1f ms  %9.0f evals/s\n",
                legacy.wall_s * 1e3, legacy.evals_per_s);

    const std::vector<unsigned> thread_counts = {1, 2, 4, 8};
    std::vector<Sample> samples;
    std::string threads_json;
    double speedup_4t = 0, hit_rate_4t = 0;
    for (unsigned t : thread_counts) {
        SearchOptions opts = options;
        opts.threads = t;
        Mapper mapper(evaluator, opts);
        Sample s = runAll(
            [&](const LayerShape &layer) { return mapper.search(layer); });
        samples.push_back(s);
        double speedup = legacy.wall_s / s.wall_s;
        if (t == 4) {
            speedup_4t = speedup;
            hit_rate_4t = s.hit_rate;
        }
        std::printf("engine %u thread%s:       %8.1f ms  %9.0f "
                    "evals/s  %5.2fx vs legacy  hit_rate=%.1f%%\n",
                    t, t == 1 ? " " : "s", s.wall_s * 1e3,
                    s.evals_per_s, speedup, s.hit_rate * 100.0);
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "%s{\"threads\":%u,\"wall_s\":%.6f,"
                      "\"evals_per_s\":%.0f,\"speedup_vs_legacy\":%.3f,"
                      "\"cache_hit_rate\":%.4f}",
                      threads_json.empty() ? "" : ",", t, s.wall_s,
                      s.evals_per_s, speedup, s.hit_rate);
        threads_json += buf;
    }

    // Determinism contract: every thread count found the same bests.
    for (const Sample &s : samples) {
        if (s.best_energy != samples.front().best_energy) {
            std::fprintf(stderr,
                         "FAIL: best energy differs across thread "
                         "counts (%.17g vs %.17g)\n",
                         s.best_energy, samples.front().best_energy);
            return 1;
        }
    }

    std::printf("BENCH_search.json: {\"bench\":\"search_scaling\","
                "\"workload\":\"resnet18-5layers\","
                "\"legacy_wall_s\":%.6f,"
                "\"legacy_evals_per_s\":%.0f,\"points\":[%s],"
                "\"speedup_4t_vs_legacy\":%.3f,"
                "\"cache_hit_rate_4t\":%.4f,\"deterministic\":true}\n",
                legacy.wall_s, legacy.evals_per_s,
                threads_json.c_str(), speedup_4t, hit_rate_4t);
    return 0;
}
