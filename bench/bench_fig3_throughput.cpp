/**
 * @file
 * Reproduces paper Fig. 3: modeled vs. reported vs. ideal throughput
 * (MACs/cycle) for VGG16 and AlexNet on Albireo.
 *
 * The paper's point: the Albireo publication claims near-ideal
 * throughput, but a model that captures underutilization (imperfect
 * factorization, idle units on fully-connected layers, broken optical
 * window reuse on strided convolutions) shows AlexNet falling far
 * below ideal.  The per-layer table makes the sources visible.
 */

#include <cstdio>

#include <benchmark/benchmark.h>

#include "albireo/albireo_arch.hpp"
#include "bench_common.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "service/eval_service.hpp"
#include "workload/model_zoo.hpp"

namespace {

using namespace ploop;
using namespace ploop::bench;

SearchOptions
throughputSearch()
{
    SearchOptions opts;
    opts.objective = Objective::Delay;
    opts.random_samples = 60;
    opts.hill_climb_rounds = 16;
    return opts;
}

void
report()
{
    // One declarative-API session for both networks: the arch is
    // built once and the per-candidate cache spans the runs.
    EvalService service;
    AlbireoConfig cfg =
        AlbireoConfig::paperDefault(ScalingProfile::Conservative);
    const ArchSpec &arch = service.evaluatorFor(cfg).arch();

    std::printf("=== Fig. 3: Throughput for two DNN workloads ===\n");
    std::printf("architecture peak: %.0f MACs/cycle\n\n",
                arch.peakMacsPerCycle());

    BarChart chart("Throughput (MACs/cycle)", "MACs/cycle");
    chart.setSegments({"throughput"});

    for (const Fig3Reported &rep : fig3ReportedData()) {
        Network net = makeNetwork(rep.network); // layer-shape lookup
        NetworkRequest req;
        req.arch = cfg;
        req.network = rep.network;
        req.options = throughputSearch();
        NetworkRunResult run = service.network(req).result;

        chart.addBar(rep.network + " Ideal",
                     {rep.ideal_macs_per_cycle});
        chart.addBar(rep.network + " Reported",
                     {rep.reported_macs_per_cycle});
        chart.addBar(rep.network + " Modeled", {run.macsPerCycle()});

        std::printf("--- %s: modeled %.0f MACs/cycle (%.1f%% of "
                    "ideal) ---\n",
                    rep.network.c_str(), run.macsPerCycle(),
                    run.macsPerCycle() / rep.ideal_macs_per_cycle *
                        100.0);
        Table table("");
        table.setHeader({"layer", "kind", "MACs", "MACs/cycle",
                         "util %", "stride penalty"});
        for (const LayerRunResult &lr : run.layers) {
            const LayerShape &layer =
                net.layerByName(lr.layer_name);
            table.addRow(
                {lr.layer_name, layerKindName(layer.kind()),
                 formatCount(lr.result.counts.macs),
                 strFormat("%.0f",
                           lr.result.throughput.macs_per_cycle),
                 strFormat("%.1f",
                           lr.result.throughput.utilization * 100.0),
                 strFormat("%.0fx",
                           lr.result.throughput.stride_penalty)});
        }
        std::printf("%s\n", table.render().c_str());
    }
    std::printf("%s\n", chart.render().c_str());
}

void
BM_MapVgg16Layer(benchmark::State &state)
{
    EnergyRegistry registry = makeDefaultRegistry();
    AlbireoConfig cfg =
        AlbireoConfig::paperDefault(ScalingProfile::Conservative);
    ArchSpec arch = buildAlbireoArch(cfg);
    Evaluator evaluator(arch, registry);
    Network net = makeVgg16();
    const LayerShape &layer = net.layerByName("conv3_2");
    Mapper mapper(evaluator, throughputSearch());
    for (auto _ : state) {
        MapperResult r = mapper.search(layer);
        benchmark::DoNotOptimize(r.result.counts.macs);
    }
}
BENCHMARK(BM_MapVgg16Layer);

} // namespace

int
main(int argc, char **argv)
{
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
