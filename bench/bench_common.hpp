/**
 * @file
 * Shared helpers for the figure-reproduction benches: the best-case
 * layer, category aggregation, and error formatting.
 */

#ifndef PHOTONLOOP_BENCH_BENCH_COMMON_HPP
#define PHOTONLOOP_BENCH_BENCH_COMMON_HPP

#include <cmath>
#include <map>
#include <string>

#include "albireo/reported_data.hpp"
#include "model/evaluator.hpp"
#include "workload/layer.hpp"

namespace ploop::bench {

/**
 * The "best-case" layer: a 3x3 unstrided convolution whose bounds
 * exactly fill the default Albireo spatial organization (100%
 * utilization), the setting of the paper's Fig. 2.
 */
inline LayerShape
bestCaseLayer()
{
    return LayerShape::conv("bestcase", 1, 48, 64, 56, 56, 3, 3);
}

/** Aggregate a result's energy by Fig.-2 category, in pJ/MAC. */
inline std::map<std::string, double>
fig2PjPerMac(const EvalResult &result)
{
    std::map<std::string, double> out;
    for (const EnergyEntry &e : result.energy.entries) {
        out[fig2Category(e)] +=
            e.energy_j / result.counts.macs * 1e12;
    }
    return out;
}

/** Aggregate a result's energy by Fig.-4 category, in joules. */
inline std::map<std::string, double>
fig4Joules(const EvalResult &result)
{
    std::map<std::string, double> out;
    for (const EnergyEntry &e : result.energy.entries)
        out[fig4Category(e)] += e.energy_j;
    return out;
}

/** Relative error |a-b| / b as a percentage. */
inline double
pctError(double modeled, double reported)
{
    if (reported == 0.0)
        return modeled == 0.0 ? 0.0 : 100.0;
    return std::fabs(modeled - reported) / reported * 100.0;
}

} // namespace ploop::bench

#endif // PHOTONLOOP_BENCH_BENCH_COMMON_HPP
