/**
 * @file
 * Photonic vs. electronic comparison: the Albireo model against an
 * all-electrical systolic array of equal peak MACs/cycle, across the
 * model zoo -- the "compare systems in a full-system context"
 * use-case from the paper's introduction, with the domain-crossing
 * trade-off made visible: photonics wins on cheap MACs and optical
 * distribution, pays on converters; electronics has no converters
 * but every MAC costs digital energy and the clock is slower.
 */

#include <cstdio>

#include <benchmark/benchmark.h>

#include "albireo/albireo_arch.hpp"
#include "baseline/electronic_baseline.hpp"
#include "bench_common.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "core/network_runner.hpp"
#include "workload/model_zoo.hpp"

namespace {

using namespace ploop;
using namespace ploop::bench;

SearchOptions
search()
{
    SearchOptions opts;
    opts.objective = Objective::Energy;
    opts.random_samples = 25;
    opts.hill_climb_rounds = 6;
    return opts;
}

void
report()
{
    EnergyRegistry registry = makeDefaultRegistry();

    // Equal peak: 6912 MACs/cycle each (electronic: 96 x 36 x 2).
    ElectronicBaselineConfig ecfg;
    ecfg.with_dram = true;
    ArchSpec electronic = buildElectronicBaseline(ecfg);

    std::printf("=== Photonic (Albireo) vs electronic systolic "
                "baseline ===\n");
    std::printf("equal peak: %.0f vs %.0f MACs/cycle; clocks: 5 GHz "
                "vs 1 GHz\n\n",
                6912.0, double(ecfg.peakMacs()));

    for (ScalingProfile scaling : {ScalingProfile::Conservative,
                                   ScalingProfile::Aggressive}) {
        ArchSpec photonic = buildAlbireoArch(
            AlbireoConfig::paperDefault(scaling, true));
        Evaluator pe(photonic, registry);
        Evaluator ee(electronic, registry);

        Table table(strFormat("Full-system comparison (%s photonic "
                              "scaling)",
                              scalingProfileName(scaling)));
        table.setHeader({"network", "system", "pJ/MAC", "TMAC/s",
                         "energy/inf", "runtime/inf"});
        for (const auto &name : modelZooNames()) {
            Network net = makeNetwork(name);
            struct Sys
            {
                const char *label;
                Evaluator *evaluator;
                double clock;
            };
            for (const Sys &sys :
                 {Sys{"photonic", &pe, 5e9},
                  Sys{"electronic", &ee, 1e9}}) {
                NetworkRunResult run =
                    runNetwork(*sys.evaluator, net, search());
                double runtime = run.total_cycles / sys.clock;
                table.addRow(
                    {net.name(), sys.label,
                     strFormat("%.3f", run.energyPerMac() * 1e12),
                     strFormat("%.2f", run.total_macs / runtime /
                                           1e12),
                     formatEnergy(run.total_energy_j),
                     strFormat("%.3g ms", runtime * 1e3)});
            }
            table.addSeparator();
        }
        std::printf("%s\n", table.render().c_str());
    }
    std::printf(
        "Reading: conservatively-scaled photonics loses to digital\n"
        "on energy (converters dominate) but wins on speed (5 GHz\n"
        "optics, wide broadcast); aggressively-scaled photonics wins\n"
        "both on compute-heavy unstrided CNNs and still loses\n"
        "efficiency on AlexNet (stride + FC underutilization burns\n"
        "static laser power).\n\n");
}

void
BM_ElectronicBaselineLayer(benchmark::State &state)
{
    EnergyRegistry registry = makeDefaultRegistry();
    ElectronicBaselineConfig ecfg;
    ArchSpec arch = buildElectronicBaseline(ecfg);
    Evaluator evaluator(arch, registry);
    LayerShape layer = bestCaseLayer();
    Mapping mapping = Mapspace(arch, layer).greedySeed();
    for (auto _ : state) {
        EvalResult r = evaluator.evaluate(layer, mapping);
        benchmark::DoNotOptimize(r.counts.macs);
    }
}
BENCHMARK(BM_ElectronicBaselineLayer);

} // namespace

int
main(int argc, char **argv)
{
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
