/**
 * @file
 * Serving-layer concurrency bench: aggregate WARM-cache throughput
 * of a NetServer as the client count grows.  Every request repeats
 * an already-cached search (a ResultCache hit -- decode, fingerprint,
 * lookup, serialize), so the measured quantity is the serving layer
 * itself: framing, scheduling, pooled execution and delivery, not
 * mapper math.
 *
 * One lockstep client's throughput is bounded by its own round-trip
 * latency; N concurrent clients overlap those round trips, so
 * aggregate throughput must SCALE with the client count while the
 * per-request work parallelizes across the pool.  Emits a
 * BENCH_serve.json line with the 1-client and 4-client aggregate
 * rates, the warm request-latency p50/p99 pulled from the session's
 * own ploop_request_latency_seconds histogram, and the observability
 * overhead ratio (instrumented vs --no-observe throughput).
 *
 * A cluster leg repeats the 4-client measurement through a
 * ClusterRouter in front of TWO worker servers (cluster_vs_single in
 * the JSON line): sharding warm traffic across workers must scale
 * when cores allow and must not collapse when they do not.
 *
 * Gates: 4-client warm aggregate throughput >= 2x the 1-client figure
 * -- enforced when the hardware can possibly deliver it (>= 2
 * cores); on a single core concurrency cannot beat one saturated
 * CPU, so the gate degrades to a no-collapse check (>= 0.6x).
 * cluster_vs_single >= 1.5x at >= 4 cores, >= 0.7x (no collapse
 * through the extra hop) below.  The instrumented server must also
 * stay within 3% of an uninstrumented one (overhead ratio >= 0.97):
 * metrics and latency recording ride the hot path, so their cost is
 * measured, not assumed.  --no-perf-gate reports without failing
 * either way (CI's shared runners).  Plain main() harness, like
 * bench_search_scaling.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "cluster/router.hpp"
#include "common/thread_pool.hpp"
#include "net/line_client.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "report/export.hpp"
#include "service/serve_session.hpp"

namespace {

using namespace ploop;

double
now_s()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::string
warmRequest(int seed)
{
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "{\"op\":\"search\",\"id\":%d,"
        "\"layer\":{\"name\":\"c\",\"k\":32,\"c\":32,\"p\":14,"
        "\"q\":14,\"r\":3,\"s\":3},"
        "\"options\":{\"random_samples\":40,"
        "\"hill_climb_rounds\":4,\"seed\":%d}}",
        seed, seed);
    return buf;
}

/** Aggregate req/s of @p n_clients lockstep clients x @p per_client
 *  warm requests each. */
double
measure(std::uint16_t port, int n_clients, int per_client,
        const std::vector<std::string> &requests, bool &ok)
{
    std::vector<std::thread> threads;
    // vector<char>, not vector<bool>: each thread writes its own
    // element, and vector<bool>'s packed bits would make that a
    // data race.
    std::vector<char> fine(std::size_t(n_clients), 0);
    double t0 = now_s();
    for (int c = 0; c < n_clients; ++c) {
        threads.emplace_back([&, c] {
            LineClient client(port);
            if (!client.connected())
                return;
            for (int i = 0; i < per_client; ++i) {
                const std::string &req =
                    requests[std::size_t(i) % requests.size()];
                std::string resp = client.roundTrip(req);
                if (resp.empty())
                    return;
                if (resp.find("\"from_result_cache\":true") ==
                    std::string::npos)
                    return; // not warm: the measurement is invalid
            }
            fine[std::size_t(c)] = 1;
        });
    }
    for (std::thread &t : threads)
        t.join();
    double elapsed = now_s() - t0;
    ok = true;
    for (char f : fine)
        ok = ok && f != 0;
    return double(n_clients) * double(per_client) / elapsed;
}

constexpr int kPerClient = 800;

struct RunResult
{
    double rate1 = 0.0;
    double rate4 = 0.0;
    bool ok = false;
    /** The session's warm search-latency tallies (empty when the
     *  run was uninstrumented). */
    Histogram::Snapshot latency;
};

/**
 * One full server lifecycle: spin up a session (instrumented or
 * not), pre-warm the caches, measure 1- and 4-client aggregate
 * rates, snapshot the request-latency histogram, drain and shut
 * down.  Identical procedure for both runs so the overhead ratio
 * compares like with like.
 */
RunResult
runOnce(bool observe, ThreadPool &pool)
{
    RunResult r;

    ServeConfig cfg;
    cfg.transport = "tcp";
    cfg.observe = observe;
    ServeSession session(cfg);
    NetConfig net;
    net.pool = &pool;
    NetServer server(session, net);
    std::string error;
    if (!server.open(&error)) {
        std::fprintf(stderr, "bench_serve_concurrency: %s\n",
                     error.c_str());
        return r;
    }
    std::thread serving([&] { server.run(); });

    // Distinct warm requests so concurrent clients do not serialize
    // on one ResultCache entry's copy; all pre-warmed here.
    std::vector<std::string> requests;
    for (int seed = 1; seed <= 8; ++seed)
        requests.push_back(warmRequest(seed));
    {
        LineClient warmer(server.port());
        if (!warmer.connected()) {
            std::fprintf(stderr, "cannot connect to own server\n");
            serving.detach();
            return r;
        }
        for (const std::string &req : requests) {
            std::string resp = warmer.roundTrip(req);
            if (resp.find("\"ok\":true") == std::string::npos) {
                std::fprintf(stderr, "warmup failed: %s\n",
                             resp.c_str());
                serving.detach();
                return r;
            }
        }
    }

    bool ok1 = false, ok4 = true;
    // Interleave a warmup measurement pass to stabilize timing.
    measure(server.port(), 1, kPerClient / 4, requests, ok1);
    r.rate1 = measure(server.port(), 1, kPerClient, requests, ok1);
    // Best of three 4-client passes: single passes on a shared
    // runner swing +-10% with scheduler luck, and the gates are
    // meant to compare the server's capability, not one draw.
    for (int pass = 0; pass < 3; ++pass) {
        bool okp = false;
        double rate =
            measure(server.port(), 4, kPerClient, requests, okp);
        ok4 = ok4 && okp;
        if (rate > r.rate4)
            r.rate4 = rate;
    }

    // Quantiles of the warm serving path, measured by the server
    // itself.  The 8 cold warmup searches are in the tallies too,
    // but at < 0.2% of the ~5000 recorded requests they sit above
    // the p99 rank and cannot perturb either quantile.
    if (session.metrics() != nullptr)
        r.latency = session.metrics()->histogramSnapshot(
            "ploop_request_latency_seconds", {{"op", "search"}});

    {
        LineClient killer(server.port());
        if (killer.connected())
            killer.roundTrip("{\"op\":\"shutdown\"}");
    }
    serving.join();

    r.ok = ok1 && ok4;
    if (!r.ok)
        std::fprintf(stderr,
                     "bench_serve_concurrency: a client saw a "
                     "non-warm or failed response\n");
    return r;
}

/**
 * The cluster leg: the same 4-client warm measurement, but through a
 * ClusterRouter in front of TWO worker servers (each its own warm
 * session) sharing @p pool.  With enough cores the two workers serve
 * cache hits in parallel and the aggregate must beat one server;
 * the router hop is pure overhead on a single core, where the run
 * only has to prove the extra hop does not collapse throughput.
 */
double
runCluster(ThreadPool &pool, bool &ok)
{
    ok = false;

    ServeConfig cfg;
    cfg.transport = "tcp";
    ServeSession s1(cfg), s2(cfg);
    NetConfig net;
    net.pool = &pool;
    NetServer w1(s1, net), w2(s2, net);
    std::string error;
    if (!w1.open(&error) || !w2.open(&error)) {
        std::fprintf(stderr, "bench_serve_concurrency: %s\n",
                     error.c_str());
        return 0.0;
    }
    std::thread t1([&] { w1.run(); });
    std::thread t2([&] { w2.run(); });

    RouterConfig rcfg;
    rcfg.worker_ports = {w1.port(), w2.port()};
    // No probe traffic during the measurement window.
    rcfg.health.probe_interval_ms = 60 * 1000;
    ClusterRouter router(rcfg);
    double rate = 0.0;
    if (!router.open(&error)) {
        std::fprintf(stderr, "bench_serve_concurrency: %s\n",
                     error.c_str());
    } else {
        std::thread routing([&] { router.run(); });

        std::vector<std::string> requests;
        for (int seed = 1; seed <= 8; ++seed)
            requests.push_back(warmRequest(seed));
        bool warm_ok = true;
        {
            LineClient warmer(router.port());
            warm_ok = warmer.connected();
            for (const std::string &req : requests) {
                if (!warm_ok)
                    break;
                std::string resp = warmer.roundTrip(req);
                warm_ok = resp.find("\"ok\":true") !=
                          std::string::npos;
            }
        }
        if (warm_ok) {
            bool okw = false;
            measure(router.port(), 4, kPerClient / 4, requests,
                    okw); // timing warmup pass
            // Best of three, exactly like the single-server leg:
            // the ratio gate must compare capabilities, not two
            // different draws of scheduler luck.
            ok = okw;
            for (int pass = 0; pass < 3; ++pass) {
                bool okp = false;
                double r = measure(router.port(), 4, kPerClient,
                                   requests, okp);
                ok = ok && okp;
                if (r > rate)
                    rate = r;
            }
        }
        {
            LineClient killer(router.port());
            if (killer.connected())
                killer.roundTrip("{\"op\":\"shutdown\"}");
            else
                router.requestStop();
        }
        routing.join();
    }

    for (NetServer *w : {&w1, &w2}) {
        LineClient killer(w->port());
        if (killer.connected())
            killer.roundTrip("{\"op\":\"shutdown\"}");
    }
    t1.join();
    t2.join();
    if (!ok)
        std::fprintf(stderr,
                     "bench_serve_concurrency: cluster leg saw a "
                     "non-warm or failed response\n");
    return rate;
}

} // namespace

int
main(int argc, char **argv)
{
    bool perf_gate = true;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--no-perf-gate")
            perf_gate = false;

    // A 4-lane pool regardless of PLOOP_THREADS: the bench measures
    // the serving layer's concurrency, so it provisions its own
    // parallelism explicitly.
    ThreadPool &pool = ThreadPool::forThreads(4);

    // The instrumented run is the primary measurement; the
    // --no-observe run only anchors the overhead ratio.
    RunResult observed = runOnce(/*observe=*/true, pool);
    RunResult baseline = runOnce(/*observe=*/false, pool);
    bool cluster_ok = false;
    double cluster_rate = runCluster(pool, cluster_ok);
    if (!observed.ok || !baseline.ok || !cluster_ok)
        return 1;

    double speedup = observed.rate4 / observed.rate1;
    double overhead_ratio = observed.rate4 / baseline.rate4;
    double p50_ms =
        double(observed.latency.quantileNs(0.50)) / 1e6;
    double p99_ms =
        double(observed.latency.quantileNs(0.99)) / 1e6;
    unsigned cores = std::thread::hardware_concurrency();
    std::printf("%-24s %10.0f req/s\n", "1 client (warm)",
                observed.rate1);
    std::printf("%-24s %10.0f req/s  %.2fx aggregate\n",
                "4 clients (warm)", observed.rate4, speedup);
    std::printf("%-24s %10.3f ms p50, %.3f ms p99\n",
                "warm search latency", p50_ms, p99_ms);
    std::printf("%-24s %10.0f req/s  %.3f overhead ratio\n",
                "4 clients (no observe)", baseline.rate4,
                overhead_ratio);
    double cluster_vs_single = cluster_rate / observed.rate4;
    std::printf("%-24s %10.0f req/s  %.2fx vs single\n",
                "4 clients (2-worker cluster)", cluster_rate,
                cluster_vs_single);

    std::printf("BENCH_serve.json: {\"bench\":\"serve_concurrency\","
                "\"requests_per_client\":%d,"
                "\"warm_rate_1_client\":%s,"
                "\"warm_rate_4_clients\":%s,"
                "\"aggregate_speedup\":%s,"
                "\"warm_p50_ms\":%s,\"warm_p99_ms\":%s,"
                "\"observe_overhead_ratio\":%s,"
                "\"cluster_workers\":2,"
                "\"cluster_rate_4_clients\":%s,"
                "\"cluster_vs_single\":%s,\"cores\":%u}\n",
                kPerClient, jsonNumber(observed.rate1).c_str(),
                jsonNumber(observed.rate4).c_str(),
                jsonNumber(speedup).c_str(),
                jsonNumber(p50_ms).c_str(),
                jsonNumber(p99_ms).c_str(),
                jsonNumber(overhead_ratio).c_str(),
                jsonNumber(cluster_rate).c_str(),
                jsonNumber(cluster_vs_single).c_str(), cores);

    int rc = 0;

    // See file comment: 2x needs >= 2 cores; a single core can only
    // be asked not to collapse under concurrency.
    double required = cores >= 2 ? 2.0 : 0.6;
    if (speedup < required) {
        std::fprintf(stderr,
                     "bench_serve_concurrency: aggregate speedup "
                     "%.2fx below the %.1fx gate (%u cores)%s\n",
                     speedup, required, cores,
                     perf_gate ? "" : " [gate disabled]");
        if (perf_gate)
            rc = 1;
    }

    // Two workers must beat one when the hardware can run them in
    // parallel (>= 4 cores: 2 workers x their pools + router +
    // clients); below that the router hop is pure overhead and the
    // gate only forbids a collapse.
    double cluster_required = cores >= 4 ? 1.5 : 0.7;
    if (cluster_vs_single < cluster_required) {
        std::fprintf(stderr,
                     "bench_serve_concurrency: cluster_vs_single "
                     "%.2fx below the %.1fx gate (%u cores)%s\n",
                     cluster_vs_single, cluster_required, cores,
                     perf_gate ? "" : " [gate disabled]");
        if (perf_gate)
            rc = 1;
    }

    // Instrumentation that is registered but unqueried must cost
    // < 3% of warm throughput.
    if (overhead_ratio < 0.97) {
        std::fprintf(stderr,
                     "bench_serve_concurrency: observability "
                     "overhead ratio %.3f below the 0.97 gate%s\n",
                     overhead_ratio,
                     perf_gate ? "" : " [gate disabled]");
        if (perf_gate)
            rc = 1;
    }
    return rc;
}
