/**
 * @file
 * Serving-layer concurrency bench: aggregate WARM-cache throughput
 * of a NetServer as the client count grows.  Every request repeats
 * an already-cached search (a ResultCache hit -- decode, fingerprint,
 * lookup, serialize), so the measured quantity is the serving layer
 * itself: framing, scheduling, pooled execution and delivery, not
 * mapper math.
 *
 * One lockstep client's throughput is bounded by its own round-trip
 * latency; N concurrent clients overlap those round trips, so
 * aggregate throughput must SCALE with the client count while the
 * per-request work parallelizes across the pool.  Emits a
 * BENCH_serve.json line with the 1-client and 4-client aggregate
 * rates.
 *
 * Gate: 4-client warm aggregate throughput >= 2x the 1-client figure
 * -- enforced when the hardware can possibly deliver it (>= 2
 * cores); on a single core concurrency cannot beat one saturated
 * CPU, so the gate degrades to a no-collapse check (>= 0.6x), and
 * --no-perf-gate reports without failing either way (CI's shared
 * runners).  Plain main() harness, like bench_search_scaling.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "net/line_client.hpp"
#include "net/server.hpp"
#include "report/export.hpp"
#include "service/serve_session.hpp"

namespace {

using namespace ploop;

double
now_s()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::string
warmRequest(int seed)
{
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "{\"op\":\"search\",\"id\":%d,"
        "\"layer\":{\"name\":\"c\",\"k\":32,\"c\":32,\"p\":14,"
        "\"q\":14,\"r\":3,\"s\":3},"
        "\"options\":{\"random_samples\":40,"
        "\"hill_climb_rounds\":4,\"seed\":%d}}",
        seed, seed);
    return buf;
}

/** Aggregate req/s of @p n_clients lockstep clients x @p per_client
 *  warm requests each. */
double
measure(std::uint16_t port, int n_clients, int per_client,
        const std::vector<std::string> &requests, bool &ok)
{
    std::vector<std::thread> threads;
    // vector<char>, not vector<bool>: each thread writes its own
    // element, and vector<bool>'s packed bits would make that a
    // data race.
    std::vector<char> fine(std::size_t(n_clients), 0);
    double t0 = now_s();
    for (int c = 0; c < n_clients; ++c) {
        threads.emplace_back([&, c] {
            LineClient client(port);
            if (!client.connected())
                return;
            for (int i = 0; i < per_client; ++i) {
                const std::string &req =
                    requests[std::size_t(i) % requests.size()];
                std::string resp = client.roundTrip(req);
                if (resp.empty())
                    return;
                if (resp.find("\"from_result_cache\":true") ==
                    std::string::npos)
                    return; // not warm: the measurement is invalid
            }
            fine[std::size_t(c)] = 1;
        });
    }
    for (std::thread &t : threads)
        t.join();
    double elapsed = now_s() - t0;
    ok = true;
    for (char f : fine)
        ok = ok && f != 0;
    return double(n_clients) * double(per_client) / elapsed;
}

} // namespace

int
main(int argc, char **argv)
{
    bool perf_gate = true;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--no-perf-gate")
            perf_gate = false;

    // A 4-lane pool regardless of PLOOP_THREADS: the bench measures
    // the serving layer's concurrency, so it provisions its own
    // parallelism explicitly.
    ThreadPool &pool = ThreadPool::forThreads(4);

    ServeConfig cfg;
    cfg.transport = "tcp";
    ServeSession session(cfg);
    NetConfig net;
    net.pool = &pool;
    NetServer server(session, net);
    std::string error;
    if (!server.open(&error)) {
        std::fprintf(stderr, "bench_serve_concurrency: %s\n",
                     error.c_str());
        return 1;
    }
    std::thread serving([&] { server.run(); });

    // Distinct warm requests so concurrent clients do not serialize
    // on one ResultCache entry's copy; all pre-warmed here.
    std::vector<std::string> requests;
    for (int seed = 1; seed <= 8; ++seed)
        requests.push_back(warmRequest(seed));
    {
        LineClient warmer(server.port());
        if (!warmer.connected()) {
            std::fprintf(stderr, "cannot connect to own server\n");
            return 1;
        }
        for (const std::string &req : requests) {
            std::string resp = warmer.roundTrip(req);
            if (resp.find("\"ok\":true") == std::string::npos) {
                std::fprintf(stderr, "warmup failed: %s\n",
                             resp.c_str());
                return 1;
            }
        }
    }

    constexpr int kPerClient = 800;
    bool ok1 = false, ok4 = false;
    // Interleave a warmup measurement pass to stabilize timing.
    measure(server.port(), 1, kPerClient / 4, requests, ok1);
    double rate1 =
        measure(server.port(), 1, kPerClient, requests, ok1);
    double rate4 =
        measure(server.port(), 4, kPerClient, requests, ok4);

    {
        LineClient killer(server.port());
        if (killer.connected())
            killer.roundTrip("{\"op\":\"shutdown\"}");
    }
    serving.join();

    if (!ok1 || !ok4) {
        std::fprintf(stderr,
                     "bench_serve_concurrency: a client saw a "
                     "non-warm or failed response\n");
        return 1;
    }

    double speedup = rate4 / rate1;
    unsigned cores = std::thread::hardware_concurrency();
    std::printf("%-24s %10.0f req/s\n", "1 client (warm)", rate1);
    std::printf("%-24s %10.0f req/s  %.2fx aggregate\n",
                "4 clients (warm)", rate4, speedup);

    std::printf("BENCH_serve.json: {\"bench\":\"serve_concurrency\","
                "\"requests_per_client\":%d,"
                "\"warm_rate_1_client\":%s,"
                "\"warm_rate_4_clients\":%s,"
                "\"aggregate_speedup\":%s,\"cores\":%u}\n",
                kPerClient, jsonNumber(rate1).c_str(),
                jsonNumber(rate4).c_str(),
                jsonNumber(speedup).c_str(), cores);

    // See file comment: 2x needs >= 2 cores; a single core can only
    // be asked not to collapse under concurrency.
    double required = cores >= 2 ? 2.0 : 0.6;
    if (speedup < required) {
        std::fprintf(stderr,
                     "bench_serve_concurrency: aggregate speedup "
                     "%.2fx below the %.1fx gate (%u cores)%s\n",
                     speedup, required, cores,
                     perf_gate ? "" : " [gate disabled]");
        if (perf_gate)
            return 1;
    }
    return 0;
}
