/**
 * @file
 * Reproduces paper Fig. 4: full-system (Albireo + DRAM) ResNet18
 * energy under conservative and aggressive scaling, with and without
 * input/output batching and layer fusion.
 *
 * Expected shape (paper §III.3): DRAM is a small share of the
 * conservative system but dominates (~75%) the aggressive system;
 * batching + fusion together reduce aggressive system energy by ~3x
 * (67%).
 */

#include <cstdio>

#include <benchmark/benchmark.h>

#include "albireo/full_system.hpp"
#include "bench_common.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "workload/model_zoo.hpp"

namespace {

using namespace ploop;
using namespace ploop::bench;

SearchOptions
fig4Search()
{
    SearchOptions opts;
    opts.objective = Objective::Energy;
    opts.random_samples = 30;
    opts.hill_climb_rounds = 8;
    return opts;
}

struct Config
{
    const char *label;
    std::uint64_t batch;
    bool fused;
};

void
report()
{
    EnergyRegistry registry = makeDefaultRegistry();
    Network net = makeResNet18();

    std::printf("=== Fig. 4: Memory exploration "
                "(full system: accelerator + DRAM) ===\n");
    std::printf("workload: ResNet18 (%s MACs/inference)\n\n",
                formatCount(double(net.totalMacs())).c_str());

    static const Config configs[] = {
        {"Not Fused / Non-Batched", 1, false},
        {"Not Fused / Batched", 8, false},
        {"Fused / Non-Batched", 1, true},
        {"Fused / Batched", 8, true},
    };

    for (ScalingProfile scaling : {ScalingProfile::Conservative,
                                   ScalingProfile::Aggressive}) {
        std::printf("--- %s scaling ---\n",
                    scalingProfileName(scaling));

        BarChart chart(
            strFormat("ResNet18 energy, normalized to the"
                      " non-batched/not-fused %s system",
                      scalingProfileName(scaling)),
            "x baseline");
        chart.setSegments(fig4Categories());

        double baseline = 0.0;
        double best = 0.0;
        double dram_share_baseline = 0.0;
        Table table("Per-configuration energy (per inference)");
        table.setHeader({"configuration", "GB words", "energy",
                         "pJ/MAC", "DRAM %", "vs baseline"});
        for (const Config &c : configs) {
            FullSystemOptions opts;
            opts.config = AlbireoConfig::paperDefault(scaling, true);
            opts.batch = c.batch;
            opts.fused = c.fused;
            opts.search = fig4Search();
            FullSystemResult result =
                runAlbireoFullSystem(net, opts, registry);

            double per_inf = result.per_inference_j;
            if (baseline == 0.0) {
                baseline = per_inf;
                dram_share_baseline =
                    result.categories["DRAM"] / result.total_j;
            }
            best = per_inf;

            std::vector<double> segs;
            for (const auto &cat : fig4Categories()) {
                double j = result.categories.count(cat)
                               ? result.categories.at(cat)
                               : 0.0;
                segs.push_back(j / static_cast<double>(c.batch) /
                               baseline);
            }
            chart.addBar(c.label, segs);
            table.addRow(
                {c.label,
                 formatCount(double(result.gb_capacity_words)),
                 formatEnergy(per_inf),
                 strFormat("%.3f", result.energyPerMac() * 1e12),
                 strFormat("%.1f", result.categories["DRAM"] /
                                       result.total_j * 100.0),
                 strFormat("%.2fx", baseline / per_inf)});
        }
        std::printf("%s\n", table.render().c_str());
        std::printf("%s", chart.render().c_str());
        std::printf(
            "\nDRAM share of baseline system energy: %.0f%%\n"
            "batching+fusion energy reduction: %.0f%% (%.2fx, "
            "paper: 67%% / 3x for aggressive scaling)\n\n",
            dram_share_baseline * 100.0,
            (1.0 - best / baseline) * 100.0, baseline / best);
    }
}

void
BM_FullSystemResNet18(benchmark::State &state)
{
    EnergyRegistry registry = makeDefaultRegistry();
    Network net = makeResNet18();
    FullSystemOptions opts;
    opts.config = AlbireoConfig::paperDefault(
        ScalingProfile::Aggressive, true);
    opts.search.random_samples = 0;
    opts.search.hill_climb_rounds = 2;
    for (auto _ : state) {
        FullSystemResult r =
            runAlbireoFullSystem(net, opts, registry);
        benchmark::DoNotOptimize(r.total_j);
    }
}
BENCHMARK(BM_FullSystemResNet18)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
