/**
 * @file
 * Batched/incremental quick-evaluation microbench: throughput of the
 * evaluation hot path on a hill-climb-shaped probe workload (the full
 * factor-move neighborhood of seed mappings), comparing
 *
 *  - legacy per-candidate: a faithful replica of the PR-1 hot path --
 *    a fresh TileAnalysis and a fresh AccessCounts allocated per
 *    probe, with the access-count model re-deriving every per-level
 *    factor product per use (the baseline the tentpole is measured
 *    against, like bench_search_scaling's legacySearch);
 *  - per-candidate (today): Evaluator::quickEvaluate, still one
 *    fresh arena per probe but the reworked single-pass model;
 *  - batched arenas: quickEvaluateBatch on one thread, one
 *    EvalScratch reused across all probes;
 *  - incremental: quickEvaluateDelta against a base analysis, only
 *    the moved dim column recomputed per probe (the hill-climb engine
 *    path);
 *  - batched parallel: quickEvaluateBatch on the default pool.
 *
 * Verifies all paths bit-identical before timing, and emits a
 * BENCH_batch.json line.  Plain main() harness (one JSON line, whole
 * passes), like bench_search_scaling.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "albireo/albireo_arch.hpp"
#include "bench_common.hpp"
#include "common/error.hpp"
#include "mapper/factorize.hpp"
#include "mapper/mapspace.hpp"
#include "mapping/validate.hpp"
#include "model/energy_rollup.hpp"
#include "model/evaluator.hpp"
#include "report/export.hpp"

namespace {

using namespace ploop;
using namespace ploop::bench;

double
now_s()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

// ---------------------------------------------------------------
// Legacy per-candidate path: the seed repository's access-count
// model, reproduced verbatim -- helper products re-derived at every
// use, one fresh AccessCounts per call.  Values are bit-identical to
// the reworked model (checked below); only the work per candidate
// differs.
// ---------------------------------------------------------------

double
legacyIrrelevantSpatial(const Mapping &mapping, std::size_t l, Tensor t)
{
    DimSet rel = tensorDims(t);
    double p = 1;
    for (Dim d : kAllDims) {
        if (!rel.contains(d))
            p *= static_cast<double>(mapping.level(l).s(d));
    }
    return p;
}

double
legacyFillsTotal(const Mapping &mapping, const TileAnalysis &tiles,
                 std::size_t l, Tensor t)
{
    DimSet rel = tensorDims(t);
    double fills = static_cast<double>(tiles.tileWords(l, t));
    for (std::size_t m = l + 1; m < mapping.numLevels(); ++m) {
        for (Dim d : kAllDims) {
            if (rel.contains(d)) {
                fills *= static_cast<double>(mapping.level(m).t(d)) *
                         static_cast<double>(mapping.level(m).s(d));
            }
        }
    }
    return fills;
}

AccessCounts
legacyComputeAccessCounts(const ArchSpec &arch, const LayerShape &layer,
                          const Mapping &mapping,
                          const TileAnalysis &tiles)
{
    const std::size_t nlevels = arch.numLevels();
    AccessCounts ac;
    ac.levels.resize(nlevels);
    ac.macs = static_cast<double>(layer.macs());

    ac.instances.assign(nlevels, 1.0);
    for (std::size_t l = nlevels; l-- > 0;) {
        double inst = 1.0;
        for (std::size_t m = l + 1; m < nlevels; ++m)
            inst *=
                static_cast<double>(mapping.level(m).spatialProduct());
        ac.instances[l] = inst;
    }

    for (std::size_t l = 0; l < nlevels; ++l) {
        for (Tensor t : kAllTensors) {
            if (arch.level(l).keepsTensor(t)) {
                ac.levels[l][tensorIndex(t)].tile_words =
                    static_cast<double>(tiles.tileWords(l, t));
            }
        }
    }

    for (Tensor t : {Tensor::Weights, Tensor::Inputs}) {
        auto idx = [&](std::size_t l) -> TensorLevelCounts & {
            return ac.levels[l][tensorIndex(t)];
        };
        for (std::size_t l = 0; l < nlevels; ++l) {
            if (!arch.level(l).keepsTensor(t))
                continue;
            double fills = legacyFillsTotal(mapping, tiles, l, t);
            idx(l).fills = fills;
            if (l + 1 < nlevels)
                idx(l).writes = fills;
        }
        std::size_t outermost_keeper = 0;
        for (std::size_t l = 0; l < nlevels; ++l) {
            if (arch.level(l).keepsTensor(t))
                outermost_keeper = l;
        }
        for (std::size_t x = 0; x < nlevels; ++x) {
            if (x > outermost_keeper)
                continue;
            bool keeper_found = false;
            std::size_t keeper = 0;
            for (std::size_t l = x; l-- > 0;) {
                if (arch.level(l).keepsTensor(t)) {
                    keeper_found = true;
                    keeper = l;
                    break;
                }
            }
            double crossings;
            if (keeper_found) {
                crossings =
                    legacyFillsTotal(mapping, tiles, keeper, t);
                for (std::size_t y = x + 1; y < nlevels; ++y)
                    crossings *= legacyIrrelevantSpatial(mapping, y, t);
            } else {
                crossings = ac.macs;
                for (std::size_t y = 0; y <= x; ++y)
                    crossings /= legacyIrrelevantSpatial(mapping, y, t);
            }
            if (t == Tensor::Inputs) {
                for (std::size_t y = 0; y <= x; ++y)
                    crossings /= windowShare(arch, layer, mapping, y);
            }
            idx(x).crossings_down = crossings;
            idx(x).reads = crossings;
        }
    }

    {
        auto out = [&](std::size_t l) -> TensorLevelCounts & {
            return ac.levels[l][tensorIndex(Tensor::Outputs)];
        };
        std::size_t outermost_keeper = 0;
        for (std::size_t l = 0; l < nlevels; ++l) {
            if (arch.level(l).keepsTensor(Tensor::Outputs))
                outermost_keeper = l;
        }
        std::array<double, kNumDims> covered;
        std::array<double, kNumDims> pending_t;
        covered.fill(1.0);
        pending_t.fill(1.0);
        auto eff_red = [&]() {
            double p = 1.0;
            for (Dim d : kAllDims) {
                if (reductionDims().contains(d)) {
                    p *= std::min(
                        covered[dimIndex(d)],
                        static_cast<double>(layer.bound(d)));
                }
            }
            return p;
        };
        for (std::size_t x = 0; x < nlevels; ++x) {
            if (x > outermost_keeper)
                break;
            out(x).crossings_up = ac.macs / eff_red();
            for (Dim d : kAllDims) {
                if (!reductionDims().contains(d))
                    continue;
                covered[dimIndex(d)] *=
                    static_cast<double>(mapping.level(x).s(d));
                pending_t[dimIndex(d)] *=
                    static_cast<double>(mapping.level(x).t(d));
            }
            if (arch.level(x).keepsTensor(Tensor::Outputs)) {
                out(x).updates = ac.macs / eff_red();
                for (Dim d : kAllDims) {
                    if (reductionDims().contains(d)) {
                        covered[dimIndex(d)] *=
                            pending_t[dimIndex(d)];
                        pending_t[dimIndex(d)] = 1.0;
                    }
                }
                if (x + 1 < nlevels)
                    out(x).reads = ac.macs / eff_red();
            }
        }
    }

    return ac;
}

/** The PR-1 per-candidate quick evaluation, allocation per probe. */
std::optional<QuickEval>
legacyQuickEvaluate(const Evaluator &evaluator,
                    const EnergyCoefficients &co,
                    const LayerShape &layer, const Mapping &mapping)
{
    const ArchSpec &arch = evaluator.arch();
    if (!validateMappingShape(arch, layer, mapping))
        return std::nullopt;
    TileAnalysis tiles(arch, layer, mapping);
    if (!tiles.fitsCapacities())
        return std::nullopt;
    AccessCounts counts =
        legacyComputeAccessCounts(arch, layer, mapping, tiles);
    ThroughputResult throughput =
        computeThroughput(arch, layer, mapping, counts);
    QuickEval q;
    q.runtime_s = throughput.runtime_s;
    q.energy_j = computeEnergyTotal(co, arch, layer, mapping, tiles,
                                    counts, throughput);
    return q;
}

/** One hill-climb probe: the moved mapping and the dim it moved. */
struct Probe
{
    Mapping mapping;
    Dim moved;

    Probe(Mapping m, Dim d) : mapping(std::move(m)), moved(d) {}
};

/**
 * The full factor-move neighborhood of @p base -- every (dim, level
 * pair, ratio) move, exactly the batch one hill-climb round
 * evaluates.
 */
std::vector<Probe>
neighborhood(const Mapping &base)
{
    std::vector<Probe> probes;
    const std::size_t nlevels = base.numLevels();
    for (Dim d : kAllDims) {
        for (std::size_t a = 0; a < nlevels; ++a) {
            for (std::size_t b = 0; b < nlevels; ++b) {
                if (a == b)
                    continue;
                for (std::uint64_t ratio : {2ull, 3ull, 5ull, 7ull}) {
                    std::uint64_t from = base.level(a).t(d);
                    std::uint64_t to = base.level(b).t(d);
                    if (!moveFactor(from, to, ratio))
                        continue;
                    Mapping m = base;
                    m.level(a).setT(d, from);
                    m.level(b).setT(d, to);
                    probes.emplace_back(std::move(m), d);
                }
            }
        }
    }
    return probes;
}

/** Best-of-@p reps wall time of @p fn. */
template <typename Fn>
double
bestWall(unsigned reps, Fn &&fn)
{
    double best = 0;
    for (unsigned r = 0; r < reps; ++r) {
        double t0 = now_s();
        fn();
        double wall = now_s() - t0;
        if (r == 0 || wall < best)
            best = wall;
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    // --no-perf-gate: report the speedup but do not fail below the
    // 1.5x target -- for shared CI runners where neighbor noise can
    // dip an in-process ratio.  Bit-identity always gates.
    bool perf_gate = true;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--no-perf-gate")
            perf_gate = false;
    }

    EnergyRegistry registry = makeDefaultRegistry();
    ArchSpec arch = buildAlbireoArch(
        AlbireoConfig::paperDefault(ScalingProfile::Conservative));
    Evaluator evaluator(arch, registry);
    const EnergyCoefficients co =
        computeEnergyCoefficients(arch, registry);

    // Hill-climb-shaped probe sets around several realistic bases:
    // the greedy seed and the outer seed of two layers.
    std::vector<LayerShape> layers = {
        bestCaseLayer(),
        LayerShape::conv("wide", 1, 128, 96, 28, 28, 3, 3)};
    struct Workload
    {
        const LayerShape *layer;
        Mapping base;
        std::vector<Probe> probes;

        Workload(const LayerShape &l, Mapping b)
            : layer(&l), base(std::move(b)),
              probes(neighborhood(base))
        {}
    };
    std::vector<Workload> work;
    for (const LayerShape &layer : layers) {
        Mapspace mapspace(arch, layer);
        work.emplace_back(layer, mapspace.greedySeed());
        work.emplace_back(layer, mapspace.outerSeed());
    }
    std::size_t n_probes = 0;
    for (const Workload &w : work)
        n_probes += w.probes.size();

    // ---- Correctness first: all paths bit-identical. ----
    for (const Workload &w : work) {
        EvalScratch arena;
        fatalIf(!evaluator.quickEvaluateWith(arena, *w.layer, w.base),
                "bench: invalid base mapping");
        std::vector<Mapping> mappings;
        mappings.reserve(w.probes.size());
        for (const Probe &p : w.probes)
            mappings.push_back(p.mapping);
        auto batch = evaluator.quickEvaluateBatch(*w.layer, mappings);
        for (std::size_t i = 0; i < w.probes.size(); ++i) {
            auto legacy = legacyQuickEvaluate(evaluator, co, *w.layer,
                                              w.probes[i].mapping);
            auto ref =
                evaluator.quickEvaluate(*w.layer, w.probes[i].mapping);
            auto inc = evaluator.quickEvaluateDelta(
                arena, *w.layer, w.probes[i].mapping,
                w.probes[i].moved);
            bool same =
                ref.has_value() == batch[i].has_value() &&
                ref.has_value() == inc.has_value() &&
                ref.has_value() == legacy.has_value() &&
                (!ref || (ref->energy_j == batch[i]->energy_j &&
                          ref->runtime_s == batch[i]->runtime_s &&
                          ref->energy_j == inc->energy_j &&
                          ref->runtime_s == inc->runtime_s &&
                          ref->energy_j == legacy->energy_j &&
                          ref->runtime_s == legacy->runtime_s));
            fatalIf(!same, "bench: paths disagree on probe " +
                               std::to_string(i));
        }
    }
    std::printf("paths bit-identical over %zu probes\n", n_probes);

    // ---- Throughput. ----
    const unsigned reps = 5;
    const unsigned inner = 40; // Rounds per measurement pass.

    double legacy_s = bestWall(reps, [&] {
        for (unsigned k = 0; k < inner; ++k)
            for (const Workload &w : work)
                for (const Probe &p : w.probes)
                    legacyQuickEvaluate(evaluator, co, *w.layer,
                                        p.mapping);
    });

    double per_candidate_s = bestWall(reps, [&] {
        for (unsigned k = 0; k < inner; ++k)
            for (const Workload &w : work)
                for (const Probe &p : w.probes)
                    evaluator.quickEvaluate(*w.layer, p.mapping);
    });

    double batch_1t_s = bestWall(reps, [&] {
        for (unsigned k = 0; k < inner; ++k)
            for (const Workload &w : work) {
                EvalScratch arena;
                for (const Probe &p : w.probes)
                    evaluator.quickEvaluateWith(arena, *w.layer,
                                                p.mapping);
            }
    });

    double incremental_s = bestWall(reps, [&] {
        for (unsigned k = 0; k < inner; ++k)
            for (const Workload &w : work) {
                EvalScratch arena;
                arena.tiles.analyze(arch, *w.layer, w.base);
                for (const Probe &p : w.probes)
                    evaluator.quickEvaluateDelta(arena, *w.layer,
                                                 p.mapping, p.moved);
            }
    });

    std::vector<std::vector<Mapping>> batches;
    for (const Workload &w : work) {
        std::vector<Mapping> mappings;
        mappings.reserve(w.probes.size());
        for (const Probe &p : w.probes)
            mappings.push_back(p.mapping);
        batches.push_back(std::move(mappings));
    }
    double batch_mt_s = bestWall(reps, [&] {
        for (unsigned k = 0; k < inner; ++k)
            for (std::size_t i = 0; i < work.size(); ++i)
                evaluator.quickEvaluateBatch(*work[i].layer,
                                             batches[i]);
    });

    const double total = static_cast<double>(n_probes) * inner;
    auto report = [&](const char *name, double wall) {
        std::printf("%-28s %8.1f ms  %9.0f cand/s  %5.2fx\n", name,
                    wall * 1e3, total / wall, legacy_s / wall);
        return total / wall;
    };
    double legacy_rate = report("legacy per-candidate", legacy_s);
    double per_cand_rate = report("per-candidate (today)",
                                  per_candidate_s);
    double batch_rate = report("batched arena (1t)", batch_1t_s);
    double inc_rate = report("incremental delta", incremental_s);
    double mt_rate = report("batched parallel", batch_mt_s);

    double speedup_batch = batch_rate / legacy_rate;
    double speedup_inc = inc_rate / legacy_rate;
    std::printf(
        "BENCH_batch.json: {\"bench\":\"batch_eval\","
        "\"probes\":%zu,"
        "\"legacy_cand_per_s\":%s,"
        "\"per_candidate_cand_per_s\":%s,"
        "\"batch_1t_cand_per_s\":%s,"
        "\"incremental_cand_per_s\":%s,"
        "\"batch_parallel_cand_per_s\":%s,"
        "\"speedup_batch_1t\":%.3f,"
        "\"speedup_incremental\":%.3f,"
        "\"bit_identical\":true}\n",
        n_probes, jsonNumber(legacy_rate).c_str(),
        jsonNumber(per_cand_rate).c_str(),
        jsonNumber(batch_rate).c_str(), jsonNumber(inc_rate).c_str(),
        jsonNumber(mt_rate).c_str(), speedup_batch, speedup_inc);

    if (speedup_inc < 1.5) {
        std::fprintf(stderr,
                     "%s: incremental speedup %.2fx below the 1.5x "
                     "target\n",
                     perf_gate ? "FAIL" : "WARN (gate disabled)",
                     speedup_inc);
        if (perf_gate)
            return 1;
    }
    return 0;
}
