/**
 * @file
 * Ablation bench: turn off the modeling features DESIGN.md calls out
 * (optical-window/stride effects, static laser accounting, ADC
 * dynamic-range growth) one at a time and show how the paper's
 * headline numbers move.  This quantifies WHY each feature is in the
 * model: an idealized model (all ablations on) reproduces the
 * too-good numbers the paper warns against.
 */

#include <cstdio>

#include <benchmark/benchmark.h>

#include "albireo/albireo_arch.hpp"
#include "bench_common.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "core/network_runner.hpp"
#include "workload/model_zoo.hpp"

namespace {

using namespace ploop;
using namespace ploop::bench;

SearchOptions
fastSearch(Objective obj)
{
    SearchOptions opts;
    opts.objective = obj;
    opts.random_samples = 25;
    opts.hill_climb_rounds = 6;
    return opts;
}

struct Variant
{
    const char *label;
    bool window;
    bool laser_static;
    bool adc_growth;
};

void
report()
{
    EnergyRegistry registry = makeDefaultRegistry();

    static const Variant variants[] = {
        {"full model", true, true, true},
        {"- window/stride effects", false, true, true},
        {"- static laser", true, false, true},
        {"- ADC range growth", true, true, false},
        {"idealized (all off)", false, false, false},
    };

    std::printf("=== Ablation: what each modeling feature buys ===\n\n");

    // 1. AlexNet throughput (Fig.-3 sensitivity: window/stride).
    {
        Table table("AlexNet throughput vs. ablation "
                    "(conservative scaling)");
        table.setHeader({"model variant", "MACs/cycle", "% of ideal"});
        for (const Variant &v : variants) {
            AlbireoConfig cfg = AlbireoConfig::paperDefault(
                ScalingProfile::Conservative);
            cfg.model_window_effects = v.window;
            cfg.model_laser_static = v.laser_static;
            cfg.model_adc_growth = v.adc_growth;
            ArchSpec arch = buildAlbireoArch(cfg);
            Evaluator evaluator(arch, registry);
            NetworkRunResult run =
                runNetwork(evaluator, makeAlexNet(),
                           fastSearch(Objective::Delay));
            table.addRow(
                {v.label, strFormat("%.0f", run.macsPerCycle()),
                 strFormat("%.1f", run.macsPerCycle() /
                                       arch.peakMacsPerCycle() *
                                       100.0)});
        }
        std::printf("%s\n", table.render().c_str());
    }

    // 2. FC-layer energy (laser-static sensitivity): an underutilized
    //    layer's pJ/MAC collapses to the best case when the laser is
    //    amortized instead of integrated over runtime.
    {
        Table table("FC-layer (4096x4096) energy vs. ablation "
                    "(conservative scaling)");
        table.setHeader({"model variant", "pJ/MAC", "laser pJ/MAC"});
        LayerShape fc =
            LayerShape::fullyConnected("fc", 1, 4096, 4096);
        for (const Variant &v : variants) {
            AlbireoConfig cfg = AlbireoConfig::paperDefault(
                ScalingProfile::Conservative);
            cfg.model_window_effects = v.window;
            cfg.model_laser_static = v.laser_static;
            cfg.model_adc_growth = v.adc_growth;
            ArchSpec arch = buildAlbireoArch(cfg);
            Evaluator evaluator(arch, registry);
            Mapper mapper(evaluator, fastSearch(Objective::Energy));
            MapperResult r = mapper.search(fc);
            double laser = r.result.energy.sumIf(
                [](const EnergyEntry &e) {
                    return e.klass == "laser" ||
                           (e.klass == "photonic_mac" &&
                            e.energy_j > 0);
                });
            table.addRow(
                {v.label,
                 strFormat("%.3f", r.result.energyPerMac() * 1e12),
                 strFormat("%.3f",
                           laser / r.result.counts.macs * 1e12)});
        }
        std::printf("%s\n", table.render().c_str());
    }

    // 3. Fig.-5-style max-reuse benefit (ADC-growth sensitivity).
    {
        Table table("Max-reuse (IR=45, OR=15, WR=3) benefit vs. "
                    "ablation (aggressive scaling, ResNet18 conv)");
        table.setHeader(
            {"model variant", "orig pJ/MAC", "max-reuse pJ/MAC",
             "reduction %"});
        LayerShape layer =
            LayerShape::conv("resconv", 1, 128, 128, 28, 28, 3, 3);
        for (const Variant &v : variants) {
            auto eval_point = [&](double ir, double orf, double wr) {
                AlbireoConfig cfg = AlbireoConfig::paperDefault(
                    ScalingProfile::Aggressive);
                cfg.input_reuse = ir;
                cfg.output_reuse = orf;
                cfg.weight_reuse = wr;
                cfg.model_window_effects = v.window;
                cfg.model_laser_static = v.laser_static;
                cfg.model_adc_growth = v.adc_growth;
                ArchSpec arch = buildAlbireoArch(cfg);
                Evaluator evaluator(arch, registry);
                Mapper mapper(evaluator,
                              fastSearch(Objective::Energy));
                return mapper.search(layer)
                    .result.energyPerMac() * 1e12;
            };
            double orig = eval_point(9, 3, 1);
            double best = eval_point(45, 15, 3);
            table.addRow({v.label, strFormat("%.4f", orig),
                          strFormat("%.4f", best),
                          strFormat("%.0f",
                                    (1.0 - best / orig) * 100.0)});
        }
        std::printf("%s\n", table.render().c_str());
    }
}

void
BM_AblatedEvaluation(benchmark::State &state)
{
    EnergyRegistry registry = makeDefaultRegistry();
    AlbireoConfig cfg =
        AlbireoConfig::paperDefault(ScalingProfile::Conservative);
    cfg.model_window_effects = false;
    cfg.model_laser_static = false;
    ArchSpec arch = buildAlbireoArch(cfg);
    Evaluator evaluator(arch, registry);
    LayerShape layer = bestCaseLayer();
    Mapping mapping = Mapspace(arch, layer).greedySeed();
    for (auto _ : state) {
        EvalResult r = evaluator.evaluate(layer, mapping);
        benchmark::DoNotOptimize(r.counts.macs);
    }
}
BENCHMARK(BM_AblatedEvaluation);

} // namespace

int
main(int argc, char **argv)
{
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
