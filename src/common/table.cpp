#include "common/table.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstring>

#include "common/string_util.hpp"

namespace ploop {

namespace {

bool
looksNumeric(const std::string &s)
{
    if (s.empty())
        return false;
    bool digit = false;
    for (char c : s) {
        if (std::isdigit(static_cast<unsigned char>(c)))
            digit = true;
        else if (!std::strchr("+-.eE%x ", c))
            return false;
    }
    return digit;
}

} // namespace

Table::Table(std::string title)
    : title_(std::move(title))
{}

void
Table::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

void
Table::addSeparator()
{
    rows_.emplace_back();
}

std::string
Table::render() const
{
    std::size_t ncols = header_.size();
    for (const auto &r : rows_)
        ncols = std::max(ncols, r.size());
    std::vector<std::size_t> widths(ncols, 0);
    auto measure = [&](const std::vector<std::string> &r) {
        for (std::size_t i = 0; i < r.size(); ++i)
            widths[i] = std::max(widths[i], r[i].size());
    };
    measure(header_);
    for (const auto &r : rows_)
        measure(r);

    std::string out;
    if (!title_.empty())
        out += title_ + "\n";

    auto renderRow = [&](const std::vector<std::string> &r) {
        std::string line;
        for (std::size_t i = 0; i < ncols; ++i) {
            std::string cell = i < r.size() ? r[i] : "";
            std::size_t pad = widths[i] - cell.size();
            if (looksNumeric(cell))
                line += std::string(pad, ' ') + cell;
            else
                line += cell + std::string(pad, ' ');
            if (i + 1 < ncols)
                line += "  ";
        }
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        out += line + "\n";
    };

    auto renderSep = [&]() {
        std::string line;
        for (std::size_t i = 0; i < ncols; ++i) {
            line += std::string(widths[i], '-');
            if (i + 1 < ncols)
                line += "  ";
        }
        out += line + "\n";
    };

    if (!header_.empty()) {
        renderRow(header_);
        renderSep();
    }
    for (const auto &r : rows_) {
        if (r.empty())
            renderSep();
        else
            renderRow(r);
    }
    return out;
}

BarChart::BarChart(std::string title, std::string unit, unsigned width)
    : title_(std::move(title)), unit_(std::move(unit)), width_(width)
{}

void
BarChart::setSegments(std::vector<std::string> names)
{
    segments_ = std::move(names);
}

void
BarChart::addBar(const std::string &label, std::vector<double> values)
{
    values.resize(segments_.size(), 0.0);
    bars_.emplace_back(label, std::move(values));
}

std::string
BarChart::render() const
{
    static const char glyphs[] = "#=+*o.:%@&";
    const std::size_t nglyphs = sizeof(glyphs) - 1;

    double max_total = 0.0;
    std::size_t label_w = 0;
    for (const auto &[label, vals] : bars_) {
        double total = 0.0;
        for (double v : vals)
            total += std::max(v, 0.0);
        max_total = std::max(max_total, total);
        label_w = std::max(label_w, label.size());
    }
    if (max_total <= 0.0)
        max_total = 1.0;

    std::string out;
    if (!title_.empty())
        out += title_ + "\n";

    // Legend.
    std::vector<std::string> legend;
    for (std::size_t i = 0; i < segments_.size(); ++i)
        legend.push_back(strFormat("%c=%s", glyphs[i % nglyphs],
                                   segments_[i].c_str()));
    if (!legend.empty())
        out += "  [" + join(legend, "  ") + "]\n";

    for (const auto &[label, vals] : bars_) {
        double total = 0.0;
        std::string bar;
        // Accumulate cells with largest-remainder rounding so the bar
        // length matches the total as closely as possible.
        double cells_f = 0.0;
        std::size_t cells_used = 0;
        for (std::size_t i = 0; i < vals.size(); ++i) {
            double v = std::max(vals[i], 0.0);
            total += v;
            cells_f += v / max_total * width_;
            auto upto = static_cast<std::size_t>(std::lround(cells_f));
            for (; cells_used < upto; ++cells_used)
                bar.push_back(glyphs[i % nglyphs]);
        }
        out += strFormat("  %-*s |%s  %.4g %s\n",
                         static_cast<int>(label_w), label.c_str(),
                         bar.c_str(), total, unit_.c_str());
    }
    out += strFormat("  scale: full bar = %.4g %s\n", max_total,
                     unit_.c_str());
    return out;
}

} // namespace ploop
