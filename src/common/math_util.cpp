#include "common/math_util.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ploop {

std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    panicIf(b == 0, "ceilDiv by zero");
    return (a + b - 1) / b;
}

std::uint64_t
roundUp(std::uint64_t a, std::uint64_t b)
{
    return ceilDiv(a, b) * b;
}

bool
isPow2(std::uint64_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

std::uint64_t
nextPow2(std::uint64_t n)
{
    panicIf(n == 0, "nextPow2(0)");
    std::uint64_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

unsigned
log2Exact(std::uint64_t n)
{
    panicIf(!isPow2(n), "log2Exact of non-power-of-two");
    unsigned l = 0;
    while (n > 1) {
        n >>= 1;
        ++l;
    }
    return l;
}

std::vector<std::uint64_t>
divisors(std::uint64_t n)
{
    panicIf(n == 0, "divisors(0)");
    std::vector<std::uint64_t> low, high;
    for (std::uint64_t d = 1; d * d <= n; ++d) {
        if (n % d == 0) {
            low.push_back(d);
            if (d != n / d)
                high.push_back(n / d);
        }
    }
    low.insert(low.end(), high.rbegin(), high.rend());
    return low;
}

std::vector<std::pair<std::uint64_t, unsigned>>
primeFactorize(std::uint64_t n)
{
    std::vector<std::pair<std::uint64_t, unsigned>> out;
    panicIf(n == 0, "primeFactorize(0)");
    for (std::uint64_t p = 2; p * p <= n; ++p) {
        if (n % p == 0) {
            unsigned m = 0;
            while (n % p == 0) {
                n /= p;
                ++m;
            }
            out.emplace_back(p, m);
        }
    }
    if (n > 1)
        out.emplace_back(n, 1u);
    return out;
}

namespace {

// Recursive helper: fill factorizations of n into `parts` slots.
void
factorizeRec(std::uint64_t n, unsigned parts,
             std::vector<std::uint64_t> &cur,
             std::vector<std::vector<std::uint64_t>> &out)
{
    if (parts == 1) {
        cur.push_back(n);
        out.push_back(cur);
        cur.pop_back();
        return;
    }
    for (std::uint64_t d : divisors(n)) {
        cur.push_back(d);
        factorizeRec(n / d, parts - 1, cur, out);
        cur.pop_back();
    }
}

} // namespace

std::vector<std::vector<std::uint64_t>>
orderedFactorizations(std::uint64_t n, unsigned parts)
{
    fatalIf(parts == 0, "orderedFactorizations with zero parts");
    std::vector<std::vector<std::uint64_t>> out;
    std::vector<std::uint64_t> cur;
    factorizeRec(n, parts, cur, out);
    return out;
}

double
dbToLinear(double db)
{
    return std::pow(10.0, db / 10.0);
}

double
linearToDb(double lin)
{
    panicIf(lin <= 0.0, "linearToDb of non-positive ratio");
    return 10.0 * std::log10(lin);
}

bool
approxEqual(double a, double b, double rel_tol)
{
    double diff = std::fabs(a - b);
    double scale = std::max(std::fabs(a), std::fabs(b));
    return diff <= rel_tol * std::max(scale, 1e-300) ||
           (std::fabs(a) < 1e-300 && std::fabs(b) < 1e-300);
}

double
clampDouble(double v, double lo, double hi)
{
    return std::min(std::max(v, lo), hi);
}

} // namespace ploop
