#include "common/thread_pool.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "common/error.hpp"

namespace ploop {

ThreadPool::ThreadPool(unsigned size)
    : size_(std::max(1u, std::min(size, kMaxThreads)))
{
    workers_.reserve(size_ - 1);
    for (unsigned i = 0; i + 1 < size_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mu_);
        stop_ = true;
    }
    cv_.notifyAll();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        MutexLock lock(mu_);
        queue_.push_back(std::move(task));
    }
    cv_.notifyOne();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            MutexLock lock(mu_);
            while (!stop_ && queue_.empty())
                cv_.wait(lock);
            if (queue_.empty())
                return; // stop_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        // Tasks do not throw (packaged_task and LoopState::drain
        // both swallow exceptions into their own channels), so plain
        // inc/dec brackets are unwind-safe in practice.
        active_.fetch_add(1, std::memory_order_relaxed);
        task();
        active_.fetch_sub(1, std::memory_order_relaxed);
    }
}

namespace {

/** Shared bookkeeping for one parallelFor call. */
struct LoopState
{
    std::function<void(std::size_t, std::size_t, unsigned)> body;
    std::size_t n = 0;
    unsigned chunks = 0;
    /** Lock-free chunk claiming: relaxed suffices -- the ticket value
     *  itself is the only datum, nothing is published through it. */
    std::atomic<unsigned> next{0};
    /** Completed chunks.  acq_rel on the increment / acquire on the
     *  completion-wait load: the finisher's writes (including body
     *  side effects) must be visible to the joiner. */
    std::atomic<unsigned> done{0};
    Mutex mu;
    CondVar cv;
    std::exception_ptr error GUARDED_BY(mu); ///< First body exception.

    /** Claim and run chunks until none remain. */
    void drain()
    {
        for (;;) {
            unsigned c = next.fetch_add(1, std::memory_order_relaxed);
            if (c >= chunks)
                return;
            try {
                std::size_t begin = c * n / chunks;
                std::size_t end = (c + 1) * n / chunks;
                body(begin, end, c);
            } catch (...) {
                MutexLock lock(mu);
                if (!error)
                    error = std::current_exception();
            }
            if (done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
                chunks) {
                MutexLock lock(mu);
                cv.notifyAll();
            }
        }
    }
};

} // namespace

void
ThreadPool::parallelForChunked(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, unsigned)> &body)
{
    if (n == 0)
        return;
    unsigned chunks = static_cast<unsigned>(
        std::min<std::size_t>(size_, n));
    if (chunks <= 1) {
        body(0, n, 0);
        return;
    }

    auto state = std::make_shared<LoopState>();
    state->body = body;
    state->n = n;
    state->chunks = chunks;

    // One helper per extra chunk; late helpers find nothing to claim
    // and return immediately (the shared_ptr keeps state alive).
    for (unsigned i = 1; i < chunks; ++i)
        enqueue([state] { state->drain(); });

    // The caller always participates, so the loop finishes even when
    // every worker is busy with other (possibly enclosing) loops.
    state->drain();

    MutexLock lock(state->mu);
    while (state->done.load(std::memory_order_acquire) !=
           state->chunks)
        state->cv.wait(lock);
    if (state->error)
        std::rethrow_exception(state->error);
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body)
{
    parallelForChunked(
        n, [&body](std::size_t begin, std::size_t end, unsigned) {
            for (std::size_t i = begin; i < end; ++i)
                body(i);
        });
}

namespace {

/**
 * Warn about a bad PLOOP_THREADS value, once per distinct value: the
 * environment rarely changes within a process, but defaultThreads()
 * is consulted on every pool request, so an unconditional fprintf
 * would spam stderr.
 */
void
warnBadThreadsOnce(const char *value, const char *what)
{
    static Mutex mu;
    static std::string last_warned;
    MutexLock lock(mu);
    if (last_warned == value)
        return;
    last_warned = value;
    std::fprintf(stderr,
                 "ploop: warning: PLOOP_THREADS='%s' is %s; %s\n",
                 value, what,
                 std::strcmp(what, "above the supported maximum") == 0
                     ? "clamping"
                     : "using the hardware default");
}

} // namespace

std::optional<long>
ThreadPool::parseThreadsEnv(const char *text)
{
    if (!text)
        return std::nullopt;
    errno = 0;
    char *end = nullptr;
    long v = std::strtol(text, &end, 10);
    if (end == text || errno == ERANGE)
        return std::nullopt;
    while (*end == ' ' || *end == '\t' || *end == '\n')
        ++end;
    if (*end != '\0')
        return std::nullopt;
    return v;
}

unsigned
ThreadPool::defaultThreads()
{
    if (const char *env = std::getenv("PLOOP_THREADS")) {
        std::optional<long> v = parseThreadsEnv(env);
        if (v && *v >= 1 && *v <= long(kMaxThreads))
            return static_cast<unsigned>(*v);
        if (v && *v > long(kMaxThreads)) {
            warnBadThreadsOnce(env, "above the supported maximum");
            return kMaxThreads;
        }
        // Unparseable ("abc", "3x", overflow) or non-positive: the
        // old atol() path silently read these as "hardware default";
        // now the fallback is explicit.
        warnBadThreadsOnce(env, v ? "not a positive thread count"
                                  : "not a number");
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? std::min(hw, kMaxThreads) : 1;
}

ThreadPool &
ThreadPool::global()
{
    return forThreads(defaultThreads());
}

ThreadPool &
ThreadPool::forThreads(unsigned size)
{
    if (size == 0)
        size = defaultThreads();
    size = std::max(1u, std::min(size, kMaxThreads));

    // Cached per size; pools are small (threads only spawn on first
    // use of a size) and live for the process.
    static Mutex registry_mu;
    static std::map<unsigned, std::unique_ptr<ThreadPool>> registry;
    MutexLock lock(registry_mu);
    std::unique_ptr<ThreadPool> &slot = registry[size];
    if (!slot)
        slot = std::make_unique<ThreadPool>(size);
    return *slot;
}

} // namespace ploop
