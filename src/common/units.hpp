/**
 * @file
 * Physical-unit conveniences.  All quantities in PhotonLoop are stored
 * in SI base units as doubles: energy in joules, power in watts, time
 * in seconds, frequency in hertz, area in square meters, length in
 * meters.  These constants and user-defined literals make device
 * parameter tables readable (e.g. `50_fJ`, `3.2_pJ`, `5_GHz`).
 */

#ifndef PHOTONLOOP_COMMON_UNITS_HPP
#define PHOTONLOOP_COMMON_UNITS_HPP

namespace ploop {

namespace units {

// Energy (joules).
constexpr double joule = 1.0;
constexpr double millijoule = 1e-3;
constexpr double microjoule = 1e-6;
constexpr double nanojoule = 1e-9;
constexpr double picojoule = 1e-12;
constexpr double femtojoule = 1e-15;
constexpr double attojoule = 1e-18;

// Power (watts).
constexpr double watt = 1.0;
constexpr double milliwatt = 1e-3;
constexpr double microwatt = 1e-6;
constexpr double nanowatt = 1e-9;

// Time (seconds).
constexpr double second = 1.0;
constexpr double millisecond = 1e-3;
constexpr double microsecond = 1e-6;
constexpr double nanosecond = 1e-9;
constexpr double picosecond = 1e-12;

// Frequency (hertz).
constexpr double hertz = 1.0;
constexpr double kilohertz = 1e3;
constexpr double megahertz = 1e6;
constexpr double gigahertz = 1e9;

// Length (meters).
constexpr double meter = 1.0;
constexpr double millimeter = 1e-3;
constexpr double micrometer = 1e-6;
constexpr double nanometer = 1e-9;

// Area (square meters).
constexpr double square_millimeter = 1e-6;
constexpr double square_micrometer = 1e-12;

} // namespace units

inline namespace literals {

constexpr double operator""_J(long double v)
{ return static_cast<double>(v); }
constexpr double operator""_mJ(long double v)
{ return static_cast<double>(v) * units::millijoule; }
constexpr double operator""_uJ(long double v)
{ return static_cast<double>(v) * units::microjoule; }
constexpr double operator""_nJ(long double v)
{ return static_cast<double>(v) * units::nanojoule; }
constexpr double operator""_pJ(long double v)
{ return static_cast<double>(v) * units::picojoule; }
constexpr double operator""_fJ(long double v)
{ return static_cast<double>(v) * units::femtojoule; }
constexpr double operator""_aJ(long double v)
{ return static_cast<double>(v) * units::attojoule; }

constexpr double operator""_J(unsigned long long v)
{ return static_cast<double>(v); }
constexpr double operator""_mJ(unsigned long long v)
{ return static_cast<double>(v) * units::millijoule; }
constexpr double operator""_uJ(unsigned long long v)
{ return static_cast<double>(v) * units::microjoule; }
constexpr double operator""_nJ(unsigned long long v)
{ return static_cast<double>(v) * units::nanojoule; }
constexpr double operator""_pJ(unsigned long long v)
{ return static_cast<double>(v) * units::picojoule; }
constexpr double operator""_fJ(unsigned long long v)
{ return static_cast<double>(v) * units::femtojoule; }
constexpr double operator""_aJ(unsigned long long v)
{ return static_cast<double>(v) * units::attojoule; }

constexpr double operator""_W(long double v)
{ return static_cast<double>(v); }
constexpr double operator""_mW(long double v)
{ return static_cast<double>(v) * units::milliwatt; }
constexpr double operator""_uW(long double v)
{ return static_cast<double>(v) * units::microwatt; }
constexpr double operator""_W(unsigned long long v)
{ return static_cast<double>(v); }
constexpr double operator""_mW(unsigned long long v)
{ return static_cast<double>(v) * units::milliwatt; }
constexpr double operator""_uW(unsigned long long v)
{ return static_cast<double>(v) * units::microwatt; }

constexpr double operator""_GHz(long double v)
{ return static_cast<double>(v) * units::gigahertz; }
constexpr double operator""_MHz(long double v)
{ return static_cast<double>(v) * units::megahertz; }
constexpr double operator""_GHz(unsigned long long v)
{ return static_cast<double>(v) * units::gigahertz; }
constexpr double operator""_MHz(unsigned long long v)
{ return static_cast<double>(v) * units::megahertz; }

constexpr double operator""_ns(long double v)
{ return static_cast<double>(v) * units::nanosecond; }
constexpr double operator""_ns(unsigned long long v)
{ return static_cast<double>(v) * units::nanosecond; }

constexpr double operator""_mm(long double v)
{ return static_cast<double>(v) * units::millimeter; }
constexpr double operator""_um(long double v)
{ return static_cast<double>(v) * units::micrometer; }
constexpr double operator""_mm(unsigned long long v)
{ return static_cast<double>(v) * units::millimeter; }
constexpr double operator""_um(unsigned long long v)
{ return static_cast<double>(v) * units::micrometer; }

} // namespace literals

/**
 * Convert dBm (decibel-milliwatts, the standard optical power unit) to
 * watts.
 */
double dbmToWatts(double dbm);

/** Convert watts to dBm. @pre watts > 0 */
double wattsToDbm(double watts);

} // namespace ploop

#endif // PHOTONLOOP_COMMON_UNITS_HPP
