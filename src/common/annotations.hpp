/**
 * @file
 * Compiler-enforced locking discipline: clang Thread Safety Analysis
 * attributes behind portable macros, plus the annotated mutex
 * primitives every concurrent subsystem in this codebase uses.
 *
 * Why this exists: the engine's determinism guarantee (same seed =>
 * bit-identical best at any thread count) rests on a locking
 * discipline that dynamic tests can only sample.  With these
 * annotations, every shared field DECLARES its lock (`GUARDED_BY`),
 * and a clang build with `-Werror=thread-safety` (CMake option
 * PLOOP_THREAD_SAFETY, default ON for clang) turns a missing lock
 * acquisition into a compile error -- "we tested it" becomes "it
 * cannot compile wrong".  Off clang (gcc, MSVC) the macros expand to
 * nothing and the wrappers cost exactly what std::mutex +
 * std::lock_guard cost.
 *
 * House rules (enforced by tools/lint_invariants.py, rule raw-mutex):
 *  - no raw std::mutex / std::lock_guard / std::unique_lock /
 *    std::condition_variable outside this header -- always
 *    ploop::Mutex, ploop::MutexLock and ploop::CondVar, so every lock
 *    in the project is visible to the analysis;
 *  - every field a Mutex guards carries GUARDED_BY(that_mutex);
 *    fields shared WITHOUT a mutex must be std::atomic and carry a
 *    comment justifying their memory ordering;
 *  - helper functions that expect the caller to hold a lock say so
 *    with REQUIRES(mu) instead of a "caller holds mu" comment.
 *
 * Condition variables: CondVar::wait() takes the MutexLock itself.
 * Predicate waits are written as explicit `while (!pred) cv.wait(l);`
 * loops in the annotated function -- a predicate lambda would be
 * analyzed as a separate unannotated function and spuriously warn on
 * guarded-field access.
 */

#ifndef PHOTONLOOP_COMMON_ANNOTATIONS_HPP
#define PHOTONLOOP_COMMON_ANNOTATIONS_HPP

#include <condition_variable>
#include <mutex>

// --------------------------------------------------------------- macros

// Clang exposes thread safety attributes through
// __attribute__((...)); every other compiler sees empty macros.  The
// attribute set below is the standard one from the clang Thread
// Safety Analysis documentation (mutex.h), trimmed to what this
// codebase uses plus the shared/try variants kept for future use.
#if defined(__clang__) && !defined(SWIG)
#define PLOOP_TSA(x) __attribute__((x))
#else
#define PLOOP_TSA(x) // no-op off clang
#endif

/** Marks a type as a lockable capability ("mutex"). */
#define CAPABILITY(x) PLOOP_TSA(capability(x))

/** Marks an RAII type that acquires in its ctor, releases in its dtor. */
#define SCOPED_CAPABILITY PLOOP_TSA(scoped_lockable)

/** Declares which mutex guards a field: access without holding it is
 *  a compile error under -Wthread-safety. */
#define GUARDED_BY(x) PLOOP_TSA(guarded_by(x))

/** Like GUARDED_BY, for the data a pointer field points TO. */
#define PT_GUARDED_BY(x) PLOOP_TSA(pt_guarded_by(x))

/** The caller must hold these mutexes ("Locked" helper functions). */
#define REQUIRES(...) PLOOP_TSA(requires_capability(__VA_ARGS__))

/** The caller must hold these mutexes at least shared. */
#define REQUIRES_SHARED(...)                                         \
    PLOOP_TSA(requires_shared_capability(__VA_ARGS__))

/** The function acquires the mutex and does not release it. */
#define ACQUIRE(...) PLOOP_TSA(acquire_capability(__VA_ARGS__))

/** The function releases a held mutex. */
#define RELEASE(...) PLOOP_TSA(release_capability(__VA_ARGS__))

/** The function acquires the mutex iff it returns the given value. */
#define TRY_ACQUIRE(...) PLOOP_TSA(try_acquire_capability(__VA_ARGS__))

/** The caller must NOT hold these mutexes (deadlock prevention for
 *  non-reentrant locks). */
#define EXCLUDES(...) PLOOP_TSA(locks_excluded(__VA_ARGS__))

/** The function returns a reference to the named mutex. */
#define RETURN_CAPABILITY(x) PLOOP_TSA(lock_returned(x))

/** Escape hatch: the analysis is wrong or the function is trusted
 *  (use sparingly, with a comment saying why). */
#define NO_THREAD_SAFETY_ANALYSIS PLOOP_TSA(no_thread_safety_analysis)

namespace ploop {

// ----------------------------------------------------------- primitives

class CondVar;

/**
 * An annotated std::mutex.  Functionally identical; the CAPABILITY
 * tag is what lets GUARDED_BY/REQUIRES name it in the analysis.
 */
class CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;

    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() ACQUIRE() { mu_.lock(); }
    void unlock() RELEASE() { mu_.unlock(); }
    bool tryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  private:
    friend class MutexLock;
    std::mutex mu_;
};

/**
 * RAII lock over a Mutex -- the project's std::lock_guard.  Also the
 * handle CondVar::wait() parks on (it wraps a std::unique_lock so the
 * wait can release and reacquire without the analysis losing track of
 * the scoped capability).
 */
class SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) ACQUIRE(mu) : lock_(mu.mu_) {}
    ~MutexLock() RELEASE() {}

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    friend class CondVar;
    std::unique_lock<std::mutex> lock_;
};

/**
 * Condition variable over a MutexLock.  wait() atomically releases
 * the lock while parked and reacquires before returning, exactly like
 * std::condition_variable::wait -- the analysis treats the capability
 * as held across the call, which matches what the caller may assume
 * on either side of it.  No predicate overload on purpose: write the
 * `while (!pred) cv.wait(lock);` loop in the annotated caller (see
 * file comment).
 */
class CondVar
{
  public:
    CondVar() = default;

    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** Park until notified; @p lock must hold the guarded mutex. */
    void wait(MutexLock &lock) { cv_.wait(lock.lock_); }

    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

} // namespace ploop

#endif // PHOTONLOOP_COMMON_ANNOTATIONS_HPP
