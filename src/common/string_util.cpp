#include "common/string_util.hpp"

#include <cctype>
#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace ploop {

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == sep) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    out.push_back(cur);
    return out;
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::string
strFormat(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args2;
    va_copy(args2, args);
    int n = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
    if (n > 0)
        std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
    va_end(args2);
    return out;
}

std::string
toLower(const std::string &s)
{
    std::string out = s;
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

namespace {

struct Prefix
{
    double scale;
    const char *name;
};

} // namespace

std::string
formatEnergy(double joules)
{
    static const Prefix prefixes[] = {
        {1.0, "J"},   {1e-3, "mJ"}, {1e-6, "uJ"},
        {1e-9, "nJ"}, {1e-12, "pJ"}, {1e-15, "fJ"}, {1e-18, "aJ"},
    };
    if (joules == 0.0)
        return "0 J";
    double mag = std::fabs(joules);
    for (const auto &p : prefixes) {
        if (mag >= p.scale)
            return strFormat("%.3g %s", joules / p.scale, p.name);
    }
    return strFormat("%.3g aJ", joules / 1e-18);
}

std::string
formatBytes(std::uint64_t bytes)
{
    static const Prefix prefixes[] = {
        {1024.0 * 1024 * 1024 * 1024, "TiB"},
        {1024.0 * 1024 * 1024, "GiB"},
        {1024.0 * 1024, "MiB"},
        {1024.0, "KiB"},
    };
    for (const auto &p : prefixes) {
        if (static_cast<double>(bytes) >= p.scale)
            return strFormat("%.2f %s", bytes / p.scale, p.name);
    }
    return strFormat("%llu B", static_cast<unsigned long long>(bytes));
}

std::string
formatCount(double count)
{
    static const Prefix prefixes[] = {
        {1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"},
    };
    double mag = std::fabs(count);
    for (const auto &p : prefixes) {
        if (mag >= p.scale)
            return strFormat("%.3g%s", count / p.scale, p.name);
    }
    return strFormat("%.4g", count);
}

} // namespace ploop
