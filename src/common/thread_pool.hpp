/**
 * @file
 * Fixed-size thread pool with task futures and a caller-participating
 * parallelFor, the execution engine behind mapper search, sweeps and
 * network runs.
 *
 * Design notes:
 *  - A pool of "size" N runs work at parallelism N: N-1 background
 *    workers plus the calling thread, which always participates in
 *    parallelFor.  A size-1 pool therefore runs everything inline
 *    with zero threads and zero locking surprises.
 *  - parallelFor is nest-safe on a shared pool: the caller drains its
 *    own loop's chunks, so an inner loop issued from a worker thread
 *    makes progress even when every other worker is busy.  No
 *    parallelFor can deadlock waiting for queue slots.
 *  - Determinism is structural, not scheduling-based: callers decide
 *    work partitioning (shards, chunk tie-breaks); the pool only
 *    promises that every index is executed exactly once.
 *
 * The default pool size honors the PLOOP_THREADS environment variable
 * (1..kMaxThreads), falling back to std::thread::hardware_concurrency.
 */

#ifndef PHOTONLOOP_COMMON_THREAD_POOL_HPP
#define PHOTONLOOP_COMMON_THREAD_POOL_HPP

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/annotations.hpp"

namespace ploop {

/** See file comment. */
class ThreadPool
{
  public:
    /** Upper bound on accepted pool sizes (sanity cap). */
    static constexpr unsigned kMaxThreads = 256;

    /**
     * @param size Total parallelism (>= 1): the pool spawns size-1
     *             background workers; the caller is the size-th lane.
     */
    explicit ThreadPool(unsigned size);

    /** Joins all workers; pending submitted tasks are completed. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total parallelism (workers + caller). */
    unsigned size() const { return size_; }

    /** Background workers executing a task right now (0..size()-1;
     *  excludes caller-lane work).  A utilization gauge for the
     *  metrics registry, nothing synchronizes through it. */
    unsigned activeWorkers() const
    {
        // Relaxed: a monitoring read of an independent tally; no
        // other data is published through this load.
        return active_.load(std::memory_order_relaxed);
    }

    /**
     * Queue one task; returns a future for its result.  On a size-1
     * pool the task runs inline before submit returns.
     */
    template <typename F>
    auto submit(F &&fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> result = task->get_future();
        if (size_ <= 1) {
            (*task)();
            return result;
        }
        enqueue([task] { (*task)(); });
        return result;
    }

    /**
     * Run body(i) once for every i in [0, n), in parallel.  Blocks
     * until all indices completed; rethrows the first body exception.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

    /**
     * Chunked variant: body(begin, end, chunk) with [begin, end)
     * ranges partitioning [0, n) and chunk a stable id in
     * [0, numChunks) -- use it to index per-chunk scratch state.
     * Chunk boundaries depend only on (n, size()), never on
     * scheduling.
     */
    void parallelForChunked(
        std::size_t n,
        const std::function<void(std::size_t, std::size_t, unsigned)>
            &body);

    /**
     * Default parallelism: PLOOP_THREADS if set and sane, else
     * hardware_concurrency, else 1.  Read on every call (not cached)
     * so tests can vary the environment.  An unparseable or
     * non-positive PLOOP_THREADS falls back to the hardware default
     * and a value above kMaxThreads is clamped -- both warn once per
     * distinct value on stderr instead of silently ignoring the
     * request (atol("abc") used to read as 0 and quietly mean
     * "hardware default").
     */
    static unsigned defaultThreads();

    /**
     * Strict parse of a PLOOP_THREADS-style string: the full text
     * must be one base-10 integer (surrounding whitespace allowed).
     * Returns std::nullopt for empty/non-numeric/trailing-junk/
     * overflowing input; range policy (>= 1, clamp to kMaxThreads)
     * is the caller's.  Exposed for tests.
     */
    static std::optional<long> parseThreadsEnv(const char *text);

    /** Process-wide shared pool, sized by defaultThreads() at first use. */
    static ThreadPool &global();

    /**
     * Shared pool of exactly @p size lanes (0 = global()).  Pools are
     * cached per size and live for the process; intended for explicit
     * thread-count requests (tests, scaling benches).
     */
    static ThreadPool &forThreads(unsigned size);

  private:
    void enqueue(std::function<void()> task);
    void workerLoop();

    unsigned size_ = 1;
    std::vector<std::thread> workers_;
    Mutex mu_;
    CondVar cv_;
    std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
    bool stop_ GUARDED_BY(mu_) = false;
    /** Workers inside task() right now.  Relaxed increments around
     *  the call: the counter is its own datum (see activeWorkers). */
    std::atomic<unsigned> active_{0};
};

} // namespace ploop

#endif // PHOTONLOOP_COMMON_THREAD_POOL_HPP
