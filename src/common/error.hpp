/**
 * @file
 * Error-reporting helpers following the gem5 fatal/panic split.
 *
 * fatal() is for user errors (bad configuration, invalid mapping): the
 * situation is expected to be reachable by a user of the library and is
 * reported as a recoverable exception so callers (and tests) can catch
 * it.  panic() is for internal invariant violations, i.e. bugs in
 * PhotonLoop itself, and aborts.
 */

#ifndef PHOTONLOOP_COMMON_ERROR_HPP
#define PHOTONLOOP_COMMON_ERROR_HPP

#include <stdexcept>
#include <string>

namespace ploop {

/** Exception thrown by fatal() for user-caused errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/**
 * Report a user error (bad spec, invalid mapping, ...).
 *
 * @param msg Human-readable description of what the user did wrong.
 * @throws FatalError always.
 */
[[noreturn]] void fatal(const std::string &msg);

/**
 * Report an internal invariant violation (a PhotonLoop bug) and abort.
 *
 * @param msg Description of the violated invariant.
 */
[[noreturn]] void panic(const std::string &msg);

/** fatal() unless @p cond holds. */
void fatalIf(bool cond, const std::string &msg);

/**
 * Literal-message overload: defers std::string construction to the
 * failure path, so hot-path checks with literal messages cost a
 * branch, not an allocation.  (Call sites that concatenate a message
 * should guard with `if (cond) fatal(...)` themselves.)
 */
inline void
fatalIf(bool cond, const char *msg)
{
    if (cond)
        fatal(msg);
}

/** panic() unless @p cond holds. */
void panicIf(bool cond, const std::string &msg);

/** Literal-message overload (see fatalIf). */
inline void
panicIf(bool cond, const char *msg)
{
    if (cond)
        panic(msg);
}

} // namespace ploop

#endif // PHOTONLOOP_COMMON_ERROR_HPP
