#include "common/units.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ploop {

double
dbmToWatts(double dbm)
{
    return 1e-3 * std::pow(10.0, dbm / 10.0);
}

double
wattsToDbm(double watts)
{
    panicIf(watts <= 0.0, "wattsToDbm of non-positive power");
    return 10.0 * std::log10(watts / 1e-3);
}

} // namespace ploop
