/**
 * @file
 * Cooperative cancellation for long-running requests.
 *
 * A CancelToken is created at a request's entry point (EvalService
 * builds one from SearchOptions::timeout_ms) and passed BY POINTER
 * down through the mapper's search phases.  Hot loops poll expired()
 * -- a relaxed atomic load plus, until the first trip, one
 * steady_clock read -- and bail out early; the serial top level then
 * throws CancelledError, which the protocol layer turns into a
 * `deadline_exceeded` error response with the request's op/id echoed.
 *
 * Contract notes:
 *  - cancellation is COOPERATIVE: a timed-out search stops at the
 *    next checkpoint, it is never interrupted mid-evaluation;
 *  - partial results are discarded by the throw, so a cancelled
 *    search can never surface a nondeterministic "best so far";
 *  - EvalCache entries written before the trip are kept -- cached
 *    values are bit-identical to fresh evaluations, so a cancelled
 *    attempt safely pre-warms the retry;
 *  - CancelledError is NOT a FatalError: the request did nothing
 *    wrong, it just ran out of budget, and callers that want to
 *    distinguish "bad request" from "deadline" can.
 */

#ifndef PHOTONLOOP_COMMON_CANCEL_HPP
#define PHOTONLOOP_COMMON_CANCEL_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace ploop {

/** Thrown at a cancellation checkpoint once a token expired.  The
 *  message always starts with "deadline_exceeded" so transports can
 *  classify it without a dedicated exception hierarchy. */
class CancelledError : public std::runtime_error
{
  public:
    explicit CancelledError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** See file comment.  Not copyable or movable: the token lives at
 *  the request's entry frame and everyone below holds a pointer. */
class CancelToken
{
  public:
    /** An inert token (never expires) -- the same as passing no
     *  token, which keeps call sites uniform. */
    CancelToken() = default;

    /** A token that expires @p timeout_ms from now (0 = inert). */
    explicit CancelToken(std::uint64_t timeout_ms)
    {
        if (timeout_ms > 0) {
            has_deadline_ = true;
            deadline_ = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
        }
    }

    CancelToken(const CancelToken &) = delete;
    CancelToken &operator=(const CancelToken &) = delete;

    /** Expire the token now (tests; future per-connection aborts). */
    void cancel() { expired_.store(true, std::memory_order_relaxed); }

    /**
     * True once the deadline passed or cancel() was called.  Cheap
     * enough for per-candidate polling: after the first trip the
     * answer is a relaxed atomic load (the clock result is latched).
     */
    bool expired() const
    {
        if (expired_.load(std::memory_order_relaxed))
            return true;
        if (!has_deadline_ ||
            std::chrono::steady_clock::now() < deadline_)
            return false;
        expired_.store(true, std::memory_order_relaxed);
        return true;
    }

  private:
    /** One-way latch, relaxed ordering on purpose: expiry carries no
     *  payload (no data is published through the flag -- observers
     *  only stop early), the steady_clock re-check makes a stale
     *  false harmless, and racing true-stores are idempotent.  The
     *  unwind that follows synchronizes via the pool's completion
     *  protocol, not via this flag. */
    mutable std::atomic<bool> expired_{false};
    bool has_deadline_ = false; ///< Immutable after construction.
    std::chrono::steady_clock::time_point deadline_{}; ///< Immutable.
};

/**
 * Serial-checkpoint helper: throw CancelledError when @p token (may
 * be null = no deadline) has expired.  Parallel loop BODIES should
 * poll token->expired() and return early instead -- the owning serial
 * frame calls this after the join, so exactly one throw unwinds the
 * search.
 */
inline void
throwIfCancelled(const CancelToken *token)
{
    if (token && token->expired())
        throw CancelledError(
            "deadline_exceeded: the request's timeout_ms budget "
            "elapsed before the work completed; partial results were "
            "discarded (cache warmth is kept)");
}

} // namespace ploop

#endif // PHOTONLOOP_COMMON_CANCEL_HPP
