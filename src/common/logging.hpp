/**
 * @file
 * Minimal leveled logging for PhotonLoop (inform/warn per gem5 style).
 *
 * Messages go to stderr so they never pollute bench/table stdout.
 * The global level can be raised to silence informational output in
 * tests and benchmarks.
 */

#ifndef PHOTONLOOP_COMMON_LOGGING_HPP
#define PHOTONLOOP_COMMON_LOGGING_HPP

#include <string>

namespace ploop {

/** Severity levels, ordered. */
enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Silent = 3 };

/** Set the minimum level that is emitted. */
void setLogLevel(LogLevel level);

/** Current minimum emitted level. */
LogLevel logLevel();

/** Informational message ("inform" in gem5 terms). */
void inform(const std::string &msg);

/** Warning: something works but might not be what the user wants. */
void warn(const std::string &msg);

/** Debug chatter, off by default. */
void debugLog(const std::string &msg);

} // namespace ploop

#endif // PHOTONLOOP_COMMON_LOGGING_HPP
