#include "common/error.hpp"

#include <cstdio>
#include <cstdlib>

namespace ploop {

void
fatal(const std::string &msg)
{
    throw FatalError("fatal: " + msg);
}

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatalIf(bool cond, const std::string &msg)
{
    if (cond)
        fatal(msg);
}

void
panicIf(bool cond, const std::string &msg)
{
    if (cond)
        panic(msg);
}

} // namespace ploop
