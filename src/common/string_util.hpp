/**
 * @file
 * String formatting helpers: join, split, trim, printf-style format,
 * and human-readable engineering-unit formatting for energies, sizes
 * and rates used in reports.
 */

#ifndef PHOTONLOOP_COMMON_STRING_UTIL_HPP
#define PHOTONLOOP_COMMON_STRING_UTIL_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace ploop {

/** Join @p parts with @p sep. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

/** Split @p s on character @p sep (empty fields kept). */
std::vector<std::string> split(const std::string &s, char sep);

/** Strip leading/trailing whitespace. */
std::string trim(const std::string &s);

/** printf-style formatting into a std::string. */
std::string strFormat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Lower-case ASCII copy. */
std::string toLower(const std::string &s);

/** True if @p s starts with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/**
 * Format an energy given in joules with an engineering prefix,
 * e.g. 1.23e-12 -> "1.23 pJ".
 */
std::string formatEnergy(double joules);

/** Format a byte count, e.g. 5242880 -> "5.00 MiB". */
std::string formatBytes(std::uint64_t bytes);

/** Format a dimensionless count with k/M/G suffix. */
std::string formatCount(double count);

} // namespace ploop

#endif // PHOTONLOOP_COMMON_STRING_UTIL_HPP
