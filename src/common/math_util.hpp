/**
 * @file
 * Small integer/float math helpers used throughout the modeling engine:
 * ceiling division, integer factorization, dB<->linear conversion, and
 * approximate floating-point comparison.
 */

#ifndef PHOTONLOOP_COMMON_MATH_UTIL_HPP
#define PHOTONLOOP_COMMON_MATH_UTIL_HPP

#include <cstdint>
#include <vector>

namespace ploop {

/** splitmix64 finalizer: cheap, strong 64-bit mixing (hash keys,
 *  decorrelating RNG seeds). */
inline std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Ceiling division for non-negative integers. @pre b > 0 */
std::uint64_t ceilDiv(std::uint64_t a, std::uint64_t b);

/** Round @p a up to the next multiple of @p b. @pre b > 0 */
std::uint64_t roundUp(std::uint64_t a, std::uint64_t b);

/** True if @p n is a power of two (0 is not). */
bool isPow2(std::uint64_t n);

/** Smallest power of two >= n. @pre n >= 1 */
std::uint64_t nextPow2(std::uint64_t n);

/** log2 of a power of two. @pre isPow2(n) */
unsigned log2Exact(std::uint64_t n);

/** All divisors of @p n in increasing order. @pre n >= 1 */
std::vector<std::uint64_t> divisors(std::uint64_t n);

/** Prime factorization of @p n as (prime, multiplicity) pairs. */
std::vector<std::pair<std::uint64_t, unsigned>>
primeFactorize(std::uint64_t n);

/**
 * All ordered factorizations of @p n into exactly @p parts factors
 * (each >= 1, product == n).  Used to enumerate tiling mapspaces.
 *
 * The count grows quickly; callers should bound n (loop bounds in DNN
 * layers are small-smooth) and parts (number of levels, <= ~6).
 */
std::vector<std::vector<std::uint64_t>>
orderedFactorizations(std::uint64_t n, unsigned parts);

/** Convert a power ratio in dB to a linear factor (10^(db/10)). */
double dbToLinear(double db);

/** Convert a linear power ratio to dB (10*log10(lin)). @pre lin > 0 */
double linearToDb(double lin);

/** Relative-tolerance float comparison (both near zero also matches). */
bool approxEqual(double a, double b, double rel_tol = 1e-9);

/** Clamp @p v to [lo, hi]. */
double clampDouble(double v, double lo, double hi);

} // namespace ploop

#endif // PHOTONLOOP_COMMON_MATH_UTIL_HPP
