/**
 * @file
 * ASCII table and horizontal-bar-chart rendering used by the benchmark
 * harnesses to print the paper's tables and figures on stdout.
 */

#ifndef PHOTONLOOP_COMMON_TABLE_HPP
#define PHOTONLOOP_COMMON_TABLE_HPP

#include <string>
#include <vector>

namespace ploop {

/**
 * A simple left/right-aligned text table.  Columns are sized to fit
 * the widest cell; numeric-looking cells are right-aligned.
 */
class Table
{
  public:
    /** @param title Optional heading printed above the table. */
    explicit Table(std::string title = "");

    /** Set the header row. */
    void setHeader(std::vector<std::string> header);

    /** Append a data row (ragged rows are padded with ""). */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal separator line. */
    void addSeparator();

    /** Render the table to a string (trailing newline included). */
    std::string render() const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    // Separator rows are encoded as empty row vectors.
    std::vector<std::vector<std::string>> rows_;
};

/**
 * A horizontal stacked-bar chart: one bar per row, each bar split into
 * per-segment glyph runs, with a shared scale.  This is the closest
 * terminal rendering of the paper's stacked-bar figures (Figs. 2-5).
 */
class BarChart
{
  public:
    /**
     * @param title Chart heading.
     * @param unit Unit label for the scale (e.g. "pJ/MAC").
     * @param width Number of character cells for a full-scale bar.
     */
    BarChart(std::string title, std::string unit, unsigned width = 60);

    /** Name the stacked segments (defines glyph assignment). */
    void setSegments(std::vector<std::string> names);

    /**
     * Add one bar.
     *
     * @param label Row label.
     * @param values One value per segment (same order as setSegments).
     */
    void addBar(const std::string &label, std::vector<double> values);

    /** Render the chart, legend and scale to a string. */
    std::string render() const;

  private:
    std::string title_;
    std::string unit_;
    unsigned width_;
    std::vector<std::string> segments_;
    std::vector<std::pair<std::string, std::vector<double>>> bars_;
};

} // namespace ploop

#endif // PHOTONLOOP_COMMON_TABLE_HPP
