/**
 * @file
 * Injectable time source for the observability layer.
 *
 * Everything in src/obs/ that needs "now" takes a Clock pointer and
 * falls back to the process steady clock when given none.  Tests
 * substitute a ManualClock and advance it explicitly, so histogram
 * quantiles, span durations and slow-request thresholds are asserted
 * on exact values -- no test ever sleeps to "make time pass".
 *
 * Nanosecond ticks: the histogram buckets are powers of two in ns
 * (see metrics.hpp) and span durations are reported in microseconds
 * with sub-microsecond precision, so ns is the one resolution every
 * consumer can derive from without rounding twice.
 */

#ifndef PHOTONLOOP_OBS_CLOCK_HPP
#define PHOTONLOOP_OBS_CLOCK_HPP

#include <atomic>
#include <chrono>
#include <cstdint>

namespace ploop {

/** See file comment. */
class Clock
{
  public:
    virtual ~Clock() = default;

    /** Monotonic now, in nanoseconds from an arbitrary origin. */
    virtual std::uint64_t nowNs() const = 0;
};

/** The real (steady_clock) time source; stateless and shared. */
class SteadyClock : public Clock
{
  public:
    std::uint64_t nowNs() const override
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
    }

    /** Process-wide instance (Clock* defaults resolve to this). */
    static const SteadyClock &instance()
    {
        static SteadyClock clock;
        return clock;
    }
};

/** Test clock: time moves only when advance() is called.  Atomic so
 *  worker threads may read it while the test thread advances it
 *  (relaxed: the tick value is the only datum; tests that need
 *  happens-before get it from their own joins). */
class ManualClock : public Clock
{
  public:
    explicit ManualClock(std::uint64_t start_ns = 0) : now_(start_ns)
    {}

    std::uint64_t nowNs() const override
    {
        return now_.load(std::memory_order_relaxed);
    }

    void advanceNs(std::uint64_t delta_ns)
    {
        now_.fetch_add(delta_ns, std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> now_;
};

/** @p clock or the process steady clock -- keeps call sites uniform
 *  ("pass nullptr for real time"). */
inline const Clock &
clockOrSteady(const Clock *clock)
{
    return clock ? *clock : SteadyClock::instance();
}

} // namespace ploop

#endif // PHOTONLOOP_OBS_CLOCK_HPP
