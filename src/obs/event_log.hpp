/**
 * @file
 * Structured operational event log: one JSON object per line, in
 * occurrence order, recording state CHANGES rather than request
 * traffic -- worker ejected/readmitted, reconnect attempt with its
 * backoff delay, failover redispatch, worker spawn/death, drain
 * begin/end.  Counters say how often something happened; the event
 * log says when, to whom, and in what order, which is what a 3am
 * incident needs.
 *
 * Schema contract (stable; tests parse it field-by-field): every
 * line is `{"ts_ms": <number>, "event": "<name>", ...}` with ts_ms
 * and event FIRST, followed by the event's own fields in the order
 * the emitter listed them.  ts_ms comes from the injected Clock
 * (ns / 1e6) so tests drive it with ManualClock; without an
 * injected clock it is wall-clock milliseconds since the Unix
 * epoch, so lines from different processes sort together.
 *
 * Write atomicity: each line is serialized to one buffer and handed
 * to the kernel as a single write(2) on an O_APPEND descriptor, so
 * concurrent writers (or a second process appending to the same
 * file) interleave whole lines, never fragments.  The emitter mutex
 * additionally orders lines from this process.  Events are rare
 * (state changes, not requests), so the lock is never contended on
 * a hot path.
 */

#ifndef PHOTONLOOP_OBS_EVENT_LOG_HPP
#define PHOTONLOOP_OBS_EVENT_LOG_HPP

#include <string>
#include <utility>
#include <vector>

#include "api/json.hpp"
#include "common/annotations.hpp"
#include "obs/clock.hpp"

namespace ploop {

/** See file comment. */
class EventLog
{
  public:
    /** Ordered event payload: appended after ts_ms/event verbatim. */
    using Fields = std::vector<std::pair<std::string, JsonValue>>;

    /**
     * @param path  JSONL sink; empty = stderr (the warning banner on
     *              open failure also falls back to stderr).
     * @param clock Injectable time source for ts_ms (nullptr =
     *              steady clock).
     */
    explicit EventLog(const std::string &path,
                      const Clock *clock = nullptr);
    ~EventLog();

    EventLog(const EventLog &) = delete;
    EventLog &operator=(const EventLog &) = delete;

    /** Append `{"ts_ms":..., "event": name, <fields...>}` as one
     *  atomic line. */
    void emit(const std::string &event, const Fields &fields);

    /** Lines written so far (tests; cheap, takes the lock). */
    std::uint64_t linesWritten() const;

  private:
    const Clock *clock_; ///< nullptr = steady.
    mutable Mutex mu_;
    int fd_ GUARDED_BY(mu_) = -1; ///< -1 = stderr fallback.
    std::uint64_t lines_ GUARDED_BY(mu_) = 0;
};

} // namespace ploop

#endif // PHOTONLOOP_OBS_EVENT_LOG_HPP
