/**
 * @file
 * Per-request trace: a span tree recording where a request's time
 * went (queue wait -> parse -> decode -> execute -> serialize, with
 * execute subdivided down to sweep points, hill-climb rounds and
 * random-search sample batches).
 *
 * A Trace is created by the protocol layer only when someone will
 * look at it -- the request carried `trace: true`, or the slow-
 * request log is armed -- and is threaded down the call stack as a
 * nullable pointer alongside the CancelToken.  The carrier is
 * SpanRef (trace + parent span id) plus the SpanScope RAII handle:
 * both are INERT when the trace pointer is null, so instrumented
 * code reads identically with tracing on or off and the untraced
 * hot path pays one pointer test per would-be span.
 *
 * Thread safety: spans are begun/ended from pool worker threads
 * (sweep points and shards run in parallel), so the span vector is
 * mutex-guarded.  That lock is acceptable precisely because tracing
 * is opt-in per request: the default path never takes it.
 *
 * Sum invariant (asserted by tests and the protocol smoke): sibling
 * spans under the root are sequential sections of one request, so
 * their durations sum to at most the root span's duration.  The
 * root starts at queue ADMISSION (handler entry backdated by the
 * scheduler-measured queue wait) and ends after response
 * serialization, so every child lies inside it by construction.
 */

#ifndef PHOTONLOOP_OBS_TRACE_HPP
#define PHOTONLOOP_OBS_TRACE_HPP

#include <cstdint>
#include <vector>

#include "api/json.hpp"
#include "common/annotations.hpp"
#include "obs/clock.hpp"

namespace ploop {

/** See file comment. */
class Trace
{
  public:
    using SpanId = std::uint32_t;

    /** The root span ("request"), created by the constructor. */
    static constexpr SpanId kRoot = 0;

    /** Begins the root span at clock-now.
     *  @param clock Injectable time source (nullptr = steady). */
    explicit Trace(const Clock *clock = nullptr);

    Trace(const Trace &) = delete;
    Trace &operator=(const Trace &) = delete;

    /** Open a child span of @p parent starting now.
     *  @param name Static string (span names are literals).
     *  @param index Optional ordinal (shard, round, point; -1 =
     *               none) distinguishing repeated sibling spans. */
    SpanId begin(const char *name, SpanId parent,
                 std::int64_t index = -1);

    /** Close @p id at clock-now (idempotent: later end() wins are
     *  not expected, but a double close is harmless). */
    void end(SpanId id);

    /** Record an already-measured interval (the synthetic
     *  queue_wait/parse spans, measured before the Trace existed). */
    SpanId addSpan(const char *name, SpanId parent,
                   std::uint64_t start_ns, std::uint64_t end_ns,
                   std::int64_t index = -1);

    /** Move the root start earlier by @p delta_ns: the scheduler
     *  measured queue wait before the handler (and this Trace)
     *  existed, and the root must cover it. */
    void backdateRootNs(std::uint64_t delta_ns);

    /** Close the root span (call once, after serialization). */
    void endRoot() { end(kRoot); }

    /** The trace clock's now (callers reuse it for synthetic
     *  spans so all timestamps share one source). */
    std::uint64_t nowNs() const { return clock_.nowNs(); }

    /** Root span duration so far (ns); after endRoot(), the
     *  request's total traced time. */
    std::uint64_t rootDurationNs() const;

    /**
     * The span tree as JSON: each node carries "name", "start_us"
     * (relative to the root start), "dur_us", optionally "index",
     * and "children" in creation order.  Attached to the response
     * as "trace" and to slow-request log lines.
     */
    JsonValue toJson() const;

  private:
    struct Span
    {
        const char *name;
        SpanId parent;
        std::int64_t index;
        std::uint64_t start_ns;
        std::uint64_t end_ns; ///< 0 while open.
    };

    JsonValue spanJson(const std::vector<Span> &spans,
                       std::size_t i, std::uint64_t origin_ns) const;

    const Clock &clock_;
    mutable Mutex mu_;
    std::vector<Span> spans_ GUARDED_BY(mu_);
};

/**
 * A nullable handle to one span: the unit instrumented signatures
 * accept (`SpanRef span = {}`), exactly parallel to the nullable
 * CancelToken pointer.  Inert when trace is null.
 */
struct SpanRef
{
    Trace *trace = nullptr;
    Trace::SpanId id = Trace::kRoot;
};

/**
 * RAII span: begins a child of @p parent on construction, ends it
 * on destruction.  Inert (no-op, no allocation) when the parent's
 * trace is null, so call sites need no `if (trace)` guards.
 */
class SpanScope
{
  public:
    SpanScope(SpanRef parent, const char *name,
              std::int64_t index = -1)
        : trace_(parent.trace)
    {
        if (trace_)
            id_ = trace_->begin(name, parent.id, index);
    }

    ~SpanScope()
    {
        if (trace_)
            trace_->end(id_);
    }

    SpanScope(const SpanScope &) = delete;
    SpanScope &operator=(const SpanScope &) = delete;

    /** This span as a parent for nested scopes (inert propagates). */
    SpanRef ref() const { return SpanRef{trace_, id_}; }

  private:
    Trace *trace_;
    Trace::SpanId id_ = Trace::kRoot;
};

} // namespace ploop

#endif // PHOTONLOOP_OBS_TRACE_HPP
