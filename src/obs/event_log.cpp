#include "obs/event_log.hpp"

#include <cerrno>
#include <chrono>
#include <cstdio>

#include <fcntl.h>
#include <unistd.h>

namespace ploop {

namespace {

/** Wall-clock ms since the Unix epoch (the no-injected-clock
 *  default; see the schema contract in the header). */
double
wallMs()
{
    using namespace std::chrono;
    return double(duration_cast<milliseconds>(
                      system_clock::now().time_since_epoch())
                      .count());
}

/** Write all of @p line; retries the rare short write / EINTR.
 *  O_APPEND makes each individual write(2) an atomic append, and
 *  JSONL lines are far below any pipe/file atomicity bound, so in
 *  practice the loop runs once. */
void
writeAll(int fd, const std::string &line)
{
    std::size_t off = 0;
    while (off < line.size()) {
        ssize_t n =
            ::write(fd, line.data() + off, line.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return; // Sink gone; events are best-effort.
        }
        off += std::size_t(n);
    }
}

} // namespace

EventLog::EventLog(const std::string &path, const Clock *clock)
    : clock_(clock)
{
    if (path.empty())
        return;
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND,
                    0644);
    if (fd < 0) {
        std::fprintf(stderr,
                     "ploop: warning: cannot open event log '%s'; "
                     "events go to stderr\n",
                     path.c_str());
        return;
    }
    MutexLock lock(mu_);
    fd_ = fd;
}

EventLog::~EventLog()
{
    MutexLock lock(mu_);
    if (fd_ >= 0)
        ::close(fd_);
}

void
EventLog::emit(const std::string &event, const Fields &fields)
{
    double ts_ms = clock_ ? double(clock_->nowNs()) / 1e6 : wallMs();
    JsonValue entry = JsonValue::object();
    entry.set("ts_ms", JsonValue::number(ts_ms));
    entry.set("event", JsonValue::string(event));
    for (const auto &[key, value] : fields)
        entry.set(key, value);
    std::string line = entry.serialize();
    line.push_back('\n');

    MutexLock lock(mu_);
    writeAll(fd_ >= 0 ? fd_ : STDERR_FILENO, line);
    ++lines_;
}

std::uint64_t
EventLog::linesWritten() const
{
    MutexLock lock(mu_);
    return lines_;
}

} // namespace ploop
