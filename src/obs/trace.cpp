#include "obs/trace.hpp"

namespace ploop {

Trace::Trace(const Clock *clock) : clock_(clockOrSteady(clock))
{
    MutexLock lock(mu_);
    spans_.push_back(Span{"request", kRoot, -1, clock_.nowNs(), 0});
}

Trace::SpanId
Trace::begin(const char *name, SpanId parent, std::int64_t index)
{
    std::uint64_t now = clock_.nowNs();
    MutexLock lock(mu_);
    spans_.push_back(Span{name, parent, index, now, 0});
    return static_cast<SpanId>(spans_.size() - 1);
}

void
Trace::end(SpanId id)
{
    std::uint64_t now = clock_.nowNs();
    MutexLock lock(mu_);
    if (id < spans_.size() && spans_[id].end_ns == 0)
        spans_[id].end_ns = now;
}

Trace::SpanId
Trace::addSpan(const char *name, SpanId parent,
               std::uint64_t start_ns, std::uint64_t end_ns,
               std::int64_t index)
{
    MutexLock lock(mu_);
    spans_.push_back(Span{name, parent, index, start_ns, end_ns});
    return static_cast<SpanId>(spans_.size() - 1);
}

void
Trace::backdateRootNs(std::uint64_t delta_ns)
{
    MutexLock lock(mu_);
    Span &root = spans_[kRoot];
    root.start_ns =
        root.start_ns >= delta_ns ? root.start_ns - delta_ns : 0;
}

std::uint64_t
Trace::rootDurationNs() const
{
    std::uint64_t now = clock_.nowNs();
    MutexLock lock(mu_);
    const Span &root = spans_[kRoot];
    std::uint64_t end = root.end_ns ? root.end_ns : now;
    return end >= root.start_ns ? end - root.start_ns : 0;
}

JsonValue
Trace::spanJson(const std::vector<Span> &spans, std::size_t i,
                std::uint64_t origin_ns) const
{
    const Span &s = spans[i];
    JsonValue node = JsonValue::object();
    node.set("name", JsonValue::string(s.name));
    std::uint64_t start =
        s.start_ns >= origin_ns ? s.start_ns - origin_ns : 0;
    // An unclosed span (only possible on an exception unwind that
    // skipped its scope) reports zero duration rather than lying.
    std::uint64_t end = s.end_ns >= s.start_ns ? s.end_ns : s.start_ns;
    node.set("start_us", JsonValue::number(double(start) / 1e3));
    node.set("dur_us",
             JsonValue::number(double(end - s.start_ns) / 1e3));
    if (s.index >= 0)
        node.set("index", JsonValue::number(double(s.index)));
    JsonValue children = JsonValue::array();
    for (std::size_t c = i + 1; c < spans.size(); ++c)
        if (spans[c].parent == i)
            children.push(spanJson(spans, c, origin_ns));
    node.set("children", std::move(children));
    return node;
}

JsonValue
Trace::toJson() const
{
    // Copy out under the lock, render outside it: rendering is
    // recursive and spanJson takes no locks on the copy.
    std::vector<Span> spans;
    {
        MutexLock lock(mu_);
        spans = spans_;
    }
    return spanJson(spans, kRoot, spans[kRoot].start_ns);
}

} // namespace ploop
