/**
 * @file
 * MetricsRegistry: the serving layer's metric store, rendered on
 * demand as Prometheus text exposition by the `metrics` protocol op.
 *
 * Three metric shapes cover everything the request path needs:
 *
 *  - Counter: an owned monotonic tally the instrumented code bumps
 *    directly (relaxed atomic; the handle is a stable reference, so
 *    the hot path never touches the registry lock).
 *  - Callback counters/gauges: the value is READ at render time from
 *    a function (cache hit counts, queue depth, pool utilization) --
 *    subsystems that already keep counters are surfaced without
 *    double bookkeeping.  Callback registrations return an id so an
 *    owner with a shorter lifetime than the registry (NetServer) can
 *    remove() them in its destructor, exactly like it clears the
 *    stats/health hooks.
 *  - Histogram: log-bucketed latency distribution with sharded
 *    relaxed-atomic buckets.  record() is wait-free and allocation-
 *    free (tested), so per-request latency tracking rides the hot
 *    path at negligible cost; quantiles are DETERMINISTIC (the upper
 *    bound of the bucket containing the rank), so tests assert exact
 *    p50/p95/p99 values from known sequences.
 *
 * Naming contract (enforced here with fatal() and mechanically by
 * tools/lint_invariants.py, rule metric-naming): every metric name
 * matches ^ploop_[a-z0-9_]+$ and carries non-empty help text.  Two
 * registrations of the same (name, labels, shape) return the same
 * instance; the same name with a different shape is a hard error.
 *
 * Thread safety: registration and render take the registry mutex;
 * Counter/Histogram handles are stable pointers into heap slots, so
 * recording never locks.  Render invokes value callbacks WHILE
 * holding the registry mutex -- callbacks must be cheap and must not
 * re-enter the registry (they take their own subsystem locks, which
 * never call back in, so no cycle is possible).
 */

#ifndef PHOTONLOOP_OBS_METRICS_HPP
#define PHOTONLOOP_OBS_METRICS_HPP

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/annotations.hpp"

namespace ploop {

/** Monotonic event tally.  Relaxed ordering: each counter is an
 *  independent statistic read only for reporting; no data is
 *  published through it. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1)
    {
        v_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> v_{0};
};

/**
 * Log-bucketed latency histogram over nanosecond durations.
 *
 * Buckets are powers of two: bucket b counts durations in
 * (2^(10+b-1), 2^(10+b)] ns -- the finite upper bounds run from
 * 1.024 us (2^10 ns) to ~34.4 s (2^35 ns), plus one overflow bucket.
 * Fixed boundaries make snapshots mergeable across shards, servers
 * and runs, and make quantiles reproducible: quantileNs() returns
 * the UPPER BOUND of the bucket holding the requested rank, so the
 * same recorded multiset always yields the same quantile, bit for
 * bit, at any thread count.
 *
 * record() is the hot-path operation: bucket index by bit scan, then
 * two relaxed fetch_adds on a per-thread shard -- no locks, no
 * allocation (tested), no false sharing (shards are cacheline-
 * aligned).
 */
class Histogram
{
  public:
    /** Finite buckets; index kBuckets is the overflow bucket. */
    static constexpr unsigned kBuckets = 26;

    /** Smallest finite upper bound (ns). */
    static constexpr std::uint64_t kMinUpperNs = 1024;

    /** Concurrency shards (fixed: snapshots must not depend on the
     *  thread count). */
    static constexpr unsigned kShards = 16;

    Histogram() = default;

    Histogram(const Histogram &) = delete;
    Histogram &operator=(const Histogram &) = delete;

    /** Count one duration.  Wait-free, allocation-free. */
    void record(std::uint64_t ns)
    {
        Shard &s = shards_[shardIndex()];
        // Relaxed throughout: bucket tallies are independent counts
        // read only by snapshot(); nothing is published through them
        // and snapshots tolerate torn cross-bucket views (each value
        // lands exactly once eventually).
        s.counts[bucketFor(ns)].fetch_add(1,
                                          std::memory_order_relaxed);
        s.sum_ns.fetch_add(ns, std::memory_order_relaxed);
    }

    /** The finite upper bound of bucket @p b (ns); b < kBuckets. */
    static std::uint64_t bucketUpperNs(unsigned b)
    {
        return kMinUpperNs << b;
    }

    /** Bucket index for a duration (kBuckets = overflow). */
    static unsigned bucketFor(std::uint64_t ns)
    {
        std::uint64_t upper = kMinUpperNs;
        for (unsigned b = 0; b < kBuckets; ++b, upper <<= 1)
            if (ns <= upper)
                return b;
        return kBuckets;
    }

    /** A coherent copy of the tallies (see class comment). */
    struct Snapshot
    {
        std::array<std::uint64_t, kBuckets + 1> counts{};
        std::uint64_t sum_ns = 0;

        /** Total recorded values. */
        std::uint64_t total() const
        {
            std::uint64_t n = 0;
            for (std::uint64_t c : counts)
                n += c;
            return n;
        }

        /** Fold @p other in (shard/server aggregation; associative
         *  and commutative -- tested). */
        void merge(const Snapshot &other)
        {
            for (unsigned b = 0; b <= kBuckets; ++b)
                counts[b] += other.counts[b];
            sum_ns += other.sum_ns;
        }

        /**
         * Deterministic quantile: the upper bound of the bucket
         * containing rank ceil(q * total), q in (0, 1].  Saturates
         * at the largest finite bound for overflow-bucket ranks;
         * 0 when nothing was recorded.
         */
        std::uint64_t quantileNs(double q) const;
    };

    Snapshot snapshot() const;

  private:
    /** Cacheline-sized so two threads' records never contend. */
    struct alignas(64) Shard
    {
        std::array<std::atomic<std::uint64_t>, kBuckets + 1> counts{};
        std::atomic<std::uint64_t> sum_ns{0};
    };

    /** Stable per-thread shard assignment (round-robin at first
     *  use); relaxed on the ticket -- the value itself is the only
     *  datum. */
    static unsigned shardIndex();

    std::array<Shard, kShards> shards_;
};

/** See file comment. */
class MetricsRegistry
{
  public:
    /** Label set, rendered in registration order. */
    using Labels = std::vector<std::pair<std::string, std::string>>;

    /** Render-time value source for callback metrics. */
    using ValueFn = std::function<double()>;

    MetricsRegistry() = default;

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** An owned counter handle (stable for the registry's life). */
    Counter &counter(const std::string &name, const std::string &help,
                     Labels labels = {});

    /** An owned histogram handle (stable for the registry's life). */
    Histogram &histogram(const std::string &name,
                         const std::string &help, Labels labels = {});

    /** A callback gauge; returns a removal id (see file comment). */
    std::uint64_t gauge(const std::string &name,
                        const std::string &help, ValueFn fn,
                        Labels labels = {});

    /** A callback counter (monotonicity is the callback's promise);
     *  returns a removal id. */
    std::uint64_t counterFn(const std::string &name,
                            const std::string &help, ValueFn fn,
                            Labels labels = {});

    /** Unregister a callback metric before its value source dies.
     *  Unknown ids are ignored (double-remove is harmless). */
    void remove(std::uint64_t id);

    /** The full Prometheus text exposition (HELP/TYPE per family,
     *  one sample line per series, histograms as cumulative
     *  _bucket{le=...}/_sum/_count with seconds units). */
    std::string renderPrometheus() const;

    /** Snapshot of a registered histogram series, or an empty
     *  snapshot when absent (quantile reporting: health/stats). */
    Histogram::Snapshot histogramSnapshot(const std::string &name,
                                          const Labels &labels) const;

  private:
    enum class Shape : std::uint8_t {
        CounterOwned,
        CounterFn,
        GaugeFn,
        Hist,
    };

    struct Entry
    {
        std::uint64_t id = 0;
        Shape shape = Shape::CounterOwned;
        Labels labels;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Histogram> hist;
        ValueFn fn;
    };

    struct Family
    {
        std::string name;
        std::string help;
        const char *type = "counter"; // Prometheus TYPE keyword.
        std::vector<Entry> entries;
    };

    /** Find-or-create the family / entry; fatal() on naming or
     *  shape violations (programmer error, not request error). */
    Family &familyFor(const std::string &name,
                      const std::string &help, const char *type)
        REQUIRES(mu_);
    Entry *findEntry(Family &fam, const Labels &labels, Shape shape)
        REQUIRES(mu_);

    mutable Mutex mu_;
    std::vector<Family> families_ GUARDED_BY(mu_);
    std::uint64_t next_id_ GUARDED_BY(mu_) = 1;
};

/** True when @p name matches ^ploop_[a-z0-9_]+$ (the project metric
 *  naming contract; exposed for tests). */
bool validMetricName(const std::string &name);

} // namespace ploop

#endif // PHOTONLOOP_OBS_METRICS_HPP
