#include "obs/metrics.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace ploop {

bool
validMetricName(const std::string &name)
{
    const std::string prefix = "ploop_";
    if (name.size() <= prefix.size() ||
        name.compare(0, prefix.size(), prefix) != 0)
        return false;
    for (std::size_t i = prefix.size(); i < name.size(); ++i) {
        char c = name[i];
        bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                  c == '_';
        if (!ok)
            return false;
    }
    return true;
}

// ------------------------------------------------------------ Histogram

unsigned
Histogram::shardIndex()
{
    // Round-robin shard assignment at each thread's first record();
    // relaxed on the ticket: the assigned index is the only datum,
    // nothing is published through it.
    static std::atomic<unsigned> next{0};
    thread_local unsigned mine =
        next.fetch_add(1, std::memory_order_relaxed) % kShards;
    return mine;
}

Histogram::Snapshot
Histogram::snapshot() const
{
    // Relaxed loads: each tally is an independent monotonic count; a
    // snapshot racing concurrent record()s may split one value's
    // bucket/sum update across reads, which only shifts that value
    // into the NEXT snapshot -- fine for reporting.
    Snapshot out;
    for (const Shard &s : shards_) {
        for (unsigned b = 0; b <= kBuckets; ++b)
            out.counts[b] +=
                s.counts[b].load(std::memory_order_relaxed);
        out.sum_ns += s.sum_ns.load(std::memory_order_relaxed);
    }
    return out;
}

std::uint64_t
Histogram::Snapshot::quantileNs(double q) const
{
    std::uint64_t n = total();
    if (n == 0)
        return 0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // Rank ceil(q*n) in [1, n]: the smallest bucket whose cumulative
    // count reaches it.  Upper-bound reporting makes the answer a
    // pure function of the recorded multiset -- no interpolation, no
    // scheduling sensitivity.
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(n)));
    if (rank < 1)
        rank = 1;
    std::uint64_t cum = 0;
    for (unsigned b = 0; b < kBuckets; ++b) {
        cum += counts[b];
        if (cum >= rank)
            return bucketUpperNs(b);
    }
    // Overflow bucket: saturate at the largest finite bound.
    return bucketUpperNs(kBuckets - 1);
}

// ------------------------------------------------------- MetricsRegistry

namespace {

/** Integral values render as integers (counters, bucket counts);
 *  everything else at round-trip precision. */
std::string
formatMetricValue(double v)
{
    if (v == std::floor(v) && std::fabs(v) < 9007199254740992.0)
        return strFormat("%lld", static_cast<long long>(v));
    return strFormat("%.17g", v);
}

/** Prometheus label-value escaping: backslash, quote, newline. */
std::string
escapeLabelValue(const std::string &v)
{
    std::string out;
    out.reserve(v.size());
    for (char c : v) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '"')
            out += "\\\"";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

/** Prometheus HELP-text escaping: backslash and newline. */
std::string
escapeHelp(const std::string &v)
{
    std::string out;
    out.reserve(v.size());
    for (char c : v) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

/** `{k="v",...}` (or "" without labels); @p extra appends one more
 *  pre-rendered pair (the histogram le). */
std::string
renderLabels(const MetricsRegistry::Labels &labels,
             const std::string &extra = std::string())
{
    if (labels.empty() && extra.empty())
        return "";
    std::string out = "{";
    for (const auto &[k, v] : labels) {
        if (out.size() > 1)
            out += ",";
        out += k + "=\"" + escapeLabelValue(v) + "\"";
    }
    if (!extra.empty()) {
        if (out.size() > 1)
            out += ",";
        out += extra;
    }
    out += "}";
    return out;
}

} // namespace

MetricsRegistry::Family &
MetricsRegistry::familyFor(const std::string &name,
                           const std::string &help, const char *type)
{
    fatalIf(!validMetricName(name),
            "metric name '" + name +
                "' violates the naming contract "
                "(^ploop_[a-z0-9_]+$)");
    fatalIf(help.empty(),
            "metric '" + name + "' needs non-empty help text");
    for (Family &fam : families_) {
        if (fam.name != name)
            continue;
        fatalIf(std::string(fam.type) != type,
                "metric '" + name + "' registered as " + fam.type +
                    " and again as " + type);
        return fam;
    }
    families_.push_back(Family{name, help, type, {}});
    return families_.back();
}

MetricsRegistry::Entry *
MetricsRegistry::findEntry(Family &fam, const Labels &labels,
                           Shape shape)
{
    for (Entry &e : fam.entries) {
        if (e.labels != labels)
            continue;
        fatalIf(e.shape != shape,
                "metric '" + fam.name +
                    "' series re-registered with a different shape");
        return &e;
    }
    return nullptr;
}

Counter &
MetricsRegistry::counter(const std::string &name,
                         const std::string &help, Labels labels)
{
    MutexLock lock(mu_);
    Family &fam = familyFor(name, help, "counter");
    if (Entry *e = findEntry(fam, labels, Shape::CounterOwned))
        return *e->counter;
    Entry entry;
    entry.id = next_id_++;
    entry.shape = Shape::CounterOwned;
    entry.labels = std::move(labels);
    entry.counter = std::make_unique<Counter>();
    Counter &out = *entry.counter;
    fam.entries.push_back(std::move(entry));
    return out;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           const std::string &help, Labels labels)
{
    MutexLock lock(mu_);
    Family &fam = familyFor(name, help, "histogram");
    if (Entry *e = findEntry(fam, labels, Shape::Hist))
        return *e->hist;
    Entry entry;
    entry.id = next_id_++;
    entry.shape = Shape::Hist;
    entry.labels = std::move(labels);
    entry.hist = std::make_unique<Histogram>();
    Histogram &out = *entry.hist;
    fam.entries.push_back(std::move(entry));
    return out;
}

std::uint64_t
MetricsRegistry::gauge(const std::string &name,
                       const std::string &help, ValueFn fn,
                       Labels labels)
{
    MutexLock lock(mu_);
    Family &fam = familyFor(name, help, "gauge");
    fatalIf(findEntry(fam, labels, Shape::GaugeFn) != nullptr,
            "gauge '" + name + "' series registered twice");
    Entry entry;
    entry.id = next_id_++;
    entry.shape = Shape::GaugeFn;
    entry.labels = std::move(labels);
    entry.fn = std::move(fn);
    fam.entries.push_back(std::move(entry));
    return fam.entries.back().id;
}

std::uint64_t
MetricsRegistry::counterFn(const std::string &name,
                           const std::string &help, ValueFn fn,
                           Labels labels)
{
    MutexLock lock(mu_);
    Family &fam = familyFor(name, help, "counter");
    fatalIf(findEntry(fam, labels, Shape::CounterFn) != nullptr,
            "counter '" + name + "' series registered twice");
    Entry entry;
    entry.id = next_id_++;
    entry.shape = Shape::CounterFn;
    entry.labels = std::move(labels);
    entry.fn = std::move(fn);
    fam.entries.push_back(std::move(entry));
    return fam.entries.back().id;
}

void
MetricsRegistry::remove(std::uint64_t id)
{
    MutexLock lock(mu_);
    for (Family &fam : families_) {
        for (std::size_t i = 0; i < fam.entries.size(); ++i) {
            if (fam.entries[i].id != id)
                continue;
            fam.entries.erase(fam.entries.begin() +
                              static_cast<std::ptrdiff_t>(i));
            return;
        }
    }
}

std::string
MetricsRegistry::renderPrometheus() const
{
    MutexLock lock(mu_);
    std::string out;
    for (const Family &fam : families_) {
        if (fam.entries.empty())
            continue; // every callback series was remove()d
        out += "# HELP " + fam.name + " " + escapeHelp(fam.help) +
               "\n";
        out += "# TYPE " + fam.name + " " + fam.type + "\n";
        for (const Entry &e : fam.entries) {
            switch (e.shape) {
            case Shape::CounterOwned:
                out += fam.name + renderLabels(e.labels) + " " +
                       formatMetricValue(
                           double(e.counter->value())) +
                       "\n";
                break;
            case Shape::CounterFn:
            case Shape::GaugeFn:
                out += fam.name + renderLabels(e.labels) + " " +
                       formatMetricValue(e.fn()) + "\n";
                break;
            case Shape::Hist: {
                Histogram::Snapshot snap = e.hist->snapshot();
                std::uint64_t cum = 0;
                for (unsigned b = 0; b < Histogram::kBuckets; ++b) {
                    cum += snap.counts[b];
                    out += fam.name + "_bucket" +
                           renderLabels(
                               e.labels,
                               strFormat(
                                   "le=\"%g\"",
                                   double(Histogram::bucketUpperNs(
                                       b)) /
                                       1e9)) +
                           " " + formatMetricValue(double(cum)) +
                           "\n";
                }
                cum += snap.counts[Histogram::kBuckets];
                out += fam.name + "_bucket" +
                       renderLabels(e.labels, "le=\"+Inf\"") + " " +
                       formatMetricValue(double(cum)) + "\n";
                out += fam.name + "_sum" + renderLabels(e.labels) +
                       " " +
                       formatMetricValue(double(snap.sum_ns) / 1e9) +
                       "\n";
                out += fam.name + "_count" + renderLabels(e.labels) +
                       " " + formatMetricValue(double(cum)) + "\n";
                break;
            }
            }
        }
    }
    return out;
}

Histogram::Snapshot
MetricsRegistry::histogramSnapshot(const std::string &name,
                                   const Labels &labels) const
{
    MutexLock lock(mu_);
    for (const Family &fam : families_) {
        if (fam.name != name)
            continue;
        for (const Entry &e : fam.entries)
            if (e.shape == Shape::Hist && e.labels == labels)
                return e.hist->snapshot();
    }
    return Histogram::Snapshot{};
}

} // namespace ploop
