#include "photonics/star_coupler.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace ploop {

bool
StarCouplerModel::supports(Action action) const
{
    // Passive: splitting costs no dynamic energy (loss is charged to
    // the laser through the link budget).
    return action == Action::Convert;
}

double
StarCouplerModel::energy(Action action, const Attributes &) const
{
    fatalIf(!supports(action),
            std::string("star_coupler does not support action ") +
                actionName(action));
    return 0.0;
}

double
StarCouplerModel::area(const Attributes &attrs) const
{
    double ports = attrs.getOr("ports", 8.0);
    double per_port =
        attrs.getOr("area_per_port", 50.0 * units::square_micrometer);
    return ports * per_port;
}

double
starCouplerLossDb(double n_way, double excess_db_per_stage)
{
    fatalIf(n_way < 1.0, "star coupler must have >= 1 way");
    if (n_way <= 1.0)
        return 0.0;
    double stages = std::ceil(std::log2(n_way));
    return 10.0 * std::log10(n_way) + excess_db_per_stage * stages;
}

} // namespace ploop
