/**
 * @file
 * Photodiode + transimpedance amplifier (TIA) model: the AO/AE
 * converter.  Accumulated optical partial sums land on the PD, whose
 * photocurrent is amplified into an analog-electrical sample for the
 * ADC.
 *
 * Estimator attributes:
 *  - energy_per_sample  J per sample (required; profiles supply it)
 *  - area               m^2 (default 150 um^2 for PD + TIA)
 *
 * Optical attributes (link budget):
 *  - sensitivity_w      optical power required for the target
 *                       precision.
 */

#ifndef PHOTONLOOP_PHOTONICS_PHOTODIODE_HPP
#define PHOTONLOOP_PHOTONICS_PHOTODIODE_HPP

#include "energy/estimator.hpp"

namespace ploop {

/** See file comment. */
class PhotodiodeModel : public Estimator
{
  public:
    std::string klass() const override { return "photodiode"; }
    bool supports(Action action) const override;
    double energy(Action action,
                  const Attributes &attrs) const override;
    double area(const Attributes &attrs) const override;
};

} // namespace ploop

#endif // PHOTONLOOP_PHOTONICS_PHOTODIODE_HPP
