#include "photonics/scaling.hpp"

#include "common/error.hpp"
#include "common/units.hpp"

namespace ploop {

const char *
scalingProfileName(ScalingProfile p)
{
    switch (p) {
      case ScalingProfile::Conservative: return "conservative";
      case ScalingProfile::Moderate: return "moderate";
      case ScalingProfile::Aggressive: return "aggressive";
    }
    panic("scalingProfileName: bad profile");
}

std::vector<ScalingProfile>
allScalingProfiles()
{
    return {ScalingProfile::Conservative, ScalingProfile::Moderate,
            ScalingProfile::Aggressive};
}

const PhotonicScaling &
scalingConstants(ScalingProfile p)
{
    static const PhotonicScaling conservative = {
        /*name=*/"conservative",
        /*mrr_modulate_j=*/300.0_fJ,
        /*mzm_modulate_j=*/3.0_pJ,
        /*pd_sample_j=*/900.0_fJ,
        /*adc_fom_j=*/20.0_fJ,
        /*dac_fom_j=*/5.0_fJ,
        /*laser_wallplug_eff=*/0.08,
        /*pd_sensitivity_w=*/25.0_uW,
        /*mrr_through_loss_db=*/0.10,
        /*mzm_insertion_loss_db=*/2.0,
        /*coupler_split_excess_db=*/0.5,
        /*waveguide_loss_db_per_mm=*/0.2,
        /*chip_coupling_loss_db=*/2.0,
        /*resolution_bits=*/8.0,
    };
    static const PhotonicScaling moderate = {
        /*name=*/"moderate",
        /*mrr_modulate_j=*/120.0_fJ,
        /*mzm_modulate_j=*/1.2_pJ,
        /*pd_sample_j=*/360.0_fJ,
        /*adc_fom_j=*/8.0_fJ,
        /*dac_fom_j=*/2.0_fJ,
        /*laser_wallplug_eff=*/0.10,
        /*pd_sensitivity_w=*/18.0_uW,
        /*mrr_through_loss_db=*/0.08,
        /*mzm_insertion_loss_db=*/1.5,
        /*coupler_split_excess_db=*/0.35,
        /*waveguide_loss_db_per_mm=*/0.15,
        /*chip_coupling_loss_db=*/1.5,
        /*resolution_bits=*/8.0,
    };
    static const PhotonicScaling aggressive = {
        /*name=*/"aggressive",
        /*mrr_modulate_j=*/40.0_fJ,
        /*mzm_modulate_j=*/0.4_pJ,
        /*pd_sample_j=*/120.0_fJ,
        /*adc_fom_j=*/2.5_fJ,
        /*dac_fom_j=*/0.8_fJ,
        /*laser_wallplug_eff=*/0.12,
        /*pd_sensitivity_w=*/8.0_uW,
        /*mrr_through_loss_db=*/0.05,
        /*mzm_insertion_loss_db=*/1.0,
        /*coupler_split_excess_db=*/0.2,
        /*waveguide_loss_db_per_mm=*/0.1,
        /*chip_coupling_loss_db=*/1.0,
        /*resolution_bits=*/8.0,
    };
    switch (p) {
      case ScalingProfile::Conservative: return conservative;
      case ScalingProfile::Moderate: return moderate;
      case ScalingProfile::Aggressive: return aggressive;
    }
    panic("scalingConstants: bad profile");
}

} // namespace ploop
