#include "photonics/mzm.hpp"

#include "common/error.hpp"
#include "common/units.hpp"

namespace ploop {

bool
MzmModel::supports(Action action) const
{
    return action == Action::Convert;
}

double
MzmModel::energy(Action action, const Attributes &attrs) const
{
    fatalIf(!supports(action),
            std::string("mzm does not support action ") +
                actionName(action));
    return attrs.get("energy_per_modulate");
}

double
MzmModel::area(const Attributes &attrs) const
{
    return attrs.getOr("area", 0.02 * units::square_millimeter);
}

} // namespace ploop
