#include "photonics/photodiode.hpp"

#include "common/error.hpp"
#include "common/units.hpp"

namespace ploop {

bool
PhotodiodeModel::supports(Action action) const
{
    return action == Action::Convert;
}

double
PhotodiodeModel::energy(Action action, const Attributes &attrs) const
{
    fatalIf(!supports(action),
            std::string("photodiode does not support action ") +
                actionName(action));
    return attrs.get("energy_per_sample");
}

double
PhotodiodeModel::area(const Attributes &attrs) const
{
    return attrs.getOr("area", 150.0 * units::square_micrometer);
}

} // namespace ploop
