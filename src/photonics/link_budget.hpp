/**
 * @file
 * Optical link-budget solver: derives the laser power an architecture
 * needs from the optical path losses and the photodiode sensitivity.
 *
 * For each wavelength channel the laser must deliver, at the
 * photodiode, enough power for the target precision.  Walking the
 * path backwards:
 *
 *   P_laser_opt = P_sensitivity * 10^(loss_total_dB / 10)
 *   loss_total  = chip coupling + modulator insertion + waveguide
 *                 propagation + per-ring through loss * rings passed
 *                 + star-coupler splitting (10log10 N + excess/stage)
 *
 * and the electrical (wall-plug) power is P_opt / efficiency, summed
 * over active channels.  Bigger broadcast fanouts (more input reuse)
 * therefore raise laser power -- the "Other AO" growth visible in the
 * paper's Fig. 5.
 */

#ifndef PHOTONLOOP_PHOTONICS_LINK_BUDGET_HPP
#define PHOTONLOOP_PHOTONICS_LINK_BUDGET_HPP

#include <string>

#include "photonics/scaling.hpp"

namespace ploop {

/** Inputs to the link-budget solve. */
struct LinkBudgetSpec
{
    /** Technology constants. */
    PhotonicScaling tech;

    /** Star-coupler broadcast fanout per channel (input reuse). */
    double broadcast_fanout = 1.0;

    /**
     * Partial sums optically combined before each photodiode (output
     * reuse).  Combining costs per-stage excess loss (power itself
     * adds constructively at the detector).
     */
    double accumulation_fanout = 1.0;

    /** Rings each channel passes on its bus (weight-bank depth). */
    double rings_in_path = 1.0;

    /** On-chip optical path length, mm. */
    double path_length_mm = 5.0;

    /** Number of simultaneously active wavelength channels. */
    double active_channels = 1.0;
};

/** Outputs of the link-budget solve. */
struct LinkBudgetResult
{
    double loss_db = 0;           ///< Total per-channel path loss.
    double power_per_channel_w = 0; ///< Optical power per channel.
    double optical_power_w = 0;   ///< Total optical power.
    double electrical_power_w = 0; ///< Wall-plug laser power.

    /** One-line summary. */
    std::string str() const;
};

/** Solve the link budget. */
LinkBudgetResult solveLinkBudget(const LinkBudgetSpec &spec);

} // namespace ploop

#endif // PHOTONLOOP_PHOTONICS_LINK_BUDGET_HPP
