/**
 * @file
 * Star coupler model: the passive optical broadcast element that
 * splits one modulated input across N receivers.  Splitting is
 * passive (no dynamic energy); its cost is optical loss, which the
 * link budget converts into laser power:
 *
 *   loss(N) = 10*log10(N) + excess_db * ceil(log2(N))
 *
 * (intrinsic 1/N splitting plus per-stage excess loss of the
 * cascaded coupler tree).
 *
 * Estimator attributes:
 *  - area_per_port  m^2 per output port (default 50 um^2)
 */

#ifndef PHOTONLOOP_PHOTONICS_STAR_COUPLER_HPP
#define PHOTONLOOP_PHOTONICS_STAR_COUPLER_HPP

#include "energy/estimator.hpp"

namespace ploop {

/** See file comment. */
class StarCouplerModel : public Estimator
{
  public:
    std::string klass() const override { return "star_coupler"; }
    bool supports(Action action) const override;
    double energy(Action action,
                  const Attributes &attrs) const override;
    double area(const Attributes &attrs) const override;
};

/**
 * Total splitting loss in dB of an N-way star coupler with the given
 * per-stage excess loss.  N=1 means no coupler (0 dB).
 */
double starCouplerLossDb(double n_way, double excess_db_per_stage);

} // namespace ploop

#endif // PHOTONLOOP_PHOTONICS_STAR_COUPLER_HPP
