/**
 * @file
 * Photonic technology scaling profiles.
 *
 * The Albireo paper (and ours) evaluates the system under projections
 * for future optical components: "conservative" uses demonstrated
 * device energies, "aggressive" uses optimistic end-of-roadmap
 * projections, "moderate" sits between.  All device estimators and
 * the Albireo architecture builder draw their constants from one of
 * these profiles, so a single switch re-scales the whole system
 * (paper Figs. 2 and 4).
 *
 * Values are assembled from the photonics literature cited by the
 * paper ([5], [12]-[20]): microring modulation/tuning in the
 * tens-to-hundreds of fJ, MZM drivers at pJ/symbol scale, photodiode+
 * TIA receivers at ~0.1-1 pJ/sample, multi-GS/s ADC Walden FoMs of a
 * few to tens of fJ/step.  Exact constants are calibration targets
 * (EXPERIMENTS.md records model-vs-reported).
 */

#ifndef PHOTONLOOP_PHOTONICS_SCALING_HPP
#define PHOTONLOOP_PHOTONICS_SCALING_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace ploop {

/** Named scaling points. */
enum class ScalingProfile : std::uint8_t {
    Conservative = 0, ///< Demonstrated devices.
    Moderate = 1,     ///< Mid-term projection.
    Aggressive = 2,   ///< End-of-roadmap projection.
};

/** Profile name ("conservative", ...). */
const char *scalingProfileName(ScalingProfile p);

/** All profiles, in order. */
std::vector<ScalingProfile> allScalingProfiles();

/** The technology constants of one scaling point. */
struct PhotonicScaling
{
    std::string name;

    // --- Dynamic energies (joules per action) ---
    double mrr_modulate_j;  ///< MRR weight modulation, per symbol.
    double mzm_modulate_j;  ///< MZM input modulation, per symbol.
    double pd_sample_j;     ///< Photodiode + TIA, per sample.
    double adc_fom_j;       ///< ADC Walden FoM (J per 2^bits step).
    double dac_fom_j;       ///< DAC FoM.

    // --- Optical link budget (losses in dB, powers in watts) ---
    double laser_wallplug_eff;     ///< Electrical->optical efficiency.
    double pd_sensitivity_w;       ///< Optical power needed at the PD.
    double mrr_through_loss_db;    ///< Per ring passed on a bus.
    double mzm_insertion_loss_db;  ///< Modulator insertion loss.
    double coupler_split_excess_db;///< Star-coupler excess per stage.
    double waveguide_loss_db_per_mm;
    double chip_coupling_loss_db;  ///< Laser-to-chip coupling.

    /** Data resolution the profile assumes (bits). */
    double resolution_bits;
};

/** Constants for profile @p p. */
const PhotonicScaling &scalingConstants(ScalingProfile p);

} // namespace ploop

#endif // PHOTONLOOP_PHOTONICS_SCALING_HPP
