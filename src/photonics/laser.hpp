/**
 * @file
 * Laser model.  The (off-chip) laser is a static-power component: it
 * runs for the whole execution, so its energy per MAC is inversely
 * proportional to achieved throughput -- underutilization directly
 * inflates laser energy (one of the full-system effects the paper
 * emphasizes).
 *
 * Estimator attributes:
 *  - power_w  electrical wall-plug power (required; usually computed
 *             by the link-budget solver and stored here)
 *  - area     m^2; 0 by default (off-chip)
 */

#ifndef PHOTONLOOP_PHOTONICS_LASER_HPP
#define PHOTONLOOP_PHOTONICS_LASER_HPP

#include "energy/estimator.hpp"

namespace ploop {

/** See file comment. */
class LaserModel : public Estimator
{
  public:
    std::string klass() const override { return "laser"; }
    bool supports(Action action) const override;
    double energy(Action action,
                  const Attributes &attrs) const override;
    double area(const Attributes &attrs) const override;
};

} // namespace ploop

#endif // PHOTONLOOP_PHOTONICS_LASER_HPP
