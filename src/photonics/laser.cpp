#include "photonics/laser.hpp"

#include "common/error.hpp"

namespace ploop {

bool
LaserModel::supports(Action action) const
{
    return action == Action::Power;
}

double
LaserModel::energy(Action action, const Attributes &attrs) const
{
    fatalIf(!supports(action),
            std::string("laser does not support action ") +
                actionName(action));
    return attrs.get("power_w");
}

double
LaserModel::area(const Attributes &attrs) const
{
    // Off-chip by default.
    return attrs.getOr("area", 0.0);
}

} // namespace ploop
