#include "photonics/waveguide.hpp"

#include "common/error.hpp"
#include "common/units.hpp"

namespace ploop {

bool
WaveguideModel::supports(Action action) const
{
    return action == Action::Convert;
}

double
WaveguideModel::energy(Action action, const Attributes &) const
{
    fatalIf(!supports(action),
            std::string("waveguide does not support action ") +
                actionName(action));
    return 0.0;
}

double
WaveguideModel::area(const Attributes &attrs) const
{
    return attrs.getOr("area", 0.0);
}

double
waveguideLossDb(double length_mm, double db_per_mm)
{
    fatalIf(length_mm < 0.0 || db_per_mm < 0.0,
            "waveguide loss arguments must be non-negative");
    return length_mm * db_per_mm;
}

bool
PhotonicMacModel::supports(Action action) const
{
    return action == Action::Compute;
}

double
PhotonicMacModel::energy(Action action, const Attributes &attrs) const
{
    fatalIf(!supports(action),
            std::string("photonic_mac does not support action ") +
                actionName(action));
    return attrs.getOr("energy_per_mac", 0.0);
}

double
PhotonicMacModel::area(const Attributes &attrs) const
{
    return attrs.getOr("area", 100.0 * units::square_micrometer);
}

} // namespace ploop
