#include "photonics/link_budget.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/string_util.hpp"
#include "photonics/star_coupler.hpp"
#include "photonics/waveguide.hpp"

namespace ploop {

LinkBudgetResult
solveLinkBudget(const LinkBudgetSpec &spec)
{
    fatalIf(spec.tech.laser_wallplug_eff <= 0.0 ||
                spec.tech.laser_wallplug_eff > 1.0,
            "laser wall-plug efficiency must be in (0, 1]");
    fatalIf(spec.broadcast_fanout < 1.0,
            "broadcast fanout must be >= 1");
    fatalIf(spec.active_channels < 0.0,
            "active channel count must be >= 0");

    LinkBudgetResult r;
    fatalIf(spec.accumulation_fanout < 1.0,
            "accumulation fanout must be >= 1");
    // Combining N partial sums onto one photodiode costs only the
    // per-stage excess loss of the combiner tree: the signal powers
    // themselves add at the detector.
    double combine_excess_db =
        spec.accumulation_fanout > 1.0
            ? spec.tech.coupler_split_excess_db *
                  std::ceil(std::log2(spec.accumulation_fanout))
            : 0.0;
    r.loss_db = spec.tech.chip_coupling_loss_db +
                spec.tech.mzm_insertion_loss_db +
                waveguideLossDb(spec.path_length_mm,
                                spec.tech.waveguide_loss_db_per_mm) +
                spec.tech.mrr_through_loss_db * spec.rings_in_path +
                starCouplerLossDb(spec.broadcast_fanout,
                                  spec.tech.coupler_split_excess_db) +
                combine_excess_db;
    r.power_per_channel_w =
        spec.tech.pd_sensitivity_w * dbToLinear(r.loss_db);
    r.optical_power_w = r.power_per_channel_w * spec.active_channels;
    r.electrical_power_w =
        r.optical_power_w / spec.tech.laser_wallplug_eff;
    return r;
}

std::string
LinkBudgetResult::str() const
{
    return strFormat(
        "loss=%.2f dB, %.3g mW/channel optical, %.3g W wall-plug",
        loss_db, power_per_channel_w * 1e3, electrical_power_w);
}

} // namespace ploop
