#include "photonics/mrr.hpp"

#include "common/error.hpp"
#include "common/units.hpp"

namespace ploop {

bool
MrrModel::supports(Action action) const
{
    return action == Action::Convert;
}

double
MrrModel::energy(Action action, const Attributes &attrs) const
{
    fatalIf(!supports(action),
            std::string("mrr does not support action ") +
                actionName(action));
    return attrs.get("energy_per_modulate");
}

double
MrrModel::area(const Attributes &attrs) const
{
    return attrs.getOr("area", 400.0 * units::square_micrometer);
}

} // namespace ploop
