/**
 * @file
 * Microring resonator (MRR) model.  MRRs serve as the AE/AO weight
 * modulators in Albireo: an analog-electrical weight value detunes the
 * ring, imprinting the weight onto the passing light.
 *
 * Estimator attributes:
 *  - energy_per_modulate  J per symbol imprinted (required; profiles
 *                         supply it)
 *  - area                 m^2 per ring (default 400 um^2: ~10 um
 *                         radius ring + driver + thermal tuner)
 *
 * Optical attributes (used by the link budget, not the estimator):
 *  - through_loss_db      loss per ring passed on a bus.
 */

#ifndef PHOTONLOOP_PHOTONICS_MRR_HPP
#define PHOTONLOOP_PHOTONICS_MRR_HPP

#include "energy/estimator.hpp"

namespace ploop {

/** See file comment. */
class MrrModel : public Estimator
{
  public:
    std::string klass() const override { return "mrr"; }
    bool supports(Action action) const override;
    double energy(Action action,
                  const Attributes &attrs) const override;
    double area(const Attributes &attrs) const override;
};

} // namespace ploop

#endif // PHOTONLOOP_PHOTONICS_MRR_HPP
