/**
 * @file
 * Mach-Zehnder modulator (MZM) model.  MZMs serve as the AE/AO input
 * modulators: an analog input drive sets the interferometer phase,
 * imprinting the activation onto the optical carrier.  MZMs are
 * faster but larger and more power hungry than microrings.
 *
 * Estimator attributes:
 *  - energy_per_modulate  J per symbol (required; profiles supply it)
 *  - area                 m^2 (default 0.02 mm^2: mm-scale device)
 *
 * Optical attributes (link budget):
 *  - insertion_loss_db
 */

#ifndef PHOTONLOOP_PHOTONICS_MZM_HPP
#define PHOTONLOOP_PHOTONICS_MZM_HPP

#include "energy/estimator.hpp"

namespace ploop {

/** See file comment. */
class MzmModel : public Estimator
{
  public:
    std::string klass() const override { return "mzm"; }
    bool supports(Action action) const override;
    double energy(Action action,
                  const Attributes &attrs) const override;
    double area(const Attributes &attrs) const override;
};

} // namespace ploop

#endif // PHOTONLOOP_PHOTONICS_MZM_HPP
