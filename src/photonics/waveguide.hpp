/**
 * @file
 * Waveguide model: on-chip optical routing.  Like the star coupler it
 * is passive; its propagation loss feeds the link budget.
 *
 * Estimator attributes:
 *  - area: negligible, returns 0 by default.
 */

#ifndef PHOTONLOOP_PHOTONICS_WAVEGUIDE_HPP
#define PHOTONLOOP_PHOTONICS_WAVEGUIDE_HPP

#include "energy/estimator.hpp"

namespace ploop {

/** See file comment. */
class WaveguideModel : public Estimator
{
  public:
    std::string klass() const override { return "waveguide"; }
    bool supports(Action action) const override;
    double energy(Action action,
                  const Attributes &attrs) const override;
    double area(const Attributes &attrs) const override;
};

/** Propagation loss in dB over @p length_mm at @p db_per_mm. */
double waveguideLossDb(double length_mm, double db_per_mm);

/**
 * Photonic MAC "compute unit" model: the optical multiply itself is
 * passive (the modulators already paid the energy), so compute energy
 * is zero by default, with an attribute escape hatch.
 *
 * Attributes:
 *  - energy_per_mac  J per MAC (default 0)
 *  - area            m^2 per MAC position (default 100 um^2 of
 *                    waveguide/combiner fabric)
 */
class PhotonicMacModel : public Estimator
{
  public:
    std::string klass() const override { return "photonic_mac"; }
    bool supports(Action action) const override;
    double energy(Action action,
                  const Attributes &attrs) const override;
    double area(const Attributes &attrs) const override;
};

} // namespace ploop

#endif // PHOTONLOOP_PHOTONICS_WAVEGUIDE_HPP
