#include "energy/regfile_model.hpp"

#include "common/error.hpp"
#include "common/units.hpp"

namespace ploop {

bool
RegfileModel::supports(Action action) const
{
    return action == Action::Read || action == Action::Write ||
           action == Action::Update;
}

double
RegfileModel::energy(Action action, const Attributes &attrs) const
{
    fatalIf(!supports(action),
            std::string("regfile does not support action ") +
                actionName(action));
    double word_bits = attrs.get("word_bits");
    double e_bit = attrs.getOr("energy_per_bit", 1.5_fJ);
    double per_access = word_bits * e_bit;
    return action == Action::Update ? 2.0 * per_access : per_access;
}

double
RegfileModel::area(const Attributes &attrs) const
{
    double word_bits = attrs.get("word_bits");
    double capacity_words = attrs.getOr("capacity_words", 16.0);
    double area_per_bit =
        attrs.getOr("area_per_bit", 1.2 * units::square_micrometer);
    return word_bits * capacity_words * area_per_bit;
}

bool
DigitalMacModel::supports(Action action) const
{
    return action == Action::Compute;
}

double
DigitalMacModel::energy(Action action, const Attributes &attrs) const
{
    fatalIf(!supports(action),
            std::string("mac does not support action ") +
                actionName(action));
    return attrs.getOr("energy_per_mac", 0.25_pJ);
}

double
DigitalMacModel::area(const Attributes &attrs) const
{
    return attrs.getOr("area", 500.0 * units::square_micrometer);
}

} // namespace ploop
