#include "energy/sram_model.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace ploop {

bool
SramModel::supports(Action action) const
{
    return action == Action::Read || action == Action::Write ||
           action == Action::Update;
}

double
SramModel::sizeScale(double capacity_bits)
{
    // Reference: 64 KiB array.  Quarter-power growth approximates the
    // bitline/wordline wire-length growth of banked arrays.
    constexpr double ref_bits = 64.0 * 1024 * 8;
    double scale = std::pow(capacity_bits / ref_bits, 0.25);
    return scale < 0.5 ? 0.5 : scale;
}

double
SramModel::energy(Action action, const Attributes &attrs) const
{
    fatalIf(!supports(action),
            std::string("sram does not support action ") +
                actionName(action));
    double word_bits = attrs.get("word_bits");
    double capacity_words = attrs.getOr("capacity_words", 4096.0);
    double e_bit = attrs.getOr("energy_per_bit", 15.0_fJ);
    double write_factor = attrs.getOr("write_factor", 1.1);

    double read = e_bit * word_bits *
                  sizeScale(capacity_words * word_bits);
    switch (action) {
      case Action::Read: return read;
      case Action::Write: return read * write_factor;
      case Action::Update: return read * (1.0 + write_factor);
      default: break;
    }
    panic("sram energy: unreachable");
}

double
SramModel::area(const Attributes &attrs) const
{
    double word_bits = attrs.get("word_bits");
    double capacity_words = attrs.getOr("capacity_words", 4096.0);
    double area_per_bit =
        attrs.getOr("area_per_bit", 0.3 * units::square_micrometer);
    return capacity_words * word_bits * area_per_bit;
}

} // namespace ploop
