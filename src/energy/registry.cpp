#include "energy/registry.hpp"

#include "common/error.hpp"
#include "energy/adc_model.hpp"
#include "energy/dac_model.hpp"
#include "energy/dram_model.hpp"
#include "energy/regfile_model.hpp"
#include "energy/sram_model.hpp"
#include "energy/wire_model.hpp"
#include "photonics/laser.hpp"
#include "photonics/mrr.hpp"
#include "photonics/mzm.hpp"
#include "photonics/photodiode.hpp"
#include "photonics/star_coupler.hpp"
#include "photonics/waveguide.hpp"

namespace ploop {

void
EnergyRegistry::registerEstimator(EstimatorPtr estimator)
{
    fatalIf(!estimator, "null estimator");
    std::string klass = estimator->klass();
    fatalIf(klass.empty(), "estimator has empty class name");
    estimators_[klass] = std::move(estimator);
}

bool
EnergyRegistry::has(const std::string &klass) const
{
    return estimators_.count(klass) != 0;
}

const Estimator &
EnergyRegistry::lookup(const std::string &klass) const
{
    auto it = estimators_.find(klass);
    if (it == estimators_.end())
        fatal("no estimator registered for component class '" + klass +
              "'");
    return *it->second;
}

double
EnergyRegistry::energy(const std::string &klass, Action action,
                       const Attributes &attrs) const
{
    return lookup(klass).energy(action, attrs);
}

double
EnergyRegistry::area(const std::string &klass,
                     const Attributes &attrs) const
{
    return lookup(klass).area(attrs);
}

std::vector<std::string>
EnergyRegistry::classes() const
{
    std::vector<std::string> out;
    out.reserve(estimators_.size());
    for (const auto &[k, v] : estimators_)
        out.push_back(k);
    return out;
}

EnergyRegistry
makeDefaultRegistry()
{
    EnergyRegistry reg;
    // Electrical.
    reg.registerEstimator(std::make_unique<SramModel>());
    reg.registerEstimator(std::make_unique<RegfileModel>());
    reg.registerEstimator(std::make_unique<DigitalMacModel>());
    reg.registerEstimator(std::make_unique<DramModel>());
    reg.registerEstimator(std::make_unique<AdcModel>());
    reg.registerEstimator(std::make_unique<DacModel>());
    reg.registerEstimator(std::make_unique<WireModel>());
    // Photonic.
    reg.registerEstimator(std::make_unique<MrrModel>());
    reg.registerEstimator(std::make_unique<MzmModel>());
    reg.registerEstimator(std::make_unique<PhotodiodeModel>());
    reg.registerEstimator(std::make_unique<StarCouplerModel>());
    reg.registerEstimator(std::make_unique<WaveguideModel>());
    reg.registerEstimator(std::make_unique<PhotonicMacModel>());
    reg.registerEstimator(std::make_unique<LaserModel>());
    return reg;
}

} // namespace ploop
