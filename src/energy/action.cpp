#include "energy/action.hpp"

#include "common/error.hpp"

namespace ploop {

const char *
actionName(Action a)
{
    switch (a) {
      case Action::Read: return "read";
      case Action::Write: return "write";
      case Action::Update: return "update";
      case Action::Convert: return "convert";
      case Action::Compute: return "compute";
      case Action::Power: return "power";
    }
    panic("actionName: bad action");
}

} // namespace ploop
