/**
 * @file
 * The estimator plug-in interface.  Each estimator models one
 * component class ("sram", "dram", "adc", "mrr", ...) and maps
 * (action, attributes) to energy per action (joules; for
 * Action::Power, watts) and attributes to area (square meters).
 *
 * Estimators are deliberately analytical and closed-form, in the
 * Accelergy tradition: they capture first-order scaling (with
 * capacity, resolution, fanout, ...) with published reference points,
 * not SPICE-level detail.
 */

#ifndef PHOTONLOOP_ENERGY_ESTIMATOR_HPP
#define PHOTONLOOP_ENERGY_ESTIMATOR_HPP

#include <memory>
#include <string>

#include "arch/component.hpp"
#include "energy/action.hpp"

namespace ploop {

/** Base class for component energy/area models. */
class Estimator
{
  public:
    virtual ~Estimator();

    /** The component class this estimator serves. */
    virtual std::string klass() const = 0;

    /** True if @p action is meaningful for this component class. */
    virtual bool supports(Action action) const = 0;

    /**
     * Energy per action in joules (watts for Action::Power).
     *
     * @param action The action performed.
     * @param attrs Component attributes (class-specific keys).
     */
    virtual double energy(Action action,
                          const Attributes &attrs) const = 0;

    /** Component area in square meters. */
    virtual double area(const Attributes &attrs) const = 0;
};

using EstimatorPtr = std::unique_ptr<Estimator>;

} // namespace ploop

#endif // PHOTONLOOP_ENERGY_ESTIMATOR_HPP
