/**
 * @file
 * Digital-to-analog converter (DE/AE) energy model.  DACs are
 * substantially cheaper than ADCs at the same resolution (no
 * comparator ladder / successive approximation); we model the same
 * exponential form with a smaller figure of merit.
 *
 * Attributes:
 *  - resolution      bits (required)
 *  - fom_j_per_step  joules per step (default 2.5 fJ; profiles
 *                    override)
 *  - area_per_step   area per step, m^2 (default 1.5 um^2)
 */

#ifndef PHOTONLOOP_ENERGY_DAC_MODEL_HPP
#define PHOTONLOOP_ENERGY_DAC_MODEL_HPP

#include "energy/estimator.hpp"

namespace ploop {

/** See file comment. */
class DacModel : public Estimator
{
  public:
    std::string klass() const override { return "dac"; }
    bool supports(Action action) const override;
    double energy(Action action,
                  const Attributes &attrs) const override;
    double area(const Attributes &attrs) const override;
};

} // namespace ploop

#endif // PHOTONLOOP_ENERGY_DAC_MODEL_HPP
