/**
 * @file
 * The estimator registry: resolves component classes to estimators,
 * in the Accelergy plug-in style.  makeDefaultRegistry() installs all
 * built-in electrical and photonic models; users can register their
 * own estimators (see examples/custom_component.cpp).
 */

#ifndef PHOTONLOOP_ENERGY_REGISTRY_HPP
#define PHOTONLOOP_ENERGY_REGISTRY_HPP

#include <map>
#include <string>
#include <vector>

#include "energy/estimator.hpp"

namespace ploop {

/** Maps component-class names to estimators. */
class EnergyRegistry
{
  public:
    EnergyRegistry() = default;

    // Movable, not copyable (owns estimators).
    EnergyRegistry(EnergyRegistry &&) = default;
    EnergyRegistry &operator=(EnergyRegistry &&) = default;
    EnergyRegistry(const EnergyRegistry &) = delete;
    EnergyRegistry &operator=(const EnergyRegistry &) = delete;

    /**
     * Register an estimator; replaces any previous estimator for the
     * same class (so users can override built-ins).
     */
    void registerEstimator(EstimatorPtr estimator);

    /** True if @p klass has an estimator. */
    bool has(const std::string &klass) const;

    /** Estimator for @p klass; fatal() if absent. */
    const Estimator &lookup(const std::string &klass) const;

    /** Energy per action for (@p klass, @p action, @p attrs). */
    double energy(const std::string &klass, Action action,
                  const Attributes &attrs) const;

    /** Area for (@p klass, @p attrs). */
    double area(const std::string &klass,
                const Attributes &attrs) const;

    /** Registered class names, sorted. */
    std::vector<std::string> classes() const;

  private:
    std::map<std::string, EstimatorPtr> estimators_;
};

/**
 * Registry with all built-in models: sram, regfile, dram, adc, dac,
 * wire, mac, and the photonic set (mrr, mzm, laser, star_coupler,
 * photodiode, waveguide, photonic_mac).
 */
EnergyRegistry makeDefaultRegistry();

} // namespace ploop

#endif // PHOTONLOOP_ENERGY_REGISTRY_HPP
