/**
 * @file
 * Small register-file / latch-array model for the innermost operand
 * registers.  Flat per-bit energy (no array-size scaling: these are
 * tens of words).
 *
 * Attributes:
 *  - word_bits       bits per word (required)
 *  - energy_per_bit  joules per bit per access (default 1.5 fJ)
 *  - capacity_words  used only for area (default 16)
 *  - area_per_bit    m^2 per bit (default 1.2 um^2, flop-based)
 */

#ifndef PHOTONLOOP_ENERGY_REGFILE_MODEL_HPP
#define PHOTONLOOP_ENERGY_REGFILE_MODEL_HPP

#include "energy/estimator.hpp"

namespace ploop {

/** See file comment. */
class RegfileModel : public Estimator
{
  public:
    std::string klass() const override { return "regfile"; }
    bool supports(Action action) const override;
    double energy(Action action,
                  const Attributes &attrs) const override;
    double area(const Attributes &attrs) const override;
};

/**
 * Digital MAC unit model (used by electrical baselines and as the
 * default compute class).
 *
 * Attributes:
 *  - energy_per_mac  joules per MAC (default 0.25 pJ, 8-bit @ ~28nm)
 *  - area            m^2 per MAC unit (default 500 um^2)
 */
class DigitalMacModel : public Estimator
{
  public:
    std::string klass() const override { return "mac"; }
    bool supports(Action action) const override;
    double energy(Action action,
                  const Attributes &attrs) const override;
    double area(const Attributes &attrs) const override;
};

} // namespace ploop

#endif // PHOTONLOOP_ENERGY_REGFILE_MODEL_HPP
