/**
 * @file
 * SRAM buffer energy/area model.
 *
 * First-order CACTI-like scaling: read energy grows with word width
 * and (weakly) with array capacity via longer bitlines/wordlines.
 *
 * Attributes:
 *  - word_bits        bits per accessed word (required)
 *  - capacity_words   array capacity in words (default 4096)
 *  - energy_per_bit   base read energy per bit at the 64 KiB reference
 *                     size, joules (default 15 fJ)
 *  - write_factor     write energy relative to read (default 1.1)
 *  - area_per_bit     cell+overhead area per bit, m^2 (default
 *                     0.3 um^2)
 */

#ifndef PHOTONLOOP_ENERGY_SRAM_MODEL_HPP
#define PHOTONLOOP_ENERGY_SRAM_MODEL_HPP

#include "energy/estimator.hpp"

namespace ploop {

/** See file comment. */
class SramModel : public Estimator
{
  public:
    std::string klass() const override { return "sram"; }
    bool supports(Action action) const override;
    double energy(Action action,
                  const Attributes &attrs) const override;
    double area(const Attributes &attrs) const override;

    /** Capacity-dependent scale factor ((bits / 512Kib)^0.25, >=0.5). */
    static double sizeScale(double capacity_bits);
};

} // namespace ploop

#endif // PHOTONLOOP_ENERGY_SRAM_MODEL_HPP
