/**
 * @file
 * Analog-to-digital converter (AE/DE) energy model based on the
 * Walden figure of merit: E_conv = FoM * 2^bits.  This captures the
 * exponential resolution dependence that makes ADCs the dominant
 * converter cost in CiM and photonic systems (paper refs [8], [9]).
 *
 * Attributes:
 *  - resolution      bits (required)
 *  - fom_j_per_step  Walden FoM, joules per conversion step
 *                    (default 10 fJ; scaling profiles override)
 *  - area_per_step   area per conversion step, m^2 (default 6 um^2)
 */

#ifndef PHOTONLOOP_ENERGY_ADC_MODEL_HPP
#define PHOTONLOOP_ENERGY_ADC_MODEL_HPP

#include "energy/estimator.hpp"

namespace ploop {

/** See file comment. */
class AdcModel : public Estimator
{
  public:
    std::string klass() const override { return "adc"; }
    bool supports(Action action) const override;
    double energy(Action action,
                  const Attributes &attrs) const override;
    double area(const Attributes &attrs) const override;
};

} // namespace ploop

#endif // PHOTONLOOP_ENERGY_ADC_MODEL_HPP
