#include "energy/wire_model.hpp"

#include "common/error.hpp"
#include "common/units.hpp"

namespace ploop {

bool
WireModel::supports(Action action) const
{
    // Wires move words; "read" doubles as "transfer one word", and
    // wires can also appear inside converter chains (e.g. an AE
    // analog distribution wire), charged as "convert".
    return action == Action::Read || action == Action::Write ||
           action == Action::Convert;
}

double
WireModel::energy(Action action, const Attributes &attrs) const
{
    fatalIf(!supports(action),
            std::string("wire does not support action ") +
                actionName(action));
    double word_bits = attrs.get("word_bits");
    double length_mm = attrs.getOr("length_mm", 1.0);
    double e_bit_mm = attrs.getOr("energy_per_bit_mm", 50.0_fJ);
    return word_bits * length_mm * e_bit_mm;
}

double
WireModel::area(const Attributes &) const
{
    // Routing area is accounted in the components it connects.
    return 0.0;
}

} // namespace ploop
