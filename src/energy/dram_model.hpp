/**
 * @file
 * Off-chip DRAM energy model: constant energy per bit transferred
 * (activation + I/O amortized), the standard Timeloop treatment.
 *
 * Attributes:
 *  - word_bits        bits per word (required)
 *  - energy_per_bit   joules per bit moved (default 12.5 pJ, DDR-class
 *                     including PHY; LPDDR systems override lower)
 */

#ifndef PHOTONLOOP_ENERGY_DRAM_MODEL_HPP
#define PHOTONLOOP_ENERGY_DRAM_MODEL_HPP

#include "energy/estimator.hpp"

namespace ploop {

/** See file comment. */
class DramModel : public Estimator
{
  public:
    std::string klass() const override { return "dram"; }
    bool supports(Action action) const override;
    double energy(Action action,
                  const Attributes &attrs) const override;
    double area(const Attributes &attrs) const override;
};

} // namespace ploop

#endif // PHOTONLOOP_ENERGY_DRAM_MODEL_HPP
