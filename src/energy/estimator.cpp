#include "energy/estimator.hpp"

namespace ploop {

// Out-of-line destructor anchors the vtable in this translation unit.
Estimator::~Estimator() = default;

} // namespace ploop
