/**
 * @file
 * On-chip electrical wire/link energy model: energy per bit per mm
 * of traversal.  Used for the digital NoC between buffers.
 *
 * Attributes:
 *  - word_bits          bits per word moved (required)
 *  - length_mm          traversal length in mm (default 1.0)
 *  - energy_per_bit_mm  joules per bit per mm (default 50 fJ)
 */

#ifndef PHOTONLOOP_ENERGY_WIRE_MODEL_HPP
#define PHOTONLOOP_ENERGY_WIRE_MODEL_HPP

#include "energy/estimator.hpp"

namespace ploop {

/** See file comment. */
class WireModel : public Estimator
{
  public:
    std::string klass() const override { return "wire"; }
    bool supports(Action action) const override;
    double energy(Action action,
                  const Attributes &attrs) const override;
    double area(const Attributes &attrs) const override;
};

} // namespace ploop

#endif // PHOTONLOOP_ENERGY_WIRE_MODEL_HPP
