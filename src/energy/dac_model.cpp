#include "energy/dac_model.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace ploop {

bool
DacModel::supports(Action action) const
{
    return action == Action::Convert;
}

double
DacModel::energy(Action action, const Attributes &attrs) const
{
    fatalIf(!supports(action),
            std::string("dac does not support action ") +
                actionName(action));
    double bits = attrs.get("resolution");
    double fom = attrs.getOr("fom_j_per_step", 2.5_fJ);
    return fom * std::pow(2.0, bits);
}

double
DacModel::area(const Attributes &attrs) const
{
    double bits = attrs.get("resolution");
    double area_per_step =
        attrs.getOr("area_per_step", 1.5 * units::square_micrometer);
    return area_per_step * std::pow(2.0, bits);
}

} // namespace ploop
