/**
 * @file
 * Component actions.  Energy estimators resolve (component class,
 * action, attributes) -> energy per action, in the Accelergy style.
 */

#ifndef PHOTONLOOP_ENERGY_ACTION_HPP
#define PHOTONLOOP_ENERGY_ACTION_HPP

#include <cstdint>
#include <string>

namespace ploop {

/** Actions a component may be charged for. */
enum class Action : std::uint8_t {
    Read = 0,    ///< Read one word from a storage component.
    Write = 1,   ///< Write one word to a storage component.
    Update = 2,  ///< Read-modify-write one word (partial sums).
    Convert = 3, ///< Move one word across a domain boundary.
    Compute = 4, ///< One MAC.
    Power = 5,   ///< Static power in watts (not an energy).
};

/** Number of actions. */
constexpr unsigned kNumActions = 6;

/** Action name ("read", "write", ...). */
const char *actionName(Action a);

} // namespace ploop

#endif // PHOTONLOOP_ENERGY_ACTION_HPP
