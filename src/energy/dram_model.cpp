#include "energy/dram_model.hpp"

#include "common/error.hpp"
#include "common/units.hpp"

namespace ploop {

bool
DramModel::supports(Action action) const
{
    return action == Action::Read || action == Action::Write ||
           action == Action::Update;
}

double
DramModel::energy(Action action, const Attributes &attrs) const
{
    fatalIf(!supports(action),
            std::string("dram does not support action ") +
                actionName(action));
    double word_bits = attrs.get("word_bits");
    double e_bit = attrs.getOr("energy_per_bit", 12.5_pJ);
    double per_word = e_bit * word_bits;
    // Reads and writes cost the same at this abstraction; updates are
    // a read plus a write.
    return action == Action::Update ? 2.0 * per_word : per_word;
}

double
DramModel::area(const Attributes &) const
{
    // Off-chip: does not count toward accelerator area.
    return 0.0;
}

} // namespace ploop
