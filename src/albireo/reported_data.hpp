/**
 * @file
 * "Reported" data series for validation, plus the figure-category
 * aggregation rules.
 *
 * The ISPASS paper validates its model against numbers reported in
 * the Albireo ISCA'21 paper.  Neither paper publishes numeric tables,
 * only bar charts, so this reproduction transcribes approximate
 * values consistent with those charts and with our technology
 * profiles (see DESIGN.md §3 and EXPERIMENTS.md).  The validation
 * benches report model-vs-reported error the same way the paper's
 * Fig. 2 does.
 */

#ifndef PHOTONLOOP_ALBIREO_REPORTED_DATA_HPP
#define PHOTONLOOP_ALBIREO_REPORTED_DATA_HPP

#include <string>
#include <vector>

#include "model/energy_rollup.hpp"
#include "photonics/scaling.hpp"

namespace ploop {

/** Fig. 2: best-case energy breakdown, pJ/MAC per component. */
struct Fig2Reported
{
    ScalingProfile scaling;
    double mrr;   ///< Microring modulation.
    double mzm;   ///< Input MZM modulation.
    double laser; ///< Laser wall-plug energy.
    double ao_ae; ///< Photodiode + TIA.
    double de_ae; ///< DACs (inputs + weights).
    double ae_de; ///< ADCs.
    double cache; ///< On-chip SRAM/registers.

    /** Sum of all components (pJ/MAC). */
    double total() const;
};

/** Reported Fig.-2 series for all three scaling profiles. */
const std::vector<Fig2Reported> &fig2ReportedData();

/** Fig. 3: throughput in MACs/cycle. */
struct Fig3Reported
{
    std::string network;
    double ideal_macs_per_cycle;    ///< 100% utilization.
    double reported_macs_per_cycle; ///< Albireo-paper claim.
};

/** Reported Fig.-3 series (VGG16, AlexNet). */
const std::vector<Fig3Reported> &fig3ReportedData();

/**
 * Fig.-2 category of an energy entry: "MRR", "MZM", "Laser", "AO/AE",
 * "DE/AE", "AE/DE", "Cache", or "Other".
 */
std::string fig2Category(const EnergyEntry &entry);

/** Canonical Fig.-2 category order. */
const std::vector<std::string> &fig2Categories();

/**
 * Fig.-4/5 category: "DRAM", "On-Chip Buffer",
 * "Output AO/AE, AE/DE", "Input DE/AE, AE/AO",
 * "Weight DE/AE, AE/AO", or "Other AO".
 */
std::string fig4Category(const EnergyEntry &entry);

/** Canonical Fig.-4/5 category order (paper legend order). */
const std::vector<std::string> &fig4Categories();

} // namespace ploop

#endif // PHOTONLOOP_ALBIREO_REPORTED_DATA_HPP
