/**
 * @file
 * Builds the Albireo ArchSpec from an AlbireoConfig, including the
 * link-budget-derived laser power.  See albireo_config.hpp for the
 * modeled structure.
 */

#ifndef PHOTONLOOP_ALBIREO_ALBIREO_ARCH_HPP
#define PHOTONLOOP_ALBIREO_ALBIREO_ARCH_HPP

#include "albireo/albireo_config.hpp"
#include "arch/arch_spec.hpp"
#include "photonics/link_budget.hpp"

namespace ploop {

/** Laser requirement for a configuration (exposed for tests/benches). */
LinkBudgetResult albireoLaserBudget(const AlbireoConfig &cfg);

/** Build and validate the Albireo architecture. */
ArchSpec buildAlbireoArch(const AlbireoConfig &cfg);

} // namespace ploop

#endif // PHOTONLOOP_ALBIREO_ALBIREO_ARCH_HPP
