#include "albireo/albireo_config.hpp"

namespace ploop {

AlbireoConfig
AlbireoConfig::paperDefault(ScalingProfile scaling, bool with_dram)
{
    AlbireoConfig cfg;
    cfg.scaling = scaling;
    cfg.with_dram = with_dram;
    return cfg;
}

std::string
AlbireoConfig::name() const
{
    return std::string("albireo-") + scalingProfileName(scaling) +
           (with_dram ? "+dram" : "");
}

} // namespace ploop
