#include "albireo/full_system.hpp"

#include <algorithm>

#include "albireo/albireo_arch.hpp"
#include "albireo/reported_data.hpp"
#include "common/error.hpp"
#include "common/math_util.hpp"
#include "mapper/mapper.hpp"

namespace ploop {

std::uint64_t
fusedBufferWords(const Network &net)
{
    std::uint64_t worst = 0;
    for (std::size_t i = 0; i < net.size(); ++i) {
        const LayerShape &layer = net.layer(i);
        std::uint64_t need = layer.tensorWords(Tensor::Inputs) +
                             layer.tensorWords(Tensor::Outputs) +
                             net.residualLiveWords(i);
        worst = std::max(worst, need);
    }
    // Margin for the weight tiles sharing the buffer.
    constexpr std::uint64_t weight_margin = 64 * 1024;
    return nextPow2(worst + weight_margin);
}

FullSystemResult
runAlbireoFullSystem(const Network &net, const FullSystemOptions &options,
                     const EnergyRegistry &registry)
{
    fatalIf(options.batch == 0, "batch must be >= 1");

    Network batched = net.withBatch(options.batch);

    AlbireoConfig base = options.config;
    base.with_dram = true;
    if (options.fused) {
        base.gb_capacity_words =
            std::max(base.gb_capacity_words, fusedBufferWords(batched));
    }

    FullSystemResult out;
    out.gb_capacity_words = base.gb_capacity_words;

    for (std::size_t i = 0; i < batched.size(); ++i) {
        const LayerShape &layer = batched.layer(i);

        AlbireoConfig cfg = base;
        if (options.fused) {
            bool first = (i == 0);
            bool last = (i + 1 == batched.size());
            cfg.fuse_bypass_dram_inputs = !first;
            cfg.fuse_bypass_dram_outputs = !last;
        }

        ArchSpec arch = buildAlbireoArch(cfg);
        Evaluator evaluator(arch, registry);
        Mapper mapper(evaluator, options.search);
        MapperResult mapped = mapper.search(layer);

        out.total_j += mapped.result.totalEnergy();
        out.macs += mapped.result.counts.macs;
        out.cycles += mapped.result.throughput.cycles;
        for (const EnergyEntry &entry : mapped.result.energy.entries)
            out.categories[fig4Category(entry)] += entry.energy_j;

        FullSystemLayerResult lr;
        lr.layer_name = layer.name();
        lr.result = std::move(mapped.result);
        out.layers.push_back(std::move(lr));
    }

    out.per_inference_j = out.total_j / static_cast<double>(options.batch);
    return out;
}

} // namespace ploop
