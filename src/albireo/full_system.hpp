/**
 * @file
 * Full-system (Albireo + DRAM) evaluation with input/output batching
 * and LoopTree-style layer fusion, reproducing the paper's §III.3
 * (Fig. 4).
 *
 * Batching amortizes weight DRAM traffic across the batch (weights
 * are irrelevant to N, so their fills do not scale with N).
 *
 * Fusion keeps inter-layer activations resident in the global buffer:
 * interior layers bypass DRAM for inputs and outputs; the first layer
 * still reads its input image from DRAM and the last layer still
 * writes its result.  Fusion requires the global buffer to hold the
 * largest (input + output + live-residual) activation working set,
 * so the fused configuration auto-sizes the buffer upward, which
 * raises its per-access energy (the paper's stated trade-off).
 */

#ifndef PHOTONLOOP_ALBIREO_FULL_SYSTEM_HPP
#define PHOTONLOOP_ALBIREO_FULL_SYSTEM_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "albireo/albireo_config.hpp"
#include "energy/registry.hpp"
#include "mapper/search.hpp"
#include "model/evaluator.hpp"
#include "workload/network.hpp"

namespace ploop {

/** Full-system run options. */
struct FullSystemOptions
{
    /** Base accelerator configuration (with_dram is forced on). */
    AlbireoConfig config;

    /** Batch size (N); 1 = non-batched. */
    std::uint64_t batch = 1;

    /** Keep inter-layer activations on chip. */
    bool fused = false;

    /** Mapper budget per layer. */
    SearchOptions search;
};

/** Per-layer record. */
struct FullSystemLayerResult
{
    std::string layer_name;
    EvalResult result;
};

/** Aggregate result (per batch unless noted). */
struct FullSystemResult
{
    double total_j = 0;         ///< Whole-batch energy.
    double per_inference_j = 0; ///< total_j / batch.
    double macs = 0;            ///< Whole-batch MACs.
    double cycles = 0;          ///< Sum of layer cycles.
    std::uint64_t gb_capacity_words = 0; ///< Buffer size used.

    /** Energy by Fig.-4 category (whole batch). */
    std::map<std::string, double> categories;

    std::vector<FullSystemLayerResult> layers;

    /** Joules per MAC. */
    double energyPerMac() const
    {
        return macs > 0 ? total_j / macs : 0.0;
    }

    /**
     * End-to-end latency of the whole batch in seconds, at the given
     * clock.  Batching amortizes energy but the batch completes
     * together, so per-IMAGE latency grows with the batch size -- the
     * trade-off the paper notes for the batching strategy.
     */
    double batchLatencySeconds(double clock_hz) const
    {
        return clock_hz > 0 ? cycles / clock_hz : 0.0;
    }
};

/**
 * Global-buffer words fusion needs for @p net: the largest
 * (input + output + live residual) footprint over layers, plus a
 * weight-tile margin.
 */
std::uint64_t fusedBufferWords(const Network &net);

/**
 * Run the full system.
 *
 * @param net Network at batch 1 (options.batch is applied inside).
 * @param options See FullSystemOptions.
 * @param registry Estimator registry.
 */
FullSystemResult runAlbireoFullSystem(const Network &net,
                                      const FullSystemOptions &options,
                                      const EnergyRegistry &registry);

} // namespace ploop

#endif // PHOTONLOOP_ALBIREO_FULL_SYSTEM_HPP
