#include "albireo/albireo_arch.hpp"

#include <cmath>

#include "arch/arch_builder.hpp"
#include "common/error.hpp"
#include "common/units.hpp"

namespace ploop {

LinkBudgetResult
albireoLaserBudget(const AlbireoConfig &cfg)
{
    const PhotonicScaling &tech = scalingConstants(cfg.scaling);
    LinkBudgetSpec spec;
    spec.tech = tech;
    // Each input conversion is broadcast to input_reuse MAC
    // positions.
    spec.broadcast_fanout = cfg.input_reuse;
    spec.accumulation_fanout = cfg.output_reuse;
    // Light traverses the cluster's weight bank: one ring per filter
    // bank on the bus.
    spec.rings_in_path = static_cast<double>(cfg.unit_k);
    spec.path_length_mm = 5.0;
    // One active channel per concurrently-converted input: total MAC
    // positions divided by the broadcast fanout.
    spec.active_channels =
        static_cast<double>(cfg.peakMacs()) / cfg.input_reuse;
    return solveLinkBudget(spec);
}

ArchSpec
buildAlbireoArch(const AlbireoConfig &cfg)
{
    fatalIf(cfg.input_reuse < cfg.input_window_reuse,
            "Albireo: input_reuse must be >= its window part");
    fatalIf(cfg.input_window_reuse >
                static_cast<double>(cfg.unit_r * cfg.unit_s),
            "Albireo: window reuse cannot exceed the R x S unroll");

    const PhotonicScaling &tech = scalingConstants(cfg.scaling);
    const double res_bits = tech.resolution_bits;

    // Reuse is not a free 1/N discount (DESIGN.md §7): driving a
    // larger broadcast raises modulator/DAC drive energy, and
    // accumulating more partials raises receiver gain requirements.
    // Exponents are sublinear so reuse still wins, with diminishing
    // returns as in the paper's Fig. 5.
    const double input_drive_growth =
        cfg.input_reuse > 9.0 ? std::pow(cfg.input_reuse / 9.0, 0.35)
                              : 1.0;
    const double pd_gain_growth =
        cfg.output_reuse > 3.0
            ? std::pow(cfg.output_reuse / 3.0, 0.3)
            : 1.0;

    ArchBuilder builder(cfg.name(), cfg.clock_hz);

    // ---- DRAM (optional; full-system mode) ----
    if (cfg.with_dram) {
        auto &dram = builder.addLevel("DRAM")
                         .klass("dram")
                         .domain(Domain::DE)
                         .capacityWords(0)
                         .wordBits(cfg.word_bits)
                         .bandwidth(cfg.dram_bandwidth_words)
                         .attr("energy_per_bit", cfg.dram_energy_per_bit);
        if (cfg.fuse_bypass_dram_inputs)
            dram.bypass(Tensor::Inputs);
        if (cfg.fuse_bypass_dram_outputs)
            dram.bypass(Tensor::Outputs);
    }

    // ---- Global buffer (DE) with cluster fanout ----
    builder.addLevel("GlobalBuffer")
        .klass("sram")
        .domain(Domain::DE)
        .capacityWords(cfg.gb_capacity_words)
        .wordBits(cfg.word_bits)
        .bandwidth(cfg.gb_bandwidth_words)
        .fanoutDim(Dim::K, cfg.chip_k)
        .fanoutDim(Dim::P, cfg.chip_p)
        .fanoutTotal(cfg.clusters());

    // ---- Per-cluster operand registers (DE) feeding the analog
    //      fabric; converters for all three tensors live on this
    //      boundary ----
    ConverterSpec weight_dac;
    weight_dac.name = "weight_dac";
    weight_dac.klass = "dac";
    weight_dac.from = Domain::DE;
    weight_dac.to = Domain::AE;
    weight_dac.attrs.set("resolution", res_bits);
    weight_dac.attrs.set("fom_j_per_step", tech.dac_fom_j);
    weight_dac.attrs.set("spatial_reuse", cfg.weight_reuse);

    ConverterSpec input_dac;
    input_dac.name = "input_dac";
    input_dac.klass = "dac";
    input_dac.from = Domain::DE;
    input_dac.to = Domain::AE;
    input_dac.attrs.set("resolution", res_bits);
    input_dac.attrs.set("fom_j_per_step",
                        tech.dac_fom_j * input_drive_growth);
    input_dac.attrs.set("spatial_reuse", cfg.input_reuse);
    input_dac.attrs.set("window_reuse",
                        cfg.model_window_effects
                            ? cfg.input_window_reuse
                            : 1.0);

    ConverterSpec input_mzm;
    input_mzm.name = "input_mzm";
    input_mzm.klass = "mzm";
    input_mzm.from = Domain::AE;
    input_mzm.to = Domain::AO;
    input_mzm.attrs.set("energy_per_modulate",
                        tech.mzm_modulate_j * input_drive_growth);
    input_mzm.attrs.set("insertion_loss_db",
                        tech.mzm_insertion_loss_db);
    input_mzm.attrs.set("spatial_reuse", cfg.input_reuse);
    input_mzm.attrs.set("window_reuse",
                        cfg.model_window_effects
                            ? cfg.input_window_reuse
                            : 1.0);

    ConverterSpec output_pd;
    output_pd.name = "output_pd";
    output_pd.klass = "photodiode";
    output_pd.from = Domain::AO;
    output_pd.to = Domain::AE;
    output_pd.attrs.set("energy_per_sample",
                        tech.pd_sample_j * pd_gain_growth);
    output_pd.attrs.set("sensitivity_w", tech.pd_sensitivity_w);
    output_pd.attrs.set("spatial_reuse", cfg.output_reuse);

    ConverterSpec output_adc;
    output_adc.name = "output_adc";
    output_adc.klass = "adc";
    output_adc.from = Domain::AE;
    output_adc.to = Domain::DE;
    // Accumulating more partials per sample grows the sample's
    // dynamic range; the ADC gains half a bit per doubling of the
    // accumulation count relative to Albireo's native OR=3 (see
    // DESIGN.md §7).  This is the diminishing return that keeps
    // output reuse from being a free 1/OR discount.
    double adc_bits = res_bits;
    if (cfg.model_adc_growth && cfg.output_reuse > 3.0)
        adc_bits += 0.5 * std::log2(cfg.output_reuse / 3.0);
    output_adc.attrs.set("resolution", adc_bits);
    output_adc.attrs.set("fom_j_per_step", tech.adc_fom_j);
    output_adc.attrs.set("spatial_reuse", cfg.output_reuse);

    builder.addLevel("OperandRegs")
        .klass("regfile")
        .domain(Domain::DE)
        .capacityWords(cfg.regs_capacity_words)
        .wordBits(cfg.word_bits)
        .attr("energy_per_bit", 1.5_fJ)
        .fanoutDim(Dim::R, cfg.unit_r)
        .fanoutDim(Dim::S, cfg.unit_s)
        .fanoutDim(Dim::K, cfg.unit_k)
        .fanoutDim(Dim::C, cfg.unit_c)
        .fanoutTotal(cfg.unitsPerCluster())
        .windowDims(cfg.model_window_effects
                        ? DimSet{Dim::R, Dim::S}
                        : DimSet{})
        .converter(Tensor::Weights, weight_dac)
        .converter(Tensor::Inputs, input_dac)
        .converter(Tensor::Inputs, input_mzm)
        .converter(Tensor::Outputs, output_pd)
        .converter(Tensor::Outputs, output_adc);

    // ---- Analog weight hold (AE): keeps the DAC'd weight resident
    //      so weight conversions amortize over P/Q temporal reuse;
    //      the microring modulates it onto light every cycle ----
    ConverterSpec weight_mrr;
    weight_mrr.name = "weight_mrr";
    weight_mrr.klass = "mrr";
    weight_mrr.from = Domain::AE;
    weight_mrr.to = Domain::AO;
    weight_mrr.attrs.set("energy_per_modulate", tech.mrr_modulate_j);
    weight_mrr.attrs.set("through_loss_db", tech.mrr_through_loss_db);
    weight_mrr.attrs.set("spatial_reuse", cfg.weight_reuse);

    builder.addLevel("AnalogHold")
        .klass("regfile")
        .domain(Domain::AE)
        .capacityWords(4)
        .wordBits(cfg.word_bits)
        .attr("energy_per_bit", 0.1_fJ)
        .keepOnly({Tensor::Weights})
        .converter(Tensor::Weights, weight_mrr);

    // ---- Photonic MAC fabric ----
    ComputeSpec compute;
    compute.name = "photonic_mac";
    compute.klass = "photonic_mac";
    compute.domain = Domain::AO;
    compute.macs_per_cycle = 1.0;

    // ---- Laser (from the link budget) ----
    LinkBudgetResult budget = albireoLaserBudget(cfg);
    if (cfg.model_laser_static) {
        // Static power: energy scales with runtime, so low
        // utilization inflates laser pJ/MAC.
        StaticComponentSpec laser;
        laser.name = "laser";
        laser.klass = "laser";
        laser.attrs.set("power_w", budget.electrical_power_w);
        laser.attrs.set("loss_db", budget.loss_db);
        builder.addStatic(laser);
    } else {
        // Ablation: amortize the laser as a fixed per-MAC energy at
        // peak utilization (best-case-only accounting).
        double per_mac = budget.electrical_power_w /
                         (cfg.clock_hz *
                          static_cast<double>(cfg.peakMacs()));
        compute.attrs.set("energy_per_mac", per_mac);
    }
    builder.compute(compute);

    return builder.build();
}

} // namespace ploop
