#include "albireo/reported_data.hpp"

namespace ploop {

double
Fig2Reported::total() const
{
    return mrr + mzm + laser + ao_ae + de_ae + ae_de + cache;
}

const std::vector<Fig2Reported> &
fig2ReportedData()
{
    // Transcribed approximations (pJ/MAC); see file comment.
    static const std::vector<Fig2Reported> data = {
        {ScalingProfile::Conservative,
         /*mrr=*/0.295, /*mzm=*/0.340, /*laser=*/0.515,
         /*ao_ae=*/0.295, /*de_ae=*/0.140, /*ae_de=*/1.720,
         /*cache=*/0.008},
        {ScalingProfile::Moderate,
         /*mrr=*/0.120, /*mzm=*/0.135, /*laser=*/0.170,
         /*ao_ae=*/0.118, /*de_ae=*/0.056, /*ae_de=*/0.685,
         /*cache=*/0.007},
        {ScalingProfile::Aggressive,
         /*mrr=*/0.040, /*mzm=*/0.044, /*laser=*/0.035,
         /*ao_ae=*/0.040, /*de_ae=*/0.023, /*ae_de=*/0.212,
         /*cache=*/0.007},
    };
    return data;
}

const std::vector<Fig3Reported> &
fig3ReportedData()
{
    // The Albireo paper reports near-ideal throughput for both
    // networks; ideal is our configuration's 6912 MACs/cycle peak.
    static const std::vector<Fig3Reported> data = {
        {"VGG16", 6912.0, 6500.0},
        {"AlexNet", 6912.0, 6400.0},
    };
    return data;
}

std::string
fig2Category(const EnergyEntry &entry)
{
    if (entry.klass == "mrr")
        return "MRR";
    if (entry.klass == "mzm")
        return "MZM";
    if (entry.klass == "laser")
        return "Laser";
    if (entry.klass == "photodiode")
        return "AO/AE";
    if (entry.klass == "dac")
        return "DE/AE";
    if (entry.klass == "adc")
        return "AE/DE";
    if (entry.klass == "sram" || entry.klass == "regfile")
        return "Cache";
    if (entry.klass == "dram")
        return "DRAM";
    return "Other";
}

const std::vector<std::string> &
fig2Categories()
{
    static const std::vector<std::string> cats = {
        "MRR", "MZM", "Laser", "AO/AE", "DE/AE", "AE/DE", "Cache",
    };
    return cats;
}

std::string
fig4Category(const EnergyEntry &entry)
{
    if (entry.klass == "dram")
        return "DRAM";
    if (entry.klass == "sram" || entry.klass == "regfile")
        return "On-Chip Buffer";
    if (entry.action == Action::Convert && entry.tensor) {
        switch (*entry.tensor) {
          case Tensor::Weights: return "Weight DE/AE, AE/AO";
          case Tensor::Inputs: return "Input DE/AE, AE/AO";
          case Tensor::Outputs: return "Output AO/AE, AE/DE";
        }
    }
    // Laser, star couplers, the photonic fabric itself.
    return "Other AO";
}

const std::vector<std::string> &
fig4Categories()
{
    static const std::vector<std::string> cats = {
        "Other AO",
        "Weight DE/AE, AE/AO",
        "Input DE/AE, AE/AO",
        "Output AO/AE, AE/DE",
        "On-Chip Buffer",
        "DRAM",
    };
    return cats;
}

} // namespace ploop
