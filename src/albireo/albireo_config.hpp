/**
 * @file
 * Configuration of the modeled Albireo photonic CNN accelerator
 * (Shiflett et al., ISCA 2021), the paper's evaluation vehicle.
 *
 * Structure (paper Fig. 1): DRAM and a global buffer in DE; per
 * cluster, operand registers feed DACs (DE/AE); AE weights are held
 * and modulated onto light by microrings (AE/AO); AE inputs drive
 * MZMs (AE/AO) whose light is star-coupler broadcast across the
 * photonic MAC fabric (AO); accumulated light hits photodiodes
 * (AO/AE) and ADCs (AE/DE) back into the digital domain.
 *
 * The spatial organization is parameterized: a cluster unrolls
 * R x S (optical sliding window) x K (filter banks) x C (wavelengths),
 * and the chip replicates clusters over K x P.  Defaults give
 * 8 clusters x 864 MAC positions = 6912 MACs/cycle peak, our stand-in
 * for Albireo-C (absolute peak differs from the ISCA paper; shapes,
 * which is what the reproduction targets, do not depend on it).
 *
 * The Fig.-5 exploration knobs are the converter-sharing factors:
 *  - input_reuse (IR): MAC positions sharing one input DAC+MZM
 *    conversion; window part breaks on strided layers;
 *  - output_reuse (OR): optically accumulated partials per PD+ADC
 *    sample;
 *  - weight_reuse (WR): MRR positions sharing one weight DAC+hold.
 */

#ifndef PHOTONLOOP_ALBIREO_ALBIREO_CONFIG_HPP
#define PHOTONLOOP_ALBIREO_ALBIREO_CONFIG_HPP

#include <cstdint>
#include <string>

#include "photonics/scaling.hpp"

namespace ploop {

/** See file comment. */
struct AlbireoConfig
{
    /** Technology scaling profile. */
    ScalingProfile scaling = ScalingProfile::Conservative;

    // --- Reuse knobs (paper §III.4, Fig. 5) ---
    double input_reuse = 9.0;        ///< IR.
    double input_window_reuse = 9.0; ///< Window-derived part of IR.
    double output_reuse = 3.0;       ///< OR.
    double weight_reuse = 1.0;       ///< WR.

    // --- Spatial organization ---
    std::uint64_t unit_r = 3; ///< Kernel-row unroll per cluster.
    std::uint64_t unit_s = 3; ///< Kernel-column unroll per cluster.
    std::uint64_t unit_k = 12; ///< Filter banks per cluster.
    std::uint64_t unit_c = 8;  ///< Wavelength channels per cluster.
    std::uint64_t chip_k = 4;  ///< Clusters along K.
    std::uint64_t chip_p = 2;  ///< Clusters along P.

    // --- Memory & clock ---
    double clock_hz = 5e9;
    std::uint64_t gb_capacity_words = 2ull * 1024 * 1024;
    std::uint64_t regs_capacity_words = 16 * 1024;
    unsigned word_bits = 8;
    double gb_bandwidth_words = 256.0;   ///< Words/cycle.
    double dram_bandwidth_words = 16.0;  ///< Words/cycle.

    /** Include the DRAM level (full-system mode, paper §III.3). */
    bool with_dram = false;

    /** DRAM access energy per bit (DDR-class default). */
    double dram_energy_per_bit = 22e-12;

    /**
     * Per-layer fusion bypass: when true, DRAM keeps only weights
     * plus the selected edge tensors (inter-layer activations stay in
     * the global buffer).
     */
    bool fuse_bypass_dram_inputs = false;
    bool fuse_bypass_dram_outputs = false;

    // --- Model-ablation switches (bench_ablation_model_features) ---

    /**
     * Model the optical sliding-window broadcast and its breakage on
     * strided layers (window sharing, stride throughput penalty).
     * Off = the idealized model the paper warns against: strided
     * layers look as good as unstrided ones.
     */
    bool model_window_effects = true;

    /**
     * Charge the laser as static power (energy = P * runtime), so
     * underutilization inflates laser energy per MAC.  Off = amortize
     * the laser as a fixed pJ/MAC at peak utilization (the
     * best-case-only accounting).
     */
    bool model_laser_static = true;

    /**
     * Grow ADC resolution with the optical accumulation count
     * (half a bit per doubling of output_reuse beyond 3).  Off =
     * output reuse is a free 1/OR discount.
     */
    bool model_adc_growth = true;

    /** MAC positions per cluster. */
    std::uint64_t unitsPerCluster() const
    {
        return unit_r * unit_s * unit_k * unit_c;
    }

    /** Clusters on the chip. */
    std::uint64_t clusters() const { return chip_k * chip_p; }

    /** Peak MACs per cycle. */
    std::uint64_t peakMacs() const
    {
        return unitsPerCluster() * clusters();
    }

    /** Paper-default configuration for a scaling profile. */
    static AlbireoConfig paperDefault(ScalingProfile scaling,
                                      bool with_dram = false);

    /** Human-readable config name, e.g. "albireo-aggressive". */
    std::string name() const;
};

} // namespace ploop

#endif // PHOTONLOOP_ALBIREO_ALBIREO_CONFIG_HPP
