/**
 * @file
 * ServeSession: the line-oriented JSON protocol over EvalService that
 * ploop_serve speaks.  One request object per input line, one
 * response object per output line -- trivially scriptable
 * (`printf '...' | ploop_serve`) and language-agnostic.
 *
 * Requests: {"op": "...", "id": <any>, ...}.  Ops:
 *
 *   ping                    liveness check
 *   capabilities            api version + ops + request schema
 *   evaluate                arch+layer+mapping -> full metrics
 *   search                  arch+layer+options -> best mapping+stats
 *   sweep                   arch+layer+grid -> per-grid-point rows
 *   network                 arch+network|layers -> totals+per-layer
 *   stats                   session counters (models, caches, store)
 *   save_cache              persist the cache store now
 *   shutdown                save (if configured) and stop
 *
 * Request bodies are decoded by the declarative api/ layer
 * (requests.hpp + codec.hpp): one canonical schema shared with the
 * in-process API, STRICT decoding (unknown or duplicate fields are
 * rejected by name, types are checked), and the whole schema is
 * machine-readable via the capabilities op.
 *
 * Responses always carry "ok" plus the echoed "op"/"id"; failures
 * ("ok": false) carry "error" and never kill the session -- a
 * malformed line or a fatal() from a bad spec is that request's
 * problem, not the server's.  Search responses include exact hex bit
 * patterns (mapping_key, energy_bits, runtime_bits) so warm-start
 * bit-identity can be asserted by string comparison from any client,
 * plus the request "fingerprint" and "from_result_cache" (whole
 * responses repeat from the service ResultCache).
 *
 * Persistence: with ServeConfig::cache_store set, the session merges
 * the store at construction (graceful cold start on damage -- see
 * cache_store.hpp) and saves on save_cache/shutdown, so the next
 * process answers its first request warm.
 */

#ifndef PHOTONLOOP_SERVICE_SERVE_SESSION_HPP
#define PHOTONLOOP_SERVICE_SERVE_SESSION_HPP

#include <cstdint>
#include <string>

#include "mapper/cache_store.hpp"
#include "service/eval_service.hpp"
#include "api/json.hpp"

namespace ploop {

/** Default CacheStore fingerprint of ploop_serve sessions. */
constexpr std::uint64_t kServeStoreFingerprint = 0x706c6f6f702d7376ull;

/** Session configuration (the tool's command line). */
struct ServeConfig
{
    /** CacheStore path; empty = no persistence. */
    std::string cache_store;

    /** EvalCache entry cap (0 = unbounded). */
    std::size_t cache_max_entries = 0;

    /** ResultCache entry cap (0 disables whole-response reuse). */
    std::size_t result_cache_max_entries = 256;

    /** Store identity (see cache_store.hpp). */
    std::uint64_t store_fingerprint = kServeStoreFingerprint;
};

/** See file comment. */
class ServeSession
{
  public:
    explicit ServeSession(ServeConfig cfg = {});

    /**
     * Handle one request line; returns exactly one serialized JSON
     * response object (no trailing newline).  Never throws.
     */
    std::string handleLine(const std::string &line);

    /** True once a shutdown request was handled. */
    bool shutdownRequested() const { return shutdown_; }

    /** What happened to the cache store at construction. */
    const CacheStoreLoad &storeLoad() const { return load_; }

    /**
     * Persist the cache store now (no-op without a configured path).
     * @param detail Optional sink for a summary or failure message.
     * @return True when a store was written.
     */
    bool saveStore(std::string *detail = nullptr);

    /** The underlying typed service (tests poke it directly). */
    EvalService &service() { return service_; }

  private:
    JsonValue handleParsed(const JsonValue &req);

    ServeConfig cfg_;
    EvalService service_;
    CacheStoreLoad load_;
    bool shutdown_ = false;
};

} // namespace ploop

#endif // PHOTONLOOP_SERVICE_SERVE_SESSION_HPP
