/**
 * @file
 * ServeSession: the line-oriented JSON protocol over EvalService that
 * ploop_serve speaks.  One request object per input line, one
 * response object per output line -- trivially scriptable
 * (`printf '...' | ploop_serve`) and language-agnostic.
 *
 * Requests: {"op": "...", "id": <any>, ...}.  Ops:
 *
 *   ping                    liveness check
 *   capabilities            api version + ops + request schema
 *   evaluate                arch+layer+mapping -> full metrics
 *   search                  arch+layer+options -> best mapping+stats
 *   sweep                   arch+layer+grid -> per-grid-point rows
 *   network                 arch+network|layers -> totals+per-layer
 *   stats                   session counters (models, caches, store)
 *   health                  ok/degraded/overloaded + uptime_ms
 *   metrics                 Prometheus text exposition of the session
 *   save_cache              persist the cache store now
 *   shutdown                save (if configured) and stop
 *
 * Any request may carry `"trace": true` (a transport key, like "op"
 * and "id"): the response gains a "trace" span tree showing where the
 * request's time went.  Non-semantic by construction -- trace lives
 * outside every request's field list, so requestFingerprint() and
 * ResultCache behavior are untouched.
 *
 * Request bodies are decoded by the declarative api/ layer
 * (requests.hpp + codec.hpp): one canonical schema shared with the
 * in-process API, STRICT decoding (unknown or duplicate fields are
 * rejected by name, types are checked), and the whole schema is
 * machine-readable via the capabilities op.
 *
 * Responses always carry "ok" plus the echoed "op"/"id"; failures
 * ("ok": false) carry "error" and never kill the session -- a
 * malformed line or a fatal() from a bad spec is that request's
 * problem, not the server's.  Search responses include exact hex bit
 * patterns (mapping_key, energy_bits, runtime_bits) so warm-start
 * bit-identity can be asserted by string comparison from any client,
 * plus the request "fingerprint" and "from_result_cache" (whole
 * responses repeat from the service ResultCache).
 *
 * Persistence: with ServeConfig::cache_store set, the session merges
 * the store at construction (graceful cold start on damage -- see
 * cache_store.hpp) and saves on save_cache/shutdown, so the next
 * process answers its first request warm.
 */

#ifndef PHOTONLOOP_SERVICE_SERVE_SESSION_HPP
#define PHOTONLOOP_SERVICE_SERVE_SESSION_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/annotations.hpp"
#include "mapper/cache_store.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/eval_service.hpp"
#include "api/json.hpp"

namespace ploop {

/** Default CacheStore fingerprint of ploop_serve sessions. */
constexpr std::uint64_t kServeStoreFingerprint = 0x706c6f6f702d7376ull;

/** Session configuration (the tool's command line). */
struct ServeConfig
{
    /** CacheStore path; empty = no persistence. */
    std::string cache_store;

    /** EvalCache entry cap (0 = unbounded). */
    std::size_t cache_max_entries = 0;

    /** ResultCache entry cap (0 disables whole-response reuse). */
    std::size_t result_cache_max_entries = 256;

    /** CacheStore save bound: persist only the N most-reused entries
     *  (0 = everything).  See saveCacheStore(). */
    std::size_t cache_store_max_entries = 0;

    /** Store identity (see cache_store.hpp). */
    std::uint64_t store_fingerprint = kServeStoreFingerprint;

    /** Transport the session is served over, advertised by the
     *  capabilities op ("stdio", "script", or "tcp"). */
    std::string transport = "stdio";

    /** Connection cap advertised by capabilities; enforced by the
     *  net server (NetServer), meaningless for stdio/script. */
    std::size_t max_connections = 64;

    /** Request-scheduler admission-queue cap advertised by
     *  capabilities; enforced by RequestScheduler. */
    std::size_t max_queue = 256;

    /** Reap a connection idle (no bytes read) this long; 0 disables.
     *  Enforced by NetServer, advertised by capabilities. */
    std::uint64_t idle_timeout_ms = 0;

    /** Per-connection sustained requests/second (0 disables) and
     *  burst allowance (see net/rate_limit.hpp).  Enforced by
     *  NetServer; rejects carry retry_after_ms. */
    double rate_limit_rps = 0.0;
    double rate_limit_burst = 0.0;

    /** Shed new requests when the oldest queued line has waited this
     *  long (ms; 0 disables).  Enforced by RequestScheduler via
     *  NetServer; sheds carry retry_after_ms. */
    std::uint64_t shed_queue_wait_ms = 0;

    /** Observability master switch: when true (the default) the
     *  session owns a MetricsRegistry -- per-op latency histograms,
     *  cache/pool/fault gauges, the `metrics` op -- and the serving
     *  layer adds queue/connection metrics to it.  The overhead of
     *  recording-but-never-querying is bounded by a bench gate
     *  (bench_serve_concurrency); false removes even that, for the
     *  overhead bench's baseline. */
    bool observe = true;

    /** Log any request slower than this (ms; 0 disables) as one
     *  JSONL object -- op, id, total/queue-wait ms, ok, and the full
     *  span tree (arming this traces EVERY request so offenders come
     *  with their breakdown attached). */
    std::uint64_t slow_request_ms = 0;

    /** Slow-request log destination (append); empty = stderr. */
    std::string obs_log;

    /** Injectable time source for request timing, the slow-request
     *  gate and traces (nullptr = steady clock).  Tests drive a
     *  ManualClock so "slow" requests need no sleeping. */
    const Clock *clock = nullptr;
};

/** Counters behind the stats op's "robustness" section.  Atomics:
 *  deadline_exceeded is bumped from scheduler worker threads while
 *  the serving thread bumps the rest.  Relaxed ordering throughout:
 *  each counter is an independent monotonic tally read only for
 *  reporting; nothing is published through them. */
struct RobustnessCounters
{
    std::atomic<std::uint64_t> deadline_exceeded{0};
    std::atomic<std::uint64_t> rate_limited{0};
    std::atomic<std::uint64_t> idle_reaped{0};
    std::atomic<std::uint64_t> shed{0};
};

/**
 * See file comment.
 *
 * Thread safety: handleLine() may be called concurrently from many
 * threads over ONE session -- the net serving layer executes requests
 * from different connections in parallel.  All heavy state lives in
 * the (thread-safe) EvalService; the session's own mutable state is
 * an atomic shutdown flag and the mutex-guarded store save.
 */
class ServeSession
{
  public:
    explicit ServeSession(ServeConfig cfg = {});
    ~ServeSession();

    /**
     * Handle one request line; returns exactly one serialized JSON
     * response object (no trailing newline).  Never throws.  Safe to
     * call concurrently.
     */
    std::string handleLine(const std::string &line);

    /**
     * As above, with the scheduler-measured queue wait (ns) folded
     * into the request's recorded latency and, when tracing, the
     * trace's queue_wait span.  The plain overload passes 0 (stdio
     * serving has no admission queue).
     */
    std::string handleLine(const std::string &line,
                           std::uint64_t queue_wait_ns);

    /** True once a shutdown request was handled. */
    bool shutdownRequested() const
    {
        return shutdown_.load(std::memory_order_acquire);
    }

    /** What happened to the cache store at construction. */
    const CacheStoreLoad &storeLoad() const { return load_; }

    /**
     * Persist the cache store now (no-op without a configured path;
     * bounded by ServeConfig::cache_store_max_entries).  Serialized
     * by an internal mutex, so concurrent save_cache/shutdown
     * requests cannot interleave tmp-file writes.
     * @param detail Optional sink for a summary or failure message.
     * @return True when a store was written.
     */
    bool saveStore(std::string *detail = nullptr);

    /**
     * Extra sections for the stats op (the net server hooks in its
     * "connections" and "queue" sections here).  The hook must be
     * thread-safe: the stats op runs on scheduler worker threads.
     */
    void setStatsHook(std::function<void(JsonValue &)> hook)
    {
        MutexLock lock(hooks_mu_);
        stats_hook_ = std::move(hook);
    }

    /**
     * Status source for the health op ("ok"/"degraded"/"overloaded").
     * The net server wires in its queue-pressure view; without a hook
     * the op reports "ok" (stdio serving has no queue to degrade).
     * Must be thread-safe, like the stats hook.
     */
    void setHealthHook(std::function<std::string()> hook)
    {
        MutexLock lock(hooks_mu_);
        health_hook_ = std::move(hook);
    }

    /** Counters surfaced in the stats op's "robustness" section.
     *  The net server bumps rate_limited/idle_reaped/shed; the
     *  session itself bumps deadline_exceeded. */
    RobustnessCounters &robustness() { return robustness_; }

    /** The session's metrics registry, or nullptr when observability
     *  is off (ServeConfig::observe).  The serving layer registers
     *  its queue/connection metrics here (and must remove() callback
     *  series referencing itself before it dies). */
    MetricsRegistry *metrics() { return metrics_.get(); }

    /** The session's configuration (read-only after construction). */
    const ServeConfig &config() const { return cfg_; }

    /** The underlying typed service (tests poke it directly). */
    EvalService &service() { return service_; }

  private:
    JsonValue handleParsed(const JsonValue &req, Trace *trace);

    /** Register the session-level metric families (ctor, when
     *  ServeConfig::observe). */
    void registerMetrics();

    /** Per-op latency histogram, or nullptr (unknown op / metrics
     *  off).  The map is built in the constructor and read-only
     *  afterwards, so concurrent lookups need no lock. */
    Histogram *opHistogram(const std::string &op) const;

    /** Append one JSONL line to the slow-request sink (obs_log file
     *  or stderr), serialized by obs_mu_. */
    void writeObsLine(const JsonValue &entry);

    /** Thread-safe snapshot of stats_hook_ (may be empty). */
    std::function<void(JsonValue &)> statsHook() const;

    /** Thread-safe snapshot of health_hook_ (may be empty). */
    std::function<std::string()> healthHook() const;

    /** Milliseconds since construction (health + stats ops). */
    std::uint64_t uptimeMs() const;

    ServeConfig cfg_;
    EvalService service_;
    CacheStoreLoad load_;
    /** Shutdown latch: release on store / acquire on load so state
     *  written before the request (e.g. the saved store) is visible
     *  to whoever observes the flag. */
    std::atomic<bool> shutdown_{false};
    Mutex store_mu_; ///< Serializes saveStore().
    /** Guards the hook slots: NetServer installs them at construction
     *  and clears them in its destructor while scheduler workers may
     *  be serving stats/health ops.  Hooks are COPIED out under the
     *  lock and invoked outside it (they take the scheduler's own
     *  lock internally). */
    mutable Mutex hooks_mu_;
    std::function<void(JsonValue &)> stats_hook_
        GUARDED_BY(hooks_mu_);
    std::function<std::string()> health_hook_ GUARDED_BY(hooks_mu_);
    RobustnessCounters robustness_;
    std::chrono::steady_clock::time_point started_;

    /** Observability state.  The registry outlives every consumer of
     *  its entries within the session; its gauge callbacks capture
     *  `this` and run only inside handleLine (renderPrometheus), so
     *  member destruction order never races them. */
    std::unique_ptr<MetricsRegistry> metrics_;
    std::map<std::string, Histogram *> op_hist_; ///< Read-only post-ctor.
    Counter *errors_ = nullptr; ///< ok:false responses.
    Mutex obs_mu_;              ///< Serializes slow-log writes.
    std::FILE *obs_file_ GUARDED_BY(obs_mu_) = nullptr;
};

/**
 * A protocol error response generated OUTSIDE the normal request
 * path (admission-queue backpressure, drain-phase rejects, oversized
 * lines, rate limits, load shedding): {"ok":false,"error":<message>}
 * with the request's "op" and "id" echoed when @p line parses far
 * enough to recover them -- a pipelined client must be able to
 * correlate EVERY failure, not just ones that reached the session.
 * Returns one serialized JSON object, no trailing newline; never
 * throws.
 *
 * @param code Optional machine-readable "code" field
 *     ("rate_limited", "overloaded", ...) so clients branch on it
 *     instead of parsing prose.
 * @param retry_after_ms When >= 0, attached as "retry_after_ms": the
 *     server's hint for when a retry could succeed (rate-limit and
 *     shed rejects).  RetryingLineClient honors it.
 */
std::string protocolErrorResponse(const std::string &line,
                                  const std::string &message,
                                  const char *code = nullptr,
                                  std::int64_t retry_after_ms = -1);

} // namespace ploop

#endif // PHOTONLOOP_SERVICE_SERVE_SESSION_HPP
