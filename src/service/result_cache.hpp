/**
 * @file
 * ResultCache: bounded service-side memoization of WHOLE search
 * responses, keyed by requestFingerprint().  It sits ABOVE the
 * QuickEval EvalCache: where the EvalCache answers individual
 * candidate evaluations warm (the search still enumerates and ranks
 * candidates), a ResultCache hit skips the search entirely --
 * repeating an identical request costs one hash lookup and one copy.
 *
 * Correctness leans on two contracts established below it:
 *  - the engine's determinism contract (same request => bit-identical
 *    result at any thread count), so serving a stored response is
 *    indistinguishable from re-running the search -- tests assert
 *    bit-identity of mapping_key/energy_bits/runtime_bits against
 *    fresh runs;
 *  - requestFingerprint() folds every semantic request field and
 *    excludes non-semantic ones (threads), so hits survive
 *    thread-count changes and never cross distinct requests.
 *
 * Bounded LRU: whole responses are heavyweight (mapping, flattened
 * metric row), so the cap is small and recency-based -- a sweep of
 * distinct requests cannot grow the service without limit.  The
 * cache is in-memory only; across a restart the persisted EvalCache
 * (CacheStore) makes the re-run warm instead.  Thread-safe.
 */

#ifndef PHOTONLOOP_SERVICE_RESULT_CACHE_HPP
#define PHOTONLOOP_SERVICE_RESULT_CACHE_HPP

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

#include "api/requests.hpp"
#include "common/annotations.hpp"

namespace ploop {

/** See file comment. */
class ResultCache
{
  public:
    /** @param max_entries Entry cap; 0 disables the cache. */
    explicit ResultCache(std::size_t max_entries = 0)
        : max_entries_(max_entries)
    {}

    ResultCache(const ResultCache &) = delete;
    ResultCache &operator=(const ResultCache &) = delete;

    /**
     * Look up a response by request fingerprint.  On a hit, returns
     * a copy of the stored response and refreshes its recency.
     */
    std::optional<SearchResponse> find(std::uint64_t fingerprint);

    /** Store a response (no-op when disabled; evicts the least
     *  recently used entry at the cap; replaces same-key entries). */
    void insert(std::uint64_t fingerprint,
                const SearchResponse &response);

    std::size_t size() const;
    std::size_t maxEntries() const { return max_entries_; }
    bool enabled() const { return max_entries_ > 0; }
    std::uint64_t hits() const;
    std::uint64_t misses() const;
    std::uint64_t evictions() const;

  private:
    using Entry = std::pair<std::uint64_t, SearchResponse>;

    const std::size_t max_entries_; ///< Immutable after construction.
    mutable Mutex mu_;
    /** Front = most recently used. */
    std::list<Entry> lru_ GUARDED_BY(mu_);
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator>
        index_ GUARDED_BY(mu_);
    std::uint64_t hits_ GUARDED_BY(mu_) = 0;
    std::uint64_t misses_ GUARDED_BY(mu_) = 0;
    std::uint64_t evictions_ GUARDED_BY(mu_) = 0;
};

} // namespace ploop

#endif // PHOTONLOOP_SERVICE_RESULT_CACHE_HPP
