#include "service/serve_session.hpp"

#include <exception>

#include "api/codec.hpp"
#include "api/schema.hpp"
#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/string_util.hpp"
#include "mapper/eval_cache.hpp"

namespace ploop {

ServeSession::ServeSession(ServeConfig cfg)
    : cfg_(std::move(cfg)),
      service_(EvalService::Config{cfg_.cache_max_entries,
                                   cfg_.result_cache_max_entries}),
      started_(std::chrono::steady_clock::now())
{
    if (!cfg_.cache_store.empty())
        load_ = loadCacheStore(service_.cache(), cfg_.cache_store,
                               cfg_.store_fingerprint);
    else
        load_.detail = "no cache store configured";
}

bool
ServeSession::saveStore(std::string *detail)
{
    if (cfg_.cache_store.empty()) {
        if (detail)
            *detail = "no cache store configured";
        return false;
    }
    MutexLock lock(store_mu_);
    std::size_t resident = service_.cache().size();
    std::size_t written =
        saveCacheStore(service_.cache(), cfg_.cache_store,
                       cfg_.store_fingerprint,
                       cfg_.cache_store_max_entries);
    if (detail) {
        if (written < resident)
            *detail = strFormat(
                "saved %zu most-reused of %zu entries to '%s'",
                written, resident, cfg_.cache_store.c_str());
        else
            *detail = strFormat("saved %zu entries to '%s'", written,
                                cfg_.cache_store.c_str());
    }
    return true;
}

std::string
ServeSession::handleLine(const std::string &line)
{
    JsonValue resp;
    std::string error;
    const JsonValue *id = nullptr;
    std::optional<JsonValue> req = parseJson(line, &error);

    if (!req || !req->isObject()) {
        resp = JsonValue::object();
        resp.set("ok", JsonValue::boolean(false));
        resp.set("error",
                 JsonValue::string(req ? "request must be an object"
                                       : "bad JSON: " + error));
        return resp.serialize();
    }

    try {
        resp = handleParsed(*req);
    } catch (const CancelledError &e) {
        // The request's own timeout_ms elapsed.  Not a client error
        // and not a server fault: the budget was simply too small
        // for the work.  A machine-readable code lets clients (and
        // RetryingLineClient) distinguish it from bad requests --
        // retrying with a larger budget is legitimate, and warm
        // EvalCache entries make the retry cheaper.
        robustness_.deadline_exceeded.fetch_add(
            1, std::memory_order_relaxed);
        resp = JsonValue::object();
        resp.set("ok", JsonValue::boolean(false));
        resp.set("error", JsonValue::string(e.what()));
        resp.set("code", JsonValue::string("deadline_exceeded"));
    } catch (const FatalError &e) {
        // A bad request (unknown field, invalid layer shape, ...)
        // fails THIS request; the session keeps serving.
        resp = JsonValue::object();
        resp.set("ok", JsonValue::boolean(false));
        resp.set("error", JsonValue::string(e.what()));
    } catch (const std::exception &e) {
        resp = JsonValue::object();
        resp.set("ok", JsonValue::boolean(false));
        resp.set("error",
                 JsonValue::string(std::string("internal error: ") +
                                   e.what()));
    }

    // Echo op/id so pipelined clients can match responses.  Read
    // defensively: this runs outside the try block, and a non-string
    // "op" must not throw past the "never throws" contract.
    const JsonValue *opv = req->get("op");
    if (opv && opv->isString() && !opv->asString().empty())
        resp.set("op", *opv);
    id = req->get("id");
    if (id)
        resp.set("id", *id);
    return resp.serialize();
}

/**
 * Thin transport: every request op decodes through the declarative
 * api/ codec (strict: unknown/duplicate/mistyped fields fail the
 * request by name) and encodes through the shared responseJson
 * serializers.  Only the session-level ops (ping, capabilities,
 * stats, save_cache, shutdown) are handled inline.
 */
JsonValue
ServeSession::handleParsed(const JsonValue &req)
{
    const JsonValue *opv = req.get("op");
    std::string op =
        opv && opv->isString() ? opv->asString() : std::string();
    JsonValue resp = JsonValue::object();

    if (op == "ping") {
        resp.set("ok", JsonValue::boolean(true));
        return resp;
    }

    if (op == "capabilities") {
        resp.set("ok", JsonValue::boolean(true));
        resp.set("version", JsonValue::number(double(kApiVersion)));
        JsonValue ops = JsonValue::array();
        for (const char *name :
             {"ping", "capabilities", "evaluate", "search", "sweep",
              "network", "stats", "health", "save_cache", "shutdown"})
            ops.push(JsonValue::string(name));
        resp.set("ops", std::move(ops));
        // Clients discover HOW they are connected and what the
        // serving layer will bound before they hit the bounds.
        resp.set("transport", JsonValue::string(cfg_.transport));
        JsonValue limits = JsonValue::object();
        limits.set("max_connections",
                   JsonValue::number(double(cfg_.max_connections)));
        limits.set("max_queue",
                   JsonValue::number(double(cfg_.max_queue)));
        limits.set("cache_max_entries",
                   JsonValue::number(double(cfg_.cache_max_entries)));
        limits.set("result_cache_max_entries",
                   JsonValue::number(
                       double(cfg_.result_cache_max_entries)));
        limits.set("cache_store_max_entries",
                   JsonValue::number(
                       double(cfg_.cache_store_max_entries)));
        limits.set("idle_timeout_ms",
                   JsonValue::number(double(cfg_.idle_timeout_ms)));
        limits.set("rate_limit_rps",
                   JsonValue::number(cfg_.rate_limit_rps));
        limits.set("rate_limit_burst",
                   JsonValue::number(cfg_.rate_limit_burst));
        limits.set("shed_queue_wait_ms",
                   JsonValue::number(
                       double(cfg_.shed_queue_wait_ms)));
        resp.set("limits", std::move(limits));
        resp.set("schema", apiSchemaJson());
        return resp;
    }

    if (op == "evaluate")
        return responseJson(
            service_.evaluate(decodeRequestJson<EvaluateRequest>(req)));

    if (op == "search") {
        SearchRequest sr = decodeRequestJson<SearchRequest>(req);
        return responseJson(sr, service_.search(sr));
    }

    if (op == "sweep") {
        SweepRequest sr = decodeRequestJson<SweepRequest>(req);
        return responseJson(sr, service_.sweep(sr));
    }

    if (op == "network")
        return responseJson(
            service_.network(decodeRequestJson<NetworkRequest>(req)));

    if (op == "stats") {
        EvalService::Stats s = service_.stats();
        resp.set("ok", JsonValue::boolean(true));
        resp.set("requests", JsonValue::number(double(s.requests)));
        resp.set("models_built",
                 JsonValue::number(double(s.models_built)));
        resp.set("models_reused",
                 JsonValue::number(double(s.models_reused)));
        JsonValue cache = JsonValue::object();
        cache.set("entries",
                  JsonValue::number(double(s.cache_entries)));
        cache.set("hits", JsonValue::number(double(s.cache_hits)));
        cache.set("misses", JsonValue::number(double(s.cache_misses)));
        cache.set("evictions",
                  JsonValue::number(double(s.cache_evictions)));
        cache.set("max_entries",
                  JsonValue::number(
                      double(service_.cache().maxEntries())));
        resp.set("cache", std::move(cache));
        JsonValue results = JsonValue::object();
        results.set("entries",
                    JsonValue::number(double(s.result_cache_entries)));
        results.set("hits",
                    JsonValue::number(double(s.result_cache_hits)));
        results.set("misses",
                    JsonValue::number(double(s.result_cache_misses)));
        results.set("evictions",
                    JsonValue::number(
                        double(s.result_cache_evictions)));
        results.set("max_entries",
                    JsonValue::number(double(
                        service_.resultCache().maxEntries())));
        resp.set("result_cache", std::move(results));
        resp.set("store_loaded", JsonValue::boolean(load_.loaded));
        resp.set("store_detail", JsonValue::string(load_.detail));
        // Always emitted (zeros when nothing went wrong) so
        // dashboards and tests can assert the fields exist without
        // first provoking a failure.
        JsonValue robustness = JsonValue::object();
        robustness.set(
            "deadline_exceeded",
            JsonValue::number(double(robustness_.deadline_exceeded
                                         .load(std::memory_order_relaxed))));
        robustness.set(
            "rate_limited",
            JsonValue::number(double(robustness_.rate_limited.load(
                std::memory_order_relaxed))));
        robustness.set(
            "idle_reaped",
            JsonValue::number(double(robustness_.idle_reaped.load(
                std::memory_order_relaxed))));
        robustness.set("shed",
                       JsonValue::number(double(robustness_.shed.load(
                           std::memory_order_relaxed))));
        robustness.set("uptime_ms",
                       JsonValue::number(double(uptimeMs())));
        resp.set("robustness", std::move(robustness));
        // The serving layer (NetServer) appends its "connections"
        // and "queue" sections here.  Snapshot under hooks_mu_, call
        // outside it: the hook takes the scheduler's lock internally.
        if (std::function<void(JsonValue &)> hook = statsHook())
            hook(resp);
        return resp;
    }

    if (op == "health") {
        // Cheap by design: answered inline even when every scheduler
        // worker is busy, so probes see pressure instead of timing
        // out.  Status comes from the serving layer's queue view; a
        // stdio session has no queue and is always "ok".
        resp.set("ok", JsonValue::boolean(true));
        std::function<std::string()> hook = healthHook();
        resp.set("status", JsonValue::string(hook ? hook() : "ok"));
        resp.set("uptime_ms", JsonValue::number(double(uptimeMs())));
        return resp;
    }

    if (op == "save_cache") {
        std::string detail;
        bool saved = saveStore(&detail);
        resp.set("ok", JsonValue::boolean(saved));
        resp.set(saved ? "detail" : "error",
                 JsonValue::string(detail));
        return resp;
    }

    if (op == "shutdown") {
        shutdown_.store(true, std::memory_order_release);
        std::string detail;
        bool saved = saveStore(&detail);
        resp.set("ok", JsonValue::boolean(true));
        resp.set("saved", JsonValue::boolean(saved));
        resp.set("detail", JsonValue::string(detail));
        return resp;
    }

    fatal("unknown op '" + op +
          "' (ping, capabilities, evaluate, search, sweep, network, "
          "stats, health, save_cache, shutdown)");
}

std::function<void(JsonValue &)>
ServeSession::statsHook() const
{
    MutexLock lock(hooks_mu_);
    return stats_hook_;
}

std::function<std::string()>
ServeSession::healthHook() const
{
    MutexLock lock(hooks_mu_);
    return health_hook_;
}

std::uint64_t
ServeSession::uptimeMs() const
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - started_)
            .count());
}

std::string
protocolErrorResponse(const std::string &line,
                      const std::string &message, const char *code,
                      std::int64_t retry_after_ms)
{
    JsonValue resp = JsonValue::object();
    resp.set("ok", JsonValue::boolean(false));
    resp.set("error", JsonValue::string(message));
    if (code)
        resp.set("code", JsonValue::string(code));
    if (retry_after_ms >= 0)
        resp.set("retry_after_ms",
                 JsonValue::number(double(retry_after_ms)));
    // Best-effort correlation: echo op/id exactly like handleLine()
    // does, so rejected pipelined requests are attributable.
    if (std::optional<JsonValue> req = parseJson(line)) {
        if (req->isObject()) {
            const JsonValue *opv = req->get("op");
            if (opv && opv->isString() && !opv->asString().empty())
                resp.set("op", *opv);
            if (const JsonValue *id = req->get("id"))
                resp.set("id", *id);
        }
    }
    return resp.serialize();
}

} // namespace ploop
