#include "service/serve_session.hpp"

#include <exception>

#include "api/codec.hpp"
#include "api/schema.hpp"
#include "common/error.hpp"
#include "common/string_util.hpp"
#include "mapper/eval_cache.hpp"

namespace ploop {

ServeSession::ServeSession(ServeConfig cfg)
    : cfg_(std::move(cfg)),
      service_(EvalService::Config{cfg_.cache_max_entries,
                                   cfg_.result_cache_max_entries})
{
    if (!cfg_.cache_store.empty())
        load_ = loadCacheStore(service_.cache(), cfg_.cache_store,
                               cfg_.store_fingerprint);
    else
        load_.detail = "no cache store configured";
}

bool
ServeSession::saveStore(std::string *detail)
{
    if (cfg_.cache_store.empty()) {
        if (detail)
            *detail = "no cache store configured";
        return false;
    }
    std::lock_guard<std::mutex> lock(store_mu_);
    std::size_t resident = service_.cache().size();
    std::size_t written =
        saveCacheStore(service_.cache(), cfg_.cache_store,
                       cfg_.store_fingerprint,
                       cfg_.cache_store_max_entries);
    if (detail) {
        if (written < resident)
            *detail = strFormat(
                "saved %zu most-reused of %zu entries to '%s'",
                written, resident, cfg_.cache_store.c_str());
        else
            *detail = strFormat("saved %zu entries to '%s'", written,
                                cfg_.cache_store.c_str());
    }
    return true;
}

std::string
ServeSession::handleLine(const std::string &line)
{
    JsonValue resp;
    std::string error;
    const JsonValue *id = nullptr;
    std::optional<JsonValue> req = parseJson(line, &error);

    if (!req || !req->isObject()) {
        resp = JsonValue::object();
        resp.set("ok", JsonValue::boolean(false));
        resp.set("error",
                 JsonValue::string(req ? "request must be an object"
                                       : "bad JSON: " + error));
        return resp.serialize();
    }

    try {
        resp = handleParsed(*req);
    } catch (const FatalError &e) {
        // A bad request (unknown field, invalid layer shape, ...)
        // fails THIS request; the session keeps serving.
        resp = JsonValue::object();
        resp.set("ok", JsonValue::boolean(false));
        resp.set("error", JsonValue::string(e.what()));
    } catch (const std::exception &e) {
        resp = JsonValue::object();
        resp.set("ok", JsonValue::boolean(false));
        resp.set("error",
                 JsonValue::string(std::string("internal error: ") +
                                   e.what()));
    }

    // Echo op/id so pipelined clients can match responses.  Read
    // defensively: this runs outside the try block, and a non-string
    // "op" must not throw past the "never throws" contract.
    const JsonValue *opv = req->get("op");
    if (opv && opv->isString() && !opv->asString().empty())
        resp.set("op", *opv);
    id = req->get("id");
    if (id)
        resp.set("id", *id);
    return resp.serialize();
}

/**
 * Thin transport: every request op decodes through the declarative
 * api/ codec (strict: unknown/duplicate/mistyped fields fail the
 * request by name) and encodes through the shared responseJson
 * serializers.  Only the session-level ops (ping, capabilities,
 * stats, save_cache, shutdown) are handled inline.
 */
JsonValue
ServeSession::handleParsed(const JsonValue &req)
{
    const JsonValue *opv = req.get("op");
    std::string op =
        opv && opv->isString() ? opv->asString() : std::string();
    JsonValue resp = JsonValue::object();

    if (op == "ping") {
        resp.set("ok", JsonValue::boolean(true));
        return resp;
    }

    if (op == "capabilities") {
        resp.set("ok", JsonValue::boolean(true));
        resp.set("version", JsonValue::number(double(kApiVersion)));
        JsonValue ops = JsonValue::array();
        for (const char *name :
             {"ping", "capabilities", "evaluate", "search", "sweep",
              "network", "stats", "save_cache", "shutdown"})
            ops.push(JsonValue::string(name));
        resp.set("ops", std::move(ops));
        // Clients discover HOW they are connected and what the
        // serving layer will bound before they hit the bounds.
        resp.set("transport", JsonValue::string(cfg_.transport));
        JsonValue limits = JsonValue::object();
        limits.set("max_connections",
                   JsonValue::number(double(cfg_.max_connections)));
        limits.set("max_queue",
                   JsonValue::number(double(cfg_.max_queue)));
        limits.set("cache_max_entries",
                   JsonValue::number(double(cfg_.cache_max_entries)));
        limits.set("result_cache_max_entries",
                   JsonValue::number(
                       double(cfg_.result_cache_max_entries)));
        limits.set("cache_store_max_entries",
                   JsonValue::number(
                       double(cfg_.cache_store_max_entries)));
        resp.set("limits", std::move(limits));
        resp.set("schema", apiSchemaJson());
        return resp;
    }

    if (op == "evaluate")
        return responseJson(
            service_.evaluate(decodeRequestJson<EvaluateRequest>(req)));

    if (op == "search") {
        SearchRequest sr = decodeRequestJson<SearchRequest>(req);
        return responseJson(sr, service_.search(sr));
    }

    if (op == "sweep") {
        SweepRequest sr = decodeRequestJson<SweepRequest>(req);
        return responseJson(sr, service_.sweep(sr));
    }

    if (op == "network")
        return responseJson(
            service_.network(decodeRequestJson<NetworkRequest>(req)));

    if (op == "stats") {
        EvalService::Stats s = service_.stats();
        resp.set("ok", JsonValue::boolean(true));
        resp.set("requests", JsonValue::number(double(s.requests)));
        resp.set("models_built",
                 JsonValue::number(double(s.models_built)));
        resp.set("models_reused",
                 JsonValue::number(double(s.models_reused)));
        JsonValue cache = JsonValue::object();
        cache.set("entries",
                  JsonValue::number(double(s.cache_entries)));
        cache.set("hits", JsonValue::number(double(s.cache_hits)));
        cache.set("misses", JsonValue::number(double(s.cache_misses)));
        cache.set("evictions",
                  JsonValue::number(double(s.cache_evictions)));
        cache.set("max_entries",
                  JsonValue::number(
                      double(service_.cache().maxEntries())));
        resp.set("cache", std::move(cache));
        JsonValue results = JsonValue::object();
        results.set("entries",
                    JsonValue::number(double(s.result_cache_entries)));
        results.set("hits",
                    JsonValue::number(double(s.result_cache_hits)));
        results.set("misses",
                    JsonValue::number(double(s.result_cache_misses)));
        results.set("evictions",
                    JsonValue::number(
                        double(s.result_cache_evictions)));
        results.set("max_entries",
                    JsonValue::number(double(
                        service_.resultCache().maxEntries())));
        resp.set("result_cache", std::move(results));
        resp.set("store_loaded", JsonValue::boolean(load_.loaded));
        resp.set("store_detail", JsonValue::string(load_.detail));
        // The serving layer (NetServer) appends its "connections"
        // and "queue" sections here.
        if (stats_hook_)
            stats_hook_(resp);
        return resp;
    }

    if (op == "save_cache") {
        std::string detail;
        bool saved = saveStore(&detail);
        resp.set("ok", JsonValue::boolean(saved));
        resp.set(saved ? "detail" : "error",
                 JsonValue::string(detail));
        return resp;
    }

    if (op == "shutdown") {
        shutdown_.store(true, std::memory_order_release);
        std::string detail;
        bool saved = saveStore(&detail);
        resp.set("ok", JsonValue::boolean(true));
        resp.set("saved", JsonValue::boolean(saved));
        resp.set("detail", JsonValue::string(detail));
        return resp;
    }

    fatal("unknown op '" + op +
          "' (ping, capabilities, evaluate, search, sweep, network, "
          "stats, save_cache, shutdown)");
}

std::string
protocolErrorResponse(const std::string &line,
                      const std::string &message)
{
    JsonValue resp = JsonValue::object();
    resp.set("ok", JsonValue::boolean(false));
    resp.set("error", JsonValue::string(message));
    // Best-effort correlation: echo op/id exactly like handleLine()
    // does, so rejected pipelined requests are attributable.
    if (std::optional<JsonValue> req = parseJson(line)) {
        if (req->isObject()) {
            const JsonValue *opv = req->get("op");
            if (opv && opv->isString() && !opv->asString().empty())
                resp.set("op", *opv);
            if (const JsonValue *id = req->get("id"))
                resp.set("id", *id);
        }
    }
    return resp.serialize();
}

} // namespace ploop
