#include "service/serve_session.hpp"

#include <exception>

#include "api/codec.hpp"
#include "api/schema.hpp"
#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/string_util.hpp"
#include "common/thread_pool.hpp"
#include "mapper/eval_cache.hpp"
#include "net/socket.hpp"

namespace ploop {

namespace {

/** Every protocol op, in advertisement order.  One list drives the
 *  capabilities response, the unknown-op message, and the per-op
 *  latency histogram set, so they cannot drift apart. */
constexpr const char *kOps[] = {
    "ping",    "capabilities", "evaluate", "search",
    "sweep",   "network",      "stats",    "health",
    "metrics", "save_cache",   "shutdown"};

} // namespace

ServeSession::ServeSession(ServeConfig cfg)
    : cfg_(std::move(cfg)),
      service_(EvalService::Config{cfg_.cache_max_entries,
                                   cfg_.result_cache_max_entries}),
      started_(std::chrono::steady_clock::now())
{
    if (!cfg_.cache_store.empty())
        load_ = loadCacheStore(service_.cache(), cfg_.cache_store,
                               cfg_.store_fingerprint);
    else
        load_.detail = "no cache store configured";
    if (cfg_.observe)
        registerMetrics();
    if (!cfg_.obs_log.empty()) {
        MutexLock lock(obs_mu_);
        obs_file_ = std::fopen(cfg_.obs_log.c_str(), "a");
        if (!obs_file_)
            std::fprintf(stderr,
                         "ploop_serve: warning: cannot open obs log "
                         "'%s'; slow-request lines go to stderr\n",
                         cfg_.obs_log.c_str());
    }
}

ServeSession::~ServeSession()
{
    MutexLock lock(obs_mu_);
    if (obs_file_)
        std::fclose(obs_file_);
}

void
ServeSession::registerMetrics()
{
    metrics_ = std::make_unique<MetricsRegistry>();
    MetricsRegistry &m = *metrics_;

    for (const char *op : kOps)
        op_hist_[op] = &m.histogram(
            "ploop_request_latency_seconds",
            "End-to-end request latency (queue wait included), by op.",
            {{"op", op}});
    errors_ = &m.counter("ploop_request_errors_total",
                         "Requests answered with ok:false.");

    // Cache effectiveness.  Hits/misses/evictions are cache-lifetime
    // monotonic tallies (counters); entries and the hit ratio are
    // instantaneous (gauges).
    EvalService *svc = &service_;
    m.counterFn("ploop_eval_cache_hits_total",
                "EvalCache lookups served warm.",
                [svc] { return double(svc->cache().hits()); });
    m.counterFn("ploop_eval_cache_misses_total",
                "EvalCache lookups that missed.",
                [svc] { return double(svc->cache().misses()); });
    m.counterFn("ploop_eval_cache_evictions_total",
                "EvalCache entries evicted by the entry cap.",
                [svc] { return double(svc->cache().evictions()); });
    m.gauge("ploop_eval_cache_entries", "EvalCache resident entries.",
            [svc] { return double(svc->cache().size()); });
    m.gauge("ploop_eval_cache_hit_ratio",
            "EvalCache hits / lookups over the cache's life (0..1).",
            [svc] {
                double h = double(svc->cache().hits());
                double t = h + double(svc->cache().misses());
                return t > 0 ? h / t : 0.0;
            });
    m.counterFn("ploop_result_cache_hits_total",
                "Whole-response ResultCache hits.",
                [svc] { return double(svc->resultCache().hits()); });
    m.counterFn("ploop_result_cache_misses_total",
                "Whole-response ResultCache misses.",
                [svc] { return double(svc->resultCache().misses()); });
    m.counterFn(
        "ploop_result_cache_evictions_total",
        "ResultCache entries evicted by the entry cap.",
        [svc] { return double(svc->resultCache().evictions()); });
    m.gauge("ploop_result_cache_entries",
            "ResultCache resident entries.",
            [svc] { return double(svc->resultCache().size()); });
    m.gauge("ploop_result_cache_hit_ratio",
            "ResultCache hits / lookups over the cache's life (0..1).",
            [svc] {
                double h = double(svc->resultCache().hits());
                double t = h + double(svc->resultCache().misses());
                return t > 0 ? h / t : 0.0;
            });

    // Thread-pool utilization: lanes and how many background workers
    // are executing right now.
    m.gauge("ploop_thread_pool_size",
            "Shared pool parallelism (workers + caller lane).",
            [] { return double(ThreadPool::global().size()); });
    m.gauge("ploop_thread_pool_active_workers",
            "Background workers executing a task right now.",
            [] { return double(ThreadPool::global().activeWorkers()); });

    // Self-protection outcomes, one family with a kind label (the
    // stats op's "robustness" section as metrics).
    RobustnessCounters *rob = &robustness_;
    struct RobKind
    {
        const char *kind;
        const std::atomic<std::uint64_t> *counter;
    };
    for (const RobKind &rk :
         {RobKind{"deadline_exceeded", &rob->deadline_exceeded},
          RobKind{"rate_limited", &rob->rate_limited},
          RobKind{"idle_reaped", &rob->idle_reaped},
          RobKind{"shed", &rob->shed}}) {
        const std::atomic<std::uint64_t> *c = rk.counter;
        m.counterFn(
            "ploop_protection_events_total",
            "Self-protection outcomes (deadlines, rate limits, idle "
            "reaps, load sheds), by kind.",
            // Relaxed: independent monotonic tally, reporting only.
            [c] { return double(c->load(std::memory_order_relaxed)); },
            {{"kind", rk.kind}});
    }

    // Injected I/O faults (PLOOP_FAULTS chaos runs assert these
    // surface; all-zero when injection is off).
    struct FaultKind
    {
        const char *kind;
        std::uint64_t FaultInjector::Counts::*field;
    };
    for (const FaultKind &fk :
         {FaultKind{"short_read", &FaultInjector::Counts::short_reads},
          FaultKind{"short_write",
                    &FaultInjector::Counts::short_writes},
          FaultKind{"eintr", &FaultInjector::Counts::eintrs},
          FaultKind{"stall", &FaultInjector::Counts::stalls},
          FaultKind{"reset", &FaultInjector::Counts::resets}}) {
        std::uint64_t FaultInjector::Counts::*field = fk.field;
        m.counterFn("ploop_faults_injected_total",
                    "I/O faults injected by the fault harness "
                    "(PLOOP_FAULTS), by kind.",
                    [field] {
                        return double(
                            FaultInjector::instance().counts().*field);
                    },
                    {{"kind", fk.kind}});
    }

    m.gauge("ploop_uptime_seconds",
            "Seconds since the session was constructed.",
            [this] { return double(uptimeMs()) / 1e3; });
}

Histogram *
ServeSession::opHistogram(const std::string &op) const
{
    auto it = op_hist_.find(op);
    return it == op_hist_.end() ? nullptr : it->second;
}

void
ServeSession::writeObsLine(const JsonValue &entry)
{
    std::string line = entry.serialize();
    MutexLock lock(obs_mu_);
    std::FILE *out = obs_file_ ? obs_file_ : stderr;
    std::fprintf(out, "%s\n", line.c_str());
    std::fflush(out);
}

bool
ServeSession::saveStore(std::string *detail)
{
    if (cfg_.cache_store.empty()) {
        if (detail)
            *detail = "no cache store configured";
        return false;
    }
    MutexLock lock(store_mu_);
    std::size_t resident = service_.cache().size();
    std::size_t written =
        saveCacheStore(service_.cache(), cfg_.cache_store,
                       cfg_.store_fingerprint,
                       cfg_.cache_store_max_entries);
    if (detail) {
        if (written < resident)
            *detail = strFormat(
                "saved %zu most-reused of %zu entries to '%s'",
                written, resident, cfg_.cache_store.c_str());
        else
            *detail = strFormat("saved %zu entries to '%s'", written,
                                cfg_.cache_store.c_str());
    }
    return true;
}

std::string
ServeSession::handleLine(const std::string &line)
{
    return handleLine(line, 0);
}

std::string
ServeSession::handleLine(const std::string &line,
                         std::uint64_t queue_wait_ns)
{
    const Clock &clock = clockOrSteady(cfg_.clock);
    const std::uint64_t t0 = clock.nowNs();

    JsonValue resp;
    std::string error;
    const JsonValue *id = nullptr;
    std::optional<JsonValue> req = parseJson(line, &error);

    if (!req || !req->isObject()) {
        resp = JsonValue::object();
        resp.set("ok", JsonValue::boolean(false));
        resp.set("error",
                 JsonValue::string(req ? "request must be an object"
                                       : "bad JSON: " + error));
        return resp.serialize();
    }
    const std::uint64_t t_parsed = clock.nowNs();

    // Tracing rides the transport: `trace: true` on any request, or
    // the slow-request log (which must have the breakdown in hand
    // BEFORE it knows the request was slow, so arming it traces
    // every request).
    bool want_trace = false;
    std::unique_ptr<Trace> trace;

    try {
        const JsonValue *tracev = req->get("trace");
        fatalIf(tracev && !tracev->isBool(),
                "field 'trace' must be true or false");
        want_trace = tracev && tracev->asBool();
        if (want_trace || cfg_.slow_request_ms > 0) {
            trace = std::make_unique<Trace>(cfg_.clock);
            // The root must cover queue wait + parse, both measured
            // before the Trace existed.
            trace->backdateRootNs((trace->nowNs() - t0) +
                                  queue_wait_ns);
            if (queue_wait_ns > 0)
                trace->addSpan("queue_wait", Trace::kRoot,
                               t0 >= queue_wait_ns
                                   ? t0 - queue_wait_ns
                                   : 0,
                               t0);
            trace->addSpan("parse", Trace::kRoot, t0, t_parsed);
        }
        resp = handleParsed(*req, trace.get());
    } catch (const CancelledError &e) {
        // The request's own timeout_ms elapsed.  Not a client error
        // and not a server fault: the budget was simply too small
        // for the work.  A machine-readable code lets clients (and
        // RetryingLineClient) distinguish it from bad requests --
        // retrying with a larger budget is legitimate, and warm
        // EvalCache entries make the retry cheaper.
        robustness_.deadline_exceeded.fetch_add(
            1, std::memory_order_relaxed);
        resp = JsonValue::object();
        resp.set("ok", JsonValue::boolean(false));
        resp.set("error", JsonValue::string(e.what()));
        resp.set("code", JsonValue::string("deadline_exceeded"));
    } catch (const FatalError &e) {
        // A bad request (unknown field, invalid layer shape, ...)
        // fails THIS request; the session keeps serving.
        resp = JsonValue::object();
        resp.set("ok", JsonValue::boolean(false));
        resp.set("error", JsonValue::string(e.what()));
    } catch (const std::exception &e) {
        resp = JsonValue::object();
        resp.set("ok", JsonValue::boolean(false));
        resp.set("error",
                 JsonValue::string(std::string("internal error: ") +
                                   e.what()));
    }

    // Echo op/id so pipelined clients can match responses.  Read
    // defensively: this runs outside the try block, and a non-string
    // "op" must not throw past the "never throws" contract.
    const JsonValue *opv = req->get("op");
    std::string op =
        opv && opv->isString() ? opv->asString() : std::string();
    if (!op.empty())
        resp.set("op", *opv);
    id = req->get("id");
    if (id)
        resp.set("id", *id);

    // Close the trace and account the request.  Total latency spans
    // admission (queue wait) to here -- response building included,
    // final string serialization and delivery excluded (those are
    // covered by the scheduler's run/queue histograms and are
    // microseconds against search milliseconds).
    if (trace)
        trace->endRoot();
    const std::uint64_t total_ns =
        (clock.nowNs() - t0) + queue_wait_ns;
    const JsonValue *okv = resp.get("ok");
    const bool ok = okv && okv->isBool() && okv->asBool();
    if (metrics_) {
        if (Histogram *h = opHistogram(op))
            h->record(total_ns);
        if (!ok)
            errors_->inc();
    }
    if (trace && want_trace)
        resp.set("trace", trace->toJson());

    if (trace && cfg_.slow_request_ms > 0 &&
        total_ns / 1000000 >= cfg_.slow_request_ms) {
        JsonValue entry = JsonValue::object();
        entry.set("slow_request", JsonValue::boolean(true));
        entry.set("op", JsonValue::string(op));
        if (id)
            entry.set("id", *id);
        entry.set("ms", JsonValue::number(double(total_ns) / 1e6));
        entry.set("queue_wait_ms",
                  JsonValue::number(double(queue_wait_ns) / 1e6));
        entry.set("ok", JsonValue::boolean(ok));
        entry.set("trace", trace->toJson());
        writeObsLine(entry);
    }
    return resp.serialize();
}

/**
 * Thin transport: every request op decodes through the declarative
 * api/ codec (strict: unknown/duplicate/mistyped fields fail the
 * request by name) and encodes through the shared responseJson
 * serializers.  Only the session-level ops (ping, capabilities,
 * stats, save_cache, shutdown) are handled inline.
 */
JsonValue
ServeSession::handleParsed(const JsonValue &req, Trace *trace)
{
    const JsonValue *opv = req.get("op");
    std::string op =
        opv && opv->isString() ? opv->asString() : std::string();
    JsonValue resp = JsonValue::object();
    const SpanRef root{trace, Trace::kRoot};

    if (op == "ping") {
        resp.set("ok", JsonValue::boolean(true));
        return resp;
    }

    if (op == "capabilities") {
        resp.set("ok", JsonValue::boolean(true));
        resp.set("version", JsonValue::number(double(kApiVersion)));
        JsonValue ops = JsonValue::array();
        for (const char *name : kOps)
            ops.push(JsonValue::string(name));
        resp.set("ops", std::move(ops));
        // Clients discover HOW they are connected and what the
        // serving layer will bound before they hit the bounds.
        resp.set("transport", JsonValue::string(cfg_.transport));
        JsonValue limits = JsonValue::object();
        limits.set("max_connections",
                   JsonValue::number(double(cfg_.max_connections)));
        limits.set("max_queue",
                   JsonValue::number(double(cfg_.max_queue)));
        limits.set("cache_max_entries",
                   JsonValue::number(double(cfg_.cache_max_entries)));
        limits.set("result_cache_max_entries",
                   JsonValue::number(
                       double(cfg_.result_cache_max_entries)));
        limits.set("cache_store_max_entries",
                   JsonValue::number(
                       double(cfg_.cache_store_max_entries)));
        limits.set("idle_timeout_ms",
                   JsonValue::number(double(cfg_.idle_timeout_ms)));
        limits.set("rate_limit_rps",
                   JsonValue::number(cfg_.rate_limit_rps));
        limits.set("rate_limit_burst",
                   JsonValue::number(cfg_.rate_limit_burst));
        limits.set("shed_queue_wait_ms",
                   JsonValue::number(
                       double(cfg_.shed_queue_wait_ms)));
        resp.set("limits", std::move(limits));
        resp.set("schema", apiSchemaJson());
        return resp;
    }

    if (op == "evaluate") {
        EvaluateRequest er;
        {
            SpanScope decode(root, "decode");
            er = decodeRequestJson<EvaluateRequest>(req);
        }
        EvaluateResponse r = service_.evaluate(er, root);
        SpanScope serialize(root, "serialize");
        return responseJson(r);
    }

    if (op == "search") {
        SearchRequest sr;
        {
            SpanScope decode(root, "decode");
            sr = decodeRequestJson<SearchRequest>(req);
        }
        SearchResponse r = service_.search(sr, root);
        SpanScope serialize(root, "serialize");
        return responseJson(sr, r);
    }

    if (op == "sweep") {
        SweepRequest sr;
        {
            SpanScope decode(root, "decode");
            sr = decodeRequestJson<SweepRequest>(req);
        }
        SweepResponse r = service_.sweep(sr, root);
        SpanScope serialize(root, "serialize");
        return responseJson(sr, r);
    }

    if (op == "network") {
        NetworkRequest nr;
        {
            SpanScope decode(root, "decode");
            nr = decodeRequestJson<NetworkRequest>(req);
        }
        NetworkResponse r = service_.network(nr, root);
        SpanScope serialize(root, "serialize");
        return responseJson(r);
    }

    if (op == "stats") {
        EvalService::Stats s = service_.stats();
        resp.set("ok", JsonValue::boolean(true));
        resp.set("requests", JsonValue::number(double(s.requests)));
        resp.set("models_built",
                 JsonValue::number(double(s.models_built)));
        resp.set("models_reused",
                 JsonValue::number(double(s.models_reused)));
        JsonValue cache = JsonValue::object();
        cache.set("entries",
                  JsonValue::number(double(s.cache_entries)));
        cache.set("hits", JsonValue::number(double(s.cache_hits)));
        cache.set("misses", JsonValue::number(double(s.cache_misses)));
        cache.set("evictions",
                  JsonValue::number(double(s.cache_evictions)));
        cache.set("max_entries",
                  JsonValue::number(
                      double(service_.cache().maxEntries())));
        resp.set("cache", std::move(cache));
        JsonValue results = JsonValue::object();
        results.set("entries",
                    JsonValue::number(double(s.result_cache_entries)));
        results.set("hits",
                    JsonValue::number(double(s.result_cache_hits)));
        results.set("misses",
                    JsonValue::number(double(s.result_cache_misses)));
        results.set("evictions",
                    JsonValue::number(
                        double(s.result_cache_evictions)));
        results.set("max_entries",
                    JsonValue::number(double(
                        service_.resultCache().maxEntries())));
        resp.set("result_cache", std::move(results));
        resp.set("store_loaded", JsonValue::boolean(load_.loaded));
        resp.set("store_detail", JsonValue::string(load_.detail));
        // Always emitted (zeros when nothing went wrong) so
        // dashboards and tests can assert the fields exist without
        // first provoking a failure.
        JsonValue robustness = JsonValue::object();
        robustness.set(
            "deadline_exceeded",
            JsonValue::number(double(robustness_.deadline_exceeded
                                         .load(std::memory_order_relaxed))));
        robustness.set(
            "rate_limited",
            JsonValue::number(double(robustness_.rate_limited.load(
                std::memory_order_relaxed))));
        robustness.set(
            "idle_reaped",
            JsonValue::number(double(robustness_.idle_reaped.load(
                std::memory_order_relaxed))));
        robustness.set("shed",
                       JsonValue::number(double(robustness_.shed.load(
                           std::memory_order_relaxed))));
        robustness.set("uptime_ms",
                       JsonValue::number(double(uptimeMs())));
        resp.set("robustness", std::move(robustness));
        // Latency quantiles per op, from the same histograms the
        // metrics op exposes; ops with no traffic are omitted.
        if (metrics_) {
            JsonValue latency = JsonValue::object();
            for (const char *name : kOps) {
                Histogram::Snapshot snap =
                    op_hist_.at(name)->snapshot();
                if (snap.total() == 0)
                    continue;
                JsonValue row = JsonValue::object();
                row.set("count",
                        JsonValue::number(double(snap.total())));
                row.set("p50_ms",
                        JsonValue::number(
                            double(snap.quantileNs(0.50)) / 1e6));
                row.set("p95_ms",
                        JsonValue::number(
                            double(snap.quantileNs(0.95)) / 1e6));
                row.set("p99_ms",
                        JsonValue::number(
                            double(snap.quantileNs(0.99)) / 1e6));
                latency.set(name, std::move(row));
            }
            resp.set("latency", std::move(latency));
        }
        // The serving layer (NetServer) appends its "connections"
        // and "queue" sections here.  Snapshot under hooks_mu_, call
        // outside it: the hook takes the scheduler's lock internally.
        if (std::function<void(JsonValue &)> hook = statsHook())
            hook(resp);
        return resp;
    }

    if (op == "health") {
        // Cheap by design: answered inline even when every scheduler
        // worker is busy, so probes see pressure instead of timing
        // out.  Status comes from the serving layer's queue view; a
        // stdio session has no queue and is always "ok".
        resp.set("ok", JsonValue::boolean(true));
        std::function<std::string()> hook = healthHook();
        resp.set("status", JsonValue::string(hook ? hook() : "ok"));
        resp.set("uptime_ms", JsonValue::number(double(uptimeMs())));
        // Probes watch tail latency without scraping: search p99
        // from the same histogram the metrics op exposes (0 before
        // any search completed).
        if (metrics_) {
            Histogram::Snapshot snap =
                op_hist_.at("search")->snapshot();
            resp.set("p99_ms",
                     JsonValue::number(
                         snap.total() > 0
                             ? double(snap.quantileNs(0.99)) / 1e6
                             : 0.0));
        }
        return resp;
    }

    if (op == "metrics") {
        fatalIf(!metrics_,
                "metrics are disabled on this session (--no-observe)");
        resp.set("ok", JsonValue::boolean(true));
        resp.set("content_type",
                 JsonValue::string("text/plain; version=0.0.4"));
        resp.set("body",
                 JsonValue::string(metrics_->renderPrometheus()));
        return resp;
    }

    if (op == "save_cache") {
        std::string detail;
        bool saved = saveStore(&detail);
        resp.set("ok", JsonValue::boolean(saved));
        resp.set(saved ? "detail" : "error",
                 JsonValue::string(detail));
        return resp;
    }

    if (op == "shutdown") {
        shutdown_.store(true, std::memory_order_release);
        std::string detail;
        bool saved = saveStore(&detail);
        resp.set("ok", JsonValue::boolean(true));
        resp.set("saved", JsonValue::boolean(saved));
        resp.set("detail", JsonValue::string(detail));
        return resp;
    }

    std::string known;
    for (const char *name : kOps)
        known += std::string(known.empty() ? "" : ", ") + name;
    fatal("unknown op '" + op + "' (" + known + ")");
}

std::function<void(JsonValue &)>
ServeSession::statsHook() const
{
    MutexLock lock(hooks_mu_);
    return stats_hook_;
}

std::function<std::string()>
ServeSession::healthHook() const
{
    MutexLock lock(hooks_mu_);
    return health_hook_;
}

std::uint64_t
ServeSession::uptimeMs() const
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - started_)
            .count());
}

std::string
protocolErrorResponse(const std::string &line,
                      const std::string &message, const char *code,
                      std::int64_t retry_after_ms)
{
    JsonValue resp = JsonValue::object();
    resp.set("ok", JsonValue::boolean(false));
    resp.set("error", JsonValue::string(message));
    if (code)
        resp.set("code", JsonValue::string(code));
    if (retry_after_ms >= 0)
        resp.set("retry_after_ms",
                 JsonValue::number(double(retry_after_ms)));
    // Best-effort correlation: echo op/id exactly like handleLine()
    // does, so rejected pipelined requests are attributable.
    if (std::optional<JsonValue> req = parseJson(line)) {
        if (req->isObject()) {
            const JsonValue *opv = req->get("op");
            if (opv && opv->isString() && !opv->asString().empty())
                resp.set("op", *opv);
            if (const JsonValue *id = req->get("id"))
                resp.set("id", *id);
        }
    }
    return resp.serialize();
}

} // namespace ploop
