#include "service/serve_session.hpp"

#include <cstring>
#include <exception>

#include "common/error.hpp"
#include "common/string_util.hpp"
#include "mapper/eval_cache.hpp"
#include "photonics/scaling.hpp"

namespace ploop {

namespace {

// ---- request-field readers (absent fields keep defaults) ----------

double
numberOr(const JsonValue *obj, const char *key, double dflt)
{
    const JsonValue *v = obj ? obj->get(key) : nullptr;
    return v ? v->asNumber() : dflt;
}

std::uint64_t
u64Or(const JsonValue *obj, const char *key, std::uint64_t dflt)
{
    const JsonValue *v = obj ? obj->get(key) : nullptr;
    if (!v)
        return dflt;
    double d = v->asNumber();
    // !(d >= 0) also rejects NaN; the upper bound rejects inf and
    // anything a uint64 cast would make undefined (2^64 is exactly
    // representable as a double).
    if (!(d >= 0) || d >= 18446744073709551616.0)
        fatal(std::string("field '") + key +
              "' must be a non-negative integer below 2^64");
    return static_cast<std::uint64_t>(d);
}

bool
boolOr(const JsonValue *obj, const char *key, bool dflt)
{
    const JsonValue *v = obj ? obj->get(key) : nullptr;
    return v ? v->asBool() : dflt;
}

std::string
stringOr(const JsonValue *obj, const char *key, const std::string &dflt)
{
    const JsonValue *v = obj ? obj->get(key) : nullptr;
    return v ? v->asString() : dflt;
}

ScalingProfile
scalingByName(const std::string &name)
{
    for (ScalingProfile p : allScalingProfiles()) {
        if (name == scalingProfileName(p))
            return p;
    }
    fatal("unknown scaling profile '" + name + "'");
}

/** Decode an "arch" object: paperDefault(scaling) plus overrides. */
AlbireoConfig
parseArch(const JsonValue *arch)
{
    ScalingProfile scaling =
        scalingByName(stringOr(arch, "scaling", "conservative"));
    bool with_dram = boolOr(arch, "with_dram", false);
    AlbireoConfig cfg = AlbireoConfig::paperDefault(scaling, with_dram);

    cfg.input_reuse = numberOr(arch, "input_reuse", cfg.input_reuse);
    cfg.input_window_reuse =
        numberOr(arch, "input_window_reuse", cfg.input_window_reuse);
    cfg.output_reuse = numberOr(arch, "output_reuse", cfg.output_reuse);
    cfg.weight_reuse = numberOr(arch, "weight_reuse", cfg.weight_reuse);
    cfg.unit_r = u64Or(arch, "unit_r", cfg.unit_r);
    cfg.unit_s = u64Or(arch, "unit_s", cfg.unit_s);
    cfg.unit_k = u64Or(arch, "unit_k", cfg.unit_k);
    cfg.unit_c = u64Or(arch, "unit_c", cfg.unit_c);
    cfg.chip_k = u64Or(arch, "chip_k", cfg.chip_k);
    cfg.chip_p = u64Or(arch, "chip_p", cfg.chip_p);
    cfg.clock_hz = numberOr(arch, "clock_hz", cfg.clock_hz);
    cfg.gb_capacity_words =
        u64Or(arch, "gb_capacity_words", cfg.gb_capacity_words);
    cfg.regs_capacity_words =
        u64Or(arch, "regs_capacity_words", cfg.regs_capacity_words);
    cfg.gb_bandwidth_words =
        numberOr(arch, "gb_bandwidth_words", cfg.gb_bandwidth_words);
    cfg.dram_bandwidth_words = numberOr(arch, "dram_bandwidth_words",
                                        cfg.dram_bandwidth_words);
    cfg.dram_energy_per_bit = numberOr(arch, "dram_energy_per_bit",
                                       cfg.dram_energy_per_bit);
    return cfg;
}

LayerRequest
parseLayer(const JsonValue *layer)
{
    LayerRequest lr;
    lr.name = stringOr(layer, "name", lr.name);
    std::string kind = stringOr(layer, "kind", "conv");
    if (kind == "fc" || kind == "fully_connected")
        lr.fully_connected = true;
    else
        fatalIf(kind != "conv",
                "layer kind must be 'conv' or 'fc', got '" + kind +
                    "'");
    lr.n = u64Or(layer, "n", lr.n);
    lr.k = u64Or(layer, "k", lr.k);
    lr.c = u64Or(layer, "c", lr.c);
    lr.p = u64Or(layer, "p", lr.p);
    lr.q = u64Or(layer, "q", lr.q);
    lr.r = u64Or(layer, "r", lr.r);
    lr.s = u64Or(layer, "s", lr.s);
    lr.hstride = u64Or(layer, "hstride", lr.hstride);
    lr.wstride = u64Or(layer, "wstride", lr.wstride);
    return lr;
}

SearchOptions
parseOptions(const JsonValue *options)
{
    SearchOptions opts;
    std::string obj = stringOr(options, "objective", "energy");
    if (obj == "energy")
        opts.objective = Objective::Energy;
    else if (obj == "delay")
        opts.objective = Objective::Delay;
    else if (obj == "edp")
        opts.objective = Objective::Edp;
    else
        fatal("unknown objective '" + obj + "'");
    opts.random_samples = static_cast<unsigned>(
        u64Or(options, "random_samples", opts.random_samples));
    opts.hill_climb_rounds = static_cast<unsigned>(
        u64Or(options, "hill_climb_rounds", opts.hill_climb_rounds));
    opts.seed = u64Or(options, "seed", opts.seed);
    opts.threads =
        static_cast<unsigned>(u64Or(options, "threads", opts.threads));
    return opts;
}

JsonValue
statsJson(const SearchStats &stats)
{
    JsonValue out = JsonValue::object();
    out.set("evaluated", JsonValue::number(double(stats.evaluated)));
    out.set("invalid", JsonValue::number(double(stats.invalid)));
    out.set("cache_hits",
            JsonValue::number(double(stats.cache_hits)));
    out.set("cache_misses",
            JsonValue::number(double(stats.cache_misses)));
    // freshEvals() == 0 is the machine-checkable "fully warm" signal
    // (every valid candidate answered from cache).
    out.set("fresh_evals",
            JsonValue::number(double(stats.freshEvals())));
    out.set("wall_time_s", JsonValue::number(stats.wall_time_s));
    return out;
}

JsonValue
rowJson(const ResultRow &row)
{
    JsonValue out = JsonValue::object();
    out.set("label", JsonValue::string(row.label));
    for (const auto &[key, v] : row.values)
        out.set(key, JsonValue::number(v));
    return out;
}

std::string
hexU64(std::uint64_t v)
{
    return strFormat("0x%016llx", static_cast<unsigned long long>(v));
}

} // namespace

ServeSession::ServeSession(ServeConfig cfg)
    : cfg_(std::move(cfg)),
      service_(EvalService::Config{cfg_.cache_max_entries})
{
    if (!cfg_.cache_store.empty())
        load_ = loadCacheStore(service_.cache(), cfg_.cache_store,
                               cfg_.store_fingerprint);
    else
        load_.detail = "no cache store configured";
}

bool
ServeSession::saveStore(std::string *detail)
{
    if (cfg_.cache_store.empty()) {
        if (detail)
            *detail = "no cache store configured";
        return false;
    }
    saveCacheStore(service_.cache(), cfg_.cache_store,
                   cfg_.store_fingerprint);
    if (detail)
        *detail = strFormat("saved %zu entries to '%s'",
                            service_.cache().size(),
                            cfg_.cache_store.c_str());
    return true;
}

std::string
ServeSession::handleLine(const std::string &line)
{
    JsonValue resp;
    std::string error;
    const JsonValue *id = nullptr;
    std::optional<JsonValue> req = parseJson(line, &error);

    if (!req || !req->isObject()) {
        resp = JsonValue::object();
        resp.set("ok", JsonValue::boolean(false));
        resp.set("error",
                 JsonValue::string(req ? "request must be an object"
                                       : "bad JSON: " + error));
        return resp.serialize();
    }

    try {
        resp = handleParsed(*req);
    } catch (const FatalError &e) {
        // A bad request (unknown knob, invalid layer shape, ...)
        // fails THIS request; the session keeps serving.
        resp = JsonValue::object();
        resp.set("ok", JsonValue::boolean(false));
        resp.set("error", JsonValue::string(e.what()));
    } catch (const std::exception &e) {
        resp = JsonValue::object();
        resp.set("ok", JsonValue::boolean(false));
        resp.set("error",
                 JsonValue::string(std::string("internal error: ") +
                                   e.what()));
    }

    // Echo op/id so pipelined clients can match responses.  Read
    // defensively: this runs outside the try block, and a non-string
    // "op" must not throw past the "never throws" contract.
    const JsonValue *opv = req->get("op");
    if (opv && opv->isString() && !opv->asString().empty())
        resp.set("op", *opv);
    id = req->get("id");
    if (id)
        resp.set("id", *id);
    return resp.serialize();
}

JsonValue
ServeSession::handleParsed(const JsonValue &req)
{
    std::string op = stringOr(&req, "op", "");
    JsonValue resp = JsonValue::object();

    if (op == "ping") {
        resp.set("ok", JsonValue::boolean(true));
        return resp;
    }

    if (op == "evaluate") {
        EvaluateRequest er;
        er.arch = parseArch(req.get("arch"));
        er.layer = parseLayer(req.get("layer"));
        er.mapping = stringOr(&req, "mapping", er.mapping);
        EvaluateResponse r = service_.evaluate(er);
        resp.set("ok", JsonValue::boolean(true));
        resp.set("result", rowJson(r.row));
        resp.set("mapping", JsonValue::string(r.mapping_str));
        return resp;
    }

    if (op == "search") {
        SearchRequest sr;
        sr.arch = parseArch(req.get("arch"));
        sr.layer = parseLayer(req.get("layer"));
        sr.options = parseOptions(req.get("options"));
        SearchResponse r = service_.search(sr);
        resp.set("ok", JsonValue::boolean(true));
        resp.set("objective",
                 JsonValue::string(objectiveName(sr.options.objective)));
        resp.set("best_value", JsonValue::number(r.best_value));
        resp.set("energy_j", JsonValue::number(r.best.energy_j));
        resp.set("runtime_s", JsonValue::number(r.best.runtime_s));
        // Exact bit patterns: warm-start bit-identity is assertable
        // by plain string comparison from any client (the smoke
        // script greps these).
        std::uint64_t ebits, rbits;
        static_assert(sizeof(double) == sizeof(std::uint64_t), "");
        std::memcpy(&ebits, &r.best.energy_j, sizeof(ebits));
        std::memcpy(&rbits, &r.best.runtime_s, sizeof(rbits));
        resp.set("energy_bits", JsonValue::string(hexU64(ebits)));
        resp.set("runtime_bits", JsonValue::string(hexU64(rbits)));
        resp.set("mapping_key",
                 JsonValue::string(hexU64(r.mapping_key)));
        resp.set("mapping", JsonValue::string(r.mapping_str));
        resp.set("stats", statsJson(r.stats));
        resp.set("result", rowJson(r.row));
        return resp;
    }

    if (op == "sweep") {
        SweepRequest sr;
        sr.arch = parseArch(req.get("arch"));
        sr.layer = parseLayer(req.get("layer"));
        sr.knob = stringOr(&req, "knob", "");
        const JsonValue *values = req.get("values");
        fatalIf(!values || !values->isArray(),
                "sweep needs a 'values' array");
        for (const JsonValue &v : values->items())
            sr.values.push_back(v.asNumber());
        sr.options = parseOptions(req.get("options"));
        SweepResponse r = service_.sweep(sr);
        resp.set("ok", JsonValue::boolean(true));
        JsonValue points = JsonValue::array();
        for (const SweepPoint &p : r.points) {
            JsonValue pt = JsonValue::object();
            pt.set("value", JsonValue::number(p.value));
            pt.set("energy_per_mac_j",
                   JsonValue::number(p.result.energyPerMac()));
            pt.set("macs_per_cycle",
                   JsonValue::number(p.result.throughput.macs_per_cycle));
            pt.set("utilization",
                   JsonValue::number(p.result.throughput.utilization));
            pt.set("energy_total_j",
                   JsonValue::number(p.result.totalEnergy()));
            points.push(std::move(pt));
        }
        resp.set("points", std::move(points));
        resp.set("stats", statsJson(r.stats));
        return resp;
    }

    if (op == "network") {
        NetworkRequest nr;
        nr.arch = parseArch(req.get("arch"));
        nr.network = stringOr(&req, "network", "");
        nr.batch = u64Or(&req, "batch", 1);
        if (const JsonValue *layers = req.get("layers")) {
            for (const JsonValue &l : layers->items())
                nr.layers.push_back(parseLayer(&l));
        }
        nr.options = parseOptions(req.get("options"));
        NetworkResponse r = service_.network(nr);
        resp.set("ok", JsonValue::boolean(true));
        resp.set("total_energy_j",
                 JsonValue::number(r.result.total_energy_j));
        resp.set("total_macs", JsonValue::number(r.result.total_macs));
        resp.set("macs_per_cycle",
                 JsonValue::number(r.result.macsPerCycle()));
        resp.set("energy_per_mac_j",
                 JsonValue::number(r.result.energyPerMac()));
        JsonValue layers = JsonValue::array();
        for (const LayerRunResult &lr : r.result.layers) {
            JsonValue l = JsonValue::object();
            l.set("name", JsonValue::string(lr.layer_name));
            l.set("energy_j",
                  JsonValue::number(lr.result.totalEnergy()));
            l.set("macs_per_cycle",
                  JsonValue::number(lr.result.throughput.macs_per_cycle));
            l.set("utilization",
                  JsonValue::number(lr.result.throughput.utilization));
            layers.push(std::move(l));
        }
        resp.set("layers", std::move(layers));
        resp.set("stats", statsJson(r.stats));
        return resp;
    }

    if (op == "stats") {
        EvalService::Stats s = service_.stats();
        resp.set("ok", JsonValue::boolean(true));
        resp.set("requests", JsonValue::number(double(s.requests)));
        resp.set("models_built",
                 JsonValue::number(double(s.models_built)));
        resp.set("models_reused",
                 JsonValue::number(double(s.models_reused)));
        JsonValue cache = JsonValue::object();
        cache.set("entries",
                  JsonValue::number(double(s.cache_entries)));
        cache.set("hits", JsonValue::number(double(s.cache_hits)));
        cache.set("misses", JsonValue::number(double(s.cache_misses)));
        cache.set("evictions",
                  JsonValue::number(double(s.cache_evictions)));
        cache.set("max_entries",
                  JsonValue::number(
                      double(service_.cache().maxEntries())));
        resp.set("cache", std::move(cache));
        resp.set("store_loaded", JsonValue::boolean(load_.loaded));
        resp.set("store_detail", JsonValue::string(load_.detail));
        return resp;
    }

    if (op == "save_cache") {
        std::string detail;
        bool saved = saveStore(&detail);
        resp.set("ok", JsonValue::boolean(saved));
        resp.set(saved ? "detail" : "error",
                 JsonValue::string(detail));
        return resp;
    }

    if (op == "shutdown") {
        shutdown_ = true;
        std::string detail;
        bool saved = saveStore(&detail);
        resp.set("ok", JsonValue::boolean(true));
        resp.set("saved", JsonValue::boolean(saved));
        resp.set("detail", JsonValue::string(detail));
        return resp;
    }

    fatal("unknown op '" + op +
          "' (ping, evaluate, search, sweep, network, stats, "
          "save_cache, shutdown)");
}

} // namespace ploop
