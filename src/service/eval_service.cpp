#include "service/eval_service.hpp"

#include "common/error.hpp"
#include "mapper/dataflow.hpp"
#include "mapper/eval_cache.hpp"
#include "mapper/mapspace.hpp"
#include "workload/model_zoo.hpp"

namespace ploop {

EvalService::EvalService() : EvalService(Config{}) {}

EvalService::EvalService(Config cfg)
    : registry_(makeDefaultRegistry()),
      result_cache_(cfg.result_cache_max_entries)
{
    cache_.setMaxEntries(cfg.cache_max_entries);
}

const Evaluator &
EvalService::evaluatorFor(const AlbireoConfig &cfg)
{
    std::uint64_t key = albireoConfigKey(cfg);
    {
        MutexLock lock(mu_);
        auto it = models_.find(key);
        if (it != models_.end()) {
            ++models_reused_;
            return *it->second->evaluator;
        }
    }

    // Build OUTSIDE the lock: arch construction validates link
    // budgets and renders specs, and a slow build must not serialize
    // unrelated requests.  A racing duplicate build loses the
    // emplace and is discarded.
    auto model = std::make_unique<Model>(buildAlbireoArch(cfg));
    model->evaluator =
        std::make_unique<Evaluator>(model->arch, registry_);

    MutexLock lock(mu_);
    auto [it, inserted] = models_.emplace(key, std::move(model));
    if (inserted)
        ++models_built_;
    else
        ++models_reused_;
    return *it->second->evaluator;
}

EvaluateResponse
EvalService::evaluate(const EvaluateRequest &req, SpanRef span)
{
    SpanScope exec(span, "execute");
    const Evaluator &evaluator = evaluatorFor(req.arch);
    LayerShape layer = req.layer.toLayer();

    Mapping mapping = [&]() -> Mapping {
        if (req.mapping == "greedy")
            return Mapspace(evaluator.arch(), layer).greedySeed();
        if (req.mapping == "outer")
            return Mapspace(evaluator.arch(), layer).outerSeed();
        for (Dataflow df : allDataflows()) {
            if (req.mapping == dataflowName(df))
                return presetMapping(evaluator.arch(), layer, df);
        }
        fatal("unknown mapping '" + req.mapping +
              "' (use greedy, outer, or a dataflow name)");
    }();

    EvalResult result = evaluator.evaluate(layer, mapping);
    {
        MutexLock lock(mu_);
        ++requests_;
    }
    return EvaluateResponse{
        flattenResult(req.mapping + ":" + layer.name(), result),
        mapping.str()};
}

SearchResponse
EvalService::search(const SearchRequest &req, SpanRef span)
{
    SpanScope exec(span, "execute");
    std::uint64_t fp = requestFingerprint(req);
    if (std::optional<SearchResponse> hit = result_cache_.find(fp)) {
        // The whole response is served from the result cache; by the
        // determinism contract it is bit-identical to re-running the
        // search.  The stats are THIS request's own work: none.
        hit->from_result_cache = true;
        hit->stats = SearchStats{};
        MutexLock lock(mu_);
        ++requests_;
        return std::move(*hit);
    }

    const Evaluator &evaluator = evaluatorFor(req.arch);
    LayerShape layer = req.layer.toLayer();

    // The deadline clock starts here, after the result-cache lookup:
    // a warm hit answers instantly whatever budget the request
    // carries.  On expiry the search throws CancelledError before
    // result_cache_.insert below, so a timed-out request never
    // pollutes the result cache; EvalCache warmth accumulated before
    // the cutoff is kept (cached values are bit-identical to fresh,
    // so a retry benefits without changing its answer).
    CancelToken cancel(req.options.timeout_ms);
    Mapper mapper(evaluator, req.options);
    MapperResult r =
        mapper.search(layer, &cache_, &cancel, exec.ref());
    {
        MutexLock lock(mu_);
        ++requests_;
    }

    QuickEval best{r.result.totalEnergy(),
                   r.result.throughput.runtime_s};
    SearchResponse out{std::move(r.mapping),
                       std::string(),
                       0,
                       objectiveValue(req.options.objective, best),
                       best,
                       r.stats,
                       flattenResult(layer.name(), r.result),
                       fp,
                       false};
    out.mapping_str = out.mapping.str();
    out.mapping_key = mappingKey(out.mapping);
    result_cache_.insert(fp, out);
    return out;
}

SweepResponse
EvalService::sweep(const SweepRequest &req, SpanRef span)
{
    SpanScope exec(span, "execute");
    LayerShape layer = req.layer.toLayer();
    // coords() validates the grid (axes, knobs, values, size cap).
    std::vector<std::vector<double>> coords = req.grid.coords();

    // Registry-cached evaluators per point: a repeated sweep request
    // rebuilds nothing.
    std::vector<const Evaluator *> evaluators;
    evaluators.reserve(coords.size());
    for (const std::vector<double> &coord : coords)
        evaluators.push_back(
            &evaluatorFor(req.grid.configAt(req.arch, coord)));

    SweepResponse out;
    for (const GridAxis &axis : req.grid.axes)
        out.axes.push_back(axis.knob);
    // Deadline spans the whole fan-out; an expired token unwinds with
    // no partial point list (EvalCache warmth is kept, see search()).
    CancelToken cancel(req.options.timeout_ms);
    out.points =
        runSweepEvaluators(evaluators, coords, layer, req.options,
                           &cache_, &out.stats, &cancel, exec.ref());
    MutexLock lock(mu_);
    ++requests_;
    return out;
}

NetworkResponse
EvalService::network(const NetworkRequest &req, SpanRef span)
{
    SpanScope exec(span, "execute");
    const Evaluator &evaluator = evaluatorFor(req.arch);

    Network net = [&]() -> Network {
        if (!req.network.empty())
            return makeNetwork(req.network, req.batch);
        fatalIf(req.layers.empty(),
                "network request needs a zoo name or inline layers");
        Network custom("custom");
        for (const LayerRequest &lr : req.layers)
            custom.addLayer(lr.toLayer());
        return custom;
    }();

    NetworkResponse out;
    // Deadline spans every layer's search; expiry unwinds with no
    // partial network result (EvalCache warmth kept, see search()).
    CancelToken cancel(req.options.timeout_ms);
    out.result = runNetwork(evaluator, net, req.options, &cache_,
                            &out.stats, &cancel, exec.ref());
    MutexLock lock(mu_);
    ++requests_;
    return out;
}

EvalService::Stats
EvalService::stats() const
{
    Stats out;
    {
        MutexLock lock(mu_);
        out.requests = requests_;
        out.models_built = models_built_;
        out.models_reused = models_reused_;
    }
    out.cache_entries = cache_.size();
    out.cache_hits = cache_.hits();
    out.cache_misses = cache_.misses();
    out.cache_evictions = cache_.evictions();
    out.result_cache_entries = result_cache_.size();
    out.result_cache_hits = result_cache_.hits();
    out.result_cache_misses = result_cache_.misses();
    out.result_cache_evictions = result_cache_.evictions();
    return out;
}

} // namespace ploop
