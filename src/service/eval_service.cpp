#include "service/eval_service.hpp"

#include <cstring>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "mapper/dataflow.hpp"
#include "mapper/eval_cache.hpp"
#include "mapper/mapspace.hpp"
#include "workload/model_zoo.hpp"

namespace ploop {

namespace {

std::uint64_t
mixDouble(std::uint64_t h, double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return mix64(h ^ bits);
}

std::uint64_t
mixU64(std::uint64_t h, std::uint64_t v)
{
    return mix64(h ^ v);
}

} // namespace

std::uint64_t
albireoConfigKey(const AlbireoConfig &cfg)
{
    // Every field participates: two configs differing anywhere get
    // distinct registry slots (the cheap pre-build key; EvalCache
    // scoping uses the post-build model fingerprint, so two configs
    // that RESOLVE to the same model still share cache entries).
    std::uint64_t h = mixU64(0x414c4249u, std::uint64_t(cfg.scaling));
    h = mixDouble(h, cfg.input_reuse);
    h = mixDouble(h, cfg.input_window_reuse);
    h = mixDouble(h, cfg.output_reuse);
    h = mixDouble(h, cfg.weight_reuse);
    h = mixU64(h, cfg.unit_r);
    h = mixU64(h, cfg.unit_s);
    h = mixU64(h, cfg.unit_k);
    h = mixU64(h, cfg.unit_c);
    h = mixU64(h, cfg.chip_k);
    h = mixU64(h, cfg.chip_p);
    h = mixDouble(h, cfg.clock_hz);
    h = mixU64(h, cfg.gb_capacity_words);
    h = mixU64(h, cfg.regs_capacity_words);
    h = mixU64(h, cfg.word_bits);
    h = mixDouble(h, cfg.gb_bandwidth_words);
    h = mixDouble(h, cfg.dram_bandwidth_words);
    h = mixU64(h, cfg.with_dram ? 1 : 0);
    h = mixDouble(h, cfg.dram_energy_per_bit);
    h = mixU64(h, cfg.fuse_bypass_dram_inputs ? 1 : 0);
    h = mixU64(h, cfg.fuse_bypass_dram_outputs ? 1 : 0);
    h = mixU64(h, cfg.model_window_effects ? 1 : 0);
    h = mixU64(h, cfg.model_laser_static ? 1 : 0);
    h = mixU64(h, cfg.model_adc_growth ? 1 : 0);
    return h;
}

AlbireoConfig
applySweepKnob(const AlbireoConfig &base, const std::string &knob,
               double value)
{
    AlbireoConfig cfg = base;
    if (knob == "input_reuse") {
        cfg.input_reuse = value;
    } else if (knob == "input_window_reuse") {
        cfg.input_window_reuse = value;
    } else if (knob == "output_reuse") {
        cfg.output_reuse = value;
    } else if (knob == "weight_reuse") {
        cfg.weight_reuse = value;
    } else if (knob == "unit_k") {
        cfg.unit_k = std::uint64_t(value);
    } else if (knob == "unit_c") {
        cfg.unit_c = std::uint64_t(value);
    } else if (knob == "chip_k") {
        cfg.chip_k = std::uint64_t(value);
    } else if (knob == "chip_p") {
        cfg.chip_p = std::uint64_t(value);
    } else if (knob == "clock_hz") {
        cfg.clock_hz = value;
    } else if (knob == "gb_capacity_words") {
        cfg.gb_capacity_words = std::uint64_t(value);
    } else if (knob == "dram_bandwidth_words") {
        cfg.dram_bandwidth_words = value;
    } else {
        std::string known;
        for (const std::string &k : sweepKnobNames())
            known += (known.empty() ? "" : ", ") + k;
        fatal("unknown sweep knob '" + knob + "' (known: " + known +
              ")");
    }
    return cfg;
}

std::vector<std::string>
sweepKnobNames()
{
    return {"input_reuse", "input_window_reuse", "output_reuse",
            "weight_reuse", "unit_k", "unit_c", "chip_k", "chip_p",
            "clock_hz", "gb_capacity_words", "dram_bandwidth_words"};
}

LayerShape
LayerRequest::toLayer() const
{
    if (fully_connected)
        return LayerShape::fullyConnected(name, n, k, c);
    return LayerShape::conv(name, n, k, c, p, q, r, s, hstride,
                            wstride);
}

EvalService::EvalService() : EvalService(Config{}) {}

EvalService::EvalService(Config cfg) : registry_(makeDefaultRegistry())
{
    cache_.setMaxEntries(cfg.cache_max_entries);
}

const Evaluator &
EvalService::evaluatorFor(const AlbireoConfig &cfg)
{
    std::uint64_t key = albireoConfigKey(cfg);
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = models_.find(key);
        if (it != models_.end()) {
            ++models_reused_;
            return *it->second->evaluator;
        }
    }

    // Build OUTSIDE the lock: arch construction validates link
    // budgets and renders specs, and a slow build must not serialize
    // unrelated requests.  A racing duplicate build loses the
    // emplace and is discarded.
    auto model = std::make_unique<Model>(buildAlbireoArch(cfg));
    model->evaluator =
        std::make_unique<Evaluator>(model->arch, registry_);

    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = models_.emplace(key, std::move(model));
    if (inserted)
        ++models_built_;
    else
        ++models_reused_;
    return *it->second->evaluator;
}

EvaluateResponse
EvalService::evaluate(const EvaluateRequest &req)
{
    const Evaluator &evaluator = evaluatorFor(req.arch);
    LayerShape layer = req.layer.toLayer();

    Mapping mapping = [&]() -> Mapping {
        if (req.mapping == "greedy")
            return Mapspace(evaluator.arch(), layer).greedySeed();
        if (req.mapping == "outer")
            return Mapspace(evaluator.arch(), layer).outerSeed();
        for (Dataflow df : allDataflows()) {
            if (req.mapping == dataflowName(df))
                return presetMapping(evaluator.arch(), layer, df);
        }
        fatal("unknown mapping '" + req.mapping +
              "' (use greedy, outer, or a dataflow name)");
    }();

    EvalResult result = evaluator.evaluate(layer, mapping);
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++requests_;
    }
    return EvaluateResponse{
        flattenResult(req.mapping + ":" + layer.name(), result),
        mapping.str()};
}

SearchResponse
EvalService::search(const SearchRequest &req)
{
    const Evaluator &evaluator = evaluatorFor(req.arch);
    LayerShape layer = req.layer.toLayer();

    Mapper mapper(evaluator, req.options);
    MapperResult r = mapper.search(layer, &cache_);
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++requests_;
    }

    QuickEval best{r.result.totalEnergy(),
                   r.result.throughput.runtime_s};
    SearchResponse out{std::move(r.mapping),
                       std::string(),
                       0,
                       objectiveValue(req.options.objective, best),
                       best,
                       r.stats,
                       flattenResult(layer.name(), r.result)};
    out.mapping_str = out.mapping.str();
    out.mapping_key = mappingKey(out.mapping);
    return out;
}

SweepResponse
EvalService::sweep(const SweepRequest &req)
{
    fatalIf(req.values.empty(), "sweep needs >= 1 parameter value");
    LayerShape layer = req.layer.toLayer();

    // Registry-cached evaluators per point: a repeated sweep request
    // rebuilds nothing.
    std::vector<const Evaluator *> evaluators;
    evaluators.reserve(req.values.size());
    for (double v : req.values)
        evaluators.push_back(
            &evaluatorFor(applySweepKnob(req.arch, req.knob, v)));

    SweepResponse out;
    out.points = runSweepEvaluators(evaluators, req.values, layer,
                                    req.options, &cache_, &out.stats);
    std::lock_guard<std::mutex> lock(mu_);
    ++requests_;
    return out;
}

NetworkResponse
EvalService::network(const NetworkRequest &req)
{
    const Evaluator &evaluator = evaluatorFor(req.arch);

    Network net = [&]() -> Network {
        if (!req.network.empty())
            return makeNetwork(req.network, req.batch);
        fatalIf(req.layers.empty(),
                "network request needs a zoo name or inline layers");
        Network custom("custom");
        for (const LayerRequest &lr : req.layers)
            custom.addLayer(lr.toLayer());
        return custom;
    }();

    NetworkResponse out;
    out.result =
        runNetwork(evaluator, net, req.options, &cache_, &out.stats);
    std::lock_guard<std::mutex> lock(mu_);
    ++requests_;
    return out;
}

EvalService::Stats
EvalService::stats() const
{
    Stats out;
    {
        std::lock_guard<std::mutex> lock(mu_);
        out.requests = requests_;
        out.models_built = models_built_;
        out.models_reused = models_reused_;
    }
    out.cache_entries = cache_.size();
    out.cache_hits = cache_.hits();
    out.cache_misses = cache_.misses();
    out.cache_evictions = cache_.evictions();
    return out;
}

} // namespace ploop
