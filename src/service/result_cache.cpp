#include "service/result_cache.hpp"

namespace ploop {

std::optional<SearchResponse>
ResultCache::find(std::uint64_t fingerprint)
{
    if (!enabled())
        return std::nullopt;
    MutexLock lock(mu_);
    auto it = index_.find(fingerprint);
    if (it == index_.end()) {
        ++misses_;
        return std::nullopt;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    return it->second->second;
}

void
ResultCache::insert(std::uint64_t fingerprint,
                    const SearchResponse &response)
{
    if (!enabled())
        return;
    MutexLock lock(mu_);
    auto it = index_.find(fingerprint);
    if (it != index_.end()) {
        // Same fingerprint, same (deterministic) response: refresh.
        lru_.splice(lru_.begin(), lru_, it->second);
        it->second->second = response;
        return;
    }
    lru_.emplace_front(fingerprint, response);
    index_.emplace(fingerprint, lru_.begin());
    if (lru_.size() > max_entries_) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
        ++evictions_;
    }
}

std::size_t
ResultCache::size() const
{
    MutexLock lock(mu_);
    return lru_.size();
}

std::uint64_t
ResultCache::hits() const
{
    MutexLock lock(mu_);
    return hits_;
}

std::uint64_t
ResultCache::misses() const
{
    MutexLock lock(mu_);
    return misses_;
}

std::uint64_t
ResultCache::evictions() const
{
    MutexLock lock(mu_);
    return evictions_;
}

} // namespace ploop
