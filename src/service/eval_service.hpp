/**
 * @file
 * EvalService: the long-lived evaluation session behind the paper's
 * workflow.  Every CLI run used to rebuild the Albireo architecture,
 * re-resolve energy coefficients, and start with a cold EvalCache;
 * a service session amortizes all three across requests (and, with a
 * CacheStore, across process restarts):
 *
 *  - one EnergyRegistry for the whole session;
 *  - a fingerprint-keyed arch/evaluator registry: each distinct
 *    architecture configuration is built and validated ONCE, then
 *    reused by every later request that names it (sweep requests
 *    reuse per-point evaluators the same way);
 *  - one scope-keyed EvalCache spanning every request -- safe by the
 *    (model fingerprint, layer shape) scope contract, optionally
 *    bounded by an entry cap so the process cannot grow without
 *    limit;
 *  - the shared thread pool underneath (PLOOP_THREADS).
 *
 * Determinism: cached values are bit-identical to fresh evaluations,
 * so a request answered warm -- from earlier requests or from a
 * loaded CacheStore -- returns exactly the result of a cold run, at
 * any thread count.  Per-request cache stats come from lookup
 * outcomes (CacheDeltaScope accounting), so SearchStats::freshEvals()
 * == 0 is the "fully warm" signal the smoke tests assert.
 *
 * This is the typed, in-process API; the line-oriented JSON protocol
 * lives in serve_session.hpp and the ploop_serve tool on top of that.
 */

#ifndef PHOTONLOOP_SERVICE_EVAL_SERVICE_HPP
#define PHOTONLOOP_SERVICE_EVAL_SERVICE_HPP

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "albireo/albireo_arch.hpp"
#include "core/network_runner.hpp"
#include "core/sweep.hpp"
#include "mapper/mapper.hpp"
#include "report/export.hpp"

namespace ploop {

/** Hash of every AlbireoConfig field: the arch-registry key. */
std::uint64_t albireoConfigKey(const AlbireoConfig &cfg);

/**
 * Apply one named sweep knob to a base configuration; fatal() on an
 * unknown knob (see sweepKnobNames()).
 */
AlbireoConfig applySweepKnob(const AlbireoConfig &base,
                             const std::string &knob, double value);

/** Knobs applySweepKnob() understands. */
std::vector<std::string> sweepKnobNames();

/** A layer described over the protocol (conv by default). */
struct LayerRequest
{
    std::string name = "layer";
    bool fully_connected = false;
    std::uint64_t n = 1, k = 1, c = 1;
    std::uint64_t p = 1, q = 1, r = 1, s = 1;
    std::uint64_t hstride = 1, wstride = 1;

    /** Materialize (validates); fatal() on bad shapes. */
    LayerShape toLayer() const;
};

/** Evaluate one deterministic mapping (no search). */
struct EvaluateRequest
{
    AlbireoConfig arch;
    LayerRequest layer;

    /** "greedy", "outer", or a dataflow name ("weight-stationary",
     *  "output-stationary", "input-stationary"). */
    std::string mapping = "greedy";
};

struct EvaluateResponse
{
    ResultRow row;           ///< Flattened full evaluation.
    std::string mapping_str; ///< Rendering of the evaluated mapping.
};

/** Run the mapper for one layer. */
struct SearchRequest
{
    AlbireoConfig arch;
    LayerRequest layer;
    SearchOptions options;
};

struct SearchResponse
{
    Mapping mapping;            ///< Best mapping found.
    std::string mapping_str;    ///< Its rendering.
    std::uint64_t mapping_key;  ///< mappingKey(mapping) (bit-exact id).
    double best_value;          ///< Objective value (lower = better).
    QuickEval best;             ///< Exact energy/runtime of the best.
    SearchStats stats;          ///< This request's own search stats.
    ResultRow row;              ///< Flattened full evaluation.
};

/** Sweep one arch knob, re-mapping the layer at each value. */
struct SweepRequest
{
    AlbireoConfig arch; ///< Base configuration.
    LayerRequest layer;
    std::string knob; ///< See sweepKnobNames().
    std::vector<double> values;
    SearchOptions options;
};

struct SweepResponse
{
    std::vector<SweepPoint> points;
    SearchStats stats; ///< Aggregate over all points.
};

/** Map and evaluate a whole network. */
struct NetworkRequest
{
    AlbireoConfig arch;

    /** Model-zoo name ("alexnet", "vgg16", "resnet18", "resnet34");
     *  leave empty to use @p layers instead. */
    std::string network;
    std::uint64_t batch = 1;

    /** Inline layer list (used when @p network is empty). */
    std::vector<LayerRequest> layers;

    SearchOptions options;
};

struct NetworkResponse
{
    NetworkRunResult result;
    SearchStats stats; ///< Aggregate over all layers.
};

/** See file comment. */
class EvalService
{
  public:
    struct Config
    {
        /** EvalCache entry cap (0 = unbounded). */
        std::size_t cache_max_entries = 0;
    };

    /** Session counters (cache counters are cache-lifetime global). */
    struct Stats
    {
        std::uint64_t requests = 0;     ///< Requests answered.
        std::uint64_t models_built = 0; ///< Distinct archs constructed.
        std::uint64_t models_reused = 0; ///< Registry hits.
        std::size_t cache_entries = 0;
        std::uint64_t cache_hits = 0;
        std::uint64_t cache_misses = 0;
        std::uint64_t cache_evictions = 0;
    };

    EvalService();
    explicit EvalService(Config cfg);

    EvalService(const EvalService &) = delete;
    EvalService &operator=(const EvalService &) = delete;

    EvaluateResponse evaluate(const EvaluateRequest &req);
    SearchResponse search(const SearchRequest &req);
    SweepResponse sweep(const SweepRequest &req);
    NetworkResponse network(const NetworkRequest &req);

    /**
     * The registry-cached evaluator for @p cfg: built (and validated)
     * on first use, returned by reference on every later request.
     * The reference stays valid for the service's lifetime.
     * Thread-safe.
     */
    const Evaluator &evaluatorFor(const AlbireoConfig &cfg);

    /**
     * The session EvalCache, for persistence wiring (CacheStore
     * load/save) and tests.  Shared by every request; scope keys make
     * that safe.
     */
    EvalCache &cache() { return cache_; }

    /** The session registry (estimator set shared by all archs). */
    const EnergyRegistry &registry() const { return registry_; }

    Stats stats() const;

  private:
    /** One registry slot: the arch must outlive its evaluator, and
     *  neither may move once built (Evaluator holds references). */
    struct Model
    {
        ArchSpec arch;
        std::unique_ptr<Evaluator> evaluator;

        explicit Model(ArchSpec a) : arch(std::move(a)) {}
    };

    EnergyRegistry registry_;
    EvalCache cache_;

    mutable std::mutex mu_; ///< Guards models_ and the counters.
    std::unordered_map<std::uint64_t, std::unique_ptr<Model>> models_;
    std::uint64_t requests_ = 0;
    std::uint64_t models_built_ = 0;
    std::uint64_t models_reused_ = 0;
};

} // namespace ploop

#endif // PHOTONLOOP_SERVICE_EVAL_SERVICE_HPP
