/**
 * @file
 * EvalService: the long-lived evaluation session behind the paper's
 * workflow.  Every CLI run used to rebuild the Albireo architecture,
 * re-resolve energy coefficients, and start with a cold EvalCache;
 * a service session amortizes all three across requests (and, with a
 * CacheStore, across process restarts):
 *
 *  - one EnergyRegistry for the whole session;
 *  - a fingerprint-keyed arch/evaluator registry: each distinct
 *    architecture configuration is built and validated ONCE, then
 *    reused by every later request that names it (grid-sweep points
 *    reuse per-point evaluators the same way);
 *  - one scope-keyed EvalCache spanning every request -- safe by the
 *    (model fingerprint, layer shape) scope contract, optionally
 *    bounded by an entry cap so the process cannot grow without
 *    limit;
 *  - a bounded ResultCache memoizing WHOLE search responses by
 *    requestFingerprint(): repeating an identical search request
 *    skips the search entirely and answers bit-identically (the
 *    fingerprint excludes `threads`, so hits survive thread-count
 *    changes);
 *  - the shared thread pool underneath (PLOOP_THREADS).
 *
 * Determinism: cached values are bit-identical to fresh evaluations,
 * so a request answered warm -- from earlier requests, from a loaded
 * CacheStore, or whole from the ResultCache -- returns exactly the
 * result of a cold run, at any thread count.  Per-request cache
 * stats come from lookup outcomes (CacheDeltaScope accounting), so
 * SearchStats::freshEvals() == 0 is the "fully warm" signal; a
 * ResultCache hit reports zero stats plus from_result_cache (no
 * search ran at all).
 *
 * The request/response types live in api/requests.hpp -- the same
 * declarative structs the line protocol (serve_session.hpp,
 * ploop_serve) decodes from JSON, so in-process and remote callers
 * are one API.
 */

#ifndef PHOTONLOOP_SERVICE_EVAL_SERVICE_HPP
#define PHOTONLOOP_SERVICE_EVAL_SERVICE_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "albireo/albireo_arch.hpp"
#include "api/fingerprint.hpp"
#include "api/requests.hpp"
#include "common/annotations.hpp"
#include "obs/trace.hpp"
#include "service/result_cache.hpp"

namespace ploop {

/** See file comment. */
class EvalService
{
  public:
    struct Config
    {
        /** EvalCache entry cap (0 = unbounded). */
        std::size_t cache_max_entries = 0;

        /** ResultCache entry cap (0 disables whole-response
         *  memoization; per-candidate EvalCache warmth remains). */
        std::size_t result_cache_max_entries = 256;
    };

    /** Session counters (cache counters are cache-lifetime global). */
    struct Stats
    {
        std::uint64_t requests = 0;     ///< Requests answered.
        std::uint64_t models_built = 0; ///< Distinct archs constructed.
        std::uint64_t models_reused = 0; ///< Registry hits.
        std::size_t cache_entries = 0;
        std::uint64_t cache_hits = 0;
        std::uint64_t cache_misses = 0;
        std::uint64_t cache_evictions = 0;
        std::size_t result_cache_entries = 0;
        std::uint64_t result_cache_hits = 0;
        std::uint64_t result_cache_misses = 0;
        std::uint64_t result_cache_evictions = 0;
    };

    EvalService();
    explicit EvalService(Config cfg);

    EvalService(const EvalService &) = delete;
    EvalService &operator=(const EvalService &) = delete;

    /** Each op takes an optional trace parent (inert by default):
     *  the service opens an "execute" span covering model lookup +
     *  search and threads it into the mapper stack, exactly parallel
     *  to how the CancelToken rides along. */
    EvaluateResponse evaluate(const EvaluateRequest &req,
                              SpanRef span = {});
    SearchResponse search(const SearchRequest &req, SpanRef span = {});
    SweepResponse sweep(const SweepRequest &req, SpanRef span = {});
    NetworkResponse network(const NetworkRequest &req,
                            SpanRef span = {});

    /**
     * The registry-cached evaluator for @p cfg: built (and validated)
     * on first use, returned by reference on every later request.
     * The reference stays valid for the service's lifetime.
     * Thread-safe.
     */
    const Evaluator &evaluatorFor(const AlbireoConfig &cfg);

    /**
     * The session EvalCache, for persistence wiring (CacheStore
     * load/save) and tests.  Shared by every request; scope keys make
     * that safe.
     */
    EvalCache &cache() { return cache_; }

    /** The whole-response cache (stats/tests). */
    const ResultCache &resultCache() const { return result_cache_; }

    /** The session registry (estimator set shared by all archs). */
    const EnergyRegistry &registry() const { return registry_; }

    Stats stats() const;

  private:
    /** One registry slot: the arch must outlive its evaluator, and
     *  neither may move once built (Evaluator holds references). */
    struct Model
    {
        ArchSpec arch;
        std::unique_ptr<Evaluator> evaluator;

        explicit Model(ArchSpec a) : arch(std::move(a)) {}
    };

    EnergyRegistry registry_;
    EvalCache cache_;
    ResultCache result_cache_;

    mutable Mutex mu_;
    std::unordered_map<std::uint64_t, std::unique_ptr<Model>>
        models_ GUARDED_BY(mu_);
    std::uint64_t requests_ GUARDED_BY(mu_) = 0;
    std::uint64_t models_built_ GUARDED_BY(mu_) = 0;
    std::uint64_t models_reused_ GUARDED_BY(mu_) = 0;
};

} // namespace ploop

#endif // PHOTONLOOP_SERVICE_EVAL_SERVICE_HPP
