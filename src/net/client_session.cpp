#include "net/client_session.hpp"

#include "service/serve_session.hpp"

namespace ploop {

std::string
ClientSession::protocolErrorResponseLine(const std::string &line,
                                         const std::string &message)
{
    return protocolErrorResponse(line, message);
}

} // namespace ploop
