#include "net/client_session.hpp"

#include "service/serve_session.hpp"

namespace ploop {

std::string
ClientSession::protocolErrorResponseLine(const std::string &line,
                                         const std::string &message,
                                         const char *code,
                                         std::int64_t retry_after_ms)
{
    return protocolErrorResponse(line, message, code, retry_after_ms);
}

} // namespace ploop
