/**
 * @file
 * RequestScheduler: fair, bounded execution of protocol requests
 * from many connections over the shared thread pool.
 *
 * Model:
 *  - every connection has its own FIFO of admitted request lines;
 *  - the AGGREGATE number of queued lines is bounded (max_queue);
 *    submit() refuses beyond it -- the serving layer turns that into
 *    a backpressure error response instead of letting one client
 *    queue unbounded work;
 *  - dispatch is ROUND-ROBIN across connections with at most ONE
 *    request of each connection in flight: a client pipelining 1000
 *    searches shares the pool fairly with a client sending one, and
 *    each connection's responses arrive in request order (pipelined
 *    clients never see reordering);
 *  - total in-flight requests are capped at the pool's parallelism;
 *  - handlers run on pool workers (nested parallelFor inside a
 *    search is safe: the pool's loops are caller-participating).
 *
 * Threading: submit()/pump()/drainCompleted()/dropConnection() are
 * called by the serving event loop; handlers complete on worker
 * threads, which enqueue the response and call the wake function
 * (the event loop's self-pipe).  stats() is safe from any thread --
 * the stats op itself executes on a worker.
 *
 * A dropped (disconnected) connection's queued lines are discarded
 * immediately and its in-flight handler -- which cannot be safely
 * interrupted -- finishes on the pool and has its response discarded:
 * an abruptly departing client never stalls or corrupts the others.
 */

#ifndef PHOTONLOOP_NET_SCHEDULER_HPP
#define PHOTONLOOP_NET_SCHEDULER_HPP

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/annotations.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"

namespace ploop {

/** See file comment. */
class RequestScheduler
{
  public:
    struct Config
    {
        /** Aggregate cap on queued (admitted, not yet started)
         *  request lines; submit() refuses beyond it. */
        std::size_t max_queue = 256;

        /** Cap on concurrently executing requests
         *  (0 = the pool's parallelism). */
        unsigned max_inflight = 0;

        /** Shed NEW lines once the oldest queued line has waited
         *  longer than this (ms; 0 disables).  Queue-wait is the
         *  honest overload signal: a deep-but-draining queue admits,
         *  a shallow-but-stuck one sheds. */
        std::uint64_t shed_queue_wait_ms = 0;

        /** Optional latency histograms (owned by the serving
         *  layer's MetricsRegistry, which outlives the scheduler):
         *  queue_wait records admission-to-dispatch time per line,
         *  run records handler execution time.  Null = untracked. */
        Histogram *queue_wait_hist = nullptr;
        Histogram *run_hist = nullptr;
    };

    /** submit() outcome.  Distinct rejects get distinct protocol
     *  errors: QueueFull is a hard bound (client backs off on its
     *  own), Shed is advisory overload (the reject carries a
     *  retry_after_ms hint). */
    enum class Admit
    {
        Ok,
        QueueFull, ///< Aggregate max_queue reached.
        Shed,      ///< Oldest queued wait exceeds the shed bound.
    };

    /** Executes one request line; must not throw (ServeSession::
     *  handleLine's contract).  Runs on pool worker threads.  The
     *  third argument is the line's measured queue wait in ns --
     *  the handler folds it into per-request latency and the trace's
     *  queue_wait span (the scheduler is the only party that knows
     *  when the line was admitted). */
    using Handler = std::function<std::string(
        std::uint64_t, const std::string &, std::uint64_t)>;

    /** Called (from worker threads) when a completion is ready to
     *  collect; must be cheap and thread-safe (self-pipe write). */
    using WakeFn = std::function<void()>;

    RequestScheduler(ThreadPool &pool, Handler handler, WakeFn wake,
                     Config cfg);

    RequestScheduler(const RequestScheduler &) = delete;
    RequestScheduler &operator=(const RequestScheduler &) = delete;

    /**
     * Admit one request line from @p conn.  Non-Ok outcomes mean the
     * line was NOT queued: QueueFull at the aggregate bound, Shed
     * when overload shedding triggers (see Config).  Call pump()
     * afterwards to start eligible work.
     */
    Admit submit(std::uint64_t conn, std::string line);

    /**
     * Start as many queued requests as fairness and the in-flight
     * cap allow (round-robin over connections, one in flight each).
     */
    void pump();

    /**
     * Discard @p conn's queued lines and mark it dead: its in-flight
     * request (if any) still completes on the pool but the response
     * is discarded instead of delivered.
     */
    void dropConnection(std::uint64_t conn);

    /** One finished request's response, ready for delivery. */
    struct Completed
    {
        std::uint64_t conn;
        std::string response;
    };

    /** Collect finished responses (delivery order = completion
     *  order; per connection that equals request order). */
    std::vector<Completed> drainCompleted();

    /** True when nothing is queued or in flight (drain condition). */
    bool idle() const;

    /** Aggregate counters for the stats op's "queue" section. */
    struct Stats
    {
        std::size_t depth = 0;      ///< Queued lines right now.
        std::size_t peak_depth = 0; ///< High-water queue depth.
        unsigned inflight = 0;      ///< Executing right now.
        std::size_t max_queue = 0;  ///< The admission bound.
        unsigned max_inflight = 0;  ///< The execution bound.
        std::uint64_t admitted = 0; ///< Lines accepted by submit().
        std::uint64_t rejected = 0; ///< Lines refused (queue full).
        std::uint64_t shed = 0;      ///< Lines refused (overload).
        std::uint64_t completed = 0; ///< Handlers finished.
        std::uint64_t discarded = 0; ///< Responses dropped (dead conn).
        std::uint64_t oldest_wait_ms = 0; ///< Oldest queued line's wait.
    };

    Stats stats() const;

    /** Queued lines for one connection (its stats-row "pending"). */
    std::size_t pendingFor(std::uint64_t conn) const;

    /** True while @p conn has queued or in-flight work (the reap
     *  gate for half-closed connections awaiting responses). */
    bool busy(std::uint64_t conn) const;

  private:
    /** A queued line plus its admission time (shed decisions and the
     *  oldest_wait_ms stat work off queue-wait). */
    struct PendingLine
    {
        std::string line;
        std::chrono::steady_clock::time_point enqueued;
    };

    struct Conn
    {
        std::deque<PendingLine> pending;
        bool inflight = false;
        bool dead = false;
    };

    void runOne(std::uint64_t conn, const std::string &line,
                std::uint64_t queue_wait_ns);
    unsigned maxInflight() const;

    /** Oldest queued line's wait in ms at @p now (0 when the queue
     *  is empty). */
    std::uint64_t
    oldestWaitMsLocked(std::chrono::steady_clock::time_point now) const
        REQUIRES(mu_);

    ThreadPool &pool_;
    Handler handler_;
    WakeFn wake_;
    Config cfg_;

    mutable Mutex mu_;
    /** Ordered: stable RR. */
    std::map<std::uint64_t, Conn> conns_ GUARDED_BY(mu_);
    /** Conn id dispatched last. */
    std::uint64_t rr_cursor_ GUARDED_BY(mu_) = 0;
    std::size_t depth_ GUARDED_BY(mu_) = 0;
    std::size_t peak_depth_ GUARDED_BY(mu_) = 0;
    unsigned inflight_ GUARDED_BY(mu_) = 0;
    std::uint64_t admitted_ GUARDED_BY(mu_) = 0;
    std::uint64_t rejected_ GUARDED_BY(mu_) = 0;
    std::uint64_t shed_ GUARDED_BY(mu_) = 0;
    std::uint64_t completed_ GUARDED_BY(mu_) = 0;
    std::uint64_t discarded_ GUARDED_BY(mu_) = 0;
    std::vector<Completed> done_ GUARDED_BY(mu_);
};

} // namespace ploop

#endif // PHOTONLOOP_NET_SCHEDULER_HPP
