/**
 * @file
 * NetServer: the concurrent multi-client serving layer.  One process,
 * one shared ServeSession/EvalService, many TCP connections speaking
 * the same line-oriented JSON protocol as stdio serving -- so N
 * clients share one warm EvalCache/ResultCache and every client
 * benefits from every other client's evaluations.
 *
 * Architecture (single-threaded I/O, pooled execution):
 *
 *   poll() event loop --- owns the listener and every ClientSession
 *        |  complete request lines
 *        v
 *   RequestScheduler --- bounded admission queue, round-robin across
 *        |                connections, <= 1 in-flight per connection
 *        v
 *   ThreadPool workers --- run ServeSession::handleLine (EvalService
 *        |                  is thread-safe; searches may nest their
 *        |                  own parallelFor on the same pool)
 *        v
 *   self-pipe wake -> event loop delivers responses, in request
 *                     order per connection
 *
 * Robustness contract: an abruptly disconnecting client (kill -9 mid
 * search) can never kill or stall the server -- reads see EOF, its
 * queued lines are discarded, its in-flight response is dropped, and
 * writes to dead sockets surface as EPIPE (MSG_NOSIGNAL), never
 * SIGPIPE.  A client that half-closes after pipelining requests
 * still receives every response before the connection is reaped.
 *
 * Admission control: beyond max_connections new sockets are greeted
 * with a server-full error and closed; beyond max_queue queued lines,
 * requests are answered immediately with a backpressure error that
 * echoes the request's op/id.  On a shutdown request the server
 * stops accepting, drains queued and in-flight work, flushes every
 * response, then run() returns (graceful drain-then-exit).
 *
 * The stats op grows "connections" and "queue" sections while a
 * NetServer is attached (ServeSession::setStatsHook).
 */

#ifndef PHOTONLOOP_NET_SERVER_HPP
#define PHOTONLOOP_NET_SERVER_HPP

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/annotations.hpp"
#include "net/client_session.hpp"
#include "net/scheduler.hpp"
#include "net/socket.hpp"
#include "service/serve_session.hpp"

namespace ploop {

/**
 * Transport-layer knobs.  The serving LIMITS (max_connections,
 * max_queue) live in ServeConfig -- one source of truth, so what the
 * capabilities op advertises is by construction what the server
 * enforces.
 */
struct NetConfig
{
    /** Port to bind on 127.0.0.1 (0 = kernel-chosen; see port()). */
    std::uint16_t port = 0;

    /** Executor (nullptr = ThreadPool::global()). */
    ThreadPool *pool = nullptr;

    /** Bound on the shutdown drain: a client that never reads its
     *  responses must not block exit forever, so past this deadline
     *  remaining connections are force-closed (their unflushed
     *  output is lost -- they were not reading it). */
    int drain_timeout_ms = 5000;
};

/** See file comment. */
class NetServer
{
  public:
    /** @param session The shared protocol session (its EvalService
     *                 is the one warm state all clients share; its
     *                 config's max_connections/max_queue are the
     *                 limits this server enforces). */
    NetServer(ServeSession &session, NetConfig cfg);
    ~NetServer();

    NetServer(const NetServer &) = delete;
    NetServer &operator=(const NetServer &) = delete;

    /**
     * Bind and listen.  False with a message in @p error on failure
     * (port in use, ...).  Must be called before run().
     */
    bool open(std::string *error);

    /** The bound port (valid after open(); answers port 0). */
    std::uint16_t port() const { return listener_.port(); }

    /**
     * Serve until a shutdown request drains (see file comment).
     * Returns the number of connections served.  Call from one
     * thread only.
     */
    std::uint64_t run();

    /** Append the "connections" and "queue" stats sections (the
     *  session stats hook; thread-safe). */
    void appendStats(JsonValue &resp) const;

    /**
     * The health op's status (the session health hook; thread-safe):
     * "overloaded" when the queue is full or the oldest queued line
     * has waited past the shed bound, "degraded" at half either
     * threshold, "ok" otherwise.  Probes get pressure signals BEFORE
     * rejects start, so load balancers can back off early.
     */
    std::string healthStatus() const;

  private:
    void acceptPending();
    void readFrom(ClientSession &client);
    void deliverCompletions();
    void flushAndReap();
    void disconnect(std::uint64_t id);
    void wake();
    bool allFlushed() const;

    ServeSession &session_;
    NetConfig cfg_;
    ThreadPool &pool_;
    TcpListener listener_;
    RequestScheduler scheduler_;
    int wake_read_ = -1;
    int wake_write_ = -1;
    bool draining_ = false;

    /** Guards the map SHAPE: the event loop mutates it while stats
     *  ops on worker threads size it.  ClientSession contents are
     *  still event-loop-owned (see client_session.hpp). */
    mutable Mutex clients_mu_;
    std::map<std::uint64_t, std::unique_ptr<ClientSession>>
        clients_ GUARDED_BY(clients_mu_);
    std::uint64_t next_id_ GUARDED_BY(clients_mu_) = 1;

    // Monotonic counters read by worker-thread stats ops: relaxed
    // ordering, nothing is published through them.  peak_open_'s
    // load+store is not atomic as an RMW, but every update happens
    // under clients_mu_ (accept path), so updates never race.
    std::atomic<std::uint64_t> accepted_{0};
    std::atomic<std::uint64_t> rejected_full_{0};
    std::atomic<std::uint64_t> closed_{0};
    std::atomic<std::uint64_t> idle_reaped_{0};
    std::atomic<std::size_t> peak_open_{0};

    /** Registry entries whose callbacks capture `this`; removed in
     *  the destructor (the registry outlives the server). */
    std::vector<std::uint64_t> metric_ids_;
};

} // namespace ploop

#endif // PHOTONLOOP_NET_SERVER_HPP
