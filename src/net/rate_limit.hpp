/**
 * @file
 * Token-bucket rate limiter for per-connection request admission.
 *
 * Deliberately clock-free: every operation takes an explicit
 * steady_clock time point, so the server passes one `now` per poll
 * iteration (cheap, consistent across connections) and tests drive
 * the bucket with synthetic time points for fully deterministic
 * admit/reject sequences -- no sleeping, no flakiness.
 *
 * Semantics are the classic leaky-bucket dual: the bucket holds up
 * to `burst` tokens, refills continuously at `rate_per_s`, and each
 * admitted request takes one token.  A client may burst `burst`
 * requests instantly, then sustain `rate_per_s`; rejects carry a
 * retry_after_ms hint computed from the current deficit.
 */

#ifndef PHOTONLOOP_NET_RATE_LIMIT_HPP
#define PHOTONLOOP_NET_RATE_LIMIT_HPP

#include <chrono>
#include <cstdint>

namespace ploop {

/** Per-connection token bucket.  Default-constructed buckets are
 *  disabled and admit everything (serving keeps zero overhead unless
 *  the operator opts in with --rate-limit). */
class TokenBucket
{
public:
    using Clock = std::chrono::steady_clock;

    /** Disabled: tryTake always succeeds. */
    TokenBucket() = default;

    /**
     * @param rate_per_s Sustained admits per second (<= 0 disables).
     * @param burst Bucket capacity; also the initial fill, so a new
     *     connection may burst this many requests at once.  Values
     *     below 1 are raised to 1 (a bucket that can never hold a
     *     whole token would reject everything forever).
     */
    TokenBucket(double rate_per_s, double burst)
        : rate_per_s_(rate_per_s),
          burst_(burst < 1.0 ? 1.0 : burst),
          tokens_(burst < 1.0 ? 1.0 : burst)
    {}

    bool enabled() const { return rate_per_s_ > 0.0; }

    /** Admit one request at @p now: refill from the elapsed time,
     *  then take a token if one is available. */
    bool tryTake(Clock::time_point now)
    {
        if (!enabled())
            return true;
        refill(now);
        if (tokens_ >= 1.0) {
            tokens_ -= 1.0;
            return true;
        }
        return false;
    }

    /** How long (ms, >= 1) until a whole token accrues at @p now --
     *  the retry_after_ms hint attached to rate-limit rejects.  Only
     *  meaningful right after a failed tryTake. */
    std::int64_t retryAfterMs(Clock::time_point now)
    {
        if (!enabled())
            return 0;
        refill(now);
        if (tokens_ >= 1.0)
            return 1;
        double need_s = (1.0 - tokens_) / rate_per_s_;
        auto ms = static_cast<std::int64_t>(need_s * 1000.0) + 1;
        return ms < 1 ? 1 : ms;
    }

    /** Current fill (for tests/stats). */
    double tokens() const { return tokens_; }

private:
    void refill(Clock::time_point now)
    {
        if (last_ == Clock::time_point{}) {
            last_ = now;
            return;
        }
        if (now <= last_)
            return; // Never drain on a stale/equal time point.
        double dt = std::chrono::duration<double>(now - last_).count();
        last_ = now;
        tokens_ += dt * rate_per_s_;
        if (tokens_ > burst_)
            tokens_ = burst_;
    }

    double rate_per_s_ = 0.0;
    double burst_ = 0.0;
    double tokens_ = 0.0;
    Clock::time_point last_{};
};

} // namespace ploop

#endif // PHOTONLOOP_NET_RATE_LIMIT_HPP
