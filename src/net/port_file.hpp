/**
 * @file
 * The port-file handshake, in one place: a server that bound an
 * ephemeral port (--listen 0) writes "PORT\n" to a file; whoever
 * launched it (shell scripts, ploop_client --port-file, the cluster
 * router's --spawn path) polls the file until the line appears.
 *
 * The write is line-atomic from the reader's perspective: readers
 * require the trailing newline before trusting the content, so a
 * reader that races the writer mid-write simply retries instead of
 * parsing a truncated number.  Previously each tool hand-rolled
 * this; the duplicated variants disagreed on exactly these races.
 */

#ifndef PHOTONLOOP_NET_PORT_FILE_HPP
#define PHOTONLOOP_NET_PORT_FILE_HPP

#include <cstdint>
#include <string>

namespace ploop {

/**
 * Write @p port to @p path as "PORT\n" (truncating).  False with a
 * message in @p error when the file cannot be written.
 */
bool writePortFile(const std::string &path, std::uint16_t port,
                   std::string *error = nullptr);

/**
 * Parse port-file CONTENT: a single line holding one integer in
 * [1, 65535], terminated by '\n' (surrounding spaces tolerated,
 * trailing junk rejected).  Returns -1 on anything else -- including
 * a missing terminator, which means the writer may still be mid-
 * write and the caller should retry.
 */
int parsePortFileText(const std::string &text);

/**
 * Read a port file, polling until it exists and holds a complete
 * line (the writer may not have started yet -- the normal handshake
 * race when the server was just forked).  @p wait_ms bounds the
 * wait (0 = single attempt).  Returns the port, or -1 with a
 * message in @p error on timeout or malformed content.
 */
int readPortFile(const std::string &path, int wait_ms,
                 std::string *error = nullptr);

} // namespace ploop

#endif // PHOTONLOOP_NET_PORT_FILE_HPP
