#include "net/line_client.hpp"

#include <cerrno>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace ploop {

bool
LineClient::connect(std::uint16_t port)
{
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        return false;
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        // An EINTR'd connect keeps handshaking in the kernel:
        // retrying connect() yields EALREADY/EISCONN, so the correct
        // recovery is wait-for-writable + SO_ERROR.
        if (errno != EINTR) {
            close();
            return false;
        }
        pollfd pfd{fd_, POLLOUT, 0};
        int rc;
        do {
            rc = ::poll(&pfd, 1, -1);
        } while (rc < 0 && errno == EINTR);
        int soerr = 0;
        socklen_t len = sizeof(soerr);
        if (rc < 0 ||
            ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &soerr, &len) <
                0 ||
            soerr != 0) {
            close();
            return false;
        }
    }
    return true;
}

void
LineClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buffer_.clear();
}

bool
LineClient::sendLine(const std::string &line)
{
    if (fd_ < 0)
        return false;
    std::string framed = line + "\n";
    std::size_t off = 0;
    while (off < framed.size()) {
        ssize_t n = ::send(fd_, framed.data() + off,
                           framed.size() - off, MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return false;
    }
    return true;
}

bool
LineClient::recvLine(std::string &line)
{
    if (fd_ < 0)
        return false;
    for (;;) {
        std::size_t nl = buffer_.find('\n');
        if (nl != std::string::npos) {
            line = buffer_.substr(0, nl);
            buffer_.erase(0, nl + 1);
            return true;
        }
        char chunk[65536];
        ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n > 0) {
            buffer_.append(chunk, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return false;
    }
}

bool
LineClient::tryRecvLine(std::string &line)
{
    if (fd_ < 0)
        return false;
    for (;;) {
        std::size_t nl = buffer_.find('\n');
        if (nl != std::string::npos) {
            line = buffer_.substr(0, nl);
            buffer_.erase(0, nl + 1);
            return true;
        }
        char chunk[65536];
        ssize_t n = ::recv(fd_, chunk, sizeof(chunk), MSG_DONTWAIT);
        if (n > 0) {
            buffer_.append(chunk, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return false; // EAGAIN (nothing yet), EOF, or error
    }
}

} // namespace ploop
