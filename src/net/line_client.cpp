#include "net/line_client.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <optional>
#include <thread>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "api/json.hpp"
#include "net/socket.hpp"

namespace ploop {

bool
LineClient::connect(std::uint16_t port, int timeout_ms)
{
    close();

    // Non-blocking connect so the handshake can be bounded: a
    // blocking connect() to a wedged server (listening socket alive,
    // accept loop stuck) can hang for the kernel's SYN-retry
    // schedule -- minutes.  startLoopbackConnect() (shared with the
    // cluster router's backend connections) + poll(POLLOUT) +
    // finishLoopbackConnect() is the classic bounded form; the
    // socket reverts to blocking before data I/O.
    bool in_progress = false;
    fd_ = startLoopbackConnect(port, in_progress);
    if (fd_ < 0)
        return false;

    if (in_progress) {
        // Wait for writability within the deadline, surviving EINTR
        // with the REMAINING time (not the full timeout again).
        auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(
                            timeout_ms < 0 ? 0 : timeout_ms);
        for (;;) {
            int wait_ms = -1;
            if (timeout_ms >= 0) {
                auto left =
                    std::chrono::duration_cast<
                        std::chrono::milliseconds>(
                        deadline - std::chrono::steady_clock::now())
                        .count();
                if (left <= 0) {
                    close();
                    return false; // connect timed out
                }
                wait_ms = static_cast<int>(left);
            }
            pollfd pfd{fd_, POLLOUT, 0};
            int prc = ::poll(&pfd, 1, wait_ms);
            if (prc < 0 && errno == EINTR)
                continue;
            if (prc <= 0) { // error, or timeout with nothing ready
                close();
                return false;
            }
            break;
        }
        if (!finishLoopbackConnect(fd_)) {
            close();
            return false;
        }
    }

    // Restore blocking mode (LineClient's contract is blocking I/O).
    int flags = ::fcntl(fd_, F_GETFL, 0);
    if (flags < 0 ||
        ::fcntl(fd_, F_SETFL, flags & ~O_NONBLOCK) < 0) {
        close();
        return false;
    }
    return true;
}

void
LineClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buffer_.clear();
}

bool
LineClient::sendLine(const std::string &line)
{
    if (fd_ < 0)
        return false;
    std::string framed = line + "\n";
    std::size_t off = 0;
    while (off < framed.size()) {
        ssize_t n = ::send(fd_, framed.data() + off,
                           framed.size() - off, MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return false;
    }
    return true;
}

bool
LineClient::recvLine(std::string &line)
{
    if (fd_ < 0)
        return false;
    for (;;) {
        std::size_t nl = buffer_.find('\n');
        if (nl != std::string::npos) {
            line = buffer_.substr(0, nl);
            buffer_.erase(0, nl + 1);
            return true;
        }
        char chunk[65536];
        ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n > 0) {
            buffer_.append(chunk, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return false;
    }
}

bool
LineClient::tryRecvLine(std::string &line)
{
    if (fd_ < 0)
        return false;
    for (;;) {
        std::size_t nl = buffer_.find('\n');
        if (nl != std::string::npos) {
            line = buffer_.substr(0, nl);
            buffer_.erase(0, nl + 1);
            return true;
        }
        char chunk[65536];
        ssize_t n = ::recv(fd_, chunk, sizeof(chunk), MSG_DONTWAIT);
        if (n > 0) {
            buffer_.append(chunk, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return false; // EAGAIN (nothing yet), EOF, or error
    }
}

// ----------------------------------------------- RetryingLineClient

namespace {

/** A server-directed retry: ok=false carrying retry_after_ms.  Out
 *  of all failures, ONLY these are worth resending to a live
 *  connection -- other rejects (bad request, unknown op) would just
 *  fail identically again. */
bool
serverAskedForRetry(const std::string &response,
                    std::int64_t &retry_after_ms)
{
    std::optional<JsonValue> parsed = parseJson(response);
    if (!parsed || !parsed->isObject())
        return false;
    const JsonValue *ok = parsed->get("ok");
    if (!ok || !ok->isBool() || ok->asBool())
        return false;
    const JsonValue *hint = parsed->get("retry_after_ms");
    if (!hint || !hint->isNumber())
        return false;
    retry_after_ms = static_cast<std::int64_t>(hint->asNumber());
    return retry_after_ms >= 0;
}

} // namespace

std::string
RetryingLineClient::roundTrip(const std::string &line)
{
    std::string last_response;
    for (unsigned attempt = 0;; ++attempt) {
        std::string resp;
        bool transported = client_.connected() &&
                           client_.sendLine(line) &&
                           client_.recvLine(resp);
        if (transported) {
            std::int64_t hint_ms = 0;
            if (!serverAskedForRetry(resp, hint_ms))
                return resp; // success, or a non-retryable reject
            last_response = std::move(resp);
            if (attempt >= policy_.retries)
                return last_response; // exhausted: surface the WHY
            ++retries_used_;
            // Honor the server's hint but never back off LESS than
            // the exponential schedule -- a hint of 1ms from a
            // saturated server must not turn us into a hot loop.
            std::uint64_t backoff_ms =
                std::min<std::uint64_t>(
                    std::uint64_t(policy_.backoff_base_ms) << attempt,
                    policy_.backoff_cap_ms);
            std::this_thread::sleep_for(std::chrono::milliseconds(
                std::max<std::uint64_t>(
                    backoff_ms,
                    static_cast<std::uint64_t>(hint_ms))));
            continue;
        }
        // Transport failure: the connection is unusable (never
        // connected, server restarted, injected reset, EOF before a
        // full response).  Resending is safe -- ops are idempotent
        // (class comment) -- so back off, reconnect, retry.
        if (attempt >= policy_.retries)
            return last_response; // usually empty: transport death
        ++retries_used_;
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::min<std::uint64_t>(
                std::uint64_t(policy_.backoff_base_ms) << attempt,
                policy_.backoff_cap_ms)));
        connect();
    }
}

} // namespace ploop
