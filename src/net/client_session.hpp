/**
 * @file
 * ClientSession: the per-connection slice of serving state.  All
 * heavy state (models, caches, thread pool) lives in the ONE shared
 * EvalService behind ServeSession; a connection owns only protocol
 * plumbing:
 *
 *  - its socket and line framing (partial reads re-assemble);
 *  - its pending-output buffer (partial writes resume on POLLOUT);
 *  - reject-response generation, which echoes the request's op/id
 *    (protocolErrorResponse) so pipelined clients can correlate
 *    backpressure and drain failures exactly like request failures;
 *  - its own counters for the stats op's per-connection rows.
 *
 * Lifecycle is driven by NetServer's event loop; the counters are
 * atomics because the stats op reads them from a worker thread.
 */

#ifndef PHOTONLOOP_NET_CLIENT_SESSION_HPP
#define PHOTONLOOP_NET_CLIENT_SESSION_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/rate_limit.hpp"
#include "net/socket.hpp"

namespace ploop {

/** See file comment. */
class ClientSession
{
  public:
    ClientSession(std::uint64_t id, int fd,
                  TokenBucket bucket = TokenBucket{})
        : id_(id), conn_(std::make_unique<Connection>(fd)),
          bucket_(bucket),
          last_activity_(std::chrono::steady_clock::now())
    {}

    std::uint64_t id() const { return id_; }
    Connection &conn() { return *conn_; }

    /**
     * Pull available bytes off the socket and frame them.  Complete
     * request lines land in @p lines; @p overflow reports an
     * over-long line (protocol violation).  Closed = client gone
     * (already-framed lines are still valid).
     */
    IoStatus readLines(std::vector<std::string> &lines, bool &overflow)
    {
        std::string chunk;
        IoStatus st = conn_->readAvailable(chunk);
        if (!chunk.empty())
            splitter_.append(chunk.data(), chunk.size(), lines,
                             overflow);
        received_.fetch_add(lines.size(),
                            std::memory_order_relaxed);
        return st;
    }

    /** Queue one response line for delivery (adds the newline). */
    void queueResponse(const std::string &response)
    {
        out_ += response;
        out_ += '\n';
        completed_.fetch_add(1, std::memory_order_relaxed);
    }

    /** Queue a reject (backpressure / drain / overflow / rate limit
     *  / shed) response: op/id echoed from @p line when recoverable;
     *  optional machine-readable code and retry_after_ms hint (see
     *  protocolErrorResponse). */
    void queueReject(const std::string &line,
                     const std::string &message,
                     const char *code = nullptr,
                     std::int64_t retry_after_ms = -1)
    {
        out_ += protocolErrorResponseLine(line, message, code,
                                          retry_after_ms);
        out_ += '\n';
        rejected_.fetch_add(1, std::memory_order_relaxed);
    }

    /** Per-connection rate limiting (event-loop thread only).
     *  admitRate consumes a token; on false, retryAfterMs gives the
     *  reject's hint. */
    bool admitRate(std::chrono::steady_clock::time_point now)
    {
        return bucket_.tryTake(now);
    }
    std::int64_t retryAfterMs(std::chrono::steady_clock::time_point now)
    {
        return bucket_.retryAfterMs(now);
    }

    /** Idle-reap bookkeeping: touched whenever the client delivers
     *  bytes.  Writes (us flushing responses) deliberately do NOT
     *  count -- a client that never sends but happily reads is still
     *  idle by the protocol's definition. */
    void touch(std::chrono::steady_clock::time_point now)
    {
        last_activity_ = now;
    }
    std::chrono::steady_clock::time_point lastActivity() const
    {
        return last_activity_;
    }

    /** Flush as much queued output as the socket accepts. */
    IoStatus flush()
    {
        if (out_offset_ >= out_.size())
            return IoStatus::Ok;
        IoStatus st = conn_->writeSome(out_, out_offset_);
        if (out_offset_ >= out_.size()) {
            out_.clear();
            out_offset_ = 0;
        } else if (out_offset_ >= 65536) {
            // Drop the flushed prefix: a slow reader with a small
            // standing backlog must not grow the buffer forever.
            out_.erase(0, out_offset_);
            out_offset_ = 0;
        }
        return st;
    }

    bool hasPendingOutput() const
    {
        return out_offset_ < out_.size();
    }

    /** Unflushed output bound: past it the server stops READING this
     *  connection (poll interest drops), so a client that pipelines
     *  requests but never reads responses throttles itself through
     *  TCP backpressure instead of growing the server without
     *  limit.  Reading resumes once the backlog drains. */
    static constexpr std::size_t kMaxBufferedOutputBytes = 4u << 20;

    bool outputBacklogged() const
    {
        return out_.size() - out_offset_ > kMaxBufferedOutputBytes;
    }

    /** Responses delivered in full (close_when_flushed gate). */
    bool flushed() const { return !hasPendingOutput(); }

    /** The read side is done (EOF, error, or an over-long-line
     *  hangup): no further requests will be admitted, and the server
     *  reaps the connection once every owed response has flushed. */
    bool inputClosed() const { return input_closed_; }
    void markInputClosed() { input_closed_ = true; }

    /** Per-connection stats row (read from worker threads). */
    std::uint64_t received() const
    {
        return received_.load(std::memory_order_relaxed);
    }
    std::uint64_t completed() const
    {
        return completed_.load(std::memory_order_relaxed);
    }
    std::uint64_t rejected() const
    {
        return rejected_.load(std::memory_order_relaxed);
    }

  private:
    /** Indirection so this header stays free of service/ includes
     *  (defined in client_session.cpp via serve_session.hpp). */
    static std::string
    protocolErrorResponseLine(const std::string &line,
                              const std::string &message,
                              const char *code,
                              std::int64_t retry_after_ms);

    std::uint64_t id_;
    std::unique_ptr<Connection> conn_;
    LineSplitter splitter_;
    TokenBucket bucket_;
    std::chrono::steady_clock::time_point last_activity_;
    std::string out_;
    std::size_t out_offset_ = 0;
    bool input_closed_ = false;
    // Per-connection tallies: written only by the event-loop thread,
    // read by worker-thread stats ops.  Relaxed ordering -- each is
    // an independent monotonic counter used for reporting only, so a
    // slightly stale or cross-counter-torn stats row is fine and no
    // data is published through them.
    std::atomic<std::uint64_t> received_{0};
    std::atomic<std::uint64_t> completed_{0};
    std::atomic<std::uint64_t> rejected_{0};
};

} // namespace ploop

#endif // PHOTONLOOP_NET_CLIENT_SESSION_HPP
