/**
 * @file
 * Portable POSIX socket primitives for the serving layer: a loopback
 * TCP listener, a non-blocking connection wrapper, and line framing
 * for the one-request-per-line JSON protocol.
 *
 * Design rules (the server must survive arbitrary client behavior):
 *  - every read/write retries EINTR internally;
 *  - writes use MSG_NOSIGNAL, so a client that disconnects mid-write
 *    surfaces as EPIPE instead of killing the process with SIGPIPE;
 *  - partial writes are the normal case: writeSome() advances an
 *    offset and reports WouldBlock, the caller re-arms POLLOUT;
 *  - sockets are non-blocking, so one slow client can never stall
 *    the accept/poll loop;
 *  - line framing is bounded (LineSplitter::kMaxLineBytes), so a
 *    client streaming an endless unterminated line cannot grow the
 *    server without limit.
 *
 * The listener binds 127.0.0.1 only: the serving layer is a local
 * multi-process hub (many clients, one warm EvalService), not an
 * internet-facing endpoint.
 */

#ifndef PHOTONLOOP_NET_SOCKET_HPP
#define PHOTONLOOP_NET_SOCKET_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ploop {

/** Outcome of one non-blocking I/O slice. */
enum class IoStatus : std::uint8_t {
    Ok,         ///< Progress was made (bytes moved).
    WouldBlock, ///< Nothing to do now; wait for poll() readiness.
    Closed,     ///< Peer closed (EOF on read, EPIPE/ECONNRESET on write).
    Error,      ///< Unrecoverable socket error (errno preserved).
};

/**
 * One accepted client socket, owned (closed on destruction) and
 * switched to non-blocking mode.  See file comment for the I/O
 * contract.
 */
class Connection
{
  public:
    /** Takes ownership of @p fd and makes it non-blocking. */
    explicit Connection(int fd);
    ~Connection();

    Connection(const Connection &) = delete;
    Connection &operator=(const Connection &) = delete;

    int fd() const { return fd_; }

    /**
     * Append every currently-available byte to @p out (drains until
     * EAGAIN).  Ok when at least one byte arrived; Closed on EOF --
     * bytes appended before the EOF are still valid and must be
     * processed by the caller first.
     */
    IoStatus readAvailable(std::string &out);

    /**
     * Write data[offset..) as far as the socket accepts, advancing
     * @p offset.  Ok when everything through data.size() was written;
     * WouldBlock on a partial write (re-arm POLLOUT); Closed when the
     * peer is gone (EPIPE/ECONNRESET -- never a SIGPIPE).
     */
    IoStatus writeSome(const std::string &data, std::size_t &offset);

  private:
    int fd_ = -1;
};

/** Loopback TCP listener (see file comment). */
class TcpListener
{
  public:
    TcpListener() = default;
    ~TcpListener() { close(); }

    TcpListener(const TcpListener &) = delete;
    TcpListener &operator=(const TcpListener &) = delete;

    /**
     * Bind 127.0.0.1:@p port (0 = kernel-chosen ephemeral port) and
     * listen, non-blocking, SO_REUSEADDR.  False with a message in
     * @p error on failure.
     */
    bool open(std::uint16_t port, std::string *error);

    /** Stop accepting (idempotent). */
    void close();

    bool isOpen() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /** The bound port (after open(); the answer to port 0). */
    std::uint16_t port() const { return port_; }

    /**
     * Accept one pending connection.  Returns the new fd, or -1 when
     * none is pending (or on a transient per-connection failure --
     * the listener itself stays healthy either way).
     */
    int acceptFd();

  private:
    int fd_ = -1;
    std::uint16_t port_ = 0;
};

/**
 * Line framing: raw received bytes in, complete protocol lines out.
 * '\n' terminates a line; a preceding '\r' is stripped so raw telnet
 * and CRLF clients work.  An unterminated line longer than
 * kMaxLineBytes is a protocol violation and POISONS the stream:
 * append() reports it once via @p overflow, and every byte from the
 * violation on is discarded -- lines framed BEFORE the bad line are
 * the only ones ever delivered, matching the server's contract of
 * answering pre-violation requests and hanging up (requests smuggled
 * in after the violation must never execute).
 */
class LineSplitter
{
  public:
    /** Bound on one request line (1 MiB -- far above any legitimate
     *  request, far below "grows the server without limit"). */
    static constexpr std::size_t kMaxLineBytes = 1u << 20;

    /**
     * Append @p data and move every completed line into @p lines
     * (without the terminator).  Sets @p overflow when the line
     * under construction exceeded kMaxLineBytes (terminal -- see
     * file comment).
     */
    void append(const char *data, std::size_t n,
                std::vector<std::string> &lines, bool &overflow);

    /** Bytes buffered awaiting a terminator. */
    std::size_t pendingBytes() const { return buf_.size(); }

    /** True once an over-long line poisoned the stream. */
    bool poisoned() const { return poisoned_; }

  private:
    std::string buf_;
    bool poisoned_ = false; ///< Over-long line seen; all input dead.
};

} // namespace ploop

#endif // PHOTONLOOP_NET_SOCKET_HPP
