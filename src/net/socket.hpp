/**
 * @file
 * Portable POSIX socket primitives for the serving layer: a loopback
 * TCP listener, a non-blocking connection wrapper, and line framing
 * for the one-request-per-line JSON protocol.
 *
 * Design rules (the server must survive arbitrary client behavior):
 *  - every read/write retries EINTR internally;
 *  - writes use MSG_NOSIGNAL, so a client that disconnects mid-write
 *    surfaces as EPIPE instead of killing the process with SIGPIPE;
 *  - partial writes are the normal case: writeSome() advances an
 *    offset and reports WouldBlock, the caller re-arms POLLOUT;
 *  - sockets are non-blocking, so one slow client can never stall
 *    the accept/poll loop;
 *  - line framing is bounded (LineSplitter::kMaxLineBytes), so a
 *    client streaming an endless unterminated line cannot grow the
 *    server without limit.
 *
 * The listener binds 127.0.0.1 only: the serving layer is a local
 * multi-process hub (many clients, one warm EvalService), not an
 * internet-facing endpoint.
 */

#ifndef PHOTONLOOP_NET_SOCKET_HPP
#define PHOTONLOOP_NET_SOCKET_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/annotations.hpp"

namespace ploop {

/** Outcome of one non-blocking I/O slice. */
enum class IoStatus : std::uint8_t {
    Ok,         ///< Progress was made (bytes moved).
    WouldBlock, ///< Nothing to do now; wait for poll() readiness.
    Closed,     ///< Peer closed (EOF on read, EPIPE/ECONNRESET on write).
    Error,      ///< Unrecoverable socket error (errno preserved).
};

/**
 * Deterministic fault injection for Connection I/O -- the chaos-test
 * harness.  Disabled (zero config) it costs one pointer check per
 * Connection construction and nothing per byte.
 *
 * Faults model what real networks and kernels do to a server:
 *
 *   short_read_pct   recv() returns only 1..16 bytes (fragments line
 *                    framing at arbitrary byte boundaries);
 *   short_write_pct  send() accepts only 1..8 bytes, then the slice
 *                    reports WouldBlock (exercises partial-write
 *                    resume via POLLOUT re-arming);
 *   eintr_pct        a syscall slice is interrupted first (EINTR
 *                    retry paths);
 *   stall_pct        a write slice makes no progress at all
 *                    (WouldBlock with nothing accepted);
 *   reset_after_bytes connection dies (as if ECONNRESET) once this
 *                    many TOTAL bytes crossed it in either direction
 *                    (0 = never) -- mid-line and mid-response cuts.
 *
 * Determinism: each Connection draws a private seed from the shared
 * sequence at construction, so a test run's fault schedule depends
 * only on the configured seed and the order connections are
 * accepted, never on wall-clock timing.  Percentages are clamped to
 * 95 so progress is always possible (no livelock).
 *
 * Enable via the test API (configure()) or the PLOOP_FAULTS
 * environment variable read on first use:
 *   PLOOP_FAULTS="short_read=35,short_write=35,eintr=25,seed=9"
 */
class FaultInjector
{
  public:
    struct Config
    {
        unsigned short_read_pct = 0;
        unsigned short_write_pct = 0;
        unsigned eintr_pct = 0;
        unsigned stall_pct = 0;
        std::uint64_t reset_after_bytes = 0;
        std::uint64_t seed = 1;

        bool enabled() const
        {
            return short_read_pct || short_write_pct || eintr_pct ||
                   stall_pct || reset_after_bytes;
        }
    };

    /** Injection totals since the last configure()/reset() --
     *  chaos tests assert faults actually fired. */
    struct Counts
    {
        std::uint64_t short_reads = 0;
        std::uint64_t short_writes = 0;
        std::uint64_t eintrs = 0;
        std::uint64_t stalls = 0;
        std::uint64_t resets = 0;
    };

    /** Process-wide instance.  First call reads PLOOP_FAULTS (an
     *  invalid spec is ignored -- never crash serving over an env
     *  typo; ploop_serve logs it via parse()). */
    static FaultInjector &instance();

    /** Parse a "key=value,key=value" spec (keys: short_read,
     *  short_write, eintr, stall, reset_after, seed).  False with a
     *  message in @p error on a bad key/value. */
    static bool parse(const std::string &spec, Config &out,
                      std::string *error);

    /** Install @p cfg (percentages clamped to 95) and zero the
     *  counters.  Affects Connections created AFTERWARDS. */
    void configure(const Config &cfg);

    /** Disable injection and zero the counters. */
    void reset() { configure(Config{}); }

    bool enabled() const
    {
        return enabled_.load(std::memory_order_acquire);
    }
    Config config() const;
    Counts counts() const;

    /** Next per-connection RNG seed (mixes the configured seed with
     *  a connection ordinal; see class comment). */
    std::uint64_t nextStreamSeed();

    /** Counter bumps (from Connection's fault paths). */
    void countShortRead() { bump(counts_short_reads_); }
    void countShortWrite() { bump(counts_short_writes_); }
    void countEintr() { bump(counts_eintrs_); }
    void countStall() { bump(counts_stalls_); }
    void countReset() { bump(counts_resets_); }

  private:
    static void bump(std::atomic<std::uint64_t> &c)
    {
        c.fetch_add(1, std::memory_order_relaxed);
    }

    /** Release on configure() / acquire on enabled(): a reader that
     *  sees true must also see the cfg_ write that preceded it (via
     *  the mu_-guarded config() read that follows). */
    std::atomic<bool> enabled_{false};
    mutable Mutex mu_;
    Config cfg_ GUARDED_BY(mu_);
    std::uint64_t stream_counter_ GUARDED_BY(mu_) = 0;
    // Injection tallies bumped from fault paths on any thread and
    // read only by test assertions/stats: independent monotonic
    // counters, relaxed ordering suffices.
    std::atomic<std::uint64_t> counts_short_reads_{0};
    std::atomic<std::uint64_t> counts_short_writes_{0};
    std::atomic<std::uint64_t> counts_eintrs_{0};
    std::atomic<std::uint64_t> counts_stalls_{0};
    std::atomic<std::uint64_t> counts_resets_{0};
};

/**
 * One accepted client socket, owned (closed on destruction) and
 * switched to non-blocking mode.  See file comment for the I/O
 * contract.
 */
class Connection
{
  public:
    /** Takes ownership of @p fd and makes it non-blocking.  When the
     *  FaultInjector is enabled, this connection gets a private
     *  deterministic fault stream (see FaultInjector). */
    explicit Connection(int fd);
    ~Connection();

    Connection(const Connection &) = delete;
    Connection &operator=(const Connection &) = delete;

    int fd() const { return fd_; }

    /**
     * Append every currently-available byte to @p out (drains until
     * EAGAIN).  Ok when at least one byte arrived; Closed on EOF --
     * bytes appended before the EOF are still valid and must be
     * processed by the caller first.
     */
    IoStatus readAvailable(std::string &out);

    /**
     * Write data[offset..) as far as the socket accepts, advancing
     * @p offset.  Ok when everything through data.size() was written;
     * WouldBlock on a partial write (re-arm POLLOUT); Closed when the
     * peer is gone (EPIPE/ECONNRESET -- never a SIGPIPE).
     */
    IoStatus writeSome(const std::string &data, std::size_t &offset);

  private:
    struct FaultState; ///< Per-connection fault stream (chaos tests).

    int fd_ = -1;
    std::unique_ptr<FaultState> faults_; ///< Null when injection off.
};

/**
 * Begin a NON-BLOCKING loopback connect to 127.0.0.1:@p port
 * (TCP_NODELAY set): the client-side twin of TcpListener, extracted
 * from LineClient so poll()-loop callers (the cluster router's
 * backend connections) can share the connect details with the
 * blocking client instead of re-deriving them.
 *
 * Returns the fd with the handshake either already complete
 * (@p in_progress false) or underway (@p in_progress true: wait for
 * POLLOUT, then call finishLoopbackConnect()); -1 on immediate
 * failure.  The fd stays non-blocking -- Connection's native mode.
 */
int startLoopbackConnect(std::uint16_t port, bool &in_progress);

/**
 * Resolve an in-progress connect after POLLOUT fired: true when the
 * handshake succeeded (SO_ERROR clear), false when it failed (the
 * caller owns closing the fd either way it chooses).
 */
bool finishLoopbackConnect(int fd);

/** Loopback TCP listener (see file comment). */
class TcpListener
{
  public:
    TcpListener() = default;
    ~TcpListener() { close(); }

    TcpListener(const TcpListener &) = delete;
    TcpListener &operator=(const TcpListener &) = delete;

    /**
     * Bind 127.0.0.1:@p port (0 = kernel-chosen ephemeral port) and
     * listen, non-blocking, SO_REUSEADDR.  False with a message in
     * @p error on failure.
     */
    bool open(std::uint16_t port, std::string *error);

    /** Stop accepting (idempotent). */
    void close();

    bool isOpen() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /** The bound port (after open(); the answer to port 0). */
    std::uint16_t port() const { return port_; }

    /**
     * Accept one pending connection.  Returns the new fd, or -1 when
     * none is pending (or on a transient per-connection failure --
     * the listener itself stays healthy either way).
     */
    int acceptFd();

  private:
    int fd_ = -1;
    std::uint16_t port_ = 0;
};

/**
 * Line framing: raw received bytes in, complete protocol lines out.
 * '\n' terminates a line; a preceding '\r' is stripped so raw telnet
 * and CRLF clients work.  An unterminated line longer than
 * kMaxLineBytes is a protocol violation and POISONS the stream:
 * append() reports it once via @p overflow, and every byte from the
 * violation on is discarded -- lines framed BEFORE the bad line are
 * the only ones ever delivered, matching the server's contract of
 * answering pre-violation requests and hanging up (requests smuggled
 * in after the violation must never execute).
 */
class LineSplitter
{
  public:
    /** Bound on one request line (1 MiB -- far above any legitimate
     *  request, far below "grows the server without limit"). */
    static constexpr std::size_t kMaxLineBytes = 1u << 20;

    /**
     * Append @p data and move every completed line into @p lines
     * (without the terminator).  Sets @p overflow when the line
     * under construction exceeded kMaxLineBytes (terminal -- see
     * file comment).
     */
    void append(const char *data, std::size_t n,
                std::vector<std::string> &lines, bool &overflow);

    /** Bytes buffered awaiting a terminator. */
    std::size_t pendingBytes() const { return buf_.size(); }

    /** True once an over-long line poisoned the stream. */
    bool poisoned() const { return poisoned_; }

  private:
    std::string buf_;
    bool poisoned_ = false; ///< Over-long line seen; all input dead.
};

} // namespace ploop

#endif // PHOTONLOOP_NET_SOCKET_HPP
