#include "net/port_file.hpp"

#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>

namespace ploop {

bool
writePortFile(const std::string &path, std::uint16_t port,
              std::string *error)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out.is_open()) {
        if (error)
            *error = "cannot write port file '" + path + "'";
        return false;
    }
    out << port << "\n";
    out.flush();
    if (!out) {
        if (error)
            *error = "short write to port file '" + path + "'";
        return false;
    }
    return true;
}

int
parsePortFileText(const std::string &text)
{
    std::size_t nl = text.find('\n');
    if (nl == std::string::npos)
        return -1; // incomplete line: writer may be mid-write
    std::string line = text.substr(0, nl);
    // Tolerate CR (a hand-written file) and surrounding spaces.
    while (!line.empty() &&
           (line.back() == '\r' || line.back() == ' ' ||
            line.back() == '\t'))
        line.pop_back();
    std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos)
        return -1;
    line.erase(0, first);
    if (line.empty() || line.size() > 5)
        return -1;
    long value = 0;
    for (char c : line) {
        if (c < '0' || c > '9')
            return -1;
        value = value * 10 + (c - '0');
    }
    if (value < 1 || value > 65535)
        return -1;
    return static_cast<int>(value);
}

int
readPortFile(const std::string &path, int wait_ms,
             std::string *error)
{
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(wait_ms < 0 ? 0 : wait_ms);
    for (;;) {
        std::ifstream in(path);
        if (in.is_open()) {
            std::ostringstream content;
            content << in.rdbuf();
            int port = parsePortFileText(content.str());
            if (port > 0)
                return port;
        }
        if (std::chrono::steady_clock::now() >= deadline)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    if (error)
        *error = "no valid port in '" + path + "' after " +
                 std::to_string(wait_ms < 0 ? 0 : wait_ms) + "ms";
    return -1;
}

} // namespace ploop
