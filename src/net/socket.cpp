#include "net/socket.hpp"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace ploop {

namespace {

bool
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) >= 0;
}

} // namespace

// ------------------------------------------------------- Connection

Connection::Connection(int fd) : fd_(fd)
{
    setNonBlocking(fd_);
    // The protocol is small request/response lines; Nagle only adds
    // latency between a client's write and the server's read.
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Connection::~Connection()
{
    if (fd_ >= 0)
        ::close(fd_);
}

IoStatus
Connection::readAvailable(std::string &out)
{
    char chunk[65536];
    bool any = false;
    for (;;) {
        ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n > 0) {
            out.append(chunk, static_cast<std::size_t>(n));
            any = true;
            continue;
        }
        if (n == 0)
            return IoStatus::Closed; // caller processes appended bytes first
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return any ? IoStatus::Ok : IoStatus::WouldBlock;
        if (errno == ECONNRESET)
            return IoStatus::Closed;
        return IoStatus::Error;
    }
}

IoStatus
Connection::writeSome(const std::string &data, std::size_t &offset)
{
    while (offset < data.size()) {
        ssize_t n = ::send(fd_, data.data() + offset,
                           data.size() - offset, MSG_NOSIGNAL);
        if (n > 0) {
            offset += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return IoStatus::WouldBlock;
        if (n < 0 && (errno == EPIPE || errno == ECONNRESET))
            return IoStatus::Closed;
        return IoStatus::Error;
    }
    return IoStatus::Ok;
}

// ------------------------------------------------------ TcpListener

bool
TcpListener::open(std::uint16_t port, std::string *error)
{
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
        if (error)
            *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0 ||
        ::listen(fd_, 64) < 0 || !setNonBlocking(fd_)) {
        if (error)
            *error = std::string("bind/listen on 127.0.0.1:") +
                     std::to_string(port) + ": " +
                     std::strerror(errno);
        close();
        return false;
    }

    socklen_t len = sizeof(addr);
    if (::getsockname(fd_, reinterpret_cast<sockaddr *>(&addr),
                      &len) < 0) {
        if (error)
            *error = std::string("getsockname: ") +
                     std::strerror(errno);
        close();
        return false;
    }
    port_ = ntohs(addr.sin_port);
    return true;
}

void
TcpListener::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

int
TcpListener::acceptFd()
{
    for (;;) {
        int fd = ::accept(fd_, nullptr, nullptr);
        if (fd >= 0)
            return fd;
        if (errno == EINTR)
            continue;
        // EAGAIN: nothing pending.  Anything else (ECONNABORTED, fd
        // exhaustion, ...) is that connection's problem; the
        // listener keeps serving.
        return -1;
    }
}

// ----------------------------------------------------- LineSplitter

void
LineSplitter::append(const char *data, std::size_t n,
                     std::vector<std::string> &lines, bool &overflow)
{
    overflow = false;
    if (poisoned_)
        return;
    for (std::size_t i = 0; i < n; ++i) {
        char c = data[i];
        if (c == '\n') {
            if (!buf_.empty() && buf_.back() == '\r')
                buf_.pop_back();
            lines.push_back(std::move(buf_));
            buf_.clear();
            continue;
        }
        if (buf_.size() >= kMaxLineBytes) {
            // Terminal: nothing after the violation may be framed
            // (see header) -- a request smuggled in behind the junk
            // must not execute on a stream we are hanging up on.
            buf_.clear();
            poisoned_ = true;
            overflow = true;
            return;
        }
        buf_.push_back(c);
    }
}

} // namespace ploop
