#include "net/socket.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <random>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace ploop {

namespace {

bool
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) >= 0;
}

unsigned
clampPct(unsigned pct)
{
    // Never 100%: a fault that fires on EVERY slice would livelock
    // the harness (a write that never accepts a byte, a read that
    // never completes a line).  95 keeps chaos high while forward
    // progress stays certain.
    return pct > 95 ? 95 : pct;
}

} // namespace

// ---------------------------------------------------- FaultInjector

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector *inj = [] {
        auto *p = new FaultInjector();
        if (const char *spec = std::getenv("PLOOP_FAULTS")) {
            Config cfg;
            // An unparsable spec stays disabled: a typo in the env
            // must degrade to clean serving, not a crash.  Tools
            // that care (ploop_serve) call parse() themselves to
            // report the error.
            if (parse(spec, cfg, nullptr))
                p->configure(cfg);
        }
        return p;
    }();
    return *inj;
}

bool
FaultInjector::parse(const std::string &spec, Config &out,
                     std::string *error)
{
    Config cfg;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t end = spec.find(',', pos);
        if (end == std::string::npos)
            end = spec.size();
        std::string item = spec.substr(pos, end - pos);
        pos = end + 1;
        if (item.empty())
            continue;
        std::size_t eq = item.find('=');
        if (eq == std::string::npos) {
            if (error)
                *error = "fault spec item '" + item +
                         "' is not key=value";
            return false;
        }
        std::string key = item.substr(0, eq);
        std::string val = item.substr(eq + 1);
        char *endp = nullptr;
        unsigned long long num = std::strtoull(val.c_str(), &endp, 10);
        if (val.empty() || endp == nullptr || *endp != '\0') {
            if (error)
                *error = "fault spec value '" + val + "' for '" +
                         key + "' is not a number";
            return false;
        }
        if (key == "short_read")
            cfg.short_read_pct = static_cast<unsigned>(num);
        else if (key == "short_write")
            cfg.short_write_pct = static_cast<unsigned>(num);
        else if (key == "eintr")
            cfg.eintr_pct = static_cast<unsigned>(num);
        else if (key == "stall")
            cfg.stall_pct = static_cast<unsigned>(num);
        else if (key == "reset_after")
            cfg.reset_after_bytes = num;
        else if (key == "seed")
            cfg.seed = num;
        else {
            if (error)
                *error = "unknown fault spec key '" + key +
                         "' (short_read, short_write, eintr, stall, "
                         "reset_after, seed)";
            return false;
        }
    }
    out = cfg;
    return true;
}

void
FaultInjector::configure(const Config &cfg)
{
    MutexLock lock(mu_);
    cfg_ = cfg;
    cfg_.short_read_pct = clampPct(cfg_.short_read_pct);
    cfg_.short_write_pct = clampPct(cfg_.short_write_pct);
    cfg_.eintr_pct = clampPct(cfg_.eintr_pct);
    cfg_.stall_pct = clampPct(cfg_.stall_pct);
    stream_counter_ = 0;
    counts_short_reads_.store(0, std::memory_order_relaxed);
    counts_short_writes_.store(0, std::memory_order_relaxed);
    counts_eintrs_.store(0, std::memory_order_relaxed);
    counts_stalls_.store(0, std::memory_order_relaxed);
    counts_resets_.store(0, std::memory_order_relaxed);
    enabled_.store(cfg_.enabled(), std::memory_order_release);
}

FaultInjector::Config
FaultInjector::config() const
{
    MutexLock lock(mu_);
    return cfg_;
}

FaultInjector::Counts
FaultInjector::counts() const
{
    Counts out;
    out.short_reads = counts_short_reads_.load(std::memory_order_relaxed);
    out.short_writes =
        counts_short_writes_.load(std::memory_order_relaxed);
    out.eintrs = counts_eintrs_.load(std::memory_order_relaxed);
    out.stalls = counts_stalls_.load(std::memory_order_relaxed);
    out.resets = counts_resets_.load(std::memory_order_relaxed);
    return out;
}

std::uint64_t
FaultInjector::nextStreamSeed()
{
    MutexLock lock(mu_);
    // splitmix64-style mix of (seed, ordinal): distinct, stable
    // per-connection streams from one configured seed.
    std::uint64_t z = cfg_.seed + (++stream_counter_) *
                                      0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

// ------------------------------------------------------- Connection

/** Per-connection injection state: a config snapshot (faults stay
 *  coherent even if the injector is reconfigured mid-connection) and
 *  a private RNG stream. */
struct Connection::FaultState
{
    FaultInjector::Config cfg;
    std::mt19937_64 rng;
    std::uint64_t total_bytes = 0; ///< Both directions (reset_after).
    bool dead = false;             ///< Injected reset already fired.

    explicit FaultState(FaultInjector &inj)
        : cfg(inj.config()), rng(inj.nextStreamSeed())
    {}

    bool roll(unsigned pct)
    {
        return pct > 0 && rng() % 100 < pct;
    }

    /** 1..cap "bytes the kernel accepted" for short reads/writes. */
    std::size_t shortLen(std::size_t cap, std::size_t want)
    {
        std::size_t n = 1 + static_cast<std::size_t>(rng() % cap);
        return n < want ? n : want;
    }

    bool resetDue() const
    {
        return cfg.reset_after_bytes > 0 &&
               total_bytes >= cfg.reset_after_bytes;
    }
};

Connection::Connection(int fd) : fd_(fd)
{
    setNonBlocking(fd_);
    // The protocol is small request/response lines; Nagle only adds
    // latency between a client's write and the server's read.
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    FaultInjector &inj = FaultInjector::instance();
    if (inj.enabled())
        faults_ = std::make_unique<FaultState>(inj);
}

Connection::~Connection()
{
    if (fd_ >= 0)
        ::close(fd_);
}

IoStatus
Connection::readAvailable(std::string &out)
{
    char chunk[65536];
    bool any = false;
    // Injected-EINTR budget per call: the real-kernel EINTR path
    // retries, and bounding the injected bursts keeps that retry
    // loop finite no matter what the RNG rolls.
    int eintr_budget = 3;
    for (;;) {
        std::size_t want = sizeof(chunk);
        if (faults_) {
            if (faults_->dead || faults_->resetDue()) {
                if (!faults_->dead) {
                    faults_->dead = true;
                    FaultInjector::instance().countReset();
                }
                return IoStatus::Closed; // as-if ECONNRESET
            }
            if (eintr_budget > 0 &&
                faults_->roll(faults_->cfg.eintr_pct)) {
                --eintr_budget;
                FaultInjector::instance().countEintr();
                continue; // what the EINTR branch below would do
            }
            if (faults_->roll(faults_->cfg.short_read_pct))
                want = faults_->shortLen(16, want);
        }
        ssize_t n = ::recv(fd_, chunk, want, 0);
        if (n > 0) {
            out.append(chunk, static_cast<std::size_t>(n));
            any = true;
            if (faults_) {
                faults_->total_bytes +=
                    static_cast<std::uint64_t>(n);
                if (want < sizeof(chunk)) {
                    // A short read ends the slice early: the caller
                    // frames a FRAGMENT now and the rest next time,
                    // exercising reassembly at arbitrary split
                    // points.
                    FaultInjector::instance().countShortRead();
                    return IoStatus::Ok;
                }
            }
            continue;
        }
        if (n == 0)
            return IoStatus::Closed; // caller processes appended bytes first
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return any ? IoStatus::Ok : IoStatus::WouldBlock;
        if (errno == ECONNRESET)
            return IoStatus::Closed;
        return IoStatus::Error;
    }
}

IoStatus
Connection::writeSome(const std::string &data, std::size_t &offset)
{
    int eintr_budget = 3; // see readAvailable
    while (offset < data.size()) {
        std::size_t want = data.size() - offset;
        if (faults_) {
            if (faults_->dead || faults_->resetDue()) {
                if (!faults_->dead) {
                    faults_->dead = true;
                    FaultInjector::instance().countReset();
                }
                return IoStatus::Closed; // as-if EPIPE/ECONNRESET
            }
            if (eintr_budget > 0 &&
                faults_->roll(faults_->cfg.eintr_pct)) {
                --eintr_budget;
                FaultInjector::instance().countEintr();
                continue;
            }
            if (faults_->roll(faults_->cfg.stall_pct)) {
                // Zero-progress slice: caller re-arms POLLOUT and
                // retries later, exactly like a full socket buffer.
                FaultInjector::instance().countStall();
                return IoStatus::WouldBlock;
            }
            if (faults_->roll(faults_->cfg.short_write_pct))
                want = faults_->shortLen(8, want);
        }
        bool injected_short = want < data.size() - offset;
        ssize_t n = ::send(fd_, data.data() + offset, want,
                           MSG_NOSIGNAL);
        if (n > 0) {
            offset += static_cast<std::size_t>(n);
            if (faults_) {
                faults_->total_bytes +=
                    static_cast<std::uint64_t>(n);
                if (injected_short) {
                    // Partial write injected: end the slice so the
                    // caller exercises offset-resume on POLLOUT.
                    FaultInjector::instance().countShortWrite();
                    return IoStatus::WouldBlock;
                }
            }
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return IoStatus::WouldBlock;
        if (n < 0 && (errno == EPIPE || errno == ECONNRESET))
            return IoStatus::Closed;
        return IoStatus::Error;
    }
    return IoStatus::Ok;
}

// ------------------------------------------- client-side connect

int
startLoopbackConnect(std::uint16_t port, bool &in_progress)
{
    in_progress = false;
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (!setNonBlocking(fd)) {
        ::close(fd);
        return -1;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    int rc = ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                       sizeof(addr));
    if (rc == 0)
        return fd;
    // EINTR on a non-blocking connect means the handshake continues
    // asynchronously, exactly like EINPROGRESS (POSIX).
    if (errno == EINPROGRESS || errno == EINTR) {
        in_progress = true;
        return fd;
    }
    ::close(fd);
    return -1;
}

bool
finishLoopbackConnect(int fd)
{
    int soerr = 0;
    socklen_t len = sizeof(soerr);
    return ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) ==
               0 &&
           soerr == 0;
}

// ------------------------------------------------------ TcpListener

bool
TcpListener::open(std::uint16_t port, std::string *error)
{
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
        if (error)
            *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0 ||
        ::listen(fd_, 64) < 0 || !setNonBlocking(fd_)) {
        if (error)
            *error = std::string("bind/listen on 127.0.0.1:") +
                     std::to_string(port) + ": " +
                     std::strerror(errno);
        close();
        return false;
    }

    socklen_t len = sizeof(addr);
    if (::getsockname(fd_, reinterpret_cast<sockaddr *>(&addr),
                      &len) < 0) {
        if (error)
            *error = std::string("getsockname: ") +
                     std::strerror(errno);
        close();
        return false;
    }
    port_ = ntohs(addr.sin_port);
    return true;
}

void
TcpListener::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

int
TcpListener::acceptFd()
{
    for (;;) {
        int fd = ::accept(fd_, nullptr, nullptr);
        if (fd >= 0)
            return fd;
        if (errno == EINTR)
            continue;
        // EAGAIN: nothing pending.  Anything else (ECONNABORTED, fd
        // exhaustion, ...) is that connection's problem; the
        // listener keeps serving.
        return -1;
    }
}

// ----------------------------------------------------- LineSplitter

void
LineSplitter::append(const char *data, std::size_t n,
                     std::vector<std::string> &lines, bool &overflow)
{
    overflow = false;
    if (poisoned_)
        return;
    for (std::size_t i = 0; i < n; ++i) {
        char c = data[i];
        if (c == '\n') {
            if (!buf_.empty() && buf_.back() == '\r')
                buf_.pop_back();
            lines.push_back(std::move(buf_));
            buf_.clear();
            continue;
        }
        if (buf_.size() >= kMaxLineBytes) {
            // Terminal: nothing after the violation may be framed
            // (see header) -- a request smuggled in behind the junk
            // must not execute on a stream we are hanging up on.
            buf_.clear();
            poisoned_ = true;
            overflow = true;
            return;
        }
        buf_.push_back(c);
    }
}

} // namespace ploop
