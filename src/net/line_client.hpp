/**
 * @file
 * LineClient: a minimal BLOCKING loopback client for the line
 * protocol -- connect, send '\n'-framed request lines, receive
 * '\n'-framed response lines.  The client-side twin of the server's
 * non-blocking machinery, shared by tools/ploop_client, the net
 * tests and bench_serve_concurrency so the connect/EINTR/framing
 * details live in exactly one place.
 *
 * Deliberately simple: blocking sockets (the callers are clients
 * with nothing else to do), EINTR retried, MSG_NOSIGNAL on sends.
 * Any failure (server gone, refused, EOF mid-line) surfaces as a
 * false return; callers decide whether that is an error.
 */

#ifndef PHOTONLOOP_NET_LINE_CLIENT_HPP
#define PHOTONLOOP_NET_LINE_CLIENT_HPP

#include <cstdint>
#include <string>

namespace ploop {

/** See file comment. */
class LineClient
{
  public:
    LineClient() = default;

    /** Connects to 127.0.0.1:@p port (see connected()). */
    explicit LineClient(std::uint16_t port) { connect(port); }

    ~LineClient() { close(); }

    LineClient(const LineClient &) = delete;
    LineClient &operator=(const LineClient &) = delete;

    /** (Re)connect; false on failure. */
    bool connect(std::uint16_t port);

    bool connected() const { return fd_ >= 0; }

    void close();

    /** Send one request line (terminator added).  False when the
     *  server is gone. */
    bool sendLine(const std::string &line);

    /** Receive one response line (terminator stripped).  False on
     *  EOF or error before a full line arrived. */
    bool recvLine(std::string &line);

    /**
     * Non-blocking receive: true with a line when one is already
     * available, false immediately otherwise (no line, or EOF with
     * none buffered).  Lets a pipelining sender drain responses
     * between sends, so it can never deadlock against a server that
     * stops reading while the client's unread responses pile up.
     */
    bool tryRecvLine(std::string &line);

    /** Lockstep convenience: sendLine + recvLine; empty on failure
     *  (protocol lines are never empty). */
    std::string roundTrip(const std::string &line)
    {
        std::string resp;
        if (!sendLine(line) || !recvLine(resp))
            return std::string();
        return resp;
    }

  private:
    int fd_ = -1;
    std::string buffer_; ///< Bytes received past the last line.
};

} // namespace ploop

#endif // PHOTONLOOP_NET_LINE_CLIENT_HPP
