/**
 * @file
 * LineClient: a minimal BLOCKING loopback client for the line
 * protocol -- connect, send '\n'-framed request lines, receive
 * '\n'-framed response lines.  The client-side twin of the server's
 * non-blocking machinery, shared by tools/ploop_client, the net
 * tests and bench_serve_concurrency so the connect/EINTR/framing
 * details live in exactly one place.
 *
 * Deliberately simple: blocking sockets (the callers are clients
 * with nothing else to do), EINTR retried, MSG_NOSIGNAL on sends.
 * Any failure (server gone, refused, EOF mid-line) surfaces as a
 * false return; callers decide whether that is an error.
 */

#ifndef PHOTONLOOP_NET_LINE_CLIENT_HPP
#define PHOTONLOOP_NET_LINE_CLIENT_HPP

#include <cstdint>
#include <string>

namespace ploop {

/** Default bound on LineClient::connect (a loopback handshake takes
 *  microseconds; seconds of nothing means the server is wedged --
 *  fail fast instead of hanging the caller forever). */
constexpr int kDefaultConnectTimeoutMs = 5000;

/** See file comment. */
class LineClient
{
  public:
    LineClient() = default;

    /** Connects to 127.0.0.1:@p port (see connected()). */
    explicit LineClient(std::uint16_t port) { connect(port); }

    ~LineClient() { close(); }

    LineClient(const LineClient &) = delete;
    LineClient &operator=(const LineClient &) = delete;

    /**
     * (Re)connect; false on failure or once @p timeout_ms elapses
     * without the handshake completing (-1 = block forever, the old
     * behavior).  The timeout applies to connection ESTABLISHMENT
     * only; the socket reverts to blocking afterwards.
     */
    bool connect(std::uint16_t port,
                 int timeout_ms = kDefaultConnectTimeoutMs);

    bool connected() const { return fd_ >= 0; }

    void close();

    /** Send one request line (terminator added).  False when the
     *  server is gone. */
    bool sendLine(const std::string &line);

    /** Receive one response line (terminator stripped).  False on
     *  EOF or error before a full line arrived. */
    bool recvLine(std::string &line);

    /**
     * Non-blocking receive: true with a line when one is already
     * available, false immediately otherwise (no line, or EOF with
     * none buffered).  Lets a pipelining sender drain responses
     * between sends, so it can never deadlock against a server that
     * stops reading while the client's unread responses pile up.
     */
    bool tryRecvLine(std::string &line);

    /** Lockstep convenience: sendLine + recvLine; empty on failure
     *  (protocol lines are never empty). */
    std::string roundTrip(const std::string &line)
    {
        std::string resp;
        if (!sendLine(line) || !recvLine(resp))
            return std::string();
        return resp;
    }

  private:
    int fd_ = -1;
    std::string buffer_; ///< Bytes received past the last line.
};

/** Retry/backoff knobs for RetryingLineClient. */
struct RetryPolicy
{
    /** Retries after the first attempt (so retries=3 means up to 4
     *  tries total). */
    unsigned retries = 3;

    int connect_timeout_ms = kDefaultConnectTimeoutMs;

    /** Exponential backoff: base * 2^attempt, capped.  Deterministic
     *  (no jitter): reproducible test timelines matter more here
     *  than thundering-herd smoothing on a loopback hub. */
    unsigned backoff_base_ms = 25;
    unsigned backoff_cap_ms = 1000;
};

/**
 * LineClient plus a resilience loop: reconnect-and-resend on
 * transport failure, honor retry_after_ms hints on rate-limit and
 * overload rejects, give up after RetryPolicy::retries.
 *
 * ONLY safe for idempotent requests -- which every ploop op is: the
 * protocol is deterministic request/response (same request, same
 * answer; the determinism contract makes even search repeatable), so
 * resending after an ambiguous failure (sent but no response read)
 * cannot change outcomes, only redo work the caches mostly absorb.
 *
 * Lockstep only (one in flight): retry semantics for a pipelined
 * window are ambiguous (which of the unacked requests failed?), so
 * pipelining callers keep using LineClient directly.
 */
class RetryingLineClient
{
  public:
    explicit RetryingLineClient(std::uint16_t port,
                                RetryPolicy policy = {})
        : port_(port), policy_(policy)
    {
        client_.connect(port_, policy_.connect_timeout_ms);
    }

    bool connected() const { return client_.connected(); }

    /** Reconnect now (also false when the server stays down). */
    bool connect()
    {
        return client_.connect(port_, policy_.connect_timeout_ms);
    }

    /**
     * Send one request line and receive its response, retrying
     * through transport failures (reconnect + resend) and
     * server-directed retries (ok=false with retry_after_ms: sleep
     * the larger of the hint and the backoff, then resend).  Empty
     * string when every attempt failed at the transport; the last
     * reject response when the server kept refusing -- callers see
     * WHY (rate limit, overload) instead of a bare failure.
     */
    std::string roundTrip(const std::string &line);

    /** Total retries spent across roundTrip calls (observability:
     *  ploop_client --verbose reports it). */
    std::uint64_t retriesUsed() const { return retries_used_; }

    /** The underlying client (tests poke the raw transport). */
    LineClient &raw() { return client_; }

  private:
    std::uint16_t port_;
    RetryPolicy policy_;
    LineClient client_;
    std::uint64_t retries_used_ = 0;
};

} // namespace ploop

#endif // PHOTONLOOP_NET_LINE_CLIENT_HPP
