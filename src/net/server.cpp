#include "net/server.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include "common/string_util.hpp"

namespace ploop {

namespace {

/** The scheduler's config, with its queue-wait/run histograms wired
 *  to the session's registry when observability is on.  The registry
 *  owns the histograms and outlives the scheduler (the session
 *  outlives the server), so the raw pointers are safe. */
RequestScheduler::Config
schedulerConfig(ServeSession &session)
{
    RequestScheduler::Config cfg{session.config().max_queue, 0,
                                 session.config().shed_queue_wait_ms};
    if (MetricsRegistry *m = session.metrics()) {
        cfg.queue_wait_hist = &m->histogram(
            "ploop_queue_wait_seconds",
            "Time admitted request lines wait before dispatch.");
        cfg.run_hist = &m->histogram(
            "ploop_request_run_seconds",
            "Handler execution time on pool workers (queue wait "
            "excluded).");
    }
    return cfg;
}

} // namespace

NetServer::NetServer(ServeSession &session, NetConfig cfg)
    : session_(session), cfg_(cfg),
      pool_(cfg.pool ? *cfg.pool : ThreadPool::global()),
      scheduler_(
          pool_,
          [this](std::uint64_t, const std::string &line,
                 std::uint64_t queue_wait_ns) {
              return session_.handleLine(line, queue_wait_ns);
          },
          [this] { wake(); }, schedulerConfig(session))
{
    session_.setStatsHook([this](JsonValue &r) { appendStats(r); });
    session_.setHealthHook([this] { return healthStatus(); });

    // Connection-lifecycle and queue metrics.  Every callback
    // captures `this`, so the destructor must remove() these before
    // the server dies (the registry lives as long as the session) --
    // the same discipline as the stats/health hooks above.
    if (MetricsRegistry *m = session_.metrics()) {
        auto relaxed = [](const std::atomic<std::uint64_t> &c) {
            // Relaxed: independent monotonic tally, reporting only.
            return double(c.load(std::memory_order_relaxed));
        };
        metric_ids_.push_back(m->counterFn(
            "ploop_connections_accepted_total",
            "Client connections accepted.",
            [this, relaxed] { return relaxed(accepted_); }));
        metric_ids_.push_back(m->counterFn(
            "ploop_connections_rejected_full_total",
            "Connections refused at the max_connections cap.",
            [this, relaxed] { return relaxed(rejected_full_); }));
        metric_ids_.push_back(m->counterFn(
            "ploop_connections_closed_total",
            "Client connections closed (any reason).",
            [this, relaxed] { return relaxed(closed_); }));
        metric_ids_.push_back(m->counterFn(
            "ploop_connections_idle_reaped_total",
            "Connections reaped by the idle timeout.",
            [this, relaxed] { return relaxed(idle_reaped_); }));
        metric_ids_.push_back(m->gauge(
            "ploop_connections_open", "Client connections open now.",
            [this] {
                MutexLock lock(clients_mu_);
                return double(clients_.size());
            }));
        metric_ids_.push_back(m->gauge(
            "ploop_queue_depth",
            "Admitted request lines waiting for dispatch.",
            [this] { return double(scheduler_.stats().depth); }));
        metric_ids_.push_back(m->gauge(
            "ploop_queue_inflight",
            "Requests executing on pool workers right now.",
            [this] { return double(scheduler_.stats().inflight); }));
    }
}

NetServer::~NetServer()
{
    if (MetricsRegistry *m = session_.metrics())
        for (std::uint64_t id : metric_ids_)
            m->remove(id);
    session_.setStatsHook(nullptr);
    session_.setHealthHook(nullptr);
    if (wake_read_ >= 0)
        ::close(wake_read_);
    if (wake_write_ >= 0)
        ::close(wake_write_);
}

bool
NetServer::open(std::string *error)
{
    int fds[2];
    if (wake_read_ < 0) {
        if (::pipe(fds) != 0) {
            if (error)
                *error =
                    std::string("pipe: ") + std::strerror(errno);
            return false;
        }
        wake_read_ = fds[0];
        wake_write_ = fds[1];
        // Non-blocking both ways: draining must stop at "empty" and
        // a worker's wake() must not stall on a full pipe (a full
        // pipe IS a pending wake).
        for (int fd : {wake_read_, wake_write_}) {
            int flags = ::fcntl(fd, F_GETFL, 0);
            if (flags >= 0)
                ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
        }
    }
    return listener_.open(cfg_.port, error);
}

void
NetServer::wake()
{
    // One byte is enough; a full pipe already means a wake is
    // pending, so EAGAIN is success too.
    char b = 1;
    ssize_t rc;
    do {
        rc = ::write(wake_write_, &b, 1);
    } while (rc < 0 && errno == EINTR);
}

void
NetServer::deliverCompletions()
{
    std::vector<RequestScheduler::Completed> done =
        scheduler_.drainCompleted();
    MutexLock lock(clients_mu_);
    for (RequestScheduler::Completed &d : done) {
        auto it = clients_.find(d.conn);
        // A vanished client's scheduler entry is discarded inside
        // the scheduler; this guards the small window where the
        // completion was already collected.
        if (it != clients_.end())
            it->second->queueResponse(d.response);
    }
}

void
NetServer::acceptPending()
{
    for (;;) {
        int fd = listener_.acceptFd();
        if (fd < 0)
            return;
        MutexLock lock(clients_mu_);
        if (clients_.size() >= session_.config().max_connections) {
            // Greet-and-close: a fresh socket's buffer accepts this
            // one line, so the client learns WHY instead of seeing a
            // bare EOF.
            Connection doomed(fd);
            std::string line =
                protocolErrorResponse(
                    "", strFormat("server full (max %zu connections)",
                                  session_.config()
                                      .max_connections)) +
                "\n";
            std::size_t off = 0;
            doomed.writeSome(line, off);
            rejected_full_.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        std::uint64_t id = next_id_++;
        // Every connection gets its own bucket: one chatty client
        // exhausts its own tokens, never a neighbor's.
        TokenBucket bucket;
        if (session_.config().rate_limit_rps > 0.0) {
            double burst = session_.config().rate_limit_burst > 0.0
                               ? session_.config().rate_limit_burst
                               : session_.config().rate_limit_rps;
            bucket = TokenBucket(session_.config().rate_limit_rps,
                                 burst);
        }
        clients_.emplace(
            id, std::make_unique<ClientSession>(id, fd, bucket));
        accepted_.fetch_add(1, std::memory_order_relaxed);
        if (clients_.size() >
            peak_open_.load(std::memory_order_relaxed))
            peak_open_.store(clients_.size(),
                             std::memory_order_relaxed);
    }
}

void
NetServer::readFrom(ClientSession &client)
{
    std::vector<std::string> lines;
    bool overflow = false;
    IoStatus st = client.readLines(lines, overflow);
    auto now = std::chrono::steady_clock::now();
    if (!lines.empty())
        client.touch(now); // Delivered requests = not idle.

    for (const std::string &line : lines) {
        if (draining_) {
            client.queueReject(line, "server is shutting down");
            continue;
        }
        // Rate limit BEFORE the scheduler sees the line: a client
        // over its budget must not consume shared queue slots.
        if (!client.admitRate(now)) {
            session_.robustness().rate_limited.fetch_add(
                1, std::memory_order_relaxed);
            client.queueReject(
                line,
                strFormat("rate limit exceeded (%.6g requests/s "
                          "sustained, burst %.6g)",
                          session_.config().rate_limit_rps,
                          session_.config().rate_limit_burst > 0.0
                              ? session_.config().rate_limit_burst
                              : session_.config().rate_limit_rps),
                "rate_limited", client.retryAfterMs(now));
            continue;
        }
        switch (scheduler_.submit(client.id(), line)) {
        case RequestScheduler::Admit::Ok:
            break;
        case RequestScheduler::Admit::QueueFull:
            client.queueReject(
                line,
                strFormat("server busy: request queue full "
                          "(max %zu queued requests)",
                          session_.config().max_queue),
                "queue_full");
            break;
        case RequestScheduler::Admit::Shed:
            session_.robustness().shed.fetch_add(
                1, std::memory_order_relaxed);
            // The hint is the shed bound itself: by then the current
            // backlog has either drained past the threshold or the
            // retry is (correctly) shed again.
            client.queueReject(
                line,
                strFormat("server overloaded: queued work has "
                          "waited over %llu ms; retry later",
                          static_cast<unsigned long long>(
                              session_.config().shed_queue_wait_ms)),
                "overloaded",
                static_cast<std::int64_t>(
                    session_.config().shed_queue_wait_ms));
            break;
        }
    }
    if (overflow) {
        // Protocol violation: stop reading and hang up -- but only
        // after requests admitted BEFORE the bad line complete and
        // their responses flush (every admitted request gets a
        // correlatable response; the reap gate waits on busy()).
        client.queueReject(
            "", strFormat("request line exceeds %zu bytes",
                          LineSplitter::kMaxLineBytes));
        client.markInputClosed();
        return;
    }
    if (st == IoStatus::Closed) {
        // EOF: no more requests, but admitted work still completes
        // and its responses still get delivered (half-close
        // support).  The reap happens once nothing is owed.
        client.markInputClosed();
    } else if (st == IoStatus::Error) {
        // Broken socket: discard its work; the reap gate fires as
        // soon as the scheduler lets go.
        client.markInputClosed();
        scheduler_.dropConnection(client.id());
    }
}

void
NetServer::disconnect(std::uint64_t id)
{
    scheduler_.dropConnection(id);
    MutexLock lock(clients_mu_);
    if (clients_.erase(id))
        closed_.fetch_add(1, std::memory_order_relaxed);
}

void
NetServer::flushAndReap()
{
    const std::uint64_t idle_ms = session_.config().idle_timeout_ms;
    auto now = std::chrono::steady_clock::now();
    std::vector<std::uint64_t> gone;
    {
        MutexLock lock(clients_mu_);
        for (auto &[id, client] : clients_) {
            if (client->hasPendingOutput()) {
                IoStatus st = client->flush();
                if (st == IoStatus::Closed ||
                    st == IoStatus::Error) {
                    // The client died with responses owed; nothing
                    // left to deliver to.
                    gone.push_back(id);
                    continue;
                }
            }
            // Reap only once nothing is owed: responses for every
            // admitted request delivered AND flushed.  This covers
            // half-closed clients and the overflow hangup alike.
            if (client->inputClosed() && client->flushed() &&
                !scheduler_.busy(id))
                gone.push_back(id);
            // Idle reap: a connection that has sent nothing for the
            // whole timeout and owes us nothing is wedged (or
            // forgotten) -- it holds a max_connections slot hostage.
            // Queue a courtesy notice, flush best-effort ONCE, and
            // force the disconnect; waiting for flushed() would let
            // a client that also never READS evade the reaper.
            else if (idle_ms > 0 && !client->inputClosed() &&
                     !scheduler_.busy(id) &&
                     now - client->lastActivity() >=
                         std::chrono::milliseconds(idle_ms)) {
                client->queueReject(
                    "", strFormat("idle timeout: no request for "
                                  "%llu ms; closing",
                                  static_cast<unsigned long long>(
                                      idle_ms)),
                    "idle_timeout");
                client->flush();
                idle_reaped_.fetch_add(1, std::memory_order_relaxed);
                session_.robustness().idle_reaped.fetch_add(
                    1, std::memory_order_relaxed);
                gone.push_back(id);
            }
        }
    }
    for (std::uint64_t id : gone)
        disconnect(id);
}

bool
NetServer::allFlushed() const
{
    MutexLock lock(clients_mu_);
    for (const auto &[id, client] : clients_) {
        (void)id;
        if (client->hasPendingOutput())
            return false;
    }
    return true;
}

std::uint64_t
NetServer::run()
{
    std::chrono::steady_clock::time_point drain_deadline{};
    while (true) {
        // ---- build the poll set ------------------------------------
        std::vector<pollfd> fds;
        std::vector<std::uint64_t> fd_conn; // conn id per pollfd
        fds.push_back(pollfd{wake_read_, POLLIN, 0});
        fd_conn.push_back(0);
        if (listener_.isOpen() && !draining_) {
            fds.push_back(pollfd{listener_.fd(), POLLIN, 0});
            fd_conn.push_back(0);
        }
        int listener_idx = draining_ || !listener_.isOpen() ? -1 : 1;
        {
            MutexLock lock(clients_mu_);
            for (auto &[id, client] : clients_) {
                short events = 0;
                // No POLLIN while this client's unread responses
                // pile up: its requests back up into ITS socket
                // buffers (TCP backpressure), not our memory.
                if (!client->inputClosed() &&
                    !client->outputBacklogged())
                    events |= POLLIN;
                if (client->hasPendingOutput())
                    events |= POLLOUT;
                // No interest (input done, output flushed, request
                // in flight): keep the fd OUT of the poll set --
                // poll() reports POLLHUP/POLLERR regardless of the
                // requested events, so a dead socket with events=0
                // would turn poll(-1) into a busy spin.  The wake
                // pipe covers its completion.
                if (events == 0)
                    continue;
                fds.push_back(
                    pollfd{client->conn().fd(), events, 0});
                fd_conn.push_back(id);
            }
        }

        // While draining, wake periodically so the drain deadline
        // fires even with no socket activity; with idle reaping on,
        // wake often enough that a silent wedged client is reaped
        // near its deadline instead of whenever traffic happens.
        int timeout_ms =
            draining_
                ? 50
                : (session_.config().idle_timeout_ms > 0 ? 250 : -1);
        int rc = ::poll(fds.data(),
                        static_cast<nfds_t>(fds.size()),
                        timeout_ms);
        if (rc < 0 && errno != EINTR)
            break; // unrecoverable poll failure
        if (rc < 0)
            continue;

        if (fds[0].revents & POLLIN) {
            char buf[256];
            while (::read(wake_read_, buf, sizeof(buf)) > 0) {
            }
        }

        // ---- deliver finished work first ---------------------------
        deliverCompletions();

        // A worker just handled a shutdown request: stop accepting,
        // refuse new lines, and drain what is already owed.
        if (!draining_ && session_.shutdownRequested()) {
            draining_ = true;
            listener_.close();
            drain_deadline =
                std::chrono::steady_clock::now() +
                std::chrono::milliseconds(cfg_.drain_timeout_ms);
        }

        if (listener_idx >= 0 && !draining_ &&
            (fds[listener_idx].revents & POLLIN))
            acceptPending();

        // ---- read request lines ------------------------------------
        for (std::size_t i = 1; i < fds.size(); ++i) {
            if (fd_conn[i] == 0 ||
                !(fds[i].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            ClientSession *client = nullptr;
            {
                MutexLock lock(clients_mu_);
                auto it = clients_.find(fd_conn[i]);
                if (it != clients_.end())
                    client = it->second.get();
            }
            // Single-threaded loop: the pointer stays valid, only
            // this thread mutates clients_.
            if (client && !client->inputClosed())
                readFrom(*client);
        }

        scheduler_.pump();
        flushAndReap();

        if (draining_ && scheduler_.idle() && allFlushed()) {
            deliverCompletions(); // belt and braces: nothing races
            if (scheduler_.idle() && allFlushed())
                break;
        }
        // A drain blocked past its deadline (a live client that
        // never reads its responses): force the exit.  Whatever it
        // left unread was not going to be read.
        if (draining_ &&
            std::chrono::steady_clock::now() >= drain_deadline)
            break;
    }

    // Drained: every response owed was flushed; close what is left.
    {
        MutexLock lock(clients_mu_);
        closed_.fetch_add(clients_.size(),
                          std::memory_order_relaxed);
        clients_.clear();
    }
    listener_.close();
    return accepted_.load(std::memory_order_relaxed);
}

void
NetServer::appendStats(JsonValue &resp) const
{
    JsonValue conns = JsonValue::object();
    JsonValue list = JsonValue::array();
    {
        MutexLock lock(clients_mu_);
        conns.set("open",
                  JsonValue::number(double(clients_.size())));
        for (const auto &[id, client] : clients_) {
            JsonValue row = JsonValue::object();
            row.set("id", JsonValue::number(double(id)));
            row.set("received",
                    JsonValue::number(double(client->received())));
            row.set("completed",
                    JsonValue::number(double(client->completed())));
            row.set("rejected",
                    JsonValue::number(double(client->rejected())));
            row.set("pending",
                    JsonValue::number(
                        double(scheduler_.pendingFor(id))));
            list.push(std::move(row));
        }
    }
    conns.set("peak_open",
              JsonValue::number(
                  double(peak_open_.load(std::memory_order_relaxed))));
    conns.set("accepted",
              JsonValue::number(
                  double(accepted_.load(std::memory_order_relaxed))));
    conns.set("rejected_full",
              JsonValue::number(double(
                  rejected_full_.load(std::memory_order_relaxed))));
    conns.set("closed",
              JsonValue::number(
                  double(closed_.load(std::memory_order_relaxed))));
    conns.set("idle_reaped",
              JsonValue::number(double(
                  idle_reaped_.load(std::memory_order_relaxed))));
    conns.set("max_connections",
              JsonValue::number(
                  double(session_.config().max_connections)));
    conns.set("list", std::move(list));
    resp.set("connections", std::move(conns));

    RequestScheduler::Stats s = scheduler_.stats();
    JsonValue queue = JsonValue::object();
    queue.set("depth", JsonValue::number(double(s.depth)));
    queue.set("peak_depth",
              JsonValue::number(double(s.peak_depth)));
    queue.set("inflight", JsonValue::number(double(s.inflight)));
    queue.set("max_queue", JsonValue::number(double(s.max_queue)));
    queue.set("max_inflight",
              JsonValue::number(double(s.max_inflight)));
    queue.set("admitted", JsonValue::number(double(s.admitted)));
    queue.set("rejected", JsonValue::number(double(s.rejected)));
    queue.set("shed", JsonValue::number(double(s.shed)));
    queue.set("completed", JsonValue::number(double(s.completed)));
    queue.set("discarded", JsonValue::number(double(s.discarded)));
    queue.set("oldest_wait_ms",
              JsonValue::number(double(s.oldest_wait_ms)));
    resp.set("queue", std::move(queue));
}

std::string
NetServer::healthStatus() const
{
    RequestScheduler::Stats s = scheduler_.stats();
    const std::uint64_t shed_ms =
        session_.config().shed_queue_wait_ms;
    // Overloaded: rejects are happening (or imminent).  The depth
    // check fires even without a shed bound configured.
    if (s.max_queue > 0 && s.depth >= s.max_queue)
        return "overloaded";
    if (shed_ms > 0 && s.oldest_wait_ms >= shed_ms)
        return "overloaded";
    // Degraded: half-way to either bound -- back off now and the
    // rejects never start.
    if (s.max_queue > 0 && s.depth * 2 >= s.max_queue)
        return "degraded";
    if (shed_ms > 0 && s.oldest_wait_ms * 2 >= shed_ms)
        return "degraded";
    return "ok";
}

} // namespace ploop
