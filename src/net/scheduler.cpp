#include "net/scheduler.hpp"

#include <utility>

namespace ploop {

RequestScheduler::RequestScheduler(ThreadPool &pool, Handler handler,
                                   WakeFn wake, Config cfg)
    : pool_(pool), handler_(std::move(handler)),
      wake_(std::move(wake)), cfg_(cfg)
{}

unsigned
RequestScheduler::maxInflight() const
{
    return cfg_.max_inflight ? cfg_.max_inflight : pool_.size();
}

std::uint64_t
RequestScheduler::oldestWaitMsLocked(
    std::chrono::steady_clock::time_point now) const
{
    // Scan every connection's FRONT line: fronts are each FIFO's
    // oldest, so the global oldest is among them.  Bounded by the
    // connection cap (64 by default), not the queue depth.
    std::uint64_t oldest = 0;
    for (const auto &[id, c] : conns_) {
        if (c.pending.empty())
            continue;
        auto wait =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                now - c.pending.front().enqueued)
                .count();
        if (wait > 0 && std::uint64_t(wait) > oldest)
            oldest = std::uint64_t(wait);
    }
    return oldest;
}

RequestScheduler::Admit
RequestScheduler::submit(std::uint64_t conn, std::string line)
{
    auto now = std::chrono::steady_clock::now();
    MutexLock lock(mu_);
    if (depth_ >= cfg_.max_queue) {
        ++rejected_;
        return Admit::QueueFull;
    }
    if (cfg_.shed_queue_wait_ms > 0 &&
        oldestWaitMsLocked(now) > cfg_.shed_queue_wait_ms) {
        // Already-queued lines keep their place (they will still be
        // answered); only NEW work is turned away while the backlog
        // drains past the wait bound.
        ++shed_;
        return Admit::Shed;
    }
    Conn &c = conns_[conn];
    c.pending.push_back(PendingLine{std::move(line), now});
    ++depth_;
    ++admitted_;
    if (depth_ > peak_depth_)
        peak_depth_ = depth_;
    return Admit::Ok;
}

void
RequestScheduler::pump()
{
    // Decide under the lock, dispatch outside it: on a parallelism-1
    // pool submit() runs the task INLINE, and the completing handler
    // re-enters this mutex.
    struct Dispatch
    {
        std::uint64_t conn;
        std::string line;
        std::uint64_t queue_wait_ns;
    };
    auto now = std::chrono::steady_clock::now();
    std::vector<Dispatch> start;
    {
        MutexLock lock(mu_);
        while (inflight_ < maxInflight()) {
            // Round-robin: first eligible connection strictly after
            // the last-dispatched id, wrapping.
            auto it = conns_.upper_bound(rr_cursor_);
            auto eligible = conns_.end();
            for (std::size_t i = 0; i < conns_.size(); ++i) {
                if (it == conns_.end())
                    it = conns_.begin();
                if (!it->second.inflight && !it->second.dead &&
                    !it->second.pending.empty()) {
                    eligible = it;
                    break;
                }
                ++it;
            }
            if (eligible == conns_.end())
                break;
            rr_cursor_ = eligible->first;
            eligible->second.inflight = true;
            PendingLine &front = eligible->second.pending.front();
            auto waited = now - front.enqueued;
            std::uint64_t wait_ns =
                waited.count() > 0
                    ? std::uint64_t(
                          std::chrono::duration_cast<
                              std::chrono::nanoseconds>(waited)
                              .count())
                    : 0;
            start.push_back(Dispatch{eligible->first,
                                     std::move(front.line), wait_ns});
            eligible->second.pending.pop_front();
            --depth_;
            ++inflight_;
        }
    }
    for (Dispatch &d : start) {
        if (cfg_.queue_wait_hist)
            cfg_.queue_wait_hist->record(d.queue_wait_ns);
        std::uint64_t c = d.conn;
        std::uint64_t w = d.queue_wait_ns;
        pool_.submit([this, c, w, l = std::move(d.line)] {
            runOne(c, l, w);
        });
    }
}

void
RequestScheduler::runOne(std::uint64_t conn, const std::string &line,
                         std::uint64_t queue_wait_ns)
{
    auto t0 = std::chrono::steady_clock::now();
    std::string response = handler_(conn, line, queue_wait_ns);
    if (cfg_.run_hist)
        cfg_.run_hist->record(std::uint64_t(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()));
    {
        MutexLock lock(mu_);
        --inflight_;
        ++completed_;
        auto it = conns_.find(conn);
        if (it != conns_.end()) {
            it->second.inflight = false;
            if (it->second.dead) {
                // The client vanished while we computed: nobody can
                // receive this response.
                ++discarded_;
                conns_.erase(it);
            } else {
                done_.push_back(
                    Completed{conn, std::move(response)});
            }
        }
    }
    wake_();
}

void
RequestScheduler::dropConnection(std::uint64_t conn)
{
    MutexLock lock(mu_);
    auto it = conns_.find(conn);
    if (it == conns_.end())
        return;
    depth_ -= it->second.pending.size();
    it->second.pending.clear();
    if (it->second.inflight) {
        // The running handler finishes on the pool; runOne() will
        // discard its response and erase the entry.
        it->second.dead = true;
    } else {
        conns_.erase(it);
    }
}

std::vector<RequestScheduler::Completed>
RequestScheduler::drainCompleted()
{
    MutexLock lock(mu_);
    std::vector<Completed> out;
    out.swap(done_);
    return out;
}

bool
RequestScheduler::idle() const
{
    MutexLock lock(mu_);
    return depth_ == 0 && inflight_ == 0;
}

RequestScheduler::Stats
RequestScheduler::stats() const
{
    MutexLock lock(mu_);
    Stats out;
    out.depth = depth_;
    out.peak_depth = peak_depth_;
    out.inflight = inflight_;
    out.max_queue = cfg_.max_queue;
    out.max_inflight = maxInflight();
    out.admitted = admitted_;
    out.rejected = rejected_;
    out.shed = shed_;
    out.completed = completed_;
    out.discarded = discarded_;
    out.oldest_wait_ms =
        oldestWaitMsLocked(std::chrono::steady_clock::now());
    return out;
}

std::size_t
RequestScheduler::pendingFor(std::uint64_t conn) const
{
    MutexLock lock(mu_);
    auto it = conns_.find(conn);
    return it == conns_.end() ? 0 : it->second.pending.size();
}

bool
RequestScheduler::busy(std::uint64_t conn) const
{
    MutexLock lock(mu_);
    auto it = conns_.find(conn);
    if (it != conns_.end() &&
        (it->second.inflight || !it->second.pending.empty()))
        return true;
    // A finished-but-undelivered response counts as busy too, so a
    // half-closed connection cannot be reaped between a worker
    // pushing its response and the loop delivering it.
    for (const Completed &c : done_)
        if (c.conn == conn)
            return true;
    return false;
}

} // namespace ploop
