/**
 * @file
 * A Network is an ordered list of layers (a simple feed-forward chain,
 * which is how Timeloop-class tools see DNNs: each layer is evaluated
 * independently, with inter-layer tensors flowing through the memory
 * hierarchy).  Residual/skip edges only matter for the fusion model's
 * live-footprint computation and are recorded as the number of extra
 * live activations per layer.
 */

#ifndef PHOTONLOOP_WORKLOAD_NETWORK_HPP
#define PHOTONLOOP_WORKLOAD_NETWORK_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "workload/layer.hpp"

namespace ploop {

/** An ordered feed-forward DNN. */
class Network
{
  public:
    /** @param name Network name (e.g. "ResNet18"). */
    explicit Network(std::string name);

    /** Network name. */
    const std::string &name() const { return name_; }

    /** Append a layer. Names must be unique. */
    void addLayer(LayerShape layer);

    /**
     * Mark the last-added layer as feeding a residual connection whose
     * value stays live until @p consumer_layers_later layers later.
     * Used by the fusion model to size the on-chip buffer.
     */
    void markResidualSource(unsigned consumer_layers_later);

    /** Number of layers. */
    std::size_t size() const { return layers_.size(); }

    /** Layer by position. */
    const LayerShape &layer(std::size_t i) const;

    /** All layers. */
    const std::vector<LayerShape> &layers() const { return layers_; }

    /** Layer by name; fatal() if absent. */
    const LayerShape &layerByName(const std::string &name) const;

    /**
     * Residual liveness: extra words of activations (beyond the
     * producing/consuming pair) live while evaluating layer @p i.
     */
    std::uint64_t residualLiveWords(std::size_t i) const;

    /** Total MACs over all layers. */
    std::uint64_t totalMacs() const;

    /** Total weight words over all layers. */
    std::uint64_t totalWeightWords() const;

    /**
     * Sum over layers of the given tensor's word count (inputs and
     * outputs count per-layer, so inter-layer tensors count twice:
     * once as an output and once as the next layer's input).
     */
    std::uint64_t totalTensorWords(Tensor t) const;

    /** The same network with every layer's batch set to @p n. */
    Network withBatch(std::uint64_t n) const;

    /** Multi-line summary table of all layers. */
    std::string str() const;

  private:
    std::string name_;
    std::vector<LayerShape> layers_;
    // For layer i: list of (source_layer, last_consumer_layer) spans
    // of residual values, stored sparsely.
    std::vector<std::pair<std::size_t, std::size_t>> residual_spans_;
};

} // namespace ploop

#endif // PHOTONLOOP_WORKLOAD_NETWORK_HPP
