#include "workload/layer.hpp"

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace ploop {

const char *
layerKindName(LayerKind kind)
{
    switch (kind) {
      case LayerKind::Conv: return "Conv";
      case LayerKind::FullyConnected: return "FullyConnected";
    }
    panic("layerKindName: bad kind");
}

LayerShape
LayerShape::conv(std::string name, std::uint64_t n, std::uint64_t k,
                 std::uint64_t c, std::uint64_t p, std::uint64_t q,
                 std::uint64_t r, std::uint64_t s, std::uint64_t hstride,
                 std::uint64_t wstride)
{
    LayerShape l;
    l.name_ = std::move(name);
    l.kind_ = LayerKind::Conv;
    l.bounds_[dimIndex(Dim::N)] = n;
    l.bounds_[dimIndex(Dim::K)] = k;
    l.bounds_[dimIndex(Dim::C)] = c;
    l.bounds_[dimIndex(Dim::P)] = p;
    l.bounds_[dimIndex(Dim::Q)] = q;
    l.bounds_[dimIndex(Dim::R)] = r;
    l.bounds_[dimIndex(Dim::S)] = s;
    l.hstride_ = hstride;
    l.wstride_ = wstride;
    l.validate();
    return l;
}

LayerShape
LayerShape::fullyConnected(std::string name, std::uint64_t n,
                           std::uint64_t k, std::uint64_t c)
{
    LayerShape l = conv(std::move(name), n, k, c, 1, 1, 1, 1, 1, 1);
    l.kind_ = LayerKind::FullyConnected;
    return l;
}

void
LayerShape::setWordBits(Tensor t, unsigned bits)
{
    fatalIf(bits == 0 || bits > 64,
            "word bits must be in [1, 64], got " + std::to_string(bits));
    word_bits_[tensorIndex(t)] = bits;
}

std::uint64_t
LayerShape::macs() const
{
    std::uint64_t m = 1;
    for (Dim d : kAllDims)
        m *= bound(d);
    return m;
}

std::uint64_t
LayerShape::inputHeight() const
{
    return (bound(Dim::P) - 1) * hstride_ + bound(Dim::R);
}

std::uint64_t
LayerShape::inputWidth() const
{
    return (bound(Dim::Q) - 1) * wstride_ + bound(Dim::S);
}

std::uint64_t
LayerShape::tensorWords(Tensor t) const
{
    switch (t) {
      case Tensor::Weights:
        return bound(Dim::K) * bound(Dim::C) * bound(Dim::R) *
               bound(Dim::S);
      case Tensor::Inputs:
        return bound(Dim::N) * bound(Dim::C) * inputHeight() *
               inputWidth();
      case Tensor::Outputs:
        return bound(Dim::N) * bound(Dim::K) * bound(Dim::P) *
               bound(Dim::Q);
    }
    panic("tensorWords: bad tensor");
}

std::uint64_t
LayerShape::tensorBytes(Tensor t) const
{
    return (tensorWords(t) * wordBits(t) + 7) / 8;
}

LayerShape
LayerShape::withBatch(std::uint64_t n) const
{
    fatalIf(n == 0, "batch size must be >= 1");
    LayerShape l = *this;
    l.bounds_[dimIndex(Dim::N)] = n;
    return l;
}

std::string
LayerShape::str() const
{
    return strFormat(
        "%s [%s] N=%llu K=%llu C=%llu PQ=%llux%llu RS=%llux%llu "
        "stride=%llux%llu",
        name_.c_str(), layerKindName(kind_),
        static_cast<unsigned long long>(bound(Dim::N)),
        static_cast<unsigned long long>(bound(Dim::K)),
        static_cast<unsigned long long>(bound(Dim::C)),
        static_cast<unsigned long long>(bound(Dim::P)),
        static_cast<unsigned long long>(bound(Dim::Q)),
        static_cast<unsigned long long>(bound(Dim::R)),
        static_cast<unsigned long long>(bound(Dim::S)),
        static_cast<unsigned long long>(hstride_),
        static_cast<unsigned long long>(wstride_));
}

void
LayerShape::validate() const
{
    fatalIf(name_.empty(), "layer must have a name");
    for (Dim d : kAllDims) {
        fatalIf(bound(d) == 0,
                "layer '" + name_ + "': bound " + dimName(d) +
                    " must be >= 1");
    }
    fatalIf(hstride_ == 0 || wstride_ == 0,
            "layer '" + name_ + "': strides must be >= 1");
    if (kind_ == LayerKind::FullyConnected) {
        fatalIf(bound(Dim::P) != 1 || bound(Dim::Q) != 1 ||
                    bound(Dim::R) != 1 || bound(Dim::S) != 1,
                "layer '" + name_ +
                    "': fully-connected layers need P=Q=R=S=1");
    }
}

} // namespace ploop
