/**
 * @file
 * DNN layer shapes: loop bounds, strides, kind, datawidths, and the
 * derived quantities the modeling engine needs (MAC count, tensor
 * sizes including input halos).
 */

#ifndef PHOTONLOOP_WORKLOAD_LAYER_HPP
#define PHOTONLOOP_WORKLOAD_LAYER_HPP

#include <array>
#include <cstdint>
#include <string>

#include "workload/dims.hpp"

namespace ploop {

/** Coarse layer categories used for reporting and utilization rules. */
enum class LayerKind : std::uint8_t {
    Conv,           ///< Standard convolution.
    FullyConnected, ///< P=Q=R=S=1 matrix-vector layer.
};

/** Human-readable kind name. */
const char *layerKindName(LayerKind kind);

/**
 * Shape of one DNN layer: the seven loop bounds plus convolution
 * strides and per-tensor data widths.
 *
 * Bounds are the *workload* bounds (e.g. K=64 filters); the mapping
 * decides how they tile onto hardware.  All bounds must be >= 1.
 */
class LayerShape
{
  public:
    /**
     * Construct a convolution layer.
     *
     * @param name Layer name (unique within a network).
     * @param n Batch size.
     * @param k Output channels.
     * @param c Input channels.
     * @param p Output feature-map rows.
     * @param q Output feature-map columns.
     * @param r Filter rows.
     * @param s Filter columns.
     * @param hstride Vertical stride (along P).
     * @param wstride Horizontal stride (along Q).
     */
    static LayerShape conv(std::string name, std::uint64_t n,
                           std::uint64_t k, std::uint64_t c,
                           std::uint64_t p, std::uint64_t q,
                           std::uint64_t r, std::uint64_t s,
                           std::uint64_t hstride = 1,
                           std::uint64_t wstride = 1);

    /**
     * Construct a fully-connected layer (P=Q=R=S=1).
     *
     * @param name Layer name.
     * @param n Batch size.
     * @param k Output features.
     * @param c Input features.
     */
    static LayerShape fullyConnected(std::string name, std::uint64_t n,
                                     std::uint64_t k, std::uint64_t c);

    /** Layer name. */
    const std::string &name() const { return name_; }

    /** Layer kind. */
    LayerKind kind() const { return kind_; }

    /** Loop bound of dimension @p d. */
    std::uint64_t bound(Dim d) const { return bounds_[dimIndex(d)]; }

    /** Vertical (P-direction) stride. */
    std::uint64_t hstride() const { return hstride_; }

    /** Horizontal (Q-direction) stride. */
    std::uint64_t wstride() const { return wstride_; }

    /** Bits per word of tensor @p t (default 8). */
    unsigned wordBits(Tensor t) const
    {
        return word_bits_[tensorIndex(t)];
    }

    /** Set bits per word of tensor @p t. */
    void setWordBits(Tensor t, unsigned bits);

    /** Total multiply-accumulates: N*K*C*P*Q*R*S. */
    std::uint64_t macs() const;

    /** Input feature-map height: (P-1)*hstride + R. */
    std::uint64_t inputHeight() const;

    /** Input feature-map width: (Q-1)*wstride + S. */
    std::uint64_t inputWidth() const;

    /**
     * Number of words in tensor @p t.  Inputs use the halo'd
     * H x W footprint, not P*Q*R*S.
     */
    std::uint64_t tensorWords(Tensor t) const;

    /** Bytes of tensor @p t (bits rounded up to whole bytes). */
    std::uint64_t tensorBytes(Tensor t) const;

    /** True if the layer has spatial stride > 1 in either direction. */
    bool isStrided() const { return hstride_ > 1 || wstride_ > 1; }

    /**
     * The same layer with a different batch size (used by the
     * full-system batching experiments).
     */
    LayerShape withBatch(std::uint64_t n) const;

    /** One-line summary, e.g. "conv3 K=384 C=256 PQ=13x13 RS=3x3". */
    std::string str() const;

    /** Validate invariants; fatal() on violation. */
    void validate() const;

  private:
    LayerShape() = default;

    std::string name_;
    LayerKind kind_ = LayerKind::Conv;
    std::array<std::uint64_t, kNumDims> bounds_{};
    std::uint64_t hstride_ = 1;
    std::uint64_t wstride_ = 1;
    std::array<unsigned, kNumTensors> word_bits_{8, 8, 8};
};

} // namespace ploop

#endif // PHOTONLOOP_WORKLOAD_LAYER_HPP
