/**
 * @file
 * The seven canonical DNN-layer loop dimensions used by Timeloop-style
 * modeling, plus the three tensors (dataspaces) of a layer and their
 * dimension projections.
 *
 * A convolutional layer is the loop nest
 *
 *   for n in N:  for k in K:  for c in C:
 *     for p in P:  for q in Q:  for r in R:  for s in S:
 *       O[n,k,p,q] += W[k,c,r,s] * I[n,c,p*Hs+r,q*Ws+s]
 *
 * Fully-connected layers are the special case P=Q=R=S=1.
 */

#ifndef PHOTONLOOP_WORKLOAD_DIMS_HPP
#define PHOTONLOOP_WORKLOAD_DIMS_HPP

#include <array>
#include <cstdint>
#include <string>

namespace ploop {

/** Loop dimensions of a DNN layer. */
enum class Dim : std::uint8_t {
    N = 0, ///< Batch.
    K = 1, ///< Output channels (filters).
    C = 2, ///< Input channels.
    P = 3, ///< Output rows.
    Q = 4, ///< Output columns.
    R = 5, ///< Filter rows.
    S = 6, ///< Filter columns.
};

/** Number of loop dimensions. */
constexpr unsigned kNumDims = 7;

/** All dims in canonical order. */
constexpr std::array<Dim, kNumDims> kAllDims = {
    Dim::N, Dim::K, Dim::C, Dim::P, Dim::Q, Dim::R, Dim::S,
};

/** Index of a dim into per-dim arrays. */
constexpr unsigned dimIndex(Dim d) { return static_cast<unsigned>(d); }

/** One-letter name of a dim ("N", "K", ...). */
const char *dimName(Dim d);

/** Parse a one-letter dim name; fatal() on unknown names. */
Dim dimFromName(const std::string &name);

/** The three tensors (dataspaces) of a layer. */
enum class Tensor : std::uint8_t {
    Weights = 0,
    Inputs = 1,
    Outputs = 2,
};

/** Number of tensors. */
constexpr unsigned kNumTensors = 3;

/** All tensors in canonical order. */
constexpr std::array<Tensor, kNumTensors> kAllTensors = {
    Tensor::Weights, Tensor::Inputs, Tensor::Outputs,
};

/** Index of a tensor into per-tensor arrays. */
constexpr unsigned tensorIndex(Tensor t)
{
    return static_cast<unsigned>(t);
}

/** Human-readable tensor name. */
const char *tensorName(Tensor t);

/** A set of dims, stored as a bitmask. */
class DimSet
{
  public:
    constexpr DimSet() = default;

    constexpr DimSet(std::initializer_list<Dim> dims)
    {
        for (Dim d : dims)
            mask_ |= bit(d);
    }

    constexpr bool contains(Dim d) const { return mask_ & bit(d); }
    constexpr void insert(Dim d) { mask_ |= bit(d); }
    constexpr void erase(Dim d) { mask_ &= ~bit(d); }
    constexpr bool empty() const { return mask_ == 0; }
    constexpr bool operator==(const DimSet &o) const
    {
        return mask_ == o.mask_;
    }
    constexpr bool operator!=(const DimSet &o) const
    {
        return mask_ != o.mask_;
    }

    /** Union. */
    constexpr DimSet operator|(const DimSet &o) const
    {
        DimSet s;
        s.mask_ = mask_ | o.mask_;
        return s;
    }

    /** Intersection. */
    constexpr DimSet operator&(const DimSet &o) const
    {
        DimSet s;
        s.mask_ = mask_ & o.mask_;
        return s;
    }

    /** Number of dims in the set. */
    unsigned count() const;

    /** Render e.g. "{K,C,R,S}". */
    std::string str() const;

  private:
    static constexpr std::uint8_t bit(Dim d)
    {
        return static_cast<std::uint8_t>(1u << dimIndex(d));
    }

    std::uint8_t mask_ = 0;
};

/**
 * Dims whose loop index appears in tensor @p t's subscript, i.e. dims
 * for which a changed index means different data.  Inputs project
 * through the sliding window, so P,Q,R,S are all relevant to Inputs.
 */
DimSet tensorDims(Tensor t);

/**
 * Dims that tensor @p t does NOT depend on.  Iterating such a loop
 * with the tensor resident in a buffer reuses the same tile
 * (temporal reuse); spatial fanout over such a dim multicasts
 * (weights/inputs) or reduces (outputs).
 */
DimSet irrelevantDims(Tensor t);

/** Reduction dims of the layer (summed into outputs): C, R, S. */
DimSet reductionDims();

} // namespace ploop

#endif // PHOTONLOOP_WORKLOAD_DIMS_HPP
