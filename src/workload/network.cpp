#include "workload/network.hpp"

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace ploop {

Network::Network(std::string name)
    : name_(std::move(name))
{
    fatalIf(name_.empty(), "network must have a name");
}

void
Network::addLayer(LayerShape layer)
{
    layer.validate();
    for (const auto &l : layers_) {
        fatalIf(l.name() == layer.name(),
                "duplicate layer name '" + layer.name() + "' in network '" +
                    name_ + "'");
    }
    layers_.push_back(std::move(layer));
}

void
Network::markResidualSource(unsigned consumer_layers_later)
{
    fatalIf(layers_.empty(), "markResidualSource before any layer");
    fatalIf(consumer_layers_later == 0,
            "residual consumer must be a later layer");
    std::size_t src = layers_.size() - 1;
    residual_spans_.emplace_back(src, src + consumer_layers_later);
}

const LayerShape &
Network::layer(std::size_t i) const
{
    fatalIf(i >= layers_.size(),
            "layer index " + std::to_string(i) + " out of range in '" +
                name_ + "'");
    return layers_[i];
}

const LayerShape &
Network::layerByName(const std::string &name) const
{
    for (const auto &l : layers_) {
        if (l.name() == name)
            return l;
    }
    fatal("no layer named '" + name + "' in network '" + name_ + "'");
}

std::uint64_t
Network::residualLiveWords(std::size_t i) const
{
    std::uint64_t words = 0;
    for (const auto &[src, last] : residual_spans_) {
        // The residual value is the *output* of layer src; it is live
        // through evaluation of layers (src, last].
        if (i > src && i <= last)
            words += layers_[src].tensorWords(Tensor::Outputs);
    }
    return words;
}

std::uint64_t
Network::totalMacs() const
{
    std::uint64_t m = 0;
    for (const auto &l : layers_)
        m += l.macs();
    return m;
}

std::uint64_t
Network::totalWeightWords() const
{
    std::uint64_t w = 0;
    for (const auto &l : layers_)
        w += l.tensorWords(Tensor::Weights);
    return w;
}

std::uint64_t
Network::totalTensorWords(Tensor t) const
{
    std::uint64_t w = 0;
    for (const auto &l : layers_)
        w += l.tensorWords(t);
    return w;
}

Network
Network::withBatch(std::uint64_t n) const
{
    Network out(name_);
    for (const auto &l : layers_)
        out.addLayer(l.withBatch(n));
    out.residual_spans_ = residual_spans_;
    return out;
}

std::string
Network::str() const
{
    std::string out = name_ + " (" + std::to_string(layers_.size()) +
                      " layers, " + formatCount(double(totalMacs())) +
                      " MACs)\n";
    for (const auto &l : layers_)
        out += "  " + l.str() + "\n";
    return out;
}

} // namespace ploop
