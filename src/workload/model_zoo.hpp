/**
 * @file
 * The three DNN workloads the paper evaluates: AlexNet and VGG16
 * (throughput, Fig. 3) and ResNet18 (full-system and reuse
 * explorations, Figs. 4-5).  Layer tables follow the original
 * publications; all shapes assume 224x224 (227x227 for AlexNet conv1
 * arithmetic, folded into the output size) ImageNet inputs.
 */

#ifndef PHOTONLOOP_WORKLOAD_MODEL_ZOO_HPP
#define PHOTONLOOP_WORKLOAD_MODEL_ZOO_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "workload/network.hpp"

namespace ploop {

/**
 * AlexNet (Krizhevsky et al., 2012), single-tower variant:
 * 5 conv layers (conv1 is 11x11 stride 4) + 3 FC layers.
 */
Network makeAlexNet(std::uint64_t batch = 1);

/**
 * VGG16 (Simonyan & Zisserman, 2015): 13 unstrided 3x3 conv layers +
 * 3 FC layers.
 */
Network makeVgg16(std::uint64_t batch = 1);

/**
 * ResNet18 (He et al., 2016): 7x7/2 stem, four 2-block stages of 3x3
 * convs with 1x1/2 downsample shortcuts, final FC.  Residual edges are
 * annotated for the fusion model.
 */
Network makeResNet18(std::uint64_t batch = 1);

/**
 * ResNet34 (He et al., 2016): the deeper basic-block variant
 * (3/4/6/3 blocks per stage).
 */
Network makeResNet34(std::uint64_t batch = 1);

/** Names accepted by makeNetwork(). */
std::vector<std::string> modelZooNames();

/** Build a zoo network by (case-insensitive) name; fatal() if unknown. */
Network makeNetwork(const std::string &name, std::uint64_t batch = 1);

} // namespace ploop

#endif // PHOTONLOOP_WORKLOAD_MODEL_ZOO_HPP
