#include "workload/dims.hpp"

#include <vector>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace ploop {

const char *
dimName(Dim d)
{
    switch (d) {
      case Dim::N: return "N";
      case Dim::K: return "K";
      case Dim::C: return "C";
      case Dim::P: return "P";
      case Dim::Q: return "Q";
      case Dim::R: return "R";
      case Dim::S: return "S";
    }
    panic("dimName: bad dim");
}

Dim
dimFromName(const std::string &name)
{
    for (Dim d : kAllDims) {
        if (name == dimName(d))
            return d;
    }
    fatal("unknown dim name: '" + name + "'");
}

const char *
tensorName(Tensor t)
{
    switch (t) {
      case Tensor::Weights: return "Weights";
      case Tensor::Inputs: return "Inputs";
      case Tensor::Outputs: return "Outputs";
    }
    panic("tensorName: bad tensor");
}

unsigned
DimSet::count() const
{
    unsigned n = 0;
    for (Dim d : kAllDims) {
        if (contains(d))
            ++n;
    }
    return n;
}

std::string
DimSet::str() const
{
    std::vector<std::string> names;
    for (Dim d : kAllDims) {
        if (contains(d))
            names.emplace_back(dimName(d));
    }
    return "{" + join(names, ",") + "}";
}

DimSet
tensorDims(Tensor t)
{
    switch (t) {
      case Tensor::Weights:
        return DimSet{Dim::K, Dim::C, Dim::R, Dim::S};
      case Tensor::Inputs:
        // P,R and Q,S both index the input through the sliding
        // window, so all of them are data-relevant.
        return DimSet{Dim::N, Dim::C, Dim::P, Dim::Q, Dim::R, Dim::S};
      case Tensor::Outputs:
        return DimSet{Dim::N, Dim::K, Dim::P, Dim::Q};
    }
    panic("tensorDims: bad tensor");
}

DimSet
irrelevantDims(Tensor t)
{
    DimSet rel = tensorDims(t);
    DimSet out;
    for (Dim d : kAllDims) {
        if (!rel.contains(d))
            out.insert(d);
    }
    return out;
}

DimSet
reductionDims()
{
    return DimSet{Dim::C, Dim::R, Dim::S};
}

} // namespace ploop
