#include "workload/model_zoo.hpp"

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace ploop {

Network
makeAlexNet(std::uint64_t batch)
{
    Network net("AlexNet");
    const std::uint64_t n = batch;
    // conv1: 227x227x3 -> 55x55x96, 11x11 stride 4.
    net.addLayer(LayerShape::conv("conv1", n, 96, 3, 55, 55, 11, 11,
                                  4, 4));
    // pool -> 27x27. conv2: 5x5 pad 2, 96 -> 256.
    net.addLayer(LayerShape::conv("conv2", n, 256, 96, 27, 27, 5, 5));
    // pool -> 13x13. conv3..5: 3x3 pad 1.
    net.addLayer(LayerShape::conv("conv3", n, 384, 256, 13, 13, 3, 3));
    net.addLayer(LayerShape::conv("conv4", n, 384, 384, 13, 13, 3, 3));
    net.addLayer(LayerShape::conv("conv5", n, 256, 384, 13, 13, 3, 3));
    // pool -> 6x6x256 = 9216. fc6..8.
    net.addLayer(LayerShape::fullyConnected("fc6", n, 4096, 9216));
    net.addLayer(LayerShape::fullyConnected("fc7", n, 4096, 4096));
    net.addLayer(LayerShape::fullyConnected("fc8", n, 1000, 4096));
    return net;
}

Network
makeVgg16(std::uint64_t batch)
{
    Network net("VGG16");
    const std::uint64_t n = batch;
    struct ConvCfg
    {
        const char *name;
        std::uint64_t k, c, pq;
    };
    static const ConvCfg cfgs[] = {
        {"conv1_1", 64, 3, 224},   {"conv1_2", 64, 64, 224},
        {"conv2_1", 128, 64, 112}, {"conv2_2", 128, 128, 112},
        {"conv3_1", 256, 128, 56}, {"conv3_2", 256, 256, 56},
        {"conv3_3", 256, 256, 56}, {"conv4_1", 512, 256, 28},
        {"conv4_2", 512, 512, 28}, {"conv4_3", 512, 512, 28},
        {"conv5_1", 512, 512, 14}, {"conv5_2", 512, 512, 14},
        {"conv5_3", 512, 512, 14},
    };
    for (const auto &cfg : cfgs) {
        net.addLayer(LayerShape::conv(cfg.name, n, cfg.k, cfg.c, cfg.pq,
                                      cfg.pq, 3, 3));
    }
    // pool -> 7x7x512 = 25088.
    net.addLayer(LayerShape::fullyConnected("fc1", n, 4096, 25088));
    net.addLayer(LayerShape::fullyConnected("fc2", n, 4096, 4096));
    net.addLayer(LayerShape::fullyConnected("fc3", n, 1000, 4096));
    return net;
}

namespace {

/**
 * Append one ResNet basic block: two 3x3 convs, plus an optional
 * 1x1/2 downsample conv on the shortcut when the block changes
 * resolution/width.  Residual spans are annotated so the fusion model
 * can account for the skip value staying live across the block.
 */
void
addBasicBlock(Network &net, const std::string &prefix, std::uint64_t n,
              std::uint64_t c_in, std::uint64_t c_out, std::uint64_t pq,
              bool downsample)
{
    std::uint64_t stride = downsample ? 2 : 1;
    net.addLayer(LayerShape::conv(prefix + ".conv1", n, c_out, c_in, pq,
                                  pq, 3, 3, stride, stride));
    // The block input is consumed again by the residual add after
    // conv2 (2 layers later from conv1's producer, i.e. the previous
    // layer); approximate by marking conv1 as holding a residual for
    // the next layer.
    net.markResidualSource(1);
    net.addLayer(LayerShape::conv(prefix + ".conv2", n, c_out, c_out,
                                  pq, pq, 3, 3));
    if (downsample) {
        net.addLayer(LayerShape::conv(prefix + ".downsample", n, c_out,
                                      c_in, pq, pq, 1, 1, 2, 2));
    }
}

} // namespace

Network
makeResNet18(std::uint64_t batch)
{
    Network net("ResNet18");
    const std::uint64_t n = batch;
    // Stem: 7x7/2, 3 -> 64, 224 -> 112; then 3x3/2 maxpool -> 56.
    net.addLayer(LayerShape::conv("conv1", n, 64, 3, 112, 112, 7, 7,
                                  2, 2));
    // Stage 1: two blocks at 56x56, 64 channels.
    addBasicBlock(net, "layer1.0", n, 64, 64, 56, false);
    addBasicBlock(net, "layer1.1", n, 64, 64, 56, false);
    // Stage 2: 28x28, 128 channels, first block downsamples.
    addBasicBlock(net, "layer2.0", n, 64, 128, 28, true);
    addBasicBlock(net, "layer2.1", n, 128, 128, 28, false);
    // Stage 3: 14x14, 256 channels.
    addBasicBlock(net, "layer3.0", n, 128, 256, 14, true);
    addBasicBlock(net, "layer3.1", n, 256, 256, 14, false);
    // Stage 4: 7x7, 512 channels.
    addBasicBlock(net, "layer4.0", n, 256, 512, 7, true);
    addBasicBlock(net, "layer4.1", n, 512, 512, 7, false);
    // Global average pool -> 512; classifier.
    net.addLayer(LayerShape::fullyConnected("fc", n, 1000, 512));
    return net;
}

Network
makeResNet34(std::uint64_t batch)
{
    Network net("ResNet34");
    const std::uint64_t n = batch;
    net.addLayer(LayerShape::conv("conv1", n, 64, 3, 112, 112, 7, 7,
                                  2, 2));
    struct Stage
    {
        const char *prefix;
        std::uint64_t c_in, c_out, pq;
        unsigned blocks;
    };
    static const Stage stages[] = {
        {"layer1", 64, 64, 56, 3},
        {"layer2", 64, 128, 28, 4},
        {"layer3", 128, 256, 14, 6},
        {"layer4", 256, 512, 7, 3},
    };
    for (const Stage &st : stages) {
        for (unsigned b = 0; b < st.blocks; ++b) {
            bool down = (b == 0 && st.c_in != st.c_out);
            std::string prefix =
                std::string(st.prefix) + "." + std::to_string(b);
            addBasicBlock(net, prefix, n,
                          b == 0 ? st.c_in : st.c_out, st.c_out,
                          st.pq, down);
        }
    }
    net.addLayer(LayerShape::fullyConnected("fc", n, 1000, 512));
    return net;
}

std::vector<std::string>
modelZooNames()
{
    return {"alexnet", "vgg16", "resnet18", "resnet34"};
}

Network
makeNetwork(const std::string &name, std::uint64_t batch)
{
    std::string lower = toLower(name);
    if (lower == "alexnet")
        return makeAlexNet(batch);
    if (lower == "vgg16")
        return makeVgg16(batch);
    if (lower == "resnet18")
        return makeResNet18(batch);
    if (lower == "resnet34")
        return makeResNet34(batch);
    fatal("unknown model-zoo network '" + name + "'");
}

} // namespace ploop
