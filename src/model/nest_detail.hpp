/**
 * @file
 * Shared internals of the nest analysis: the per-level factor
 * products both the access-count model (access_counts.cpp) and the
 * converter-count model (converter_counts.cpp) are defined over.
 * One definition keeps the two models from silently diverging.
 */

#ifndef PHOTONLOOP_MODEL_NEST_DETAIL_HPP
#define PHOTONLOOP_MODEL_NEST_DETAIL_HPP

#include <cstddef>

#include "mapping/mapping.hpp"
#include "model/tile_analysis.hpp"
#include "workload/dims.hpp"

namespace ploop::detail {

/** Product of spatial factors of dims NOT in @p rel at level @p l. */
inline double
irrelevantSpatial(const Mapping &mapping, std::size_t l, DimSet rel)
{
    double p = 1;
    for (Dim d : kAllDims) {
        if (!rel.contains(d))
            p *= static_cast<double>(mapping.level(l).s(d));
    }
    return p;
}

/**
 * fills_total(l, t): words newly loaded into all instances of keeper
 * level l: tile(l,t) times the product of relevant temporal AND
 * spatial factors at all levels above l.  @p rel must be
 * tensorDims(t), hoisted by the caller.
 */
inline double
fillsTotal(const Mapping &mapping, const TileAnalysis &tiles,
           std::size_t l, Tensor t, DimSet rel)
{
    double fills = static_cast<double>(tiles.tileWords(l, t));
    for (std::size_t m = l + 1; m < mapping.numLevels(); ++m) {
        for (Dim d : kAllDims) {
            if (rel.contains(d)) {
                fills *= static_cast<double>(mapping.level(m).t(d)) *
                         static_cast<double>(mapping.level(m).s(d));
            }
        }
    }
    return fills;
}

} // namespace ploop::detail

#endif // PHOTONLOOP_MODEL_NEST_DETAIL_HPP
