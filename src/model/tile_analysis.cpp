#include "model/tile_analysis.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace ploop {

TileAnalysis::TileAnalysis(const ArchSpec &arch, const LayerShape &layer,
                           const Mapping &mapping)
{
    analyze(arch, layer, mapping);
}

void
TileAnalysis::analyze(const ArchSpec &arch, const LayerShape &layer,
                      const Mapping &mapping)
{
    // Hot path (one analysis per candidate evaluation): only build
    // the message when the check actually fails.
    if (mapping.numLevels() != arch.numLevels()) {
        fatal("mapping has " + std::to_string(mapping.numLevels()) +
              " levels but arch has " +
              std::to_string(arch.numLevels()));
    }
    arch_ = &arch;
    layer_ = &layer;
    delta_pending_ = false;

    const std::size_t nlevels = arch.numLevels();
    ext_.resize(nlevels);
    tiles_.resize(nlevels);

    for (std::size_t l = 0; l < nlevels; ++l) {
        for (Dim d : kAllDims) {
            std::uint64_t e = mapping.extent(l, d);
            ext_[l][dimIndex(d)] = std::min(e, layer.bound(d));
        }
    }

    for (std::size_t l = 0; l < nlevels; ++l)
        recomputeTiles(l);
}

void
TileAnalysis::recomputeTiles(std::size_t l)
{
    const LayerShape &layer = *layer_;
    auto e = [&](Dim d) { return ext_[l][dimIndex(d)]; };
    // Weights: K*C*R*S.
    tiles_[l][tensorIndex(Tensor::Weights)] =
        e(Dim::K) * e(Dim::C) * e(Dim::R) * e(Dim::S);
    // Inputs: N*C*h*w through the sliding window, clipped to the
    // full input footprint.
    std::uint64_t h = (e(Dim::P) - 1) * layer.hstride() + e(Dim::R);
    std::uint64_t w = (e(Dim::Q) - 1) * layer.wstride() + e(Dim::S);
    h = std::min(h, layer.inputHeight());
    w = std::min(w, layer.inputWidth());
    tiles_[l][tensorIndex(Tensor::Inputs)] =
        e(Dim::N) * e(Dim::C) * h * w;
    // Outputs: N*K*P*Q.
    tiles_[l][tensorIndex(Tensor::Outputs)] =
        e(Dim::N) * e(Dim::K) * e(Dim::P) * e(Dim::Q);
}

void
TileAnalysis::applyDelta(const Mapping &mapping, Dim d)
{
    fatalIf(!arch_, "applyDelta before analyze");
    fatalIf(delta_pending_, "applyDelta with a delta pending");
    fatalIf(mapping.numLevels() != ext_.size(),
            "applyDelta level count mismatch");

    const std::size_t nlevels = ext_.size();
    const std::size_t di = dimIndex(d);
    saved_ext_.resize(nlevels);
    saved_tiles_.resize(nlevels);
    for (std::size_t l = 0; l < nlevels; ++l) {
        saved_ext_[l] = ext_[l][di];
        saved_tiles_[l] = tiles_[l];
    }
    delta_dim_ = d;
    delta_pending_ = true;

    // Cumulative product over levels 0..l, the same order
    // Mapping::extent() multiplies in, clipped to the layer bound.
    // Levels whose clipped extent is unchanged (inner levels below
    // the move, or anything already clipped at the bound) keep their
    // tile rows as-is: tiles_[l] depends only on ext_[l].
    const std::uint64_t bound = layer_->bound(d);
    std::uint64_t cum = 1;
    for (std::size_t l = 0; l < nlevels; ++l) {
        cum *= mapping.level(l).t(d) * mapping.level(l).s(d);
        std::uint64_t clipped = std::min(cum, bound);
        if (clipped != ext_[l][di]) {
            ext_[l][di] = clipped;
            recomputeTiles(l);
        }
    }
}

void
TileAnalysis::revert()
{
    fatalIf(!delta_pending_, "revert without a pending delta");
    const std::size_t di = dimIndex(delta_dim_);
    for (std::size_t l = 0; l < ext_.size(); ++l) {
        ext_[l][di] = saved_ext_[l];
        tiles_[l] = saved_tiles_[l];
    }
    delta_pending_ = false;
}

std::uint64_t
TileAnalysis::extent(std::size_t l, Dim d) const
{
    fatalIf(l >= ext_.size(), "tile analysis level out of range");
    return ext_[l][dimIndex(d)];
}

std::uint64_t
TileAnalysis::tileWords(std::size_t l, Tensor t) const
{
    fatalIf(l >= tiles_.size(), "tile analysis level out of range");
    return tiles_[l][tensorIndex(t)];
}

std::uint64_t
TileAnalysis::keptWords(std::size_t l) const
{
    fatalIf(!arch_, "tile analysis used before analyze()");
    const StorageLevelSpec &spec = arch_->level(l);
    std::uint64_t words = 0;
    for (Tensor t : kAllTensors) {
        if (spec.keepsTensor(t))
            words += tileWords(l, t);
    }
    return words;
}

bool
TileAnalysis::fitsCapacities(std::string *why) const
{
    fatalIf(!arch_, "tile analysis used before analyze()");
    // The outermost level is the data source (DRAM, or chip I/O in
    // accelerator-only configurations): its "tile" is the whole
    // workload footprint by construction, so it is exempt from the
    // capacity check.
    for (std::size_t l = 0; l + 1 < arch_->numLevels(); ++l) {
        const StorageLevelSpec &spec = arch_->level(l);
        if (spec.capacity_words == 0)
            continue;
        std::uint64_t need = keptWords(l);
        if (need > spec.capacity_words) {
            if (why) {
                *why = strFormat(
                    "level '%s' needs %llu words but holds %llu",
                    spec.name.c_str(),
                    static_cast<unsigned long long>(need),
                    static_cast<unsigned long long>(
                        spec.capacity_words));
            }
            return false;
        }
    }
    return true;
}

} // namespace ploop
