/**
 * @file
 * Throughput model: execution cycles, utilization and MACs/cycle for
 * one (arch, layer, mapping).
 *
 * cycles = max(compute cycles, bandwidth cycles)
 *  - compute cycles = product of all temporal factors, times the
 *    stride penalty (optical window-unrolled architectures emit
 *    1/(hstride*wstride) useful positions per step on strided
 *    layers);
 *  - bandwidth cycles = per level, total words moved / level
 *    bandwidth.
 *
 * utilization = MACs / (cycles * peak MACs/cycle): this single number
 * folds together ceiling (imperfect-factorization) slack, idle
 * spatial units, stride penalties and bandwidth stalls -- the Fig.-3
 * effect.
 */

#ifndef PHOTONLOOP_MODEL_THROUGHPUT_HPP
#define PHOTONLOOP_MODEL_THROUGHPUT_HPP

#include <string>

#include "arch/arch_spec.hpp"
#include "mapping/mapping.hpp"
#include "model/access_counts.hpp"
#include "workload/layer.hpp"

namespace ploop {

/** Throughput estimation result. */
struct ThroughputResult
{
    double cycles = 0;           ///< Execution cycles (max of below).
    double compute_cycles = 0;   ///< Temporal steps * stride penalty.
    double bandwidth_cycles = 0; ///< Worst storage-level bottleneck.
    double stride_penalty = 1;   ///< Cycle multiplier applied (>= 1).
    double utilization = 0;      ///< MACs / (cycles * peak).
    double macs_per_cycle = 0;   ///< Achieved throughput.
    double runtime_s = 0;        ///< cycles / clock.

    /** One-line summary. */
    std::string str() const;
};

/**
 * Stride penalty for this (arch, layer, mapping): hstride * wstride
 * if the layer is strided and the mapping spatially unrolls any
 * window dim at a window-broadcast boundary; else 1.
 */
double stridePenalty(const ArchSpec &arch, const LayerShape &layer,
                     const Mapping &mapping);

/** Compute the throughput model. */
ThroughputResult computeThroughput(const ArchSpec &arch,
                                   const LayerShape &layer,
                                   const Mapping &mapping,
                                   const AccessCounts &counts);

} // namespace ploop

#endif // PHOTONLOOP_MODEL_THROUGHPUT_HPP
