/**
 * @file
 * Nest analysis: per-level, per-tensor access counting, the Timeloop
 * core.  See DESIGN.md §6.2 for the math; the short version:
 *
 * Downward tensors (weights, inputs):
 *  - fills(l, t): words newly loaded into all instances of level l
 *    over the execution = tile(l,t) * prod_{m>l, d in D(t)}
 *    (t[m][d] * s[m][d]).  Loops over dims irrelevant to t reuse the
 *    resident tile (the standard buffer-reuse assumption).
 *  - crossings_down(x, t): per-delivery word count over boundary x
 *    (between level x and the next-inner holder).  If the inner level
 *    keeps t, this equals fills of the inner level; if it bypasses t,
 *    the stream continues undiminished from the nearest keeper below
 *    (or compute demand = MACs when nothing below keeps t).
 *  - reads(l, t): physical reads from level l = crossings_down(l, t)
 *    deduplicated by the boundary multicast (spatial factors of dims
 *    irrelevant to t) and, for inputs, by the optical sliding-window
 *    broadcast (window_dims, only for unit-stride layers).
 *
 * Upward tensor (outputs):
 *  - a running stream starts at MACs at compute; at each boundary the
 *    pre-combine count (what converters see) is recorded, then the
 *    stream shrinks by the boundary's spatial-reduction factor; at
 *    each keeper level the stream is absorbed as updates
 *    (read-modify-write accumulation) and the departing stream shrinks
 *    by the reduction-temporal factors newly absorbed at/below that
 *    level.  Accumulation happens AT the keeper (no psum
 *    refetch-downward traffic; documented approximation matching
 *    digital psum accumulation at buffers).
 *
 * Counts are doubles: products are large and exactness beyond ~2^53 is
 * irrelevant at this abstraction.
 */

#ifndef PHOTONLOOP_MODEL_ACCESS_COUNTS_HPP
#define PHOTONLOOP_MODEL_ACCESS_COUNTS_HPP

#include <array>
#include <string>
#include <vector>

#include "arch/arch_spec.hpp"
#include "mapping/mapping.hpp"
#include "model/tile_analysis.hpp"
#include "workload/layer.hpp"

namespace ploop {

/** Access counts for one tensor at one level/boundary. */
struct TensorLevelCounts
{
    double tile_words = 0; ///< Resident words (one instance).
    double fills = 0;      ///< Words filled in (W/I at keepers).
    double reads = 0;      ///< Physical reads from this level.
    double writes = 0;     ///< Physical writes (fills or output adds).
    double updates = 0;    ///< Read-modify-write accumulations (O).
    /** Per-delivery words over the boundary below, downward (W/I). */
    double crossings_down = 0;
    /** Pre-combine words over the boundary below, upward (O). */
    double crossings_up = 0;
};

/** Full access-count result for one (arch, layer, mapping). */
struct AccessCounts
{
    /** counts[l][tensorIndex(t)], l = 0 is innermost. */
    std::vector<std::array<TensorLevelCounts, kNumTensors>> levels;

    /** Algorithmic MACs (compute actions). */
    double macs = 0;

    /** Per-level instance counts (hardware copies of that level). */
    std::vector<double> instances;

    /** Access counts at (level, tensor). */
    const TensorLevelCounts &at(std::size_t l, Tensor t) const
    {
        return levels[l][tensorIndex(t)];
    }

    /** Multi-line debug rendering. */
    std::string str() const;
};

/**
 * Run the nest analysis.
 *
 * @param arch Architecture (validated).
 * @param layer Workload layer.
 * @param mapping Mapping (same level count as arch).
 * @param tiles Precomputed tile analysis for the same triple.
 */
AccessCounts computeAccessCounts(const ArchSpec &arch,
                                 const LayerShape &layer,
                                 const Mapping &mapping,
                                 const TileAnalysis &tiles);

/**
 * In-place variant: fill @p out, reusing its buffers.  After the
 * first call on a given level count, recomputation performs no heap
 * allocation -- the search hot path keeps one AccessCounts per worker
 * and overwrites it per candidate.  Results are bit-identical to the
 * returning overload (which delegates here).
 */
void computeAccessCounts(const ArchSpec &arch, const LayerShape &layer,
                         const Mapping &mapping,
                         const TileAnalysis &tiles, AccessCounts &out);

/**
 * Sliding-window sharing factor at boundary @p l for inputs: the
 * product of spatial factors of the boundary's window dims, if the
 * layer is unstrided (a strided layer breaks the optical window
 * broadcast and gets factor 1).
 */
double windowShare(const ArchSpec &arch, const LayerShape &layer,
                   const Mapping &mapping, std::size_t l);

} // namespace ploop

#endif // PHOTONLOOP_MODEL_ACCESS_COUNTS_HPP
