/**
 * @file
 * The Evaluator: PhotonLoop's central entry point.  Given an
 * architecture and an estimator registry, it evaluates (layer,
 * mapping) pairs into a full result: access counts, converter counts,
 * throughput, energy breakdown and area.
 */

#ifndef PHOTONLOOP_MODEL_EVALUATOR_HPP
#define PHOTONLOOP_MODEL_EVALUATOR_HPP

#include <string>
#include <vector>

#include "arch/arch_spec.hpp"
#include "energy/registry.hpp"
#include "mapping/mapping.hpp"
#include "model/access_counts.hpp"
#include "model/converter_counts.hpp"
#include "model/energy_rollup.hpp"
#include "model/throughput.hpp"
#include "workload/layer.hpp"

namespace ploop {

/** Everything the model computes for one (layer, mapping). */
struct EvalResult
{
    AccessCounts counts;
    std::vector<ConverterCount> converters;
    ThroughputResult throughput;
    EnergyBreakdown energy;
    double area_m2 = 0;

    /** Total energy in joules. */
    double totalEnergy() const { return energy.total(); }

    /** Energy per MAC in joules. */
    double energyPerMac() const
    {
        return counts.macs > 0 ? energy.total() / counts.macs : 0.0;
    }

    /** Energy-delay product (J*s). */
    double edp() const { return energy.total() * throughput.runtime_s; }
};

/** Evaluates mappings of layers onto one architecture. */
class Evaluator
{
  public:
    /**
     * @param arch Validated architecture (held by reference; must
     *             outlive the evaluator).
     * @param registry Estimator registry (same lifetime rule).
     */
    Evaluator(const ArchSpec &arch, const EnergyRegistry &registry);

    /** The architecture. */
    const ArchSpec &arch() const { return arch_; }

    /**
     * Check mapping validity (fanout caps, coverage, capacities).
     *
     * @param layer Workload layer.
     * @param mapping Candidate mapping.
     * @param why Optional failure description sink.
     */
    bool isValidMapping(const LayerShape &layer, const Mapping &mapping,
                        std::string *why = nullptr) const;

    /**
     * Evaluate one mapping.  fatal() if the mapping is invalid;
     * mappers should pre-check with isValidMapping().
     */
    EvalResult evaluate(const LayerShape &layer,
                        const Mapping &mapping) const;

  private:
    const ArchSpec &arch_;
    const EnergyRegistry &registry_;
};

} // namespace ploop

#endif // PHOTONLOOP_MODEL_EVALUATOR_HPP
