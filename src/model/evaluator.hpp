/**
 * @file
 * The Evaluator: PhotonLoop's central entry point.  Given an
 * architecture and an estimator registry, it evaluates (layer,
 * mapping) pairs into a full result: access counts, converter counts,
 * throughput, energy breakdown and area.
 */

#ifndef PHOTONLOOP_MODEL_EVALUATOR_HPP
#define PHOTONLOOP_MODEL_EVALUATOR_HPP

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "arch/arch_spec.hpp"
#include "energy/registry.hpp"
#include "mapping/mapping.hpp"
#include "model/access_counts.hpp"
#include "model/converter_counts.hpp"
#include "model/energy_rollup.hpp"
#include "model/throughput.hpp"
#include "workload/layer.hpp"

#include "model/tile_analysis.hpp"

namespace ploop {

/** Everything the model computes for one (layer, mapping). */
struct EvalResult
{
    AccessCounts counts;
    std::vector<ConverterCount> converters;
    ThroughputResult throughput;
    EnergyBreakdown energy;
    double area_m2 = 0;

    /** Total energy in joules. */
    double totalEnergy() const { return energy.total(); }

    /** Energy per MAC in joules. */
    double energyPerMac() const
    {
        return counts.macs > 0 ? energy.total() / counts.macs : 0.0;
    }

    /** Energy-delay product (J*s). */
    double edp() const { return energy.total() * throughput.runtime_s; }
};

/**
 * Objective-only evaluation: just enough to rank candidates during
 * mapping search (16 bytes; cheap to cache and copy).  Produced by
 * Evaluator::quickEvaluate(); values are bit-identical to the
 * corresponding full EvalResult fields.
 */
struct QuickEval
{
    double energy_j = 0;  ///< == EvalResult::totalEnergy().
    double runtime_s = 0; ///< == EvalResult::throughput.runtime_s.

    /** Energy-delay product (J*s), == EvalResult::edp(). */
    double edp() const { return energy_j * runtime_s; }
};

/**
 * Reusable scratch arena for quick evaluation: one TileAnalysis and
 * one AccessCounts buffer, overwritten per candidate.  A search
 * worker keeps one EvalScratch for its whole run, so evaluating a
 * candidate allocates nothing after the arena's first use.  Arenas
 * are not thread-safe; give each worker lane its own (see
 * Evaluator::quickEvaluateBatch).
 */
struct EvalScratch
{
    TileAnalysis tiles;
    AccessCounts counts;
};

/** Evaluates mappings of layers onto one architecture. */
class Evaluator
{
  public:
    /**
     * @param arch Validated architecture (held by reference; must
     *             outlive the evaluator).
     * @param registry Estimator registry (same lifetime rule).
     */
    Evaluator(const ArchSpec &arch, const EnergyRegistry &registry);

    /** The architecture. */
    const ArchSpec &arch() const { return arch_; }

    /**
     * 64-bit content fingerprint of the architecture: hash of its
     * rendering plus every component class and attribute (computed
     * once, thread-safe).  Two evaluators over identical specs share
     * a fingerprint even when the ArchSpec objects differ (or reuse
     * an address), so caches keyed on it survive arch
     * reconstruction -- e.g. across sweep points.
     */
    std::uint64_t archFingerprint() const;

    /**
     * Fingerprint of everything a QuickEval depends on: the arch
     * fingerprint combined with the RESOLVED energy coefficients of
     * this (arch, registry) pair.  Two evaluators share a model
     * fingerprint exactly when they produce bit-identical quick
     * evaluations, so caches keyed on it (EvalCache's scope) can be
     * shared across evaluators without ever serving an energy
     * computed under a different registry.  Computed once,
     * thread-safe; resolves the coefficients lazily like
     * quickEvaluate does.
     */
    std::uint64_t modelFingerprint() const;

    /**
     * Check mapping validity (fanout caps, coverage, capacities).
     *
     * @param layer Workload layer.
     * @param mapping Candidate mapping.
     * @param why Optional failure description sink.
     */
    bool isValidMapping(const LayerShape &layer, const Mapping &mapping,
                        std::string *why = nullptr) const;

    /**
     * Evaluate one mapping.  fatal() if the mapping is invalid.
     * Checked entry point for external callers; search loops that
     * already ran isValidMapping() should use evaluateValidated() to
     * avoid paying validation twice.
     */
    EvalResult evaluate(const LayerShape &layer,
                        const Mapping &mapping) const;

    /**
     * Evaluate a mapping the caller has ALREADY validated with
     * isValidMapping().  Skips re-validation (the hot-path fix: the
     * mapper validates every candidate before evaluating, so the
     * checked path validated each candidate twice).  Passing an
     * invalid mapping is undefined (garbage numbers, possible
     * panic()).  Thread-safe: const, touches no shared mutable state.
     */
    EvalResult evaluateValidated(const LayerShape &layer,
                                 const Mapping &mapping) const;

    /**
     * Objective-only single-pass evaluation for search loops:
     * validates (shape checks + one shared TileAnalysis) and computes
     * just total energy and runtime -- no EnergyBreakdown entries, no
     * converter records, no area, no string formatting, no
     * allocation beyond the access counts.  Energy and runtime are
     * bit-identical to the corresponding evaluate() fields (see
     * computeEnergyTotal), so rankings made on QuickEval agree
     * exactly with full results.  Registry coefficients are resolved
     * once per evaluator, lazily and thread-safely.
     *
     * @param why Optional failure description sink.
     * @return std::nullopt when the mapping is invalid.
     */
    std::optional<QuickEval>
    quickEvaluate(const LayerShape &layer, const Mapping &mapping,
                  std::string *why = nullptr) const;

    /**
     * quickEvaluate() against a caller-owned arena: identical values
     * (quickEvaluate delegates here with a local arena), but all
     * intermediate state lives in @p scratch, so repeated calls
     * perform no heap allocation.  On return scratch.tiles holds the
     * analysis of @p mapping (valid-shape mappings only), ready for
     * quickEvaluateDelta() probes around it.
     */
    std::optional<QuickEval>
    quickEvaluateWith(EvalScratch &scratch, const LayerShape &layer,
                      const Mapping &mapping,
                      std::string *why = nullptr) const;

    /**
     * Incremental probe evaluation for hill climbing.  Precondition:
     * scratch.tiles holds the analysis (via quickEvaluateWith or
     * TileAnalysis::analyze) of a shape-VALID base mapping for this
     * layer, and @p mapping differs from that base only in dim
     * @p moved's per-level TEMPORAL factors (a hill-climb factor
     * move).  That precondition shrinks shape re-validation to one
     * dim's coverage, and only the moved tile column is recomputed
     * (TileAnalysis::applyDelta) and restored afterwards, so the
     * arena stays synced to the base for the next probe.  Values are
     * bit-identical to quickEvaluate(layer, mapping) (tested over
     * randomized triples).
     */
    std::optional<QuickEval>
    quickEvaluateDelta(EvalScratch &scratch, const LayerShape &layer,
                       const Mapping &mapping, Dim moved,
                       std::string *why = nullptr) const;

    /**
     * Batched quick evaluation: validate and score @p n candidates in
     * one call, fanning out across the thread pool with one arena per
     * worker chunk.  out[i] is quickEvaluate(layer, mappings[i])
     * (nullopt for invalid candidates), bit-identical to the
     * per-candidate path.
     *
     * @param threads Worker lanes (0 = automatic, as SearchOptions).
     */
    std::vector<std::optional<QuickEval>>
    quickEvaluateBatch(const LayerShape &layer, const Mapping *mappings,
                       std::size_t n, unsigned threads = 0) const;

    /** Convenience overload over a vector of candidates. */
    std::vector<std::optional<QuickEval>>
    quickEvaluateBatch(const LayerShape &layer,
                       const std::vector<Mapping> &mappings,
                       unsigned threads = 0) const;

  private:
    /**
     * Shared tail of the quick paths: capacity check on
     * scratch.tiles, then the objective-only rollup into
     * scratch.counts.
     */
    std::optional<QuickEval>
    quickFromScratch(EvalScratch &scratch, const LayerShape &layer,
                     const Mapping &mapping, std::string *why) const;
    /** Model rollup from an already-built tile analysis. */
    EvalResult modelFromTiles(const LayerShape &layer,
                              const Mapping &mapping,
                              const TileAnalysis &tiles) const;

    /** Coefficients for quickEvaluate(), resolved on first use. */
    const EnergyCoefficients &quickCoefficients() const;

    const ArchSpec &arch_;
    const EnergyRegistry &registry_;

    mutable std::once_flag quick_once_;
    mutable EnergyCoefficients quick_;
    mutable std::once_flag fingerprint_once_;
    mutable std::uint64_t fingerprint_ = 0;
    mutable std::once_flag model_fingerprint_once_;
    mutable std::uint64_t model_fingerprint_ = 0;
};

} // namespace ploop

#endif // PHOTONLOOP_MODEL_EVALUATOR_HPP
