#include "model/converter_counts.hpp"

#include "common/error.hpp"
#include "model/nest_detail.hpp"

namespace ploop {

namespace {

using detail::fillsTotal;
using detail::irrelevantSpatial;

} // namespace

double
deliveriesAtBoundary(const ArchSpec &arch, const LayerShape &layer,
                     const Mapping &mapping, const TileAnalysis &tiles,
                     const AccessCounts &counts, std::size_t x,
                     Tensor t)
{
    (void)layer;
    if (t == Tensor::Outputs)
        return counts.at(x, Tensor::Outputs).crossings_up;

    // No traffic above the tensor's outermost keeper (fusion bypass).
    std::size_t outermost_keeper = 0;
    for (std::size_t l = 0; l < arch.numLevels(); ++l) {
        if (arch.level(l).keepsTensor(t))
            outermost_keeper = l;
    }
    if (x > outermost_keeper)
        return 0.0;

    // Nearest keeper strictly below boundary x.
    const DimSet rel = tensorDims(t);
    for (std::size_t l = x; l-- > 0;) {
        if (arch.level(l).keepsTensor(t)) {
            // Fill demand of the keeper, counted per duplicate
            // instance (irrelevant-spatial copies above the keeper
            // each receive their own conversion unless shared).
            double deliv = fillsTotal(mapping, tiles, l, t, rel);
            for (std::size_t y = l + 1; y < mapping.numLevels(); ++y)
                deliv *= irrelevantSpatial(mapping, y, rel);
            return deliv;
        }
    }
    // Streams all the way to compute: one use per MAC.
    return counts.macs;
}

void
validateReuseAttrs(const std::string &converter_name,
                   double spatial_reuse, double window_reuse)
{
    // Only build the message strings on actual failure.
    if (spatial_reuse < 1.0 || window_reuse < 1.0) {
        fatal("converter '" + converter_name +
              "': spatial_reuse and window_reuse must be >= 1");
    }
    if (window_reuse > spatial_reuse) {
        fatal("converter '" + converter_name +
              "': window_reuse cannot exceed spatial_reuse");
    }
}

double
effectiveReuse(const ConverterSpec &conv, const LayerShape &layer)
{
    double sr = conv.attrs.getOr("spatial_reuse", 1.0);
    double wr = conv.attrs.getOr("window_reuse", 1.0);
    validateReuseAttrs(conv.name, sr, wr);
    return effectiveReuseResolved(sr, wr, layer.isStrided());
}

std::vector<ConverterCount>
computeConverterCounts(const ArchSpec &arch, const LayerShape &layer,
                       const Mapping &mapping, const TileAnalysis &tiles,
                       const AccessCounts &counts)
{
    std::vector<ConverterCount> out;
    for (std::size_t x = 0; x < arch.numLevels(); ++x) {
        for (Tensor t : kAllTensors) {
            const auto &chain = arch.level(x).convertersFor(t);
            if (chain.empty())
                continue;
            double deliv = deliveriesAtBoundary(arch, layer, mapping,
                                                tiles, counts, x, t);
            for (const ConverterSpec &conv : chain) {
                ConverterCount cc;
                cc.boundary = x;
                cc.tensor = t;
                cc.name = conv.name;
                cc.klass = conv.klass;
                cc.crossing = conv.crossing();
                cc.deliveries = deliv;
                cc.effective_reuse = effectiveReuse(conv, layer);
                cc.count = deliv / cc.effective_reuse;
                cc.attrs = conv.attrs;
                out.push_back(std::move(cc));
            }
        }
    }
    return out;
}

} // namespace ploop
