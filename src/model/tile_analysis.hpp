/**
 * @file
 * Tile analysis: given (architecture, layer, mapping), compute the
 * data-tile extents and per-tensor tile sizes resident at each storage
 * level, and check them against level capacities.
 *
 * Extents are clipped to the layer bounds: over-provisioned (ceil)
 * mapping factors cover index space that holds no data, so tiles never
 * exceed the tensor footprint.  Inputs are sized through the sliding
 * window: an input tile spans (P_ext-1)*hstride + R_ext rows.
 *
 * The analysis is reusable: analyze() recomputes in place against the
 * same buffers, so a search loop can keep ONE TileAnalysis per worker
 * and evaluate thousands of candidates without heap allocation.  For
 * hill-climb probes, applyDelta()/revert() recompute only the one dim
 * column a factor move touches -- bit-identical to a full analyze()
 * of the moved mapping (tested).
 */

#ifndef PHOTONLOOP_MODEL_TILE_ANALYSIS_HPP
#define PHOTONLOOP_MODEL_TILE_ANALYSIS_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "arch/arch_spec.hpp"
#include "mapping/mapping.hpp"
#include "workload/layer.hpp"

namespace ploop {

/** Per-level, per-tensor tile sizes. */
class TileAnalysis
{
  public:
    /** Empty analysis; call analyze() before any accessor. */
    TileAnalysis() = default;

    /**
     * Analyze one (arch, layer, mapping) triple.  The mapping must
     * have arch.numLevels() levels; no validity checks beyond that
     * are performed here (see mapping/validate.hpp).
     */
    TileAnalysis(const ArchSpec &arch, const LayerShape &layer,
                 const Mapping &mapping);

    /**
     * Recompute for a (possibly different) triple, reusing the
     * internal buffers: after the first call on a given level count,
     * re-analysis performs no heap allocation.  @p arch and @p layer
     * are held by pointer and must outlive the next analyze().
     */
    void analyze(const ArchSpec &arch, const LayerShape &layer,
                 const Mapping &mapping);

    /**
     * Incremental re-analysis for a factor move: @p mapping must be
     * the analyzed mapping with ONLY dim @p d's per-level factors
     * changed (any levels, temporal or spatial -- the tile math is
     * exact for both; note Evaluator::quickEvaluateDelta layers a
     * stricter TEMPORAL-only precondition on top, because its
     * validation shortcut assumes spatial factors are unchanged).
     * Recomputes just the d column of extents and the tile rows
     * whose clipped extent actually changed; the result is
     * bit-identical to analyze(arch, layer, mapping).  The previous
     * column is saved so revert() can restore it; deltas do not nest
     * (applyDelta with a delta pending is fatal).
     */
    void applyDelta(const Mapping &mapping, Dim d);

    /** Undo the last applyDelta() (fatal if none is pending). */
    void revert();

    /** Dim extent at level @p l, clipped to the layer bound. */
    std::uint64_t extent(std::size_t l, Dim d) const;

    /** Words of tensor @p t resident in ONE instance of level @p l. */
    std::uint64_t tileWords(std::size_t l, Tensor t) const;

    /** Sum of kept tensors' tile words at level @p l. */
    std::uint64_t keptWords(std::size_t l) const;

    /**
     * True if every capacity-bounded level fits its kept tiles.
     * When false and @p why is non-null, a description is written.
     */
    bool fitsCapacities(std::string *why = nullptr) const;

  private:
    /** Recompute tiles_[l] from ext_[l] (the one formula site). */
    void recomputeTiles(std::size_t l);

    const ArchSpec *arch_ = nullptr;
    const LayerShape *layer_ = nullptr;
    // ext_[l][dimIndex]: clipped cumulative extent at level l.
    std::vector<std::array<std::uint64_t, kNumDims>> ext_;
    // tiles_[l][tensorIndex]: tile words.
    std::vector<std::array<std::uint64_t, kNumTensors>> tiles_;

    // applyDelta() undo state: the saved dim column and tile rows.
    bool delta_pending_ = false;
    Dim delta_dim_ = Dim::K;
    std::vector<std::uint64_t> saved_ext_;
    std::vector<std::array<std::uint64_t, kNumTensors>> saved_tiles_;
};

} // namespace ploop

#endif // PHOTONLOOP_MODEL_TILE_ANALYSIS_HPP
