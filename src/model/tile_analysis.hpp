/**
 * @file
 * Tile analysis: given (architecture, layer, mapping), compute the
 * data-tile extents and per-tensor tile sizes resident at each storage
 * level, and check them against level capacities.
 *
 * Extents are clipped to the layer bounds: over-provisioned (ceil)
 * mapping factors cover index space that holds no data, so tiles never
 * exceed the tensor footprint.  Inputs are sized through the sliding
 * window: an input tile spans (P_ext-1)*hstride + R_ext rows.
 */

#ifndef PHOTONLOOP_MODEL_TILE_ANALYSIS_HPP
#define PHOTONLOOP_MODEL_TILE_ANALYSIS_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "arch/arch_spec.hpp"
#include "mapping/mapping.hpp"
#include "workload/layer.hpp"

namespace ploop {

/** Per-level, per-tensor tile sizes. */
class TileAnalysis
{
  public:
    /**
     * Analyze one (arch, layer, mapping) triple.  The mapping must
     * have arch.numLevels() levels; no validity checks beyond that
     * are performed here (see mapping/validate.hpp).
     */
    TileAnalysis(const ArchSpec &arch, const LayerShape &layer,
                 const Mapping &mapping);

    /** Dim extent at level @p l, clipped to the layer bound. */
    std::uint64_t extent(std::size_t l, Dim d) const;

    /** Words of tensor @p t resident in ONE instance of level @p l. */
    std::uint64_t tileWords(std::size_t l, Tensor t) const;

    /** Sum of kept tensors' tile words at level @p l. */
    std::uint64_t keptWords(std::size_t l) const;

    /**
     * True if every capacity-bounded level fits its kept tiles.
     * When false and @p why is non-null, a description is written.
     */
    bool fitsCapacities(std::string *why = nullptr) const;

  private:
    const ArchSpec &arch_;
    const LayerShape &layer_;
    // ext_[l][dimIndex]: clipped cumulative extent at level l.
    std::vector<std::array<std::uint64_t, kNumDims>> ext_;
    // tiles_[l][tensorIndex]: tile words.
    std::vector<std::array<std::uint64_t, kNumTensors>> tiles_;
};

} // namespace ploop

#endif // PHOTONLOOP_MODEL_TILE_ANALYSIS_HPP
