/**
 * @file
 * Energy rollup: turn access/converter/compute counts into joules
 * using the estimator registry, preserving enough structure (component
 * instance, class, action, tensor, domain crossing) for the paper's
 * figure categories to be re-aggregated downstream.
 */

#ifndef PHOTONLOOP_MODEL_ENERGY_ROLLUP_HPP
#define PHOTONLOOP_MODEL_ENERGY_ROLLUP_HPP

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "arch/arch_spec.hpp"
#include "energy/registry.hpp"
#include "model/access_counts.hpp"
#include "model/converter_counts.hpp"
#include "model/throughput.hpp"

namespace ploop {

/** One (component, action, tensor) energy contribution. */
struct EnergyEntry
{
    std::string component; ///< Instance name, e.g. "GlobalBuffer".
    std::string klass;     ///< Energy-model class.
    Action action = Action::Read;
    /** Domain crossing for converters, e.g. "DE/AE"; else empty. */
    std::string crossing;
    /** Tensor the activity served, if attributable. */
    std::optional<Tensor> tensor;
    double count = 0;    ///< Actions charged.
    double energy_j = 0; ///< count * energy-per-action (or P*t).
};

/** Aggregated energy result. */
struct EnergyBreakdown
{
    std::vector<EnergyEntry> entries;

    /** Total energy in joules. */
    double total() const;

    /** Sum of entries matching a predicate. */
    template <typename Pred>
    double
    sumIf(Pred pred) const
    {
        double e = 0;
        for (const auto &entry : entries) {
            if (pred(entry))
                e += entry.energy_j;
        }
        return e;
    }

    /** Energy by component instance name. */
    std::map<std::string, double> byComponent() const;

    /** Multi-line table of entries. */
    std::string str() const;
};

/**
 * Compute the energy rollup.
 *
 * @param arch Architecture.
 * @param registry Estimator registry.
 * @param counts Access counts (storage + compute activity).
 * @param converters Converter activity.
 * @param throughput Used for static (power * runtime) components.
 */
EnergyBreakdown
computeEnergy(const ArchSpec &arch, const EnergyRegistry &registry,
              const AccessCounts &counts,
              const std::vector<ConverterCount> &converters,
              const ThroughputResult &throughput);

/**
 * Precomputed per-architecture energy coefficients: every
 * registry.energy() lookup (string-keyed, attribute-merging) a full
 * rollup performs, resolved once.  Mapping search evaluates thousands
 * of candidates against one architecture; with these coefficients the
 * per-candidate energy total is pure arithmetic -- no string hashing,
 * no Attributes copies, no allocation.  All values are copied out of
 * the arch and registry (no lifetime coupling).
 */
struct EnergyCoefficients
{
    /**
     * Per-action energy for one storage level.  A coefficient is NaN
     * when the estimator rejected the action at resolution time --
     * the full rollup only queries actions with nonzero counts, so
     * the error is deferred the same way: computeEnergyTotal fatals
     * only if such an action is actually exercised.
     */
    struct LevelEnergy
    {
        double read = 0, write = 0, update = 0;
        std::string klass; ///< For deferred error messages.
    };
    std::vector<LevelEnergy> levels; ///< One per storage level.

    /** One converter's resolved energy, in rollup iteration order.
     *  energy_per_conversion may be NaN (see LevelEnergy). */
    struct ConverterEnergy
    {
        std::size_t boundary = 0;
        Tensor tensor = Tensor::Weights;
        double energy_per_conversion = 0;
        /** Pre-validated reuse attributes (see effectiveReuse()). */
        double spatial_reuse = 1;
        double window_reuse = 1;
        std::string klass; ///< For deferred error messages.
    };
    std::vector<ConverterEnergy> converters;

    double mac_energy = 0;
    std::vector<double> static_powers_w; ///< Per static component.
};

/** Resolve all coefficients for one (arch, registry) pair. */
EnergyCoefficients
computeEnergyCoefficients(const ArchSpec &arch,
                          const EnergyRegistry &registry);

/**
 * Total energy only, using precomputed coefficients.  Matches
 * computeEnergy(...).total() bit-for-bit: identical per-term values
 * summed in identical order, so search decisions made on this total
 * agree exactly with a full rollup of the same mapping.
 */
double computeEnergyTotal(const EnergyCoefficients &co,
                          const ArchSpec &arch, const LayerShape &layer,
                          const Mapping &mapping,
                          const TileAnalysis &tiles,
                          const AccessCounts &counts,
                          const ThroughputResult &throughput);

/**
 * Total area in m^2: storage levels (per instance), converters,
 * compute units and static components.
 */
double computeArea(const ArchSpec &arch, const EnergyRegistry &registry,
                   const AccessCounts &counts,
                   const std::vector<ConverterCount> &converters);

} // namespace ploop

#endif // PHOTONLOOP_MODEL_ENERGY_ROLLUP_HPP
