#include "model/evaluator.hpp"

#include "common/error.hpp"
#include "mapping/validate.hpp"

namespace ploop {

Evaluator::Evaluator(const ArchSpec &arch, const EnergyRegistry &registry)
    : arch_(arch), registry_(registry)
{
    arch_.validate();
}

bool
Evaluator::isValidMapping(const LayerShape &layer, const Mapping &mapping,
                          std::string *why) const
{
    return validateMapping(arch_, layer, mapping, why);
}

EvalResult
Evaluator::evaluate(const LayerShape &layer, const Mapping &mapping) const
{
    std::string why;
    if (!validateMapping(arch_, layer, mapping, &why))
        fatal("invalid mapping for layer '" + layer.name() + "': " + why);

    EvalResult r;
    TileAnalysis tiles(arch_, layer, mapping);
    r.counts = computeAccessCounts(arch_, layer, mapping, tiles);
    r.converters =
        computeConverterCounts(arch_, layer, mapping, tiles, r.counts);
    r.throughput = computeThroughput(arch_, layer, mapping, r.counts);
    r.energy = computeEnergy(arch_, registry_, r.counts, r.converters,
                             r.throughput);
    r.area_m2 = computeArea(arch_, registry_, r.counts, r.converters);
    return r;
}

} // namespace ploop
