#include "model/evaluator.hpp"

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "mapping/validate.hpp"
#include "model/tile_analysis.hpp"

namespace ploop {

Evaluator::Evaluator(const ArchSpec &arch, const EnergyRegistry &registry)
    : arch_(arch), registry_(registry)
{
    arch_.validate();
}

bool
Evaluator::isValidMapping(const LayerShape &layer, const Mapping &mapping,
                          std::string *why) const
{
    return validateMapping(arch_, layer, mapping, why);
}

EvalResult
Evaluator::evaluate(const LayerShape &layer, const Mapping &mapping) const
{
    std::string why;
    if (!validateMapping(arch_, layer, mapping, &why))
        fatal("invalid mapping for layer '" + layer.name() + "': " + why);
    return evaluateValidated(layer, mapping);
}

EvalResult
Evaluator::evaluateValidated(const LayerShape &layer,
                             const Mapping &mapping) const
{
    TileAnalysis tiles(arch_, layer, mapping);
    return modelFromTiles(layer, mapping, tiles);
}

std::optional<QuickEval>
Evaluator::quickEvaluate(const LayerShape &layer,
                         const Mapping &mapping,
                         std::string *why) const
{
    EvalScratch scratch;
    return quickEvaluateWith(scratch, layer, mapping, why);
}

std::optional<QuickEval>
Evaluator::quickEvaluateWith(EvalScratch &scratch,
                             const LayerShape &layer,
                             const Mapping &mapping,
                             std::string *why) const
{
    if (!validateMappingShape(arch_, layer, mapping, why))
        return std::nullopt;
    // One tile analysis serves the capacity check AND the model.
    scratch.tiles.analyze(arch_, layer, mapping);
    return quickFromScratch(scratch, layer, mapping, why);
}

std::optional<QuickEval>
Evaluator::quickEvaluateDelta(EvalScratch &scratch,
                              const LayerShape &layer,
                              const Mapping &mapping, Dim moved,
                              std::string *why) const
{
    // Full shape validation reduces to one dim here: the base was
    // shape-valid and only dim `moved`'s temporal factors changed
    // (see the precondition), which cannot violate spatial caps.
    if (!validateMovedDim(arch_, layer, mapping, moved, why))
        return std::nullopt;
    scratch.tiles.applyDelta(mapping, moved);
    std::optional<QuickEval> q =
        quickFromScratch(scratch, layer, mapping, why);
    scratch.tiles.revert();
    return q;
}

std::optional<QuickEval>
Evaluator::quickFromScratch(EvalScratch &scratch,
                            const LayerShape &layer,
                            const Mapping &mapping,
                            std::string *why) const
{
    if (!scratch.tiles.fitsCapacities(why))
        return std::nullopt;

    const EnergyCoefficients &co = quickCoefficients();
    computeAccessCounts(arch_, layer, mapping, scratch.tiles,
                        scratch.counts);
    ThroughputResult throughput =
        computeThroughput(arch_, layer, mapping, scratch.counts);
    QuickEval q;
    q.runtime_s = throughput.runtime_s;
    q.energy_j =
        computeEnergyTotal(co, arch_, layer, mapping, scratch.tiles,
                           scratch.counts, throughput);
    return q;
}

std::vector<std::optional<QuickEval>>
Evaluator::quickEvaluateBatch(const LayerShape &layer,
                              const Mapping *mappings, std::size_t n,
                              unsigned threads) const
{
    std::vector<std::optional<QuickEval>> out(n);
    ThreadPool &pool = ThreadPool::forThreads(threads);
    pool.parallelForChunked(
        n, [&](std::size_t begin, std::size_t end, unsigned) {
            // One arena per worker chunk: every candidate in the
            // chunk reuses the same tile-analysis and access-count
            // buffers.
            EvalScratch scratch;
            for (std::size_t i = begin; i < end; ++i)
                out[i] =
                    quickEvaluateWith(scratch, layer, mappings[i]);
        });
    return out;
}

std::vector<std::optional<QuickEval>>
Evaluator::quickEvaluateBatch(const LayerShape &layer,
                              const std::vector<Mapping> &mappings,
                              unsigned threads) const
{
    return quickEvaluateBatch(layer, mappings.data(), mappings.size(),
                              threads);
}

std::uint64_t
Evaluator::archFingerprint() const
{
    std::call_once(fingerprint_once_, [this] {
        // FNV-1a over the spec's rendering PLUS the energy-relevant
        // fields str() omits (component classes and attributes), so
        // architectures differing only in an attribute -- exactly
        // what sweeps vary -- never share a fingerprint.
        std::uint64_t h = 1469598103934665603ull;
        auto addBytes = [&h](const void *p, std::size_t n) {
            const unsigned char *bytes =
                static_cast<const unsigned char *>(p);
            for (std::size_t i = 0; i < n; ++i) {
                h ^= bytes[i];
                h *= 1099511628211ull;
            }
        };
        auto addString = [&](const std::string &s) {
            addBytes(s.data(), s.size());
            addBytes("\x1f", 1); // field separator
        };
        auto addDouble = [&](double v) { addBytes(&v, sizeof(v)); };
        auto addAttrs = [&](const Attributes &attrs) {
            for (const auto &[key, value] : attrs.all()) {
                addString(key);
                addDouble(value);
            }
        };

        addString(arch_.str());
        for (std::size_t l = 0; l < arch_.numLevels(); ++l) {
            const StorageLevelSpec &level = arch_.level(l);
            addString(level.klass);
            addAttrs(level.attrs);
            for (Tensor t : kAllTensors) {
                for (const ConverterSpec &conv :
                     level.convertersFor(t)) {
                    addString(conv.name);
                    addString(conv.klass);
                    addString(conv.crossing());
                    addAttrs(conv.attrs);
                }
            }
        }
        addString(arch_.compute().klass);
        addAttrs(arch_.compute().attrs);
        addDouble(arch_.compute().macs_per_cycle);
        for (const StaticComponentSpec &s : arch_.statics()) {
            addString(s.name);
            addString(s.klass);
            addAttrs(s.attrs);
        }
        fingerprint_ = h;
    });
    return fingerprint_;
}

std::uint64_t
Evaluator::modelFingerprint() const
{
    std::call_once(model_fingerprint_once_, [this] {
        // FNV-1a over the arch fingerprint plus every resolved
        // coefficient a QuickEval's energy reads: the registry is
        // opaque (arbitrary estimator code), but the resolved
        // coefficients ARE its entire contribution to quick
        // evaluation, so hashing them keys exactly the quantity
        // cached results depend on.
        const EnergyCoefficients &co = quickCoefficients();
        std::uint64_t h = 1469598103934665603ull;
        auto addBytes = [&h](const void *p, std::size_t n) {
            const unsigned char *bytes =
                static_cast<const unsigned char *>(p);
            for (std::size_t i = 0; i < n; ++i) {
                h ^= bytes[i];
                h *= 1099511628211ull;
            }
        };
        auto addDouble = [&](double v) { addBytes(&v, sizeof(v)); };
        auto addU64 = [&](std::uint64_t v) {
            addBytes(&v, sizeof(v));
        };

        addU64(archFingerprint());
        for (const EnergyCoefficients::LevelEnergy &e : co.levels) {
            addDouble(e.read);
            addDouble(e.write);
            addDouble(e.update);
        }
        for (const EnergyCoefficients::ConverterEnergy &ce :
             co.converters) {
            addU64(ce.boundary);
            addU64(tensorIndex(ce.tensor));
            addDouble(ce.energy_per_conversion);
            addDouble(ce.spatial_reuse);
            addDouble(ce.window_reuse);
        }
        addDouble(co.mac_energy);
        for (double p : co.static_powers_w)
            addDouble(p);
        model_fingerprint_ = h;
    });
    return model_fingerprint_;
}

const EnergyCoefficients &
Evaluator::quickCoefficients() const
{
    // Lazy so an evaluator whose registry lacks a class still fails
    // at first evaluation (as the full path does), not construction.
    std::call_once(quick_once_, [this] {
        quick_ = computeEnergyCoefficients(arch_, registry_);
    });
    return quick_;
}

EvalResult
Evaluator::modelFromTiles(const LayerShape &layer,
                          const Mapping &mapping,
                          const TileAnalysis &tiles) const
{
    EvalResult r;
    r.counts = computeAccessCounts(arch_, layer, mapping, tiles);
    r.converters =
        computeConverterCounts(arch_, layer, mapping, tiles, r.counts);
    r.throughput = computeThroughput(arch_, layer, mapping, r.counts);
    r.energy = computeEnergy(arch_, registry_, r.counts, r.converters,
                             r.throughput);
    r.area_m2 = computeArea(arch_, registry_, r.counts, r.converters);
    return r;
}

} // namespace ploop
