#include "model/access_counts.hpp"

#include <algorithm>
#include <array>
#include <cstddef>

#include "common/error.hpp"
#include "common/string_util.hpp"
#include "model/nest_detail.hpp"

namespace ploop {

namespace {

using detail::fillsTotal;
using detail::irrelevantSpatial;

/**
 * Stack-cache capacity for per-level precomputed factors.  Real
 * hierarchies have 2-6 storage levels; beyond the cap the code falls
 * back to recomputing per use (same values, just slower).
 */
constexpr std::size_t kLevelStack = 64;

} // namespace

double
windowShare(const ArchSpec &arch, const LayerShape &layer,
            const Mapping &mapping, std::size_t l)
{
    const DimSet wdims = arch.level(l).fanout.window_dims;
    if (wdims.empty())
        return 1.0;
    // A strided layer breaks the optical sliding-window broadcast:
    // adjacent window positions no longer see consecutive inputs.
    if (layer.isStrided())
        return 1.0;
    double share = 1.0;
    for (Dim d : kAllDims) {
        if (wdims.contains(d))
            share *= static_cast<double>(mapping.level(l).s(d));
    }
    return share;
}

AccessCounts
computeAccessCounts(const ArchSpec &arch, const LayerShape &layer,
                    const Mapping &mapping, const TileAnalysis &tiles)
{
    AccessCounts ac;
    computeAccessCounts(arch, layer, mapping, tiles, ac);
    return ac;
}

void
computeAccessCounts(const ArchSpec &arch, const LayerShape &layer,
                    const Mapping &mapping, const TileAnalysis &tiles,
                    AccessCounts &out)
{
    const std::size_t nlevels = arch.numLevels();
    fatalIf(mapping.numLevels() != nlevels,
            "mapping/arch level count mismatch");

    AccessCounts &ac = out;
    ac.levels.assign(nlevels,
                     std::array<TensorLevelCounts, kNumTensors>{});
    ac.macs = static_cast<double>(layer.macs());

    // Per-level spatial products, fetched once (search evaluates
    // thousands of candidates through here; the hot loops below reuse
    // every per-level quantity instead of re-deriving it per pair).
    const bool stack = nlevels <= kLevelStack;
    std::array<std::uint64_t, kLevelStack> sp_cache{};
    if (stack) {
        for (std::size_t l = 0; l < nlevels; ++l)
            sp_cache[l] = mapping.level(l).spatialProduct();
    }
    auto spatialAt = [&](std::size_t l) {
        return stack ? sp_cache[l] : mapping.level(l).spatialProduct();
    };

    // Hardware instances of each level.
    ac.instances.assign(nlevels, 1.0);
    for (std::size_t l = nlevels; l-- > 0;) {
        double inst = 1.0;
        for (std::size_t m = l + 1; m < nlevels; ++m)
            inst *= static_cast<double>(spatialAt(m));
        ac.instances[l] = inst;
    }

    // Resident tiles.
    for (std::size_t l = 0; l < nlevels; ++l) {
        for (Tensor t : kAllTensors) {
            if (arch.level(l).keepsTensor(t)) {
                ac.levels[l][tensorIndex(t)].tile_words =
                    static_cast<double>(tiles.tileWords(l, t));
            }
        }
    }

    // Window-broadcast share per boundary (inputs only), computed
    // once per level; the crossings loop divides by it per (x, y)
    // pair.
    std::array<double, kLevelStack> win_cache{};
    if (stack) {
        for (std::size_t l = 0; l < nlevels; ++l)
            win_cache[l] = windowShare(arch, layer, mapping, l);
    }
    auto winAt = [&](std::size_t y) {
        return stack ? win_cache[y]
                     : windowShare(arch, layer, mapping, y);
    };

    // ---- Downward tensors: weights and inputs. ----
    for (Tensor t : {Tensor::Weights, Tensor::Inputs}) {
        auto idx = [&](std::size_t l) -> TensorLevelCounts & {
            return ac.levels[l][tensorIndex(t)];
        };
        const DimSet rel = tensorDims(t);
        // Irrelevant-spatial multicast factor per level, computed
        // once; the crossings loop walks (x, y) pairs over these.
        std::array<double, kLevelStack> irr_cache{};
        if (stack) {
            for (std::size_t l = 0; l < nlevels; ++l)
                irr_cache[l] = irrelevantSpatial(mapping, l, rel);
        }
        auto irrAt = [&](std::size_t y) {
            return stack ? irr_cache[y]
                         : irrelevantSpatial(mapping, y, rel);
        };
        // Fills and writes at keeper levels (outermost excluded: data
        // originates there).
        for (std::size_t l = 0; l < nlevels; ++l) {
            if (!arch.level(l).keepsTensor(t))
                continue;
            double fills = fillsTotal(mapping, tiles, l, t, rel);
            idx(l).fills = fills;
            if (l + 1 < nlevels)
                idx(l).writes = fills;
        }
        // The tensor originates at its outermost keeper; levels above
        // it see no traffic (fusion bypass).
        std::size_t outermost_keeper = 0;
        for (std::size_t l = 0; l < nlevels; ++l) {
            if (arch.level(l).keepsTensor(t))
                outermost_keeper = l;
        }
        // Crossings at each boundary x (below level x), multicast- and
        // window-deduplicated.  k(x) = nearest keeper at level <= x-1,
        // or compute.
        for (std::size_t x = 0; x < nlevels; ++x) {
            if (x > outermost_keeper)
                continue; // No traffic above the source.
            // Find the keeper below boundary x.
            bool keeper_found = false;
            std::size_t keeper = 0;
            for (std::size_t l = x; l-- > 0;) {
                if (arch.level(l).keepsTensor(t)) {
                    keeper_found = true;
                    keeper = l;
                    break;
                }
            }
            double crossings;
            if (keeper_found) {
                // base_nodup(keeper) * duplication above boundary x.
                // The keeper's fills were just computed and stored
                // above -- reuse them instead of re-deriving.
                crossings = idx(keeper).fills;
                for (std::size_t y = x + 1; y < nlevels; ++y)
                    crossings *= irrAt(y);
            } else {
                // Compute demand, deduplicated by multicast at and
                // below boundary x.
                crossings = ac.macs;
                for (std::size_t y = 0; y <= x; ++y)
                    crossings /= irrAt(y);
            }
            if (t == Tensor::Inputs) {
                // Window broadcast at boundaries at/below x serves
                // several relevant-dim positions with one crossing.
                for (std::size_t y = 0; y <= x; ++y)
                    crossings /= winAt(y);
            }
            idx(x).crossings_down = crossings;
            // Reads from level x serve boundary x.
            idx(x).reads = crossings;
        }
    }

    // ---- Upward tensor: outputs. ----
    {
        auto out_at = [&](std::size_t l) -> TensorLevelCounts & {
            return ac.levels[l][tensorIndex(Tensor::Outputs)];
        };
        const DimSet red = reductionDims();
        std::size_t outermost_keeper = 0;
        for (std::size_t l = 0; l < nlevels; ++l) {
            if (arch.level(l).keepsTensor(Tensor::Outputs))
                outermost_keeper = l;
        }
        // Per reduction dim, the cumulative combining applied so far
        // (spatial trees plus keeper-absorbed temporal loops).  The
        // effective stream divisor clips each dim at its workload
        // bound: ceiling-padded reduction factors add idle iterations
        // that produce no partial sums.
        std::array<double, kNumDims> covered;
        std::array<double, kNumDims> pending_t;
        covered.fill(1.0);
        pending_t.fill(1.0);
        auto eff_red = [&]() {
            double p = 1.0;
            for (Dim d : kAllDims) {
                if (red.contains(d)) {
                    p *= std::min(
                        covered[dimIndex(d)],
                        static_cast<double>(layer.bound(d)));
                }
            }
            return p;
        };
        for (std::size_t x = 0; x < nlevels; ++x) {
            if (x > outermost_keeper)
                break; // Outputs terminate at their outermost keeper.
            // Converters at boundary x see the pre-combine stream.
            out_at(x).crossings_up = ac.macs / eff_red();
            // Spatial reduction tree at boundary x combines partials;
            // temporal reduction loops at level x queue up until a
            // keeper absorbs them by accumulating in place.
            for (Dim d : kAllDims) {
                if (!red.contains(d))
                    continue;
                covered[dimIndex(d)] *=
                    static_cast<double>(mapping.level(x).s(d));
                pending_t[dimIndex(d)] *=
                    static_cast<double>(mapping.level(x).t(d));
            }
            if (arch.level(x).keepsTensor(Tensor::Outputs)) {
                // Arrivals accumulate into the resident tile.
                out_at(x).updates = ac.macs / eff_red();
                for (Dim d : kAllDims) {
                    if (red.contains(d)) {
                        covered[dimIndex(d)] *=
                            pending_t[dimIndex(d)];
                        pending_t[dimIndex(d)] = 1.0;
                    }
                }
                if (x + 1 < nlevels)
                    out_at(x).reads = ac.macs / eff_red(); // Send up.
            }
        }
    }
}

std::string
AccessCounts::str() const
{
    std::string out = strFormat("MACs: %s\n",
                                formatCount(macs).c_str());
    for (std::size_t l = levels.size(); l-- > 0;) {
        out += strFormat("  level %zu (x%g instances)\n", l,
                         instances[l]);
        for (Tensor t : kAllTensors) {
            const TensorLevelCounts &c = at(l, t);
            out += strFormat(
                "    %-8s tile=%s fills=%s reads=%s writes=%s "
                "updates=%s down=%s up=%s\n",
                tensorName(t), formatCount(c.tile_words).c_str(),
                formatCount(c.fills).c_str(),
                formatCount(c.reads).c_str(),
                formatCount(c.writes).c_str(),
                formatCount(c.updates).c_str(),
                formatCount(c.crossings_down).c_str(),
                formatCount(c.crossings_up).c_str());
        }
    }
    return out;
}

} // namespace ploop
