/**
 * @file
 * Converter action counting: how many times each data converter fires
 * for one (arch, layer, mapping).
 *
 * Converters are charged on PER-USE deliveries (not multicast-
 * deduplicated crossings), divided by the converter's own sharing:
 *
 *   count = deliveries(boundary, tensor) / effective_reuse
 *
 * where effective_reuse comes from the converter attributes:
 *  - "spatial_reuse": consumers sharing one conversion (default 1);
 *  - "window_reuse": the part of spatial_reuse that comes from the
 *    optical sliding-window broadcast (default 1).  For strided
 *    layers the window part collapses: effective_reuse =
 *    spatial_reuse / window_reuse.
 *
 * This mirrors the paper's §III.4 (IR / OR / weight-reuse knobs) and
 * its Fig. 3 observation that strided layers lose Albireo's input
 * reuse.
 */

#ifndef PHOTONLOOP_MODEL_CONVERTER_COUNTS_HPP
#define PHOTONLOOP_MODEL_CONVERTER_COUNTS_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "arch/arch_spec.hpp"
#include "mapping/mapping.hpp"
#include "model/access_counts.hpp"

namespace ploop {

/** One converter's activity. */
struct ConverterCount
{
    std::size_t boundary = 0; ///< Level whose converters_below fired.
    Tensor tensor = Tensor::Weights;
    std::string name;     ///< Converter instance name.
    std::string klass;    ///< Energy-model class.
    std::string crossing; ///< e.g. "DE/AE".
    double deliveries = 0;      ///< Per-use words at the boundary.
    double effective_reuse = 1; ///< Sharing divisor applied.
    double count = 0;           ///< Conversions charged.
    Attributes attrs;           ///< Converter attributes (copied).
};

/**
 * Per-use deliveries of tensor @p t at boundary @p x (below level x):
 * the number of word-uses the boundary serves before any conversion
 * sharing.  For weights/inputs this is the fill demand of the nearest
 * keeper below (or MACs if the tensor streams to compute); for
 * outputs it is the pre-combine upward stream.
 */
double deliveriesAtBoundary(const ArchSpec &arch,
                            const LayerShape &layer,
                            const Mapping &mapping,
                            const TileAnalysis &tiles,
                            const AccessCounts &counts, std::size_t x,
                            Tensor t);

/**
 * Effective conversion sharing for a converter given the layer's
 * stride (see file comment).
 */
double effectiveReuse(const ConverterSpec &conv,
                      const LayerShape &layer);

/**
 * effectiveReuse() on already-resolved attribute values: the single
 * definition of the sharing formula, used by both the full rollup
 * and the precomputed-coefficient quick path so the two stay
 * bit-identical.
 */
inline double
effectiveReuseResolved(double spatial_reuse, double window_reuse,
                       bool strided)
{
    return strided ? spatial_reuse / window_reuse : spatial_reuse;
}

/**
 * Validate resolved reuse attributes (fatal() on violation) -- the
 * single definition of the invariants effectiveReuse() enforces.
 */
void validateReuseAttrs(const std::string &converter_name,
                        double spatial_reuse, double window_reuse);

/** Count all converter actions. */
std::vector<ConverterCount>
computeConverterCounts(const ArchSpec &arch, const LayerShape &layer,
                       const Mapping &mapping, const TileAnalysis &tiles,
                       const AccessCounts &counts);

} // namespace ploop

#endif // PHOTONLOOP_MODEL_CONVERTER_COUNTS_HPP
