#include "model/throughput.hpp"

#include <algorithm>

#include "common/string_util.hpp"

namespace ploop {

double
stridePenalty(const ArchSpec &arch, const LayerShape &layer,
              const Mapping &mapping)
{
    if (!layer.isStrided())
        return 1.0;
    for (std::size_t l = 0; l < arch.numLevels(); ++l) {
        const DimSet wdims = arch.level(l).fanout.window_dims;
        if (wdims.empty())
            continue;
        for (Dim d : kAllDims) {
            if (wdims.contains(d) && mapping.level(l).s(d) > 1) {
                return static_cast<double>(layer.hstride()) *
                       static_cast<double>(layer.wstride());
            }
        }
    }
    return 1.0;
}

ThroughputResult
computeThroughput(const ArchSpec &arch, const LayerShape &layer,
                  const Mapping &mapping, const AccessCounts &counts)
{
    ThroughputResult r;
    r.stride_penalty = stridePenalty(arch, layer, mapping);
    r.compute_cycles =
        static_cast<double>(mapping.totalTemporalSteps()) *
        r.stride_penalty;

    r.bandwidth_cycles = 0.0;
    for (std::size_t l = 0; l < arch.numLevels(); ++l) {
        double bw = arch.level(l).bandwidth_words_per_cycle;
        if (bw <= 0.0)
            continue;
        double words = 0.0;
        for (Tensor t : kAllTensors) {
            const TensorLevelCounts &c = counts.at(l, t);
            words += c.reads + c.writes + c.updates;
        }
        r.bandwidth_cycles = std::max(r.bandwidth_cycles, words / bw);
    }

    r.cycles = std::max(r.compute_cycles, r.bandwidth_cycles);
    if (r.cycles <= 0.0)
        r.cycles = 1.0;
    double peak = arch.peakMacsPerCycle();
    r.macs_per_cycle = counts.macs / r.cycles;
    r.utilization = peak > 0.0 ? r.macs_per_cycle / peak : 0.0;
    r.runtime_s = r.cycles / arch.clockHz();
    return r;
}

std::string
ThroughputResult::str() const
{
    return strFormat(
        "cycles=%.4g (compute %.4g, bw %.4g), %.1f MACs/cycle, "
        "util=%.1f%%, runtime=%.3g s",
        cycles, compute_cycles, bandwidth_cycles, macs_per_cycle,
        utilization * 100.0, runtime_s);
}

} // namespace ploop
