#include "model/energy_rollup.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace ploop {

namespace {

/** Merge a storage level's intrinsic attrs with dynamic ones. */
Attributes
levelAttrs(const StorageLevelSpec &level)
{
    Attributes attrs = level.attrs;
    attrs.set("word_bits", static_cast<double>(level.word_bits));
    if (!attrs.has("capacity_words") && level.capacity_words > 0) {
        attrs.set("capacity_words",
                  static_cast<double>(level.capacity_words));
    }
    return attrs;
}

} // namespace

EnergyBreakdown
computeEnergy(const ArchSpec &arch, const EnergyRegistry &registry,
              const AccessCounts &counts,
              const std::vector<ConverterCount> &converters,
              const ThroughputResult &throughput)
{
    EnergyBreakdown out;

    // Storage levels: read / write / update per tensor.
    for (std::size_t l = 0; l < arch.numLevels(); ++l) {
        const StorageLevelSpec &level = arch.level(l);
        Attributes attrs = levelAttrs(level);
        struct Act
        {
            Action action;
            double TensorLevelCounts::*member;
        };
        static const Act acts[] = {
            {Action::Read, &TensorLevelCounts::reads},
            {Action::Write, &TensorLevelCounts::writes},
            {Action::Update, &TensorLevelCounts::updates},
        };
        for (Tensor t : kAllTensors) {
            const TensorLevelCounts &c = counts.at(l, t);
            for (const Act &act : acts) {
                double n = c.*(act.member);
                if (n <= 0.0)
                    continue;
                EnergyEntry e;
                e.component = level.name;
                e.klass = level.klass;
                e.action = act.action;
                e.tensor = t;
                e.count = n;
                e.energy_j =
                    n * registry.energy(level.klass, act.action, attrs);
                out.entries.push_back(std::move(e));
            }
        }
    }

    // Converters.
    for (const ConverterCount &cc : converters) {
        if (cc.count <= 0.0)
            continue;
        EnergyEntry e;
        e.component = cc.name;
        e.klass = cc.klass;
        e.action = Action::Convert;
        e.crossing = cc.crossing;
        e.tensor = cc.tensor;
        e.count = cc.count;
        e.energy_j =
            cc.count * registry.energy(cc.klass, Action::Convert,
                                       cc.attrs);
        out.entries.push_back(std::move(e));
    }

    // Compute.
    {
        const ComputeSpec &compute = arch.compute();
        EnergyEntry e;
        e.component = compute.name;
        e.klass = compute.klass;
        e.action = Action::Compute;
        e.count = counts.macs;
        e.energy_j = counts.macs * registry.energy(compute.klass,
                                                   Action::Compute,
                                                   compute.attrs);
        out.entries.push_back(std::move(e));
    }

    // Static-power components: P * runtime.
    for (const StaticComponentSpec &s : arch.statics()) {
        EnergyEntry e;
        e.component = s.name;
        e.klass = s.klass;
        e.action = Action::Power;
        e.count = 1;
        double power_w = registry.energy(s.klass, Action::Power,
                                         s.attrs);
        e.energy_j = power_w * throughput.runtime_s;
        out.entries.push_back(std::move(e));
    }

    return out;
}

double
computeArea(const ArchSpec &arch, const EnergyRegistry &registry,
            const AccessCounts &counts,
            const std::vector<ConverterCount> &converters)
{
    double area = 0.0;

    for (std::size_t l = 0; l < arch.numLevels(); ++l) {
        const StorageLevelSpec &level = arch.level(l);
        Attributes attrs = levelAttrs(level);
        area += registry.area(level.klass, attrs) * counts.instances[l];
    }

    // One converter instance per sharing group at the boundary's inner
    // side: (provisioned instances below the boundary) / spatial_reuse.
    // The provisioned hardware is the architectural peak fanout, not
    // the mapping's occupancy: idle converters still occupy area.
    for (const ConverterCount &cc : converters) {
        std::size_t x = cc.boundary;
        double below = counts.instances[x] *
                       static_cast<double>(
                           arch.level(x).fanout.peakInstances());
        double sharing = cc.attrs.getOr("spatial_reuse", 1.0);
        double n = std::max(below / sharing, 1.0);
        area += registry.area(cc.klass, cc.attrs) * n;
    }

    {
        const ComputeSpec &compute = arch.compute();
        area += registry.area(compute.klass, compute.attrs) *
                static_cast<double>(arch.totalComputeInstances());
    }

    for (const StaticComponentSpec &s : arch.statics())
        area += registry.area(s.klass, s.attrs);

    return area;
}

namespace {

/**
 * Resolve one coefficient, deferring estimator rejections: the full
 * rollup only queries actions whose counts are nonzero, so an
 * unsupported-action (or unknown-class) error must not fire at
 * resolution time for actions this architecture never exercises.
 */
double
resolveCoefficient(const EnergyRegistry &registry,
                   const std::string &klass, Action action,
                   const Attributes &attrs)
{
    try {
        return registry.energy(klass, action, attrs);
    } catch (const FatalError &) {
        return std::numeric_limits<double>::quiet_NaN();
    }
}

/** Enforce a deferred coefficient error when its action fires. */
double
requireCoefficient(double coeff, const std::string &klass,
                   const char *action_name)
{
    if (std::isnan(coeff)) {
        fatal("energy model for class '" + klass + "' rejected " +
              action_name +
              " needed by this mapping (run Evaluator::evaluate for "
              "the original error)");
    }
    return coeff;
}

} // namespace

EnergyCoefficients
computeEnergyCoefficients(const ArchSpec &arch,
                          const EnergyRegistry &registry)
{
    EnergyCoefficients co;

    co.levels.reserve(arch.numLevels());
    for (std::size_t l = 0; l < arch.numLevels(); ++l) {
        const StorageLevelSpec &level = arch.level(l);
        Attributes attrs = levelAttrs(level);
        EnergyCoefficients::LevelEnergy e;
        e.klass = level.klass;
        e.read = resolveCoefficient(registry, level.klass,
                                    Action::Read, attrs);
        e.write = resolveCoefficient(registry, level.klass,
                                     Action::Write, attrs);
        e.update = resolveCoefficient(registry, level.klass,
                                      Action::Update, attrs);
        co.levels.push_back(std::move(e));
    }

    // Same iteration order as computeConverterCounts, so the summing
    // loop in computeEnergyTotal replays computeEnergy exactly.
    for (std::size_t x = 0; x < arch.numLevels(); ++x) {
        for (Tensor t : kAllTensors) {
            for (const ConverterSpec &conv :
                 arch.level(x).convertersFor(t)) {
                EnergyCoefficients::ConverterEnergy ce;
                ce.boundary = x;
                ce.tensor = t;
                ce.klass = conv.klass;
                ce.energy_per_conversion = resolveCoefficient(
                    registry, conv.klass, Action::Convert, conv.attrs);
                // Resolve and validate the reuse attributes once;
                // the hot loop then avoids per-eval string-keyed
                // attribute lookups.  Shared helpers keep values
                // (and failures) identical to the full rollup.
                ce.spatial_reuse =
                    conv.attrs.getOr("spatial_reuse", 1.0);
                ce.window_reuse =
                    conv.attrs.getOr("window_reuse", 1.0);
                validateReuseAttrs(conv.name, ce.spatial_reuse,
                                   ce.window_reuse);
                co.converters.push_back(ce);
            }
        }
    }

    const ComputeSpec &compute = arch.compute();
    co.mac_energy =
        registry.energy(compute.klass, Action::Compute, compute.attrs);

    co.static_powers_w.reserve(arch.statics().size());
    for (const StaticComponentSpec &s : arch.statics()) {
        co.static_powers_w.push_back(
            registry.energy(s.klass, Action::Power, s.attrs));
    }
    return co;
}

double
computeEnergyTotal(const EnergyCoefficients &co, const ArchSpec &arch,
                   const LayerShape &layer, const Mapping &mapping,
                   const TileAnalysis &tiles, const AccessCounts &counts,
                   const ThroughputResult &throughput)
{
    double total = 0.0;

    // Storage levels, mirroring computeEnergy's (level, tensor,
    // action) order and its n <= 0 skips.
    for (std::size_t l = 0; l < arch.numLevels(); ++l) {
        const EnergyCoefficients::LevelEnergy &e = co.levels[l];
        for (Tensor t : kAllTensors) {
            const TensorLevelCounts &c = counts.at(l, t);
            if (c.reads > 0.0)
                total += c.reads *
                         requireCoefficient(e.read, e.klass, "reads");
            if (c.writes > 0.0)
                total += c.writes * requireCoefficient(e.write, e.klass,
                                                       "writes");
            if (c.updates > 0.0)
                total += c.updates * requireCoefficient(
                                         e.update, e.klass, "updates");
        }
    }

    // Converters: deliveries computed once per (boundary, tensor)
    // group (the coefficient list is grouped by construction).
    const bool strided = layer.isStrided();
    for (std::size_t i = 0; i < co.converters.size();) {
        const std::size_t x = co.converters[i].boundary;
        const Tensor t = co.converters[i].tensor;
        double deliv = deliveriesAtBoundary(arch, layer, mapping, tiles,
                                            counts, x, t);
        for (; i < co.converters.size() &&
               co.converters[i].boundary == x &&
               co.converters[i].tensor == t;
             ++i) {
            const EnergyCoefficients::ConverterEnergy &ce =
                co.converters[i];
            double count =
                deliv / effectiveReuseResolved(ce.spatial_reuse,
                                               ce.window_reuse,
                                               strided);
            if (count > 0.0)
                total += count * requireCoefficient(
                                     ce.energy_per_conversion,
                                     ce.klass, "conversions");
        }
    }

    total += counts.macs * co.mac_energy;

    for (double power_w : co.static_powers_w)
        total += power_w * throughput.runtime_s;

    return total;
}

double
EnergyBreakdown::total() const
{
    double e = 0;
    for (const auto &entry : entries)
        e += entry.energy_j;
    return e;
}

std::map<std::string, double>
EnergyBreakdown::byComponent() const
{
    std::map<std::string, double> out;
    for (const auto &entry : entries)
        out[entry.component] += entry.energy_j;
    return out;
}

std::string
EnergyBreakdown::str() const
{
    std::string out;
    for (const auto &e : entries) {
        out += strFormat(
            "  %-16s %-10s %-8s %-8s count=%-10s %s\n",
            e.component.c_str(), e.klass.c_str(), actionName(e.action),
            e.tensor ? tensorName(*e.tensor) : "-",
            formatCount(e.count).c_str(),
            formatEnergy(e.energy_j).c_str());
    }
    out += strFormat("  total: %s\n", formatEnergy(total()).c_str());
    return out;
}

} // namespace ploop
