#include "model/energy_rollup.hpp"

#include <algorithm>

#include "common/string_util.hpp"

namespace ploop {

namespace {

/** Merge a storage level's intrinsic attrs with dynamic ones. */
Attributes
levelAttrs(const StorageLevelSpec &level)
{
    Attributes attrs = level.attrs;
    attrs.set("word_bits", static_cast<double>(level.word_bits));
    if (!attrs.has("capacity_words") && level.capacity_words > 0) {
        attrs.set("capacity_words",
                  static_cast<double>(level.capacity_words));
    }
    return attrs;
}

} // namespace

EnergyBreakdown
computeEnergy(const ArchSpec &arch, const EnergyRegistry &registry,
              const AccessCounts &counts,
              const std::vector<ConverterCount> &converters,
              const ThroughputResult &throughput)
{
    EnergyBreakdown out;

    // Storage levels: read / write / update per tensor.
    for (std::size_t l = 0; l < arch.numLevels(); ++l) {
        const StorageLevelSpec &level = arch.level(l);
        Attributes attrs = levelAttrs(level);
        struct Act
        {
            Action action;
            double TensorLevelCounts::*member;
        };
        static const Act acts[] = {
            {Action::Read, &TensorLevelCounts::reads},
            {Action::Write, &TensorLevelCounts::writes},
            {Action::Update, &TensorLevelCounts::updates},
        };
        for (Tensor t : kAllTensors) {
            const TensorLevelCounts &c = counts.at(l, t);
            for (const Act &act : acts) {
                double n = c.*(act.member);
                if (n <= 0.0)
                    continue;
                EnergyEntry e;
                e.component = level.name;
                e.klass = level.klass;
                e.action = act.action;
                e.tensor = t;
                e.count = n;
                e.energy_j =
                    n * registry.energy(level.klass, act.action, attrs);
                out.entries.push_back(std::move(e));
            }
        }
    }

    // Converters.
    for (const ConverterCount &cc : converters) {
        if (cc.count <= 0.0)
            continue;
        EnergyEntry e;
        e.component = cc.name;
        e.klass = cc.klass;
        e.action = Action::Convert;
        e.crossing = cc.crossing;
        e.tensor = cc.tensor;
        e.count = cc.count;
        e.energy_j =
            cc.count * registry.energy(cc.klass, Action::Convert,
                                       cc.attrs);
        out.entries.push_back(std::move(e));
    }

    // Compute.
    {
        const ComputeSpec &compute = arch.compute();
        EnergyEntry e;
        e.component = compute.name;
        e.klass = compute.klass;
        e.action = Action::Compute;
        e.count = counts.macs;
        e.energy_j = counts.macs * registry.energy(compute.klass,
                                                   Action::Compute,
                                                   compute.attrs);
        out.entries.push_back(std::move(e));
    }

    // Static-power components: P * runtime.
    for (const StaticComponentSpec &s : arch.statics()) {
        EnergyEntry e;
        e.component = s.name;
        e.klass = s.klass;
        e.action = Action::Power;
        e.count = 1;
        double power_w = registry.energy(s.klass, Action::Power,
                                         s.attrs);
        e.energy_j = power_w * throughput.runtime_s;
        out.entries.push_back(std::move(e));
    }

    return out;
}

double
computeArea(const ArchSpec &arch, const EnergyRegistry &registry,
            const AccessCounts &counts,
            const std::vector<ConverterCount> &converters)
{
    double area = 0.0;

    for (std::size_t l = 0; l < arch.numLevels(); ++l) {
        const StorageLevelSpec &level = arch.level(l);
        Attributes attrs = levelAttrs(level);
        area += registry.area(level.klass, attrs) * counts.instances[l];
    }

    // One converter instance per sharing group at the boundary's inner
    // side: (provisioned instances below the boundary) / spatial_reuse.
    // The provisioned hardware is the architectural peak fanout, not
    // the mapping's occupancy: idle converters still occupy area.
    for (const ConverterCount &cc : converters) {
        std::size_t x = cc.boundary;
        double below = counts.instances[x] *
                       static_cast<double>(
                           arch.level(x).fanout.peakInstances());
        double sharing = cc.attrs.getOr("spatial_reuse", 1.0);
        double n = std::max(below / sharing, 1.0);
        area += registry.area(cc.klass, cc.attrs) * n;
    }

    {
        const ComputeSpec &compute = arch.compute();
        area += registry.area(compute.klass, compute.attrs) *
                static_cast<double>(arch.totalComputeInstances());
    }

    for (const StaticComponentSpec &s : arch.statics())
        area += registry.area(s.klass, s.attrs);

    return area;
}

double
EnergyBreakdown::total() const
{
    double e = 0;
    for (const auto &entry : entries)
        e += entry.energy_j;
    return e;
}

std::map<std::string, double>
EnergyBreakdown::byComponent() const
{
    std::map<std::string, double> out;
    for (const auto &entry : entries)
        out[entry.component] += entry.energy_j;
    return out;
}

std::string
EnergyBreakdown::str() const
{
    std::string out;
    for (const auto &e : entries) {
        out += strFormat(
            "  %-16s %-10s %-8s %-8s count=%-10s %s\n",
            e.component.c_str(), e.klass.c_str(), actionName(e.action),
            e.tensor ? tensorName(*e.tensor) : "-",
            formatCount(e.count).c_str(),
            formatEnergy(e.energy_j).c_str());
    }
    out += strFormat("  total: %s\n", formatEnergy(total()).c_str());
    return out;
}

} // namespace ploop
