/**
 * @file
 * Consistent hash ring with virtual nodes: the placement function of
 * the cluster router.  Each worker contributes `vnodes` points on a
 * 64-bit ring (mix64 over the worker name and the vnode ordinal); a
 * request fingerprint maps to the first point clockwise from it.
 *
 * Why consistent hashing and not fingerprint % N: membership
 * changes.  When a worker is ejected (health probe failures) or
 * re-admitted, modulo would reshuffle nearly every fingerprint --
 * every worker's warm ResultCache/EvalCache turns cold at once.
 * With vnodes, removing one of N workers remaps only ~1/N of the
 * keyspace (asserted over >= 10k fingerprints in the tests), so the
 * surviving workers keep their cache affinity.
 *
 * Determinism: the ring is a pure function of the worker-name set
 * and the vnode count -- no RNG, no insertion-order dependence, no
 * process-lifetime state -- so a restarted router routes every
 * fingerprint to the same worker as its predecessor (tested), and
 * two routers in front of the same workers agree.
 *
 * Not thread-safe: owned and mutated only by the router's single
 * poll-loop thread.
 */

#ifndef PHOTONLOOP_CLUSTER_HASH_RING_HPP
#define PHOTONLOOP_CLUSTER_HASH_RING_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace ploop {

/** See file comment. */
class HashRing
{
  public:
    /** 64 points per worker keeps the max/min keyspace share under
     *  1.5x at practical worker counts (tested at 10k keys) while
     *  the whole ring stays a few hundred entries -- lookups are a
     *  binary search over a cache-resident vector. */
    static constexpr unsigned kDefaultVnodes = 64;

    explicit HashRing(unsigned vnodes = kDefaultVnodes);

    /** Add/remove a worker by name (idempotent). */
    void add(const std::string &worker);
    void remove(const std::string &worker);

    bool contains(const std::string &worker) const;
    std::size_t size() const { return workers_.size(); }
    bool empty() const { return workers_.empty(); }
    unsigned vnodes() const { return vnodes_; }

    /** Sorted worker names (the ring's membership view). */
    const std::vector<std::string> &workers() const
    {
        return workers_;
    }

    /**
     * The worker owning @p key: the first ring point clockwise.
     * nullptr when the ring is empty.  The pointer stays valid until
     * the next add()/remove().
     */
    const std::string *lookup(std::uint64_t key) const;

    /**
     * The next DISTINCT worker clockwise from @p key, skipping
     * @p skip -- the failover target when @p skip just died mid-
     * request.  nullptr when no other worker exists.
     */
    const std::string *next(std::uint64_t key,
                            const std::string &skip) const;

  private:
    struct Point
    {
        std::uint64_t hash;
        std::uint32_t worker; ///< Index into workers_.
    };

    /** Recompute every point from the membership set.  O(W * vnodes
     *  * log) on each membership change -- membership changes are
     *  health transitions, i.e. rare. */
    void rebuild();

    unsigned vnodes_;
    std::vector<std::string> workers_; ///< Sorted, unique.
    std::vector<Point> points_;        ///< Sorted by (hash, worker).
};

} // namespace ploop

#endif // PHOTONLOOP_CLUSTER_HASH_RING_HPP
