#include "cluster/backend.hpp"

#include <algorithm>

#include <poll.h>
#include <unistd.h>

namespace ploop {

Backend::Backend(BackendConfig cfg, const Clock *clock)
    : cfg_(std::move(cfg)), clock_(clock)
{}

int
Backend::fd() const
{
    return conn_ ? conn_->fd() : -1;
}

short
Backend::pollEvents() const
{
    short events = 0;
    if (state_ == State::Connecting)
        events |= POLLOUT;
    if (state_ == State::Connected) {
        events |= POLLIN;
        if (out_off_ < out_.size())
            events |= POLLOUT;
    }
    return events;
}

bool
Backend::ensureConnected()
{
    if (state_ != State::Disconnected)
        return true;
    const std::uint64_t now = clockOrSteady(clock_).nowNs();
    if (now < next_attempt_ns_)
        return false; // still backing off
    // A post-failure attempt is a reconnect: record it (with the
    // backoff that gated it) before its outcome is known, so a
    // worker that never comes back still leaves a record of every
    // try.  Backoff keeps the event rate bounded.
    if (cfg_.event_log && connect_failures_ > 0)
        cfg_.event_log->emit(
            "reconnect_attempt",
            {{"worker", JsonValue::string(cfg_.name)},
             {"attempt",
              JsonValue::number(double(connect_failures_ + 1))},
             {"backoff_ms",
              JsonValue::number(double(last_backoff_ms_))}});
    bool in_progress = false;
    int fd = startLoopbackConnect(cfg_.port, in_progress);
    if (fd < 0) {
        ++connect_failures_;
        last_backoff_ms_ = std::min<std::uint64_t>(
            std::uint64_t(cfg_.backoff_base_ms)
                << std::min(connect_failures_, 16u),
            cfg_.backoff_cap_ms);
        next_attempt_ns_ = now + last_backoff_ms_ * 1000000ull;
        return false;
    }
    conn_ = std::make_unique<Connection>(fd);
    splitter_ = LineSplitter();
    out_.clear();
    out_off_ = 0;
    if (in_progress) {
        state_ = State::Connecting;
    } else {
        state_ = State::Connected;
        connect_failures_ = 0;
        if (ever_connected_)
            ++reconnects_;
        ever_connected_ = true;
    }
    return true;
}

bool
Backend::send(std::uint64_t corr, const std::string &line,
              std::vector<std::uint64_t> &failed)
{
    if (!ensureConnected())
        return false;
    out_ += line;
    out_ += '\n';
    inflight_.push_back(corr);
    if (state_ == State::Connected && !flushOut()) {
        // The connection died under this very write.  The false
        // return covers THIS corr (the caller fails it over), so
        // take it back out, then harvest the rest.
        inflight_.pop_back();
        fail(failed);
        return false;
    }
    return true;
}

bool
Backend::flushOut()
{
    if (out_off_ >= out_.size()) {
        // Nothing pending; reclaim the buffer so a long session
        // cannot grow it monotonically.
        out_.clear();
        out_off_ = 0;
        return true;
    }
    IoStatus st = conn_->writeSome(out_, out_off_);
    if (st == IoStatus::Ok) {
        out_.clear();
        out_off_ = 0;
        return true;
    }
    if (st == IoStatus::WouldBlock)
        return true; // POLLOUT re-arms via pollEvents()
    dropConnection();
    return false;
}

void
Backend::onReadable(std::vector<std::string> &responses,
                    std::vector<std::uint64_t> &failed)
{
    if (state_ != State::Connected || !conn_)
        return;
    std::string data;
    IoStatus st = conn_->readAvailable(data);
    if (!data.empty()) {
        bool overflow = false;
        splitter_.append(data.data(), data.size(), responses,
                         overflow);
        // An over-long response line poisons the stream (worker
        // misbehaving); treat it as a dead connection.
        if (overflow)
            st = IoStatus::Error;
    }
    if (st == IoStatus::Closed || st == IoStatus::Error)
        fail(failed);
}

void
Backend::onWritable(std::vector<std::uint64_t> &failed)
{
    if (state_ == State::Connecting) {
        if (!finishLoopbackConnect(conn_->fd())) {
            fail(failed); // dropConnection() schedules the backoff
            return;
        }
        state_ = State::Connected;
        connect_failures_ = 0;
        if (ever_connected_)
            ++reconnects_;
        ever_connected_ = true;
    }
    if (state_ == State::Connected && !flushOut())
        fail(failed);
}

void
Backend::fail(std::vector<std::uint64_t> &failed)
{
    for (std::uint64_t corr : inflight_)
        failed.push_back(corr);
    inflight_.clear();
    dropConnection();
}

void
Backend::completed(std::uint64_t corr)
{
    auto it = std::find(inflight_.begin(), inflight_.end(), corr);
    if (it != inflight_.end())
        inflight_.erase(it);
}

void
Backend::dropConnection()
{
    if (!conn_)
        return;
    conn_.reset();
    state_ = State::Disconnected;
    out_.clear();
    out_off_ = 0;
    splitter_ = LineSplitter();
    // Backoff before the next attempt: a worker that just died will
    // not be back within microseconds, and a tight reconnect spin
    // would melt the poll loop.
    ++connect_failures_;
    last_backoff_ms_ = std::min<std::uint64_t>(
        std::uint64_t(cfg_.backoff_base_ms)
            << std::min(connect_failures_, 16u),
        cfg_.backoff_cap_ms);
    next_attempt_ns_ = clockOrSteady(clock_).nowNs() +
                       last_backoff_ms_ * 1000000ull;
}

} // namespace ploop
