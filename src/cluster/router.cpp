#include "cluster/router.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <set>

#include <poll.h>

#include "api/fields.hpp"
#include "api/fingerprint.hpp"
#include "common/math_util.hpp"
#include "common/string_util.hpp"
#include "service/serve_session.hpp"

namespace ploop {

ClusterRouter::ClusterRouter(RouterConfig cfg)
    : cfg_(std::move(cfg)), ring_(cfg_.vnodes),
      health_(cfg_.health, cfg_.clock)
{
    started_ns_ = clockOrSteady(cfg_.clock).nowNs();
    for (std::uint16_t port : cfg_.worker_ports) {
        std::string name =
            strFormat("127.0.0.1:%u", unsigned(port));
        if (backends_.count(name))
            continue; // duplicate port: one backend is plenty
        BackendConfig bc;
        bc.name = name;
        bc.port = port;
        bc.backoff_base_ms = cfg_.backoff_base_ms;
        bc.backoff_cap_ms = cfg_.backoff_cap_ms;
        bc.event_log = cfg_.event_log;
        backends_.emplace(
            std::piecewise_construct, std::forward_as_tuple(name),
            std::forward_as_tuple(std::move(bc), cfg_.clock));
        worker_names_.push_back(name);
        ring_.add(name);
        health_.addWorker(name);
    }
    std::sort(worker_names_.begin(), worker_names_.end());
    if (cfg_.observe)
        setupMetrics();
}

ClusterRouter::~ClusterRouter()
{
    if (metrics_)
        for (std::uint64_t id : metric_ids_)
            metrics_->remove(id);
}

void
ClusterRouter::setupMetrics()
{
    metrics_ = std::make_unique<MetricsRegistry>();
    failovers_ = &metrics_->counter(
        "ploop_router_failovers_total",
        "In-flight requests re-dispatched to the ring's next "
        "worker.");
    probes_total_ = &metrics_->counter(
        "ploop_router_probes_total",
        "Health probes sent to workers.");
    probe_failures_ = &metrics_->counter(
        "ploop_router_probe_failures_total",
        "Probe failures counted toward ejection (timeouts, error "
        "responses, transport failures).");
    ejections_ = &metrics_->counter(
        "ploop_router_worker_ejections_total",
        "Healthy -> unhealthy transitions (worker left the ring).");
    readmissions_ = &metrics_->counter(
        "ploop_router_worker_readmissions_total",
        "Unhealthy -> healthy transitions (worker re-joined the "
        "ring).");
    request_hist_ = &metrics_->histogram(
        "ploop_router_request_seconds",
        "Router-observed latency from client line to response "
        "delivery.");
    // Gauge callbacks read router state without locks: they run only
    // inside renderPrometheus(), which the single router thread
    // calls while finalizing a `metrics` fanout.
    metric_ids_.push_back(metrics_->gauge(
        "ploop_router_workers_total", "Configured workers.",
        [this] { return double(worker_names_.size()); }));
    metric_ids_.push_back(metrics_->gauge(
        "ploop_router_workers_healthy",
        "Workers currently in the ring.",
        [this] { return double(health_.healthyCount()); }));
    metric_ids_.push_back(metrics_->gauge(
        "ploop_router_connections_open",
        "Client connections open now.",
        [this] { return double(clients_.size()); }));
    metric_ids_.push_back(metrics_->gauge(
        "ploop_router_inflight_requests",
        "Correlation ids outstanding on workers (probes included).",
        [this] { return double(pending_.size()); }));
    metric_ids_.push_back(metrics_->counterFn(
        "ploop_router_backend_reconnects_total",
        "Completed worker reconnects after the initial connect.",
        [this] {
            double n = 0;
            for (const auto &[name, b] : backends_) {
                (void)name;
                n += double(b.reconnects());
            }
            return n;
        }));
    // Per-worker in-flight: backends_ never gains or loses entries
    // after construction, so the captured pointers stay valid for
    // the registry's life (the destructor removes the ids anyway).
    for (const std::string &name : worker_names_) {
        const Backend *b = &backends_.at(name);
        metric_ids_.push_back(metrics_->gauge(
            "ploop_router_upstream_inflight",
            "Correlation ids outstanding on this worker right now "
            "(probes included).",
            [b] { return double(b->inflight()); },
            {{"worker", name}}));
    }
}

std::string
ClusterRouter::clampOpLabel(const std::string &op)
{
    static const char *const kKnown[] = {
        "ping",  "capabilities", "evaluate", "search",
        "sweep", "network",      "stats",    "health",
        "metrics", "save_cache", "shutdown"};
    for (const char *k : kKnown)
        if (op == k)
            return op;
    return "other";
}

Histogram &
ClusterRouter::upstreamHist(const std::string &worker,
                            const std::string &op)
{
    auto key = std::make_pair(worker, clampOpLabel(op));
    auto it = upstream_hists_.find(key);
    if (it != upstream_hists_.end())
        return *it->second;
    Histogram &h = metrics_->histogram(
        "ploop_router_upstream_latency_seconds",
        "Router-observed upstream latency from first dispatch to "
        "response, by worker and op (failover attempts included; "
        "unknown ops as \"other\").",
        {{"worker", key.first}, {"op", key.second}});
    upstream_hists_[std::move(key)] = &h;
    return h;
}

void
ClusterRouter::logEvent(const char *event, EventLog::Fields fields)
{
    if (cfg_.event_log)
        cfg_.event_log->emit(event, fields);
}

Counter &
ClusterRouter::opCounter(const std::string &op)
{
    const std::string label = clampOpLabel(op);
    auto it = op_counters_.find(label);
    if (it != op_counters_.end())
        return *it->second;
    Counter &c = metrics_->counter(
        "ploop_router_requests_total",
        "Client request lines by op (unknown ops as \"other\").",
        {{"op", label}});
    op_counters_[label] = &c;
    return c;
}

Counter &
ClusterRouter::rejectCounter(const std::string &code)
{
    auto it = reject_counters_.find(code);
    if (it != reject_counters_.end())
        return *it->second;
    Counter &c = metrics_->counter(
        "ploop_router_rejects_total",
        "Rejections answered by the router itself, by code.",
        {{"code", code}});
    reject_counters_[code] = &c;
    return c;
}

Counter &
ClusterRouter::forwardCounter(const std::string &worker)
{
    auto it = forward_counters_.find(worker);
    if (it != forward_counters_.end())
        return *it->second;
    Counter &c = metrics_->counter(
        "ploop_router_forwards_total",
        "Request lines forwarded, by target worker (initial "
        "dispatch; failover resends count under "
        "ploop_router_failovers_total).",
        {{"worker", worker}});
    forward_counters_[worker] = &c;
    return c;
}

bool
ClusterRouter::open(std::string *error)
{
    return listener_.open(cfg_.port, error);
}

std::uint64_t
ClusterRouter::run()
{
    const Clock &clk = clockOrSteady(cfg_.clock);
    enum : int { kListener, kWorker, kClient };
    struct Ref
    {
        int kind;
        std::uint64_t id;
        const std::string *name;
    };
    // Hoisted out of the loop: a lockstep round trip costs at least
    // two iterations, so per-iteration vector churn is hot-path.
    std::vector<pollfd> fds;
    std::vector<Ref> refs;
    std::vector<std::string> responses;
    std::vector<std::uint64_t> failed;
    while (true) {
        if (!draining_ && stop_.load(std::memory_order_relaxed))
            beginDrain();
        if (!draining_)
            sendProbes();

        fds.clear();
        refs.clear();
        if (listener_.isOpen() && !draining_) {
            fds.push_back(pollfd{listener_.fd(), POLLIN, 0});
            refs.push_back(Ref{kListener, 0, nullptr});
        }
        for (auto &[name, b] : backends_) {
            short ev = b.pollEvents();
            if (b.fd() >= 0 && ev) {
                fds.push_back(pollfd{b.fd(), ev, 0});
                refs.push_back(Ref{kWorker, 0, &name});
            }
        }
        for (auto &[id, c] : clients_) {
            if (c.dead)
                continue;
            short ev = 0;
            // Backpressure: past the per-client in-flight cap the
            // socket stops being read -- requests back up into the
            // client's TCP buffers, not router memory.
            if (!c.input_closed &&
                c.slots.size() < cfg_.max_client_inflight)
                ev |= POLLIN;
            if (c.out_off < c.out.size())
                ev |= POLLOUT;
            if (!ev)
                continue;
            fds.push_back(pollfd{c.conn->fd(), ev, 0});
            refs.push_back(Ref{kClient, id, nullptr});
        }

        // Short timeout: probe schedules, reconnect backoffs and the
        // drain deadline advance on time, not on socket traffic.
        int rc = ::poll(fds.data(), nfds_t(fds.size()), 25);
        if (rc < 0 && errno != EINTR)
            break; // unrecoverable poll failure
        if (rc < 0)
            continue;

        for (std::size_t i = 0; i < fds.size(); ++i) {
            if (!fds[i].revents)
                continue;
            const Ref &ref = refs[i];
            if (ref.kind == kListener) {
                acceptPending();
            } else if (ref.kind == kWorker) {
                Backend &b = backends_.at(*ref.name);
                responses.clear();
                failed.clear();
                const bool was_up =
                    b.state() != Backend::State::Disconnected;
                if (fds[i].revents & POLLOUT)
                    b.onWritable(failed);
                if (fds[i].revents & (POLLIN | POLLHUP | POLLERR))
                    b.onReadable(responses, failed);
                // Responses first: lines read in the same slice as
                // an EOF were still answered.
                for (const std::string &r : responses)
                    handleWorkerResponse(*ref.name, r);
                if (was_up &&
                    b.state() == Backend::State::Disconnected)
                    strike(*ref.name, failed);
                drainFailed(failed);
            } else {
                auto it = clients_.find(ref.id);
                if (it == clients_.end())
                    continue;
                if ((fds[i].revents &
                     (POLLIN | POLLHUP | POLLERR)) &&
                    !it->second.input_closed)
                    readFromClient(it->second);
            }
        }

        flushClients();
        reapClients();

        if (draining_) {
            if (!busyPending() && allClientsFlushed())
                break;
            if (clk.nowNs() >= drain_deadline_ns_)
                break; // a client that never reads its responses
        }
    }
    clients_.clear();
    listener_.close();
    logEvent("drain_end",
             {{"accepted",
               JsonValue::number(double(accepted_))}});
    return accepted_;
}

void
ClusterRouter::acceptPending()
{
    for (;;) {
        int fd = listener_.acceptFd();
        if (fd < 0)
            return;
        if (clients_.size() >= cfg_.max_connections) {
            // Greet-and-close (NetServer's idiom): one line fits a
            // fresh socket's buffer, so the client learns why.
            Connection doomed(fd);
            std::string line =
                protocolErrorResponse(
                    "",
                    strFormat("router full (max %zu connections)",
                              cfg_.max_connections),
                    "server_full") +
                "\n";
            std::size_t off = 0;
            doomed.writeSome(line, off);
            if (metrics_)
                rejectCounter("server_full").inc();
            continue;
        }
        const std::uint64_t id = next_client_++;
        Client c;
        c.id = id;
        c.conn = std::make_unique<Connection>(fd);
        clients_.emplace(id, std::move(c));
        ++accepted_;
    }
}

void
ClusterRouter::readFromClient(Client &c)
{
    // Scratch buffers are members: one POLLIN fires per lockstep
    // round trip, so per-call allocation here is hot-path churn.
    scratch_data_.clear();
    scratch_lines_.clear();
    IoStatus st = c.conn->readAvailable(scratch_data_);
    bool overflow = false;
    if (!scratch_data_.empty())
        c.in.append(scratch_data_.data(), scratch_data_.size(),
                    scratch_lines_, overflow);
    for (std::string &line : scratch_lines_)
        handleClientLine(c, std::move(line));
    if (overflow) {
        // Protocol violation: answer (correlatably) and stop
        // reading, exactly like NetServer.
        const std::uint64_t seq = newSlot(c);
        if (metrics_)
            rejectCounter("protocol").inc();
        resolve(c.id, seq,
                protocolErrorResponse(
                    "",
                    strFormat("request line exceeds %zu bytes",
                              LineSplitter::kMaxLineBytes)));
        c.input_closed = true;
    }
    if (st == IoStatus::Closed) {
        // Half-close: answers for everything already received still
        // get delivered before the reap.
        c.input_closed = true;
    } else if (st == IoStatus::Error) {
        c.input_closed = true;
        c.dead = true;
    }
}

std::uint64_t
ClusterRouter::newSlot(Client &c)
{
    const std::uint64_t seq = c.next_seq++;
    c.slots.push_back(Slot{seq, false, std::string()});
    return seq;
}

void
ClusterRouter::handleClientLine(Client &c, std::string line)
{
    const std::uint64_t seq = newSlot(c);
    if (draining_) {
        if (metrics_)
            rejectCounter("draining").inc();
        resolve(c.id, seq,
                protocolErrorResponse(line, "router is draining",
                                      "draining"));
        return;
    }
    std::string err;
    std::optional<JsonValue> parsed = parseJson(line, &err);
    if (!parsed) {
        // Same bytes a worker would answer (same parser, same
        // message; protocolErrorResponse cannot echo op/id from an
        // unparseable line).
        if (metrics_) {
            opCounter("").inc();
            rejectCounter("protocol").inc();
        }
        resolve(c.id, seq,
                protocolErrorResponse(line, "bad JSON: " + err));
        return;
    }
    if (!parsed->isObject()) {
        if (metrics_) {
            opCounter("").inc();
            rejectCounter("protocol").inc();
        }
        resolve(c.id, seq,
                protocolErrorResponse(line,
                                      "request must be an object"));
        return;
    }
    const JsonValue *opv = parsed->get("op");
    const std::string op =
        opv && opv->isString() ? opv->asString() : std::string();
    if (metrics_)
        opCounter(op).inc();

    if (op == "ping" || op == "health" || op == "shutdown") {
        handleLocal(c, seq, *parsed, op);
        return;
    }
    if (op == "stats" || op == "metrics" || op == "save_cache") {
        startFanout(c, seq, op, line, *parsed);
        return;
    }
    std::uint64_t fp;
    if (std::optional<std::uint64_t> f =
            requestLineFingerprint(*parsed)) {
        fp = *f;
    } else if (op == "capabilities") {
        // A fixed ring position: "any healthy worker", chosen
        // deterministically.
        fp = mix64(stringValueHash(op));
    } else {
        // Unknown/missing op: forward by raw-line hash so the WORKER
        // generates the canonical error response.
        fp = mix64(stringValueHash(line));
    }
    forward(c, seq, std::move(line), *parsed, fp);
}

void
ClusterRouter::handleLocal(Client &c, std::uint64_t seq,
                           const JsonValue &parsed,
                           const std::string &op)
{
    JsonValue resp = JsonValue::object();
    if (op == "ping") {
        // Byte-identical to a worker's ping (the smoke asserts
        // identity against a direct session).
        resp.set("ok", JsonValue::boolean(true));
    } else if (op == "health") {
        const std::size_t total = health_.workerCount();
        const std::size_t healthy = health_.healthyCount();
        resp.set("ok", JsonValue::boolean(true));
        resp.set("status",
                 JsonValue::string(healthy == total ? "ok"
                                   : healthy > 0   ? "degraded"
                                                   : "down"));
        resp.set("workers_total", JsonValue::number(double(total)));
        resp.set("workers_healthy",
                 JsonValue::number(double(healthy)));
        resp.set("uptime_ms",
                 JsonValue::number(
                     double(clockOrSteady(cfg_.clock).nowNs() -
                            started_ns_) /
                     1e6));
    } else { // shutdown
        resp.set("ok", JsonValue::boolean(true));
        resp.set("detail",
                 JsonValue::string(
                     "router draining; workers keep running"));
        beginDrain();
    }
    // Echo exactly like ServeSession::handleLine does.
    const JsonValue *opv = parsed.get("op");
    if (opv && opv->isString() && !opv->asString().empty())
        resp.set("op", *opv);
    if (const JsonValue *id = parsed.get("id"))
        resp.set("id", *id);
    resolve(c.id, seq, resp.serialize());
}

void
ClusterRouter::startFanout(Client &c, std::uint64_t seq,
                           const std::string &op,
                           const std::string &line,
                           const JsonValue &parsed)
{
    const std::uint64_t fid = next_fanout_++;
    Fanout f;
    f.client = c.id;
    f.seq = seq;
    f.op = op;
    f.line = line;
    const JsonValue *id = parsed.get("id");
    f.had_id = id != nullptr;
    if (id)
        f.original_id = *id;
    f.enqueued_ns = clockOrSteady(cfg_.clock).nowNs();
    // Copy the healthy set: sends below can eject a worker and
    // rebuild the ring mid-iteration.
    const std::vector<std::string> targets = ring_.workers();
    for (const std::string &w : targets) {
        Fanout::Part part;
        part.worker = w;
        f.parts.push_back(std::move(part));
    }
    f.remaining = f.parts.size();
    auto [fit, inserted] = fanouts_.emplace(fid, std::move(f));
    (void)inserted;

    Fanout &group = fit->second;
    std::vector<std::uint64_t> collateral;
    for (Fanout::Part &part : group.parts) {
        const std::uint64_t corr = next_corr_++;
        JsonValue fwd = parsed;
        fwd.replace("id", JsonValue::number(double(corr)));
        Pending p;
        p.kind = PendingKind::FanoutPart;
        p.worker = part.worker;
        p.fanout = fid;
        pending_.emplace(corr, std::move(p));
        if (!sendTo(part.worker, corr, fwd.serialize(),
                    collateral)) {
            pending_.erase(corr);
            part.done = true;
            part.failed = true;
            if (group.remaining > 0)
                --group.remaining;
        }
    }
    // An empty ring (or every send refused) still answers: the
    // router's own share -- stats/metrics -- plus per-worker errors.
    if (group.remaining == 0)
        finalizeFanout(fid);
    drainFailed(collateral);
}

namespace {

/**
 * Byte surgery twin of JsonValue::replace("id", corr) +
 * serialize(), for the forward hot path: rewrite the TOP-LEVEL "id"
 * member of the serialized object in @p line to @p corr (or append
 * one), without re-serializing the document -- the parse already
 * happened for fingerprinting; re-emitting every number through
 * %.17g again is the expensive part.  The walk is string-aware
 * (braces occur raw inside JSON strings; quotes do not, they are
 * escaped), so a key match is always structural.  False when the
 * line's shape defeats the scan -- the caller falls back to the
 * parser path, which handles anything parseJson accepted.
 */
bool
spliceTopLevelId(const std::string &line, std::uint64_t corr,
                 std::string &out)
{
    const std::size_t n = line.size();
    char digits[24];
    const int dn =
        std::snprintf(digits, sizeof(digits), "%llu",
                      static_cast<unsigned long long>(corr));
    int depth = 0;
    bool in_str = false, esc = false;
    std::size_t key_pos = std::string::npos; // of the '"' in "id"
    std::size_t val_start = 0, val_end = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const char ch = line[i];
        if (in_str) {
            if (esc)
                esc = false;
            else if (ch == '\\')
                esc = true;
            else if (ch == '"')
                in_str = false;
            continue;
        }
        if (ch == '"') {
            if (depth == 1 && key_pos == std::string::npos &&
                line.compare(i, 5, "\"id\":") == 0) {
                key_pos = i;
                std::size_t v = i + 5;
                while (v < n &&
                       (line[v] == ' ' || line[v] == '\t'))
                    ++v;
                if (v >= n)
                    return false;
                // Value extent: to the next top-level ',' or the
                // closing '}' (id values are primitives in practice;
                // nested values are tracked anyway).
                int vdepth = 0;
                bool vstr = false, vesc = false;
                std::size_t e = v;
                for (; e < n; ++e) {
                    const char vc = line[e];
                    if (vstr) {
                        if (vesc)
                            vesc = false;
                        else if (vc == '\\')
                            vesc = true;
                        else if (vc == '"')
                            vstr = false;
                        continue;
                    }
                    if (vc == '"')
                        vstr = true;
                    else if (vc == '{' || vc == '[')
                        ++vdepth;
                    else if (vc == '}' || vc == ']') {
                        if (vdepth == 0)
                            break;
                        --vdepth;
                    } else if (vc == ',' && vdepth == 0)
                        break;
                }
                if (e >= n)
                    return false;
                val_start = v;
                val_end = e;
                i = e - 1; // resume the outer walk at the delimiter
                continue;
            }
            in_str = true;
            continue;
        }
        if (ch == '{' || ch == '[')
            ++depth;
        else if (ch == '}' || ch == ']')
            --depth;
    }
    if (in_str || depth != 0)
        return false;
    out.clear();
    out.reserve(n + std::size_t(dn) + 8);
    if (key_pos != std::string::npos) {
        out.append(line, 0, val_start);
        out.append(digits, std::size_t(dn));
        out.append(line, val_end, std::string::npos);
        return true;
    }
    // No id member: append one before the final '}' (what
    // JsonValue::replace on an absent key does).
    const std::size_t close = line.find_last_of('}');
    if (close == std::string::npos)
        return false;
    const std::size_t open = line.find('{');
    bool empty_object = true;
    for (std::size_t i = open + 1; i < close && empty_object; ++i)
        empty_object = line[i] == ' ' || line[i] == '\t';
    out.append(line, 0, close);
    if (!empty_object)
        out += ',';
    out += "\"id\":";
    out.append(digits, std::size_t(dn));
    out.append(line, close, std::string::npos);
    return true;
}

} // namespace

void
ClusterRouter::forward(Client &c, std::uint64_t seq,
                       std::string line, const JsonValue &parsed,
                       std::uint64_t fingerprint)
{
    // Tracing rides the transport, mirroring the worker's own rule:
    // `trace: true` on the request, or the router-side slow-request
    // log (which needs the breakdown before it knows the request
    // was slow, so arming it traces every forward).  A NON-BOOL
    // trace value is left untouched -- the worker generates its
    // canonical error for it, byte-identical to a direct session.
    const JsonValue *tv = parsed.get("trace");
    const bool trace_invalid = tv && !tv->isBool();
    const bool want_trace = tv && tv->isBool() && tv->asBool();
    const bool armed = !trace_invalid &&
                       (want_trace || cfg_.slow_request_ms > 0);

    std::unique_ptr<Trace> trace;
    Trace::SpanId route_span = Trace::kRoot;
    if (armed) {
        trace = std::make_unique<Trace>(cfg_.clock);
        route_span = trace->begin("route_decision", Trace::kRoot);
    }

    const std::string *w = ring_.lookup(fingerprint);
    if (!w) {
        if (metrics_)
            rejectCounter("upstream_unavailable").inc();
        resolve(c.id, seq,
                protocolErrorResponse(line, "no healthy workers",
                                      "upstream_unavailable"));
        return;
    }
    const std::string target = *w; // sendTo may rebuild the ring
    const std::uint64_t corr = next_corr_++;
    Pending p;
    p.kind = PendingKind::Forward;
    p.worker = target;
    p.client = c.id;
    p.seq = seq;
    p.fingerprint = fingerprint;
    p.enqueued_ns = clockOrSteady(cfg_.clock).nowNs();
    const JsonValue *id = parsed.get("id");
    p.had_id = id != nullptr;
    if (id)
        p.original_id = *id;
    const JsonValue *opv = parsed.get("op");
    p.op = opv && opv->isString() ? opv->asString() : std::string();
    // Replace (not set) semantics: member order is preserved, so
    // the worker sees the same document with only the id swapped.
    // The textual splice does it without re-serializing; the parser
    // path is the fallback for shapes the scan refuses -- and for
    // traced forwards, which also force `trace: true` on the worker
    // so its span tree comes back for grafting even when only the
    // slow-request log armed tracing here.
    if (armed) {
        JsonValue rewritten = parsed;
        rewritten.replace("id", JsonValue::number(double(corr)));
        rewritten.replace("trace", JsonValue::boolean(true));
        p.forwarded_line = rewritten.serialize();
        p.trace = std::move(trace);
        p.want_trace = want_trace;
    } else if (!spliceTopLevelId(line, corr, p.forwarded_line)) {
        JsonValue rewritten = parsed;
        rewritten.replace("id", JsonValue::number(double(corr)));
        p.forwarded_line = rewritten.serialize();
    }
    p.line = std::move(line); // only read again on failover/reject
    pending_.emplace(corr, std::move(p));
    if (metrics_)
        forwardCounter(target).inc();
    std::vector<std::uint64_t> collateral;
    Pending &placed = pending_.at(corr);
    bool sent;
    if (placed.trace) {
        placed.trace->end(route_span);
        const Trace::SpanId write_span =
            placed.trace->begin("upstream_write", Trace::kRoot);
        sent = sendTo(target, corr, placed.forwarded_line,
                      collateral);
        placed.trace->end(write_span);
        if (sent) {
            placed.wait_span =
                placed.trace->begin("upstream_wait", Trace::kRoot);
            placed.wait_open = true;
        }
    } else {
        sent = sendTo(target, corr, placed.forwarded_line,
                      collateral);
    }
    if (!sent)
        failoverOrReject(corr, collateral);
    drainFailed(collateral);
}

bool
ClusterRouter::sendTo(const std::string &worker, std::uint64_t corr,
                      const std::string &line,
                      std::vector<std::uint64_t> &collateral)
{
    Backend &b = backends_.at(worker);
    const bool was_up = b.state() != Backend::State::Disconnected;
    const bool ok = b.send(corr, line, collateral);
    if (!ok && was_up &&
        b.state() == Backend::State::Disconnected)
        strike(worker, collateral);
    return ok;
}

namespace {

/** Shift a rendered span node (and its subtree) @p delta_us later:
 *  worker spans are relative to the WORKER's root; grafting anchors
 *  them at the router's upstream_wait start instead. */
void
rebaseSpanStart(JsonValue &span, double delta_us)
{
    if (!span.isObject())
        return;
    if (JsonValue *s = span.getMutable("start_us"))
        if (s->isNumber())
            *s = JsonValue::number(s->asNumber() + delta_us);
    if (JsonValue *kids = span.getMutable("children"))
        if (kids->isArray())
            for (JsonValue &k : kids->itemsMutable())
                rebaseSpanStart(k, delta_us);
}

/**
 * Graft the worker's span tree into the router's rendered tree as a
 * child of the FINAL upstream_wait span (the one that got the
 * response; earlier waits ended when their worker died).  Worker
 * timestamps are root-relative on both sides, so the graft is pure
 * arithmetic -- no clock sync: the worker root is anchored at the
 * wait span's start, and the wait span gains "transit_us" =
 * wait duration minus worker-root duration (socket + router-loop
 * overhead; clamped at 0 against cross-process clock-rate jitter).
 *
 * One reconciliation is needed to keep the tree's invariant (child
 * durations sum to at most the parent's): the worker starts the
 * moment the router's write() DELIVERS the bytes, which can be well
 * before write() returns when the router thread is preempted inside
 * the syscall -- worker time then leaks into the span preceding the
 * wait, and the measured wait comes out SHORTER than the worker's
 * own tree.  That overlap is reattributed to the wait: widen it
 * backward until it contains the worker root, truncating the
 * preceding siblings by the same amount.  Totals are preserved, so
 * the sum invariant holds at every level of the stitched tree.
 *
 * @p worker_root may be null (the worker answered without a trace,
 * e.g. an error response): the router-only tree is returned as-is.
 */
JsonValue
stitchTrace(JsonValue router_tree, JsonValue *worker_root)
{
    if (!worker_root || !worker_root->isObject())
        return router_tree;
    JsonValue *children = router_tree.getMutable("children");
    if (!children || !children->isArray())
        return router_tree;
    JsonValue *wait = nullptr;
    for (JsonValue &child : children->itemsMutable()) {
        const JsonValue *name = child.get("name");
        if (name && name->isString() &&
            name->asString() == "upstream_wait")
            wait = &child;
    }
    if (!wait)
        return router_tree;
    const JsonValue *ws = wait->get("start_us");
    const JsonValue *wd = wait->get("dur_us");
    double wait_start =
        ws && ws->isNumber() ? ws->asNumber() : 0.0;
    double wait_dur =
        wd && wd->isNumber() ? wd->asNumber() : 0.0;
    const JsonValue *rd = worker_root->get("dur_us");
    const double worker_dur =
        rd && rd->isNumber() ? rd->asNumber() : 0.0;
    if (worker_dur > wait_dur) {
        // See the file comment: reattribute write()-syscall overlap
        // to the wait so the grafted subtree fits inside it.
        const double wait_end = wait_start + wait_dur;
        const double new_start =
            std::max(0.0, wait_end - worker_dur);
        for (JsonValue &child : children->itemsMutable()) {
            if (&child == wait)
                continue;
            const JsonValue *cs = child.get("start_us");
            JsonValue *cd = child.getMutable("dur_us");
            if (!cs || !cs->isNumber() || !cd || !cd->isNumber())
                continue;
            const double s = cs->asNumber();
            if (s >= wait_start)
                continue; // post-response span (splice): untouched
            if (s + cd->asNumber() > new_start)
                *cd = JsonValue::number(std::max(0.0,
                                                 new_start - s));
        }
        wait_start = new_start;
        wait_dur = wait_end - new_start;
        wait->replace("start_us", JsonValue::number(wait_start));
        wait->replace("dur_us", JsonValue::number(wait_dur));
    }
    rebaseSpanStart(*worker_root, wait_start);
    wait->set("transit_us",
              JsonValue::number(std::max(0.0,
                                         wait_dur - worker_dur)));
    JsonValue *wait_children = wait->getMutable("children");
    if (wait_children && wait_children->isArray())
        wait_children->push(std::move(*worker_root));
    return router_tree;
}

} // namespace

void
ClusterRouter::handleWorkerResponse(const std::string &worker,
                                    const std::string &line)
{
    // Fast path for the hot case (a Forward's response): find the
    // correlation id textually and restore the client's id by
    // splicing bytes, skipping the parse + re-serialize of a
    // response that can run to kilobytes.  Sound because (a) the
    // byte sequence `"id":` cannot occur inside a JSON string value
    // (a quote character there is escaped to \"), so every match is
    // a structural key, and (b) correlation ids start at 2^40, far
    // above any integer a response body contains, so digit-matching
    // an OUTSTANDING corr identifies our own rewrite.  Anything
    // irregular falls through to the full parse below.
    do {
        const std::size_t pos = line.rfind("\"id\":");
        if (pos == std::string::npos || pos == 0)
            break;
        const std::size_t vstart = pos + 5;
        std::size_t vend = vstart;
        std::uint64_t corr = 0;
        while (vend < line.size() && line[vend] >= '0' &&
               line[vend] <= '9' && corr < (1ull << 62))
            corr = corr * 10 + std::uint64_t(line[vend++] - '0');
        if (vend == vstart || vend >= line.size() ||
            (line[vend] != ',' && line[vend] != '}'))
            break;
        auto it = pending_.find(corr);
        if (it == pending_.end() || it->second.worker != worker ||
            it->second.kind != PendingKind::Forward ||
            it->second.trace)
            break; // traced forwards need the full parse (graft)
        // "ok" always leads a response, so an id member is never
        // first: the byte before it is the comma to drop when the
        // client sent no id.  (Checked before any state mutation.)
        if (!it->second.had_id && line[pos - 1] != ',')
            break;
        backends_.at(worker).completed(corr);
        Pending done = std::move(it->second);
        pending_.erase(it);
        std::string out;
        out.reserve(line.size() + 16);
        if (done.had_id) {
            out.append(line, 0, vstart);
            out += done.original_id.serialize();
            out.append(line, vend, std::string::npos);
        } else {
            out.append(line, 0, pos - 1);
            out.append(line, vend, std::string::npos);
        }
        const std::uint64_t now = clockOrSteady(cfg_.clock).nowNs();
        if (request_hist_ && now >= done.enqueued_ns)
            request_hist_->record(now - done.enqueued_ns);
        if (metrics_ && now >= done.enqueued_ns)
            upstreamHist(done.worker, done.op)
                .record(now - done.enqueued_ns);
        resolve(done.client, done.seq, std::move(out));
        return;
    } while (false);

    std::optional<JsonValue> parsed = parseJson(line);
    if (!parsed || !parsed->isObject())
        return; // a garbled worker line matches nothing
    const JsonValue *idv = parsed->get("id");
    if (!idv || !idv->isNumber())
        return;
    const double d = idv->asNumber();
    if (d < 0 || d != std::floor(d))
        return;
    const std::uint64_t corr = std::uint64_t(d);
    auto it = pending_.find(corr);
    if (it == pending_.end() || it->second.worker != worker)
        return; // late echo from a failed-over correlation
    backends_.at(worker).completed(corr);

    switch (it->second.kind) {
    case PendingKind::Probe: {
        pending_.erase(it);
        auto pit = probe_corr_.find(worker);
        if (pit != probe_corr_.end() && pit->second == corr)
            probe_corr_.erase(pit);
        const JsonValue *okv = parsed->get("ok");
        std::vector<std::uint64_t> collateral;
        if (okv && okv->isBool() && okv->asBool())
            applyTransition(worker, health_.onProbePass(worker),
                            collateral);
        else
            probeFail(worker, collateral);
        drainFailed(collateral);
        break;
    }
    case PendingKind::FanoutPart:
        fanoutPartDone(corr, false, line);
        break;
    case PendingKind::Forward: {
        Pending done = std::move(it->second);
        pending_.erase(it);
        Trace::SpanId splice_span = Trace::kRoot;
        if (done.trace) {
            if (done.wait_open) {
                done.trace->end(done.wait_span);
                done.wait_open = false;
            }
            splice_span =
                done.trace->begin("splice_response", Trace::kRoot);
        }
        // Restore the client's id (or its absence): replace keeps
        // the member position, so the delivered bytes match what a
        // direct session would have produced.
        JsonValue resp = std::move(*parsed);
        if (done.had_id)
            resp.replace("id", done.original_id);
        else
            resp.remove("id");
        const std::uint64_t now =
            clockOrSteady(cfg_.clock).nowNs();
        if (request_hist_ && now >= done.enqueued_ns)
            request_hist_->record(now - done.enqueued_ns);
        if (metrics_ && now >= done.enqueued_ns)
            upstreamHist(done.worker, done.op)
                .record(now - done.enqueued_ns);
        if (!done.trace) {
            resolve(done.client, done.seq, resp.serialize());
            break;
        }
        // Stitch: pull the worker's tree out of the response (set
        // LAST by the worker, so removing/replacing it preserves
        // the untraced byte shape), graft it under upstream_wait,
        // and deliver one cross-process tree -- or none, when only
        // the slow-request log armed tracing.
        JsonValue worker_trace;
        bool have_worker_trace = false;
        if (JsonValue *wt = resp.getMutable("trace")) {
            if (wt->isObject()) {
                worker_trace = std::move(*wt);
                have_worker_trace = true;
            }
        }
        done.trace->end(splice_span);
        done.trace->endRoot();
        JsonValue stitched = stitchTrace(
            done.trace->toJson(),
            have_worker_trace ? &worker_trace : nullptr);
        const std::uint64_t total_ns = done.trace->rootDurationNs();
        if (cfg_.slow_request_ms > 0 &&
            total_ns / 1000000ull >= cfg_.slow_request_ms) {
            EventLog::Fields fields;
            fields.emplace_back("op", JsonValue::string(done.op));
            if (done.had_id)
                fields.emplace_back("id", done.original_id);
            fields.emplace_back(
                "ms", JsonValue::number(double(total_ns) / 1e6));
            fields.emplace_back("worker",
                                JsonValue::string(done.worker));
            fields.emplace_back(
                "attempts",
                JsonValue::number(double(done.attempts)));
            fields.emplace_back("trace", stitched);
            logEvent("slow_request", std::move(fields));
        }
        if (done.want_trace)
            resp.replace("trace", std::move(stitched));
        else
            resp.remove("trace");
        resolve(done.client, done.seq, resp.serialize());
        break;
    }
    }
}

void
ClusterRouter::drainFailed(std::vector<std::uint64_t> &failed)
{
    // Re-dispatching a failed correlation can fail more of them
    // (another backend dies under the resend); a work queue bounds
    // this without recursion.
    std::deque<std::uint64_t> work(failed.begin(), failed.end());
    failed.clear();
    while (!work.empty()) {
        const std::uint64_t corr = work.front();
        work.pop_front();
        auto it = pending_.find(corr);
        if (it == pending_.end())
            continue; // already handled this round
        std::vector<std::uint64_t> more;
        switch (it->second.kind) {
        case PendingKind::Probe: {
            const std::string worker = it->second.worker;
            auto pit = probe_corr_.find(worker);
            if (pit != probe_corr_.end() && pit->second == corr)
                probe_corr_.erase(pit);
            pending_.erase(it);
            probeFail(worker, more);
            break;
        }
        case PendingKind::FanoutPart:
            fanoutPartDone(corr, true, std::string());
            break;
        case PendingKind::Forward:
            failoverOrReject(corr, more);
            break;
        }
        for (std::uint64_t extra : more)
            work.push_back(extra);
    }
}

void
ClusterRouter::failoverOrReject(
    std::uint64_t corr, std::vector<std::uint64_t> &collateral)
{
    auto it = pending_.find(corr);
    if (it == pending_.end())
        return;
    Pending &p = it->second;
    if (p.trace && p.wait_open) {
        // The wait on the dead worker is over, however this ends.
        p.trace->end(p.wait_span);
        p.wait_open = false;
    }
    if (cfg_.failover == RouterConfig::Failover::Next) {
        // Walk the ring clockwise from the fingerprint; the attempt
        // cap bounds a lap across a mostly-dead cluster.
        while (p.attempts < worker_names_.size()) {
            const std::string *next =
                ring_.next(p.fingerprint, p.worker);
            if (!next)
                break;
            const std::string target = *next; // sendTo may rebuild
            const std::string from = p.worker;
            p.worker = target;
            ++p.attempts;
            if (metrics_)
                failovers_->inc();
            Trace::SpanId redispatch = Trace::kRoot;
            if (p.trace)
                redispatch = p.trace->begin(
                    "failover_redispatch", Trace::kRoot,
                    std::int64_t(p.attempts));
            const bool sent =
                sendTo(target, corr, p.forwarded_line, collateral);
            if (p.trace)
                p.trace->end(redispatch);
            logEvent("failover_redispatch",
                     {{"corr", JsonValue::number(double(corr))},
                      {"from", JsonValue::string(from)},
                      {"to", JsonValue::string(target)},
                      {"attempt",
                       JsonValue::number(double(p.attempts))},
                      {"ok", JsonValue::boolean(sent)}});
            if (sent) {
                if (p.trace) {
                    p.wait_span = p.trace->begin("upstream_wait",
                                                 Trace::kRoot);
                    p.wait_open = true;
                }
                return;
            }
        }
    }
    Pending done = std::move(it->second);
    pending_.erase(it);
    rejectPending(std::move(done));
}

void
ClusterRouter::rejectPending(Pending done)
{
    if (metrics_)
        rejectCounter("upstream_unavailable").inc();
    std::string response = protocolErrorResponse(
        done.line,
        strFormat("upstream worker %s unavailable",
                  done.worker.c_str()),
        "upstream_unavailable");
    if (done.trace && done.want_trace) {
        // The router-only tree (no worker subtree to graft) still
        // shows WHERE the request's time went before it failed.
        if (done.wait_open)
            done.trace->end(done.wait_span);
        done.trace->endRoot();
        if (std::optional<JsonValue> parsed = parseJson(response)) {
            parsed->set("trace",
                        stitchTrace(done.trace->toJson(), nullptr));
            response = parsed->serialize();
        }
    }
    resolve(done.client, done.seq, std::move(response));
}

void
ClusterRouter::fanoutPartDone(std::uint64_t corr, bool failed,
                              const std::string &response)
{
    auto it = pending_.find(corr);
    if (it == pending_.end())
        return;
    const std::string worker = it->second.worker;
    const std::uint64_t fid = it->second.fanout;
    pending_.erase(it);
    auto fit = fanouts_.find(fid);
    if (fit == fanouts_.end())
        return;
    Fanout &f = fit->second;
    for (Fanout::Part &part : f.parts) {
        if (part.worker != worker || part.done)
            continue;
        part.done = true;
        part.failed = failed;
        part.response = response;
        if (f.remaining > 0)
            --f.remaining;
        if (!failed && metrics_) {
            const std::uint64_t now =
                clockOrSteady(cfg_.clock).nowNs();
            if (now >= f.enqueued_ns)
                upstreamHist(worker, f.op)
                    .record(now - f.enqueued_ns);
        }
        break;
    }
    if (f.remaining == 0)
        finalizeFanout(fid);
}

void
ClusterRouter::finalizeFanout(std::uint64_t fanout_id)
{
    auto it = fanouts_.find(fanout_id);
    if (it == fanouts_.end())
        return;
    Fanout f = std::move(it->second);
    fanouts_.erase(it);

    JsonValue resp = JsonValue::object();
    resp.set("ok", JsonValue::boolean(true));
    if (f.op == "metrics") {
        std::vector<std::pair<std::string, std::string>> bodies;
        for (const Fanout::Part &part : f.parts) {
            if (part.failed)
                continue;
            std::optional<JsonValue> parsed =
                parseJson(part.response);
            if (!parsed || !parsed->isObject())
                continue;
            const JsonValue *body = parsed->get("body");
            if (body && body->isString())
                bodies.emplace_back(part.worker, body->asString());
        }
        const std::string router_body =
            metrics_ ? metrics_->renderPrometheus() : std::string();
        resp.set("content_type",
                 JsonValue::string("text/plain; version=0.0.4"));
        resp.set("body", JsonValue::string(
                             mergeWorkerMetrics(router_body,
                                                bodies)));
    } else {
        if (f.op == "stats")
            resp.set("router", routerStatsJson());
        JsonValue arr = JsonValue::array();
        for (Fanout::Part &part : f.parts) {
            JsonValue row = JsonValue::object();
            row.set("worker", JsonValue::string(part.worker));
            if (part.failed) {
                row.set("error", JsonValue::string("unreachable"));
            } else {
                std::optional<JsonValue> parsed =
                    parseJson(part.response);
                if (parsed && parsed->isObject()) {
                    // The embedded op/id are the fanout's plumbing
                    // (the id is a router correlation id), not part
                    // of the worker's answer.
                    parsed->remove("op");
                    parsed->remove("id");
                    row.set("response", std::move(*parsed));
                } else {
                    row.set("error",
                            JsonValue::string(
                                "unparseable response"));
                }
            }
            arr.push(std::move(row));
        }
        resp.set("workers", std::move(arr));
    }
    resp.set("op", JsonValue::string(f.op));
    if (f.had_id)
        resp.set("id", f.original_id);
    const std::uint64_t now = clockOrSteady(cfg_.clock).nowNs();
    if (request_hist_ && now >= f.enqueued_ns)
        request_hist_->record(now - f.enqueued_ns);
    resolve(f.client, f.seq, resp.serialize());
}

void
ClusterRouter::sendProbes()
{
    std::vector<std::uint64_t> collateral;
    for (const std::string &name : health_.expiredProbes()) {
        auto it = probe_corr_.find(name);
        if (it != probe_corr_.end()) {
            // The worker may still answer later; with the pending
            // entry gone, a late echo is ignored.
            backends_.at(name).completed(it->second);
            pending_.erase(it->second);
            probe_corr_.erase(it);
        }
        probeFail(name, collateral);
    }
    for (const std::string &name : health_.dueProbes()) {
        const std::uint64_t corr = next_corr_++;
        JsonValue req = JsonValue::object();
        req.set("op", JsonValue::string("health"));
        req.set("id", JsonValue::number(double(corr)));
        Pending p;
        p.kind = PendingKind::Probe;
        p.worker = name;
        pending_.emplace(corr, std::move(p));
        probe_corr_[name] = corr;
        if (metrics_)
            probes_total_->inc();
        if (!sendTo(name, corr, req.serialize(), collateral)) {
            pending_.erase(corr);
            probe_corr_.erase(name);
            probeFail(name, collateral);
        }
    }
    drainFailed(collateral);
}

void
ClusterRouter::probeFail(const std::string &worker,
                         std::vector<std::uint64_t> &collateral)
{
    if (metrics_)
        probe_failures_->inc();
    applyTransition(worker, health_.onProbeFail(worker), collateral);
}

void
ClusterRouter::strike(const std::string &worker,
                      std::vector<std::uint64_t> &collateral)
{
    // A dead connection is as ejectable as a silent probe.
    probeFail(worker, collateral);
}

void
ClusterRouter::applyTransition(std::string worker,
                               HealthMonitor::Transition t,
                               std::vector<std::uint64_t> &collateral)
{
    // By-value worker: callers may pass a reference into the ring's
    // own membership vector, which remove() below would invalidate.
    if (t == HealthMonitor::Transition::Ejected) {
        ring_.remove(worker);
        Backend &b = backends_.at(worker);
        // In-flight count read BEFORE fail() empties it: the event
        // records how much work the ejection failed over.
        logEvent(
            "worker_ejected",
            {{"worker", JsonValue::string(worker)},
             {"consecutive_failures",
              JsonValue::number(
                  double(health_.consecutiveFailures(worker)))},
             {"inflight",
              JsonValue::number(double(b.inflight()))}});
        // A wedged-but-connected worker must not hold requests
        // hostage: ejecting it fails its in-flight work over.
        b.fail(collateral);
        if (metrics_)
            ejections_->inc();
    } else if (t == HealthMonitor::Transition::Readmitted) {
        ring_.add(worker);
        logEvent("worker_readmitted",
                 {{"worker", JsonValue::string(worker)}});
        if (metrics_)
            readmissions_->inc();
    }
}

void
ClusterRouter::resolve(std::uint64_t client, std::uint64_t seq,
                       std::string response)
{
    auto it = clients_.find(client);
    if (it == clients_.end())
        return; // client vanished; the answer has nowhere to go
    Client &c = it->second;
    for (Slot &s : c.slots) {
        if (s.seq != seq)
            continue;
        s.ready = true;
        s.response = std::move(response);
        break;
    }
    // Release strictly in request order: pipelined clients correlate
    // positionally as well as by id.
    while (!c.slots.empty() && c.slots.front().ready) {
        c.out += c.slots.front().response;
        c.out += '\n';
        c.slots.pop_front();
    }
}

void
ClusterRouter::flushClients()
{
    for (auto &[id, c] : clients_) {
        (void)id;
        if (c.dead)
            continue;
        if (c.out_off >= c.out.size()) {
            c.out.clear();
            c.out_off = 0;
            continue;
        }
        IoStatus st = c.conn->writeSome(c.out, c.out_off);
        if (st == IoStatus::Ok) {
            c.out.clear();
            c.out_off = 0;
        } else if (st == IoStatus::Closed ||
                   st == IoStatus::Error) {
            c.dead = true;
        }
    }
}

void
ClusterRouter::reapClients()
{
    for (auto it = clients_.begin(); it != clients_.end();) {
        Client &c = it->second;
        const bool flushed = c.out_off >= c.out.size();
        if (c.dead ||
            (c.input_closed && c.slots.empty() && flushed))
            it = clients_.erase(it);
        else
            ++it;
    }
}

bool
ClusterRouter::allClientsFlushed() const
{
    for (const auto &[id, c] : clients_) {
        (void)id;
        if (!c.dead &&
            (c.out_off < c.out.size() || !c.slots.empty()))
            return false;
    }
    return true;
}

bool
ClusterRouter::busyPending() const
{
    if (!fanouts_.empty())
        return true;
    for (const auto &[corr, p] : pending_) {
        (void)corr;
        if (p.kind != PendingKind::Probe)
            return true;
    }
    return false;
}

void
ClusterRouter::beginDrain()
{
    if (draining_)
        return;
    draining_ = true;
    listener_.close();
    drain_deadline_ns_ =
        clockOrSteady(cfg_.clock).nowNs() +
        std::uint64_t(cfg_.drain_timeout_ms) * 1000000ull;
    logEvent("drain_begin",
             {{"clients_open",
               JsonValue::number(double(clients_.size()))},
              {"inflight",
               JsonValue::number(double(pending_.size()))}});
}

JsonValue
ClusterRouter::routerStatsJson() const
{
    JsonValue r = JsonValue::object();
    JsonValue workers = JsonValue::array();
    for (const std::string &name : worker_names_) {
        const Backend &b = backends_.at(name);
        JsonValue row = JsonValue::object();
        row.set("worker", JsonValue::string(name));
        row.set("healthy",
                JsonValue::boolean(health_.healthy(name)));
        row.set("consecutive_failures",
                JsonValue::number(
                    double(health_.consecutiveFailures(name))));
        row.set("inflight", JsonValue::number(double(b.inflight())));
        row.set("reconnects",
                JsonValue::number(double(b.reconnects())));
        workers.push(std::move(row));
    }
    r.set("workers", std::move(workers));
    JsonValue conns = JsonValue::object();
    conns.set("open", JsonValue::number(double(clients_.size())));
    conns.set("accepted", JsonValue::number(double(accepted_)));
    r.set("connections", std::move(conns));
    r.set("failover",
          JsonValue::string(cfg_.failover ==
                                    RouterConfig::Failover::Next
                                ? "next"
                                : "reject"));
    r.set("draining", JsonValue::boolean(draining_));
    return r;
}

namespace {

/** One worker sample line with worker="<name>" injected into its
 *  label block (created when absent). */
std::string
injectWorkerLabel(const std::string &line, const std::string &worker)
{
    const std::size_t brace = line.find('{');
    const std::size_t space = line.find(' ');
    if (brace != std::string::npos &&
        (space == std::string::npos || brace < space)) {
        const bool empty_labels =
            brace + 1 < line.size() && line[brace + 1] == '}';
        return line.substr(0, brace + 1) + "worker=\"" + worker +
               "\"" + (empty_labels ? "" : ",") +
               line.substr(brace + 1);
    }
    if (space == std::string::npos)
        return line; // not a sample line; pass through untouched
    return line.substr(0, space) + "{worker=\"" + worker + "\"}" +
           line.substr(space);
}

} // namespace

std::string
mergeWorkerMetrics(
    const std::string &router_body,
    const std::vector<std::pair<std::string, std::string>> &workers)
{
    std::string out = router_body;
    if (!out.empty() && out.back() != '\n')
        out += '\n';

    // Family names the router already rendered: a worker family that
    // collides would duplicate HELP/TYPE, so drop it instead of
    // corrupting the exposition.  (Router families are
    // ploop_router_*; worker families are not -- this is a guard,
    // not an expected path.)
    std::set<std::string> router_fams;
    {
        std::size_t pos = 0;
        while (pos < router_body.size()) {
            std::size_t nl = router_body.find('\n', pos);
            std::size_t end =
                nl == std::string::npos ? router_body.size() : nl;
            if (router_body.compare(pos, 7, "# HELP ") == 0) {
                std::size_t start = pos + 7;
                std::size_t sp = router_body.find(' ', start);
                if (sp != std::string::npos && sp < end)
                    router_fams.insert(
                        router_body.substr(start, sp - start));
                else
                    router_fams.insert(
                        router_body.substr(start, end - start));
            }
            pos = end + 1;
        }
    }

    struct Fam
    {
        std::string help;
        std::string type;
        std::vector<std::string> samples;
    };
    std::vector<std::string> order; // first-seen family order
    std::map<std::string, Fam> fams;

    for (const auto &[wname, body] : workers) {
        std::string current;
        bool skip = false;
        std::size_t pos = 0;
        while (pos < body.size()) {
            std::size_t nl = body.find('\n', pos);
            std::size_t end =
                nl == std::string::npos ? body.size() : nl;
            const std::string line = body.substr(pos, end - pos);
            pos = end + 1;
            if (line.empty())
                continue;
            const bool is_help = line.rfind("# HELP ", 0) == 0;
            const bool is_type = line.rfind("# TYPE ", 0) == 0;
            if (is_help || is_type) {
                std::size_t sp = line.find(' ', 7);
                const std::string family = line.substr(
                    7, (sp == std::string::npos ? line.size()
                                                : sp) -
                           7);
                current = family;
                skip = router_fams.count(family) > 0;
                if (skip)
                    continue;
                auto fit = fams.find(family);
                if (fit == fams.end()) {
                    order.push_back(family);
                    fit = fams.emplace(family, Fam{}).first;
                }
                // HELP/TYPE from the first worker that exposes the
                // family; all workers run the same binary, so the
                // texts agree.
                if (is_help && fit->second.help.empty())
                    fit->second.help = line;
                if (is_type && fit->second.type.empty())
                    fit->second.type = line;
            } else if (line[0] == '#') {
                continue; // stray comment: drop, don't corrupt
            } else {
                if (skip || current.empty())
                    continue;
                fams[current].samples.push_back(
                    injectWorkerLabel(line, wname));
            }
        }
    }

    for (const std::string &family : order) {
        const Fam &f = fams[family];
        if (f.help.empty() || f.type.empty())
            continue; // headerless family would fail the checker
        out += f.help;
        out += '\n';
        out += f.type;
        out += '\n';
        for (const std::string &s : f.samples) {
            out += s;
            out += '\n';
        }
    }
    return out;
}

} // namespace ploop
