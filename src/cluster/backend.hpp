/**
 * @file
 * One worker's connection, as seen from the router's poll loop: a
 * non-blocking Connection (the same primitive the server side uses,
 * so fault injection covers router<->worker links too), LineSplitter
 * framing for pipelined responses, an outbound buffer with partial-
 * write resume, and the in-flight correlation-id set that lets the
 * router re-map worker responses to the originating clients.
 *
 * Connection lifecycle: Disconnected -> Connecting (non-blocking
 * connect underway; POLLOUT completes it) -> Connected.  Any
 * failure drops back to Disconnected and starts an exponential
 * backoff (base << consecutive-failures, capped) on the injected
 * clock; send() during the backoff window fails fast so the router
 * can fail over instead of queueing onto a corpse.
 *
 * Requests may be queued while Connecting -- they flush the moment
 * the handshake completes, so a router restarted before its workers
 * (or a worker restarting under traffic) costs latency, not errors.
 *
 * Not thread-safe: router poll-loop thread only.
 */

#ifndef PHOTONLOOP_CLUSTER_BACKEND_HPP
#define PHOTONLOOP_CLUSTER_BACKEND_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/socket.hpp"
#include "obs/clock.hpp"
#include "obs/event_log.hpp"

namespace ploop {

/** Per-worker connection knobs. */
struct BackendConfig
{
    std::string name;        ///< Display/ring name ("127.0.0.1:P").
    std::uint16_t port = 0;  ///< Loopback port of the worker.
    unsigned backoff_base_ms = 50;
    unsigned backoff_cap_ms = 2000;
    /** Operational event sink (not owned; nullptr = no events):
     *  each post-failure connect attempt emits reconnect_attempt
     *  with the backoff delay that gated it. */
    EventLog *event_log = nullptr;
};

/** See file comment. */
class Backend
{
  public:
    enum class State : std::uint8_t {
        Disconnected,
        Connecting,
        Connected,
    };

    /** @param clock nullptr = steady clock (tests inject Manual). */
    explicit Backend(BackendConfig cfg,
                     const Clock *clock = nullptr);

    const std::string &name() const { return cfg_.name; }
    State state() const { return state_; }

    /** fd for the router's pollfd set; -1 while disconnected. */
    int fd() const;

    /** POLLIN/POLLOUT interest right now (POLLOUT while connecting
     *  or while unflushed output remains). */
    short pollEvents() const;

    /**
     * Queue one already-framed request line (correlation id
     * injected by the router; no trailing newline) and record
     * @p corr as in flight.  Connects on demand.  False when the
     * worker is unreachable right now (connect refused, or the
     * backoff window still holds) -- the caller fails over.  When
     * the eager flush kills the connection, @p corr is excluded
     * (the false return covers it) but every OTHER in-flight id is
     * moved to @p failed, exactly like fail().
     */
    bool send(std::uint64_t corr, const std::string &line,
              std::vector<std::uint64_t> &failed);

    /**
     * POLLIN fired: drain the socket.  Complete response lines are
     * appended to @p responses; when the connection died, every
     * in-flight corr id is moved to @p failed.  The caller MUST
     * process @p responses before @p failed -- a response read in
     * the same slice as the EOF was still answered.
     */
    void onReadable(std::vector<std::string> &responses,
                    std::vector<std::uint64_t> &failed);

    /**
     * POLLOUT fired: complete an in-progress connect and/or flush
     * buffered output; failures move in-flight ids to @p failed.
     */
    void onWritable(std::vector<std::uint64_t> &failed);

    /** POLLERR/POLLHUP (or router-initiated teardown): drop the
     *  connection now, failing everything in flight. */
    void fail(std::vector<std::uint64_t> &failed);

    /** A response for @p corr was matched: no longer in flight. */
    void completed(std::uint64_t corr);

    std::size_t inflight() const { return inflight_.size(); }

    /** Completed reconnects after the initial connect (metrics). */
    std::uint64_t reconnects() const { return reconnects_; }

  private:
    /** Ensure Connected/Connecting, honoring the backoff window.
     *  False when unreachable right now. */
    bool ensureConnected();

    /** Flush as much of out_ as the socket accepts.  False when the
     *  connection died (caller harvests in-flight via fail()). */
    bool flushOut();

    void dropConnection();

    BackendConfig cfg_;
    const Clock *clock_;
    State state_ = State::Disconnected;
    std::unique_ptr<Connection> conn_;
    LineSplitter splitter_;
    std::string out_;       ///< Unwritten request bytes.
    std::size_t out_off_ = 0;
    std::vector<std::uint64_t> inflight_;
    unsigned connect_failures_ = 0;
    std::uint64_t next_attempt_ns_ = 0; ///< Backoff gate (0 = now).
    std::uint64_t last_backoff_ms_ = 0; ///< For reconnect events.
    std::uint64_t reconnects_ = 0;
    bool ever_connected_ = false;
};

} // namespace ploop

#endif // PHOTONLOOP_CLUSTER_BACKEND_HPP
