/**
 * @file
 * Worker health tracking for the cluster router: WHEN to probe,
 * and WHAT a probe result (or a connection failure) means for ring
 * membership.  Pure policy -- the router owns the sockets and sends
 * the actual `health`-op lines; this class only keeps per-worker
 * clocks and counters, so every ejection/re-admission schedule is
 * unit-testable against a ManualClock with zero sleeping.
 *
 * Lifecycle per worker:
 *  - starts HEALTHY (workers are presumed alive at startup; the
 *    first probe round corrects optimism within one interval);
 *  - a probe is due every probe_interval_ms; an outstanding probe
 *    unanswered for probe_timeout_ms counts as a failure;
 *  - eject_after CONSECUTIVE failures (probe timeouts, probe error
 *    responses, or transport failures reported by the router) mark
 *    the worker unhealthy -> the router removes it from the ring;
 *  - ONE passing probe re-admits it -- probes keep flowing to
 *    unhealthy workers precisely so they can come back.
 *
 * Not thread-safe: router poll-loop thread only.
 */

#ifndef PHOTONLOOP_CLUSTER_HEALTH_HPP
#define PHOTONLOOP_CLUSTER_HEALTH_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "obs/clock.hpp"

namespace ploop {

/** Probe/ejection knobs (the router tool's command line). */
struct HealthConfig
{
    /** Gap between probes to one worker (ms). */
    std::uint64_t probe_interval_ms = 1000;

    /** An outstanding probe unanswered this long failed (ms). */
    std::uint64_t probe_timeout_ms = 1000;

    /** Consecutive failures before ejection (the K in the design:
     *  one lost probe on a busy box must not empty the ring). */
    unsigned eject_after = 3;
};

/** See file comment. */
class HealthMonitor
{
  public:
    /** What a probe result did to ring membership. */
    enum class Transition : std::uint8_t {
        None,      ///< No membership change.
        Ejected,   ///< Healthy -> unhealthy (remove from ring).
        Readmitted ///< Unhealthy -> healthy (add back to ring).
    };

    /** @param clock nullptr = steady clock (tests inject Manual). */
    explicit HealthMonitor(HealthConfig cfg,
                           const Clock *clock = nullptr);

    /** Register a worker (healthy, first probe due immediately). */
    void addWorker(const std::string &name);

    /**
     * Workers whose next probe is due now; each is marked
     * outstanding (no duplicate probes) with its timeout clock
     * started.  The router sends one `health` line per entry.
     */
    std::vector<std::string> dueProbes();

    /**
     * Workers whose outstanding probe exceeded probe_timeout_ms;
     * the outstanding flag is cleared, but the failure is NOT yet
     * counted -- the router feeds each through onProbeFail() so the
     * ejection bookkeeping and its metrics live on one path.
     */
    std::vector<std::string> expiredProbes();

    /** A probe answered.  Returns Readmitted on the unhealthy ->
     *  healthy edge. */
    Transition onProbePass(const std::string &name);

    /**
     * A probe failed (timeout, error response, or the router could
     * not reach the worker at all -- transport failures count: a
     * dead connection is as ejectable as a silent one).  Returns
     * Ejected on the healthy -> unhealthy edge.
     */
    Transition onProbeFail(const std::string &name);

    bool healthy(const std::string &name) const;
    unsigned consecutiveFailures(const std::string &name) const;
    std::size_t healthyCount() const;
    std::size_t workerCount() const { return workers_.size(); }

  private:
    struct Worker
    {
        std::string name;
        bool healthy = true;
        bool probe_outstanding = false;
        unsigned consecutive_failures = 0;
        std::uint64_t next_probe_ns = 0; ///< 0 = due immediately.
        std::uint64_t probe_sent_ns = 0;
    };

    Worker *find(const std::string &name);
    const Worker *find(const std::string &name) const;

    HealthConfig cfg_;
    const Clock *clock_;
    std::vector<Worker> workers_;
};

} // namespace ploop

#endif // PHOTONLOOP_CLUSTER_HEALTH_HPP
