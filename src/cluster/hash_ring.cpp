#include "cluster/hash_ring.hpp"

#include <algorithm>

#include "api/fields.hpp"
#include "common/math_util.hpp"

namespace ploop {

HashRing::HashRing(unsigned vnodes)
    : vnodes_(vnodes == 0 ? 1 : vnodes)
{}

void
HashRing::add(const std::string &worker)
{
    auto it = std::lower_bound(workers_.begin(), workers_.end(),
                               worker);
    if (it != workers_.end() && *it == worker)
        return;
    workers_.insert(it, worker);
    rebuild();
}

void
HashRing::remove(const std::string &worker)
{
    auto it = std::lower_bound(workers_.begin(), workers_.end(),
                               worker);
    if (it == workers_.end() || *it != worker)
        return;
    workers_.erase(it);
    rebuild();
}

bool
HashRing::contains(const std::string &worker) const
{
    return std::binary_search(workers_.begin(), workers_.end(),
                              worker);
}

void
HashRing::rebuild()
{
    points_.clear();
    points_.reserve(workers_.size() * vnodes_);
    for (std::uint32_t w = 0; w < workers_.size(); ++w) {
        const std::uint64_t base = stringValueHash(workers_[w]);
        for (unsigned i = 0; i < vnodes_; ++i)
            points_.push_back(
                Point{mix64(base ^ mix64(i + 1)), w});
    }
    // Tie-break on the worker index (itself derived from the sorted
    // name order) so even a 64-bit hash collision between two
    // workers' vnodes cannot make placement depend on insertion
    // history.
    std::sort(points_.begin(), points_.end(),
              [](const Point &a, const Point &b) {
                  return a.hash != b.hash ? a.hash < b.hash
                                          : a.worker < b.worker;
              });
}

const std::string *
HashRing::lookup(std::uint64_t key) const
{
    if (points_.empty())
        return nullptr;
    auto it = std::upper_bound(
        points_.begin(), points_.end(), key,
        [](std::uint64_t k, const Point &p) { return k < p.hash; });
    if (it == points_.end())
        it = points_.begin(); // wrap: the ring is circular
    return &workers_[it->worker];
}

const std::string *
HashRing::next(std::uint64_t key, const std::string &skip) const
{
    if (points_.empty())
        return nullptr;
    auto start = std::upper_bound(
        points_.begin(), points_.end(), key,
        [](std::uint64_t k, const Point &p) { return k < p.hash; });
    if (start == points_.end())
        start = points_.begin();
    // Walk clockwise until a different worker appears; one full lap
    // with no luck means skip is the only member.
    auto it = start;
    for (std::size_t n = 0; n < points_.size(); ++n) {
        const std::string &w = workers_[it->worker];
        if (w != skip)
            return &w;
        ++it;
        if (it == points_.end())
            it = points_.begin();
    }
    return nullptr;
}

} // namespace ploop
