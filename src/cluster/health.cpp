#include "cluster/health.hpp"

namespace ploop {

HealthMonitor::HealthMonitor(HealthConfig cfg, const Clock *clock)
    : cfg_(cfg), clock_(clock)
{}

void
HealthMonitor::addWorker(const std::string &name)
{
    if (find(name))
        return;
    Worker w;
    w.name = name;
    workers_.push_back(std::move(w));
}

std::vector<std::string>
HealthMonitor::dueProbes()
{
    const std::uint64_t now = clockOrSteady(clock_).nowNs();
    std::vector<std::string> due;
    for (Worker &w : workers_) {
        if (w.probe_outstanding || now < w.next_probe_ns)
            continue;
        w.probe_outstanding = true;
        w.probe_sent_ns = now;
        w.next_probe_ns = now + cfg_.probe_interval_ms * 1000000ull;
        due.push_back(w.name);
    }
    return due;
}

std::vector<std::string>
HealthMonitor::expiredProbes()
{
    const std::uint64_t now = clockOrSteady(clock_).nowNs();
    std::vector<std::string> expired;
    for (Worker &w : workers_) {
        if (!w.probe_outstanding)
            continue;
        if (now - w.probe_sent_ns >=
            cfg_.probe_timeout_ms * 1000000ull) {
            w.probe_outstanding = false;
            expired.push_back(w.name);
        }
    }
    return expired;
}

HealthMonitor::Transition
HealthMonitor::onProbePass(const std::string &name)
{
    Worker *w = find(name);
    if (!w)
        return Transition::None;
    w->probe_outstanding = false;
    w->consecutive_failures = 0;
    if (!w->healthy) {
        w->healthy = true;
        return Transition::Readmitted;
    }
    return Transition::None;
}

HealthMonitor::Transition
HealthMonitor::onProbeFail(const std::string &name)
{
    Worker *w = find(name);
    if (!w)
        return Transition::None;
    w->probe_outstanding = false;
    ++w->consecutive_failures;
    if (w->healthy &&
        w->consecutive_failures >= cfg_.eject_after) {
        w->healthy = false;
        return Transition::Ejected;
    }
    return Transition::None;
}

bool
HealthMonitor::healthy(const std::string &name) const
{
    const Worker *w = find(name);
    return w && w->healthy;
}

unsigned
HealthMonitor::consecutiveFailures(const std::string &name) const
{
    const Worker *w = find(name);
    return w ? w->consecutive_failures : 0;
}

std::size_t
HealthMonitor::healthyCount() const
{
    std::size_t n = 0;
    for (const Worker &w : workers_)
        n += w.healthy ? 1 : 0;
    return n;
}

HealthMonitor::Worker *
HealthMonitor::find(const std::string &name)
{
    for (Worker &w : workers_)
        if (w.name == name)
            return &w;
    return nullptr;
}

const HealthMonitor::Worker *
HealthMonitor::find(const std::string &name) const
{
    for (const Worker &w : workers_)
        if (w.name == name)
            return &w;
    return nullptr;
}

} // namespace ploop
