/**
 * @file
 * ClusterRouter: one listening endpoint in front of N ploop_serve
 * workers.  Clients speak the ordinary line protocol; the router
 * decodes just enough of each request line to compute its semantic
 * fingerprint (api/fingerprint.hpp's lenient fast path) and forwards
 * the line to the worker that owns that fingerprint on a consistent-
 * hash ring -- so repeats of a request land on the worker whose
 * EvalCache/result cache is already warm, and adding or removing a
 * worker remaps only ~1/N of the key space.
 *
 * Routing policy by op:
 *  - evaluate / search / sweep / network: fingerprint affinity.
 *  - ping, health, shutdown: answered by the router itself (ping
 *    byte-identical to a worker's; shutdown drains the ROUTER only
 *    -- externally-managed workers keep running, and the --spawn
 *    tool shuts its children down after run() returns).
 *  - stats / metrics / save_cache: fanned out to every healthy
 *    worker and merged (metrics as one Prometheus exposition with a
 *    worker="host:port" label injected on worker samples).
 *  - capabilities: proxied to one healthy worker (a fixed ring
 *    position, so the answer is stable while membership is).
 *  - anything else (unknown op, missing op): forwarded by a hash of
 *    the raw line so the WORKER generates the canonical error.
 *
 * Correlation: the router owns the worker-side "id" space.  Each
 * forwarded line gets its top-level "id" replaced IN PLACE with a
 * router correlation id (JsonValue::replace keeps member order, so
 * the rewrite cannot perturb the rest of the document); the worker's
 * echo maps the response back, and the client's original id (or its
 * absence) is restored before delivery -- responses are byte-
 * identical to a direct single-worker session.
 *
 * Tracing: a forwarded request carrying `trace: true` (or any
 * forward while --slow-request-ms arms the offender log) gets a
 * router-side span tree (route_decision -> upstream_write ->
 * upstream_wait -> splice_response, plus failover_redispatch spans
 * when the worker dies mid-request); the worker's returned tree --
 * its spans are root-relative, so no clock sync is needed -- is
 * grafted under the final upstream_wait span, whose "transit_us"
 * reports wait minus worker-root duration, and the response's
 * "trace" field is replaced with the stitched tree.  Untraced
 * requests keep the textual id-splice fast paths; traced ones take
 * the full-parse fallback (they are rare by construction).
 * Operational state changes (ejections, readmissions, reconnects,
 * failover redispatches, drain) additionally emit JSONL lines to an
 * optional EventLog (see obs/event_log.hpp).
 *
 * Failure policy: a worker connection death fails every in-flight
 * correlation on it.  Failover::Next re-dispatches each to the
 * ring's next worker (bounded by the worker count); Failover::Reject
 * (and exhausted failover) answers with a protocolErrorResponse
 * carrying code "upstream_unavailable".  A HealthMonitor probes
 * every worker with `health` ops on an injectable clock; K
 * consecutive failures eject the worker from the ring (its in-flight
 * work fails over), one passing probe re-admits it.
 *
 * Threading: the router is SINGLE-THREADED -- one poll() loop owns
 * every socket, table and metric handle, so there are no locks to
 * get wrong.  The only cross-thread surface is requestStop().
 */

#ifndef PHOTONLOOP_CLUSTER_ROUTER_HPP
#define PHOTONLOOP_CLUSTER_ROUTER_HPP

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "api/json.hpp"
#include "cluster/backend.hpp"
#include "cluster/hash_ring.hpp"
#include "cluster/health.hpp"
#include "net/socket.hpp"
#include "obs/clock.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ploop {

/** Router knobs (the ploop_router tool's command line). */
struct RouterConfig
{
    /** Listen port (0 = kernel-chosen; see ClusterRouter::port()). */
    std::uint16_t port = 0;

    /** Loopback ports of the ploop_serve workers (duplicates are
     *  collapsed; the worker's ring name is "127.0.0.1:PORT"). */
    std::vector<std::uint16_t> worker_ports;

    /** What to do with in-flight requests when their worker dies. */
    enum class Failover : std::uint8_t {
        Reject, ///< Answer code "upstream_unavailable" immediately.
        Next,   ///< Re-dispatch to the ring's next worker first.
    };
    Failover failover = Failover::Next;

    /** Virtual nodes per worker on the ring. */
    unsigned vnodes = HashRing::kDefaultVnodes;

    /** Client connection cap (greet-and-close beyond it). */
    std::size_t max_connections = 64;

    /** Per-client pipelined-request cap; past it the client's socket
     *  stops being read (TCP backpressure, not memory growth). */
    std::size_t max_client_inflight = 64;

    /** Worker reconnect backoff (see BackendConfig). */
    unsigned backoff_base_ms = 50;
    unsigned backoff_cap_ms = 2000;

    HealthConfig health;

    /** Bound on the drain after shutdown/requestStop (ms). */
    int drain_timeout_ms = 5000;

    /** Register ploop_router_* metrics (the router's own `metrics`
     *  fanout merges them ahead of the workers'). */
    bool observe = true;

    /** Router-side slow-request threshold (0 = off).  Arms tracing
     *  on every forwarded request -- the offender line needs the
     *  stitched breakdown in hand BEFORE it knows the request was
     *  slow -- and emits a "slow_request" event to the event log. */
    unsigned slow_request_ms = 0;

    /** Operational event sink (not owned; nullptr = no events).
     *  Shared with the backends for reconnect_attempt lines. */
    EventLog *event_log = nullptr;

    /** nullptr = steady clock (tests inject ManualClock). */
    const Clock *clock = nullptr;
};

/** See file comment. */
class ClusterRouter
{
  public:
    explicit ClusterRouter(RouterConfig cfg);
    ~ClusterRouter();

    ClusterRouter(const ClusterRouter &) = delete;
    ClusterRouter &operator=(const ClusterRouter &) = delete;

    /** Bind the listening socket.  False with a message in
     *  @p error on failure. */
    bool open(std::string *error);

    /** The bound port (after open(); the answer to port 0). */
    std::uint16_t port() const { return listener_.port(); }

    /**
     * Serve until a `shutdown` request (or requestStop()) drains the
     * router.  Returns the number of client connections accepted.
     */
    std::uint64_t run();

    /** Ask run() to drain and return; callable from any thread. */
    void requestStop()
    {
        // Relaxed: a standalone flag polled once per loop iteration;
        // no other data is published through it.
        stop_.store(true, std::memory_order_relaxed);
    }

    /** The router's own registry (null when observe is off). */
    MetricsRegistry *metrics() { return metrics_.get(); }

  private:
    /** One client connection and its in-order response slots. */
    struct Slot
    {
        std::uint64_t seq = 0;
        bool ready = false;
        std::string response;
    };

    struct Client
    {
        std::uint64_t id = 0;
        std::unique_ptr<Connection> conn;
        LineSplitter in;
        std::string out;
        std::size_t out_off = 0;
        /** Responses are delivered strictly in request order: a slot
         *  per received line, released only once every earlier slot
         *  flushed -- pipelined clients correlate positionally. */
        std::deque<Slot> slots;
        std::uint64_t next_seq = 1;
        bool input_closed = false;
        bool dead = false;
    };

    enum class PendingKind : std::uint8_t {
        Forward,    ///< One client line on one worker.
        Probe,      ///< A router-originated health probe.
        FanoutPart, ///< One worker's share of a fanned-out op.
    };

    /** One outstanding worker-side correlation id. */
    struct Pending
    {
        PendingKind kind = PendingKind::Forward;
        std::string worker;
        std::uint64_t client = 0;
        std::uint64_t seq = 0;
        std::string op;             ///< Clamped for metric labels.
        std::string line;           ///< Original client line.
        std::string forwarded_line; ///< With "id" = the corr id.
        bool had_id = false;
        JsonValue original_id;
        std::uint64_t fingerprint = 0;
        unsigned attempts = 1;
        std::uint64_t fanout = 0; ///< FanoutPart's group.
        std::uint64_t enqueued_ns = 0;
        /** Router-side span tree (null = untraced; armed by the
         *  request's `trace: true` or the slow-request log).  The
         *  worker's returned tree is grafted under the final
         *  upstream_wait span on response. */
        std::unique_ptr<Trace> trace;
        bool want_trace = false; ///< Client asked for the tree.
        bool wait_open = false;  ///< wait_span currently open.
        Trace::SpanId wait_span = Trace::kRoot;
    };

    /** One fanned-out request (stats/metrics/save_cache). */
    struct Fanout
    {
        struct Part
        {
            std::string worker;
            bool done = false;
            bool failed = false;
            std::string response;
        };

        std::uint64_t client = 0;
        std::uint64_t seq = 0;
        std::string op;
        std::string line;
        bool had_id = false;
        JsonValue original_id;
        std::vector<Part> parts;
        std::size_t remaining = 0;
        std::uint64_t enqueued_ns = 0;
    };

    void setupMetrics();
    /** Clamp @p op to the known op set ("other" otherwise): metric
     *  cardinality must not be client-controlled. */
    static std::string clampOpLabel(const std::string &op);
    Counter &opCounter(const std::string &op);
    Counter &rejectCounter(const std::string &code);
    Counter &forwardCounter(const std::string &worker);
    /** Find-or-create the per-worker per-op upstream latency
     *  histogram (only valid when observe is on). */
    Histogram &upstreamHist(const std::string &worker,
                            const std::string &op);
    /** Emit to the operational event log, if one is configured. */
    void logEvent(const char *event, EventLog::Fields fields);

    void acceptPending();
    void readFromClient(Client &c);
    /** By-value @p line: the hot path moves it into the Pending it
     *  creates instead of copying. */
    void handleClientLine(Client &c, std::string line);
    std::uint64_t newSlot(Client &c);

    void handleLocal(Client &c, std::uint64_t seq,
                     const JsonValue &parsed, const std::string &op);
    void startFanout(Client &c, std::uint64_t seq,
                     const std::string &op, const std::string &line,
                     const JsonValue &parsed);
    void forward(Client &c, std::uint64_t seq, std::string line,
                 const JsonValue &parsed,
                 std::uint64_t fingerprint);

    /** send() through the named backend, striking its health record
     *  when the connection died under the write. */
    bool sendTo(const std::string &worker, std::uint64_t corr,
                const std::string &line,
                std::vector<std::uint64_t> &collateral);

    void handleWorkerResponse(const std::string &worker,
                              const std::string &line);
    /** Drain a failed-corr list, including the collateral failures
     *  re-dispatching can itself produce. */
    void drainFailed(std::vector<std::uint64_t> &failed);
    void failoverOrReject(std::uint64_t corr,
                          std::vector<std::uint64_t> &collateral);
    void rejectPending(Pending done);
    void fanoutPartDone(std::uint64_t corr, bool failed,
                        const std::string &response);
    void finalizeFanout(std::uint64_t fanout_id);

    void sendProbes();
    void probeFail(const std::string &worker,
                   std::vector<std::uint64_t> &collateral);
    void strike(const std::string &worker,
                std::vector<std::uint64_t> &collateral);
    /** By-value @p worker: callers may hold a reference into the
     *  ring's membership vector, which an ejection invalidates. */
    void applyTransition(std::string worker,
                         HealthMonitor::Transition t,
                         std::vector<std::uint64_t> &collateral);

    void resolve(std::uint64_t client, std::uint64_t seq,
                 std::string response);
    void flushClients();
    void reapClients();
    bool allClientsFlushed() const;
    /** Forward/fanout work still owed to clients (probes excluded --
     *  they must not hold the drain open). */
    bool busyPending() const;
    void beginDrain();

    JsonValue routerStatsJson() const;

    RouterConfig cfg_;
    TcpListener listener_;
    std::vector<std::string> worker_names_; ///< Sorted, unique.
    std::map<std::string, Backend> backends_;
    HashRing ring_;
    HealthMonitor health_;

    std::map<std::uint64_t, Client> clients_;
    /** Hot per-request insert/find/erase: hashed, not ordered. */
    std::unordered_map<std::uint64_t, Pending> pending_;
    std::map<std::uint64_t, Fanout> fanouts_;
    std::map<std::string, std::uint64_t> probe_corr_;

    std::uint64_t next_client_ = 1;
    /** Correlation ids start at 2^40: still exact in a JSON double,
     *  but far above any integer a response body contains, which is
     *  what licenses handleWorkerResponse's textual fast path. */
    std::uint64_t next_corr_ = (1ull << 40) + 1;
    std::uint64_t next_fanout_ = 1;
    std::uint64_t accepted_ = 0;
    std::uint64_t started_ns_ = 0;

    std::atomic<bool> stop_{false};
    bool draining_ = false;
    std::uint64_t drain_deadline_ns_ = 0;

    /** readFromClient scratch (single-threaded; avoids per-read
     *  allocation on the lockstep hot path). */
    std::string scratch_data_;
    std::vector<std::string> scratch_lines_;

    std::unique_ptr<MetricsRegistry> metrics_;
    std::map<std::string, Counter *> op_counters_;
    std::map<std::string, Counter *> reject_counters_;
    std::map<std::string, Counter *> forward_counters_;
    std::map<std::pair<std::string, std::string>, Histogram *>
        upstream_hists_; ///< (worker, clamped op) -> histogram.
    Counter *failovers_ = nullptr;
    Counter *probes_total_ = nullptr;
    Counter *probe_failures_ = nullptr;
    Counter *ejections_ = nullptr;
    Counter *readmissions_ = nullptr;
    Histogram *request_hist_ = nullptr;
    std::vector<std::uint64_t> metric_ids_;
};

/**
 * Merge worker `metrics` bodies into the router's own exposition:
 * router families first (ploop_router_*), then each worker family
 * once (HELP/TYPE from its first appearance) with every sample
 * re-labeled worker="<name>" so series from different workers stay
 * distinct.  Worker families that collide with a router family are
 * dropped rather than corrupting the exposition.  Exposed for unit
 * tests; the merged text passes tools/check_prometheus.py.
 */
std::string mergeWorkerMetrics(
    const std::string &router_body,
    const std::vector<std::pair<std::string, std::string>> &workers);

} // namespace ploop

#endif // PHOTONLOOP_CLUSTER_ROUTER_HPP
