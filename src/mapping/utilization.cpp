#include "mapping/utilization.hpp"

namespace ploop {

double
coverageSlack(const LayerShape &layer, const Mapping &mapping)
{
    double slack = 1.0;
    for (Dim d : kAllDims) {
        slack *= static_cast<double>(mapping.coverage(d)) /
                 static_cast<double>(layer.bound(d));
    }
    return slack;
}

double
spatialOccupancy(const ArchSpec &arch, const Mapping &mapping)
{
    double peak = static_cast<double>(arch.totalComputeInstances());
    if (peak <= 0.0)
        return 0.0;
    return static_cast<double>(mapping.totalSpatialInstances()) / peak;
}

double
quickUtilization(const ArchSpec &arch, const LayerShape &layer,
                 const Mapping &mapping)
{
    double steps = static_cast<double>(mapping.totalTemporalSteps());
    double peak = arch.peakMacsPerCycle();
    if (steps <= 0.0 || peak <= 0.0)
        return 0.0;
    return static_cast<double>(layer.macs()) / (steps * peak);
}

} // namespace ploop
