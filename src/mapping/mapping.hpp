/**
 * @file
 * Mapping data model: how one layer's loop nest is tiled (temporally)
 * and unrolled (spatially) across the storage hierarchy.
 *
 * For each storage level l and dim d the mapping holds a temporal
 * factor t[l][d] (loop trip count executed at that level) and a
 * spatial factor s[l][d] (unrolling across the hardware instances
 * below level l).  The product over all levels of t*s must cover
 * (>=, via ceiling) the layer bound for every dim; over-provisioning
 * models imperfect factorization and costs utilization.
 *
 * Permutations (intra-level loop orders) are recorded for
 * reporting/round-tripping; the access-counting model uses the
 * standard Timeloop buffer-reuse assumption, which is permutation
 * independent (documented approximation, see DESIGN.md §7).
 */

#ifndef PHOTONLOOP_MAPPING_MAPPING_HPP
#define PHOTONLOOP_MAPPING_MAPPING_HPP

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "workload/dims.hpp"

namespace ploop {

class ArchSpec;
class LayerShape;

/** Per-level tiling factors. */
struct LevelMapping
{
    /** Temporal loop trip counts, one per dim (default 1). */
    std::array<std::uint64_t, kNumDims> temporal{1, 1, 1, 1, 1, 1, 1};

    /** Spatial unrolling below this level, one per dim (default 1). */
    std::array<std::uint64_t, kNumDims> spatial{1, 1, 1, 1, 1, 1, 1};

    /** Loop order, innermost first (cosmetic; see file comment). */
    std::array<Dim, kNumDims> permutation = kAllDims;

    /** Temporal factor of @p d. */
    std::uint64_t t(Dim d) const { return temporal[dimIndex(d)]; }

    /** Spatial factor of @p d. */
    std::uint64_t s(Dim d) const { return spatial[dimIndex(d)]; }

    /** Set the temporal factor of @p d. */
    void setT(Dim d, std::uint64_t v) { temporal[dimIndex(d)] = v; }

    /** Set the spatial factor of @p d. */
    void setS(Dim d, std::uint64_t v) { spatial[dimIndex(d)] = v; }

    /** Product of all temporal factors. */
    std::uint64_t temporalProduct() const;

    /** Product of all spatial factors. */
    std::uint64_t spatialProduct() const;
};

/** A complete mapping of one layer onto one architecture. */
class Mapping
{
  public:
    /** @param num_levels Number of storage levels (arch.numLevels()). */
    explicit Mapping(std::size_t num_levels);

    /** Number of levels. */
    std::size_t numLevels() const { return levels_.size(); }

    /** Per-level factors, 0 = innermost. */
    LevelMapping &level(std::size_t l);

    /** Per-level factors, 0 = innermost (const). */
    const LevelMapping &level(std::size_t l) const;

    /** Product over all levels of t*s for dim @p d. */
    std::uint64_t coverage(Dim d) const;

    /** Product over ALL levels and dims of temporal factors. */
    std::uint64_t totalTemporalSteps() const;

    /** Product over all levels of spatial products. */
    std::uint64_t totalSpatialInstances() const;

    /**
     * Extent of dim @p d covered by one instance of level @p l,
     * i.e. prod_{m <= l} t[m][d] * s[m][d].
     */
    std::uint64_t extent(std::size_t l, Dim d) const;

    /**
     * Trivial valid mapping: every bound as a temporal loop at the
     * outermost level (always fits; never fast).  Useful as a search
     * seed and in tests.
     */
    static Mapping trivial(const ArchSpec &arch, const LayerShape &layer);

    /** Multi-line rendering of the mapping. */
    std::string str() const;

  private:
    std::vector<LevelMapping> levels_;
};

} // namespace ploop

#endif // PHOTONLOOP_MAPPING_MAPPING_HPP
