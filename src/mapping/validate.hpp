/**
 * @file
 * Mapping validation: coverage of layer bounds, spatial-fanout caps,
 * and capacity fit of kept tiles.
 */

#ifndef PHOTONLOOP_MAPPING_VALIDATE_HPP
#define PHOTONLOOP_MAPPING_VALIDATE_HPP

#include <string>

#include "arch/arch_spec.hpp"
#include "mapping/mapping.hpp"
#include "workload/layer.hpp"

namespace ploop {

/**
 * Check a mapping against a layer and architecture.
 *
 * Rules:
 *  1. per dim: product over levels of t*s >= layer bound (ceiling
 *     over-provisioning allowed; it costs utilization);
 *  2. per level and dim: spatial factor <= the fanout's per-dim cap;
 *  3. per level: product of spatial factors <= fanout max_total;
 *  4. per capacity-bounded level: kept tile words fit.
 *
 * @param why Optional sink for the first violated rule.
 * @return True when valid.
 */
bool validateMapping(const ArchSpec &arch, const LayerShape &layer,
                     const Mapping &mapping, std::string *why = nullptr);

/**
 * Rules 1-3 only (coverage and spatial caps): the checks that need no
 * tile analysis.  Callers that go on to evaluate can run this, build
 * ONE TileAnalysis, check fitsCapacities() on it (rule 4) and feed
 * the same analysis to the model -- single-pass validation instead of
 * rebuilding the tile analysis per check (see
 * Evaluator::quickEvaluate).
 */
bool validateMappingShape(const ArchSpec &arch, const LayerShape &layer,
                          const Mapping &mapping,
                          std::string *why = nullptr);

/**
 * Rules 1-2 for ONE dim: coverage of @p d and @p d's per-level
 * spatial caps.  This is the complete shape re-validation for a
 * mapping that differs from an already-shape-valid base only in dim
 * @p d's TEMPORAL factors (a hill-climb factor move): temporal
 * factors cannot violate spatial caps, and the other dims are
 * untouched.  The per-dim cap check (free for temporal moves) also
 * catches the likely misuse of a spatial change through the delta
 * path; rule 3 (the per-level spatial PRODUCT cap) stays with the
 * temporal-only precondition.  The hot-path companion of
 * Evaluator::quickEvaluateDelta.
 */
bool validateMovedDim(const ArchSpec &arch, const LayerShape &layer,
                      const Mapping &mapping, Dim d,
                      std::string *why = nullptr);

} // namespace ploop

#endif // PHOTONLOOP_MAPPING_VALIDATE_HPP
