#include "mapping/validate.hpp"

#include "common/string_util.hpp"
#include "model/tile_analysis.hpp"

namespace ploop {

bool
validateMappingShape(const ArchSpec &arch, const LayerShape &layer,
                     const Mapping &mapping, std::string *why)
{
    auto fail = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };

    if (mapping.numLevels() != arch.numLevels()) {
        return fail(strFormat("mapping has %zu levels, arch has %zu",
                              mapping.numLevels(), arch.numLevels()));
    }

    // 1. Coverage.
    for (Dim d : kAllDims) {
        if (mapping.coverage(d) < layer.bound(d)) {
            return fail(strFormat(
                "dim %s covered %llu < bound %llu", dimName(d),
                static_cast<unsigned long long>(mapping.coverage(d)),
                static_cast<unsigned long long>(layer.bound(d))));
        }
    }

    // 2 & 3. Spatial caps.
    for (std::size_t l = 0; l < arch.numLevels(); ++l) {
        const SpatialFanout &fanout = arch.level(l).fanout;
        for (Dim d : kAllDims) {
            std::uint64_t s = mapping.level(l).s(d);
            if (s > fanout.dimCap(d)) {
                return fail(strFormat(
                    "level '%s': spatial %s=%llu exceeds cap %llu",
                    arch.level(l).name.c_str(), dimName(d),
                    static_cast<unsigned long long>(s),
                    static_cast<unsigned long long>(fanout.dimCap(d))));
            }
        }
        std::uint64_t total = mapping.level(l).spatialProduct();
        std::uint64_t cap =
            fanout.max_total == 0 ? total : fanout.max_total;
        if (total > cap) {
            return fail(strFormat(
                "level '%s': spatial product %llu exceeds cap %llu",
                arch.level(l).name.c_str(),
                static_cast<unsigned long long>(total),
                static_cast<unsigned long long>(cap)));
        }
    }

    return true;
}

bool
validateMovedDim(const ArchSpec &arch, const LayerShape &layer,
                 const Mapping &mapping, Dim d, std::string *why)
{
    if (mapping.coverage(d) < layer.bound(d)) {
        if (why) {
            *why = strFormat(
                "dim %s covered %llu < bound %llu", dimName(d),
                static_cast<unsigned long long>(mapping.coverage(d)),
                static_cast<unsigned long long>(layer.bound(d)));
        }
        return false;
    }
    for (std::size_t l = 0; l < arch.numLevels(); ++l) {
        const SpatialFanout &fanout = arch.level(l).fanout;
        std::uint64_t s = mapping.level(l).s(d);
        if (s > fanout.dimCap(d)) {
            if (why) {
                *why = strFormat(
                    "level '%s': spatial %s=%llu exceeds cap %llu",
                    arch.level(l).name.c_str(), dimName(d),
                    static_cast<unsigned long long>(s),
                    static_cast<unsigned long long>(
                        fanout.dimCap(d)));
            }
            return false;
        }
    }
    return true;
}

bool
validateMapping(const ArchSpec &arch, const LayerShape &layer,
                const Mapping &mapping, std::string *why)
{
    if (!validateMappingShape(arch, layer, mapping, why))
        return false;

    // 4. Capacities.
    TileAnalysis tiles(arch, layer, mapping);
    std::string cap_why;
    if (!tiles.fitsCapacities(&cap_why)) {
        if (why)
            *why = cap_why;
        return false;
    }
    return true;
}

} // namespace ploop
