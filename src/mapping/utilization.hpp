/**
 * @file
 * Standalone mapping-utilization helpers (the full throughput model
 * lives in model/throughput.hpp; these are lightweight inspection
 * utilities used by the mapper's pruning and by tests).
 */

#ifndef PHOTONLOOP_MAPPING_UTILIZATION_HPP
#define PHOTONLOOP_MAPPING_UTILIZATION_HPP

#include "arch/arch_spec.hpp"
#include "mapping/mapping.hpp"
#include "workload/layer.hpp"

namespace ploop {

/**
 * Coverage slack: product over dims of covered/bound (>= 1).  A slack
 * of 1 means perfect factorization; 2 means the mapping wastes half
 * the iteration space to ceiling.
 */
double coverageSlack(const LayerShape &layer, const Mapping &mapping);

/**
 * Spatial occupancy: fraction of provisioned hardware instances the
 * mapping actually uses (mapped spatial product / architectural peak).
 */
double spatialOccupancy(const ArchSpec &arch, const Mapping &mapping);

/**
 * Quick utilization estimate: MACs / (temporal steps * peak *
 * stride-ignored).  Matches the throughput model when bandwidth is
 * unconstrained and the layer is unstrided.
 */
double quickUtilization(const ArchSpec &arch, const LayerShape &layer,
                        const Mapping &mapping);

} // namespace ploop

#endif // PHOTONLOOP_MAPPING_UTILIZATION_HPP
