#include "mapping/mapping.hpp"

#include "arch/arch_spec.hpp"
#include "common/error.hpp"
#include "common/string_util.hpp"
#include "workload/layer.hpp"

namespace ploop {

std::uint64_t
LevelMapping::temporalProduct() const
{
    std::uint64_t p = 1;
    for (auto v : temporal)
        p *= v;
    return p;
}

std::uint64_t
LevelMapping::spatialProduct() const
{
    std::uint64_t p = 1;
    for (auto v : spatial)
        p *= v;
    return p;
}

Mapping::Mapping(std::size_t num_levels)
    : levels_(num_levels)
{
    fatalIf(num_levels == 0, "mapping needs >= 1 level");
}

LevelMapping &
Mapping::level(std::size_t l)
{
    fatalIf(l >= levels_.size(), "mapping level out of range");
    return levels_[l];
}

const LevelMapping &
Mapping::level(std::size_t l) const
{
    fatalIf(l >= levels_.size(), "mapping level out of range");
    return levels_[l];
}

std::uint64_t
Mapping::coverage(Dim d) const
{
    std::uint64_t p = 1;
    for (const auto &lm : levels_)
        p *= lm.t(d) * lm.s(d);
    return p;
}

std::uint64_t
Mapping::totalTemporalSteps() const
{
    std::uint64_t p = 1;
    for (const auto &lm : levels_)
        p *= lm.temporalProduct();
    return p;
}

std::uint64_t
Mapping::totalSpatialInstances() const
{
    std::uint64_t p = 1;
    for (const auto &lm : levels_)
        p *= lm.spatialProduct();
    return p;
}

std::uint64_t
Mapping::extent(std::size_t l, Dim d) const
{
    fatalIf(l >= levels_.size(), "mapping level out of range");
    std::uint64_t p = 1;
    for (std::size_t m = 0; m <= l; ++m)
        p *= levels_[m].t(d) * levels_[m].s(d);
    return p;
}

Mapping
Mapping::trivial(const ArchSpec &arch, const LayerShape &layer)
{
    Mapping map(arch.numLevels());
    LevelMapping &outer = map.level(arch.numLevels() - 1);
    for (Dim d : kAllDims)
        outer.setT(d, layer.bound(d));
    return map;
}

std::string
Mapping::str() const
{
    std::string out;
    for (std::size_t l = levels_.size(); l-- > 0;) {
        const LevelMapping &lm = levels_[l];
        std::string t_part, s_part;
        for (Dim d : kAllDims) {
            if (lm.t(d) > 1)
                t_part += strFormat(
                    "%s%llu ", dimName(d),
                    static_cast<unsigned long long>(lm.t(d)));
            if (lm.s(d) > 1)
                s_part += strFormat(
                    "%s%llu ", dimName(d),
                    static_cast<unsigned long long>(lm.s(d)));
        }
        if (t_part.empty())
            t_part = "- ";
        if (s_part.empty())
            s_part = "- ";
        out += strFormat("  L%zu temporal[ %s] spatial[ %s]\n", l,
                         t_part.c_str(), s_part.c_str());
    }
    return out;
}

} // namespace ploop
