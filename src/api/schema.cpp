#include "api/schema.hpp"

#include "api/requests.hpp"

namespace ploop {

namespace {

/**
 * Field-list visitor collecting one schema entry per field.  Nested
 * described types are referenced by name ("of") and expanded once
 * into the shared "types" registry, so the document stays flat.
 */
class SchemaCollector
{
  public:
    explicit SchemaCollector(JsonValue *types) : types_(types)
    {
        fields_ = JsonValue::array();
    }

    void field(const FieldMeta &m, double &v)
    {
        add(m, "number", JsonValue::number(v));
    }

    void field(const FieldMeta &m, std::uint64_t &v)
    {
        add(m, "integer", JsonValue::number(double(v)));
    }

    void field(const FieldMeta &m, unsigned &v)
    {
        add(m, "integer", JsonValue::number(double(v)));
    }

    void field(const FieldMeta &m, bool &v)
    {
        add(m, "bool", JsonValue::boolean(v));
    }

    void field(const FieldMeta &m, std::string &v)
    {
        add(m, "string", JsonValue::string(v));
    }

    void numberList(const FieldMeta &m, std::vector<double> &)
    {
        add(m, "number_list", JsonValue::array());
    }

    template <class T, class Names>
    void enumField(const FieldMeta &m, T &v, const Names &names)
    {
        JsonValue allowed = JsonValue::array();
        const char *current = "";
        for (const auto &n : names) {
            allowed.push(JsonValue::string(n.name));
            if (n.value == v)
                current = n.name;
        }
        JsonValue entry = base(m, "enum", JsonValue::string(current));
        entry.set("values", std::move(allowed));
        fields_.push(std::move(entry));
    }

    template <class T> void object(const FieldMeta &m, T &sub)
    {
        registerType(sub);
        JsonValue entry = base(m, "object", JsonValue());
        entry.set("of", JsonValue::string(typeName(&sub)));
        fields_.push(std::move(entry));
    }

    template <class T>
    void objectList(const FieldMeta &m, std::vector<T> &)
    {
        T prototype{};
        registerType(prototype);
        JsonValue entry = base(m, "object_list", JsonValue::array());
        entry.set("of", JsonValue::string(typeName(&prototype)));
        fields_.push(std::move(entry));
    }

    template <class F> void checkpoint(F &&) {}

    JsonValue take()
    {
        JsonValue out = JsonValue::object();
        out.set("fields", std::move(fields_));
        return out;
    }

  private:
    JsonValue base(const FieldMeta &m, const char *type,
                   JsonValue dflt)
    {
        JsonValue entry = JsonValue::object();
        entry.set("name", JsonValue::string(m.name));
        entry.set("type", JsonValue::string(type));
        entry.set("default", std::move(dflt));
        entry.set("semantic", JsonValue::boolean(m.semantic));
        entry.set("doc", JsonValue::string(m.doc));
        return entry;
    }

    void add(const FieldMeta &m, const char *type, JsonValue dflt)
    {
        fields_.push(base(m, type, std::move(dflt)));
    }

    template <class T> void registerType(T &)
    {
        const char *name = typeName(static_cast<T *>(nullptr));
        if (types_->get(name))
            return;
        // Reserve the slot first: self-referential types would
        // otherwise recurse forever (none exist today).
        types_->set(name, JsonValue());
        T prototype{};
        SchemaCollector nested(types_);
        describeFields(nested, prototype);
        // Replace the placeholder (set() appends; rebuild instead).
        JsonValue rebuilt = JsonValue::object();
        for (const auto &[key, value] : types_->members()) {
            if (key == name)
                rebuilt.set(key, nested.take());
            else
                rebuilt.set(key, value);
        }
        *types_ = std::move(rebuilt);
    }

    JsonValue *types_;
    JsonValue fields_;
};

template <class T>
void
addRequestSchema(JsonValue &requests, JsonValue *types)
{
    T prototype{};
    SchemaCollector c(types);
    describeFields(c, prototype);
    requests.set(requestName(&prototype), c.take());
}

} // namespace

JsonValue
apiSchemaJson()
{
    JsonValue types = JsonValue::object();
    JsonValue requests = JsonValue::object();
    addRequestSchema<EvaluateRequest>(requests, &types);
    addRequestSchema<SearchRequest>(requests, &types);
    addRequestSchema<SweepRequest>(requests, &types);
    addRequestSchema<NetworkRequest>(requests, &types);

    JsonValue knobs = JsonValue::array();
    for (const std::string &k : sweepKnobNames())
        knobs.push(JsonValue::string(k));

    JsonValue out = JsonValue::object();
    out.set("version", JsonValue::number(double(kApiVersion)));
    out.set("requests", std::move(requests));
    out.set("types", std::move(types));
    out.set("sweep_knobs", std::move(knobs));
    return out;
}

} // namespace ploop
