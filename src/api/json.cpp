#include "api/json.hpp"

#include <cmath>
#include <cstdlib>

#include "common/error.hpp"
#include "common/string_util.hpp"
#include "report/export.hpp"

namespace ploop {

JsonValue
JsonValue::boolean(bool b)
{
    JsonValue v;
    v.kind_ = Kind::Bool;
    v.bool_ = b;
    return v;
}

JsonValue
JsonValue::number(double d)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.number_ = d;
    return v;
}

JsonValue
JsonValue::string(std::string s)
{
    JsonValue v;
    v.kind_ = Kind::String;
    v.string_ = std::move(s);
    return v;
}

JsonValue
JsonValue::array()
{
    JsonValue v;
    v.kind_ = Kind::Array;
    return v;
}

JsonValue
JsonValue::object()
{
    JsonValue v;
    v.kind_ = Kind::Object;
    return v;
}

bool
JsonValue::asBool() const
{
    fatalIf(kind_ != Kind::Bool, "JSON value is not a bool");
    return bool_;
}

double
JsonValue::asNumber() const
{
    fatalIf(kind_ != Kind::Number, "JSON value is not a number");
    return number_;
}

const std::string &
JsonValue::asString() const
{
    fatalIf(kind_ != Kind::String, "JSON value is not a string");
    return string_;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    fatalIf(kind_ != Kind::Array, "JSON value is not an array");
    return items_;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    fatalIf(kind_ != Kind::Object, "JSON value is not an object");
    return members_;
}

const JsonValue *
JsonValue::get(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : members_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

JsonValue *
JsonValue::getMutable(const std::string &key)
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (auto &[k, v] : members_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

std::vector<JsonValue> &
JsonValue::itemsMutable()
{
    fatalIf(kind_ != Kind::Array, "JSON value is not an array");
    return items_;
}

void
JsonValue::push(JsonValue v)
{
    fatalIf(kind_ != Kind::Array, "JSON push on a non-array");
    items_.push_back(std::move(v));
}

void
JsonValue::set(std::string key, JsonValue v)
{
    fatalIf(kind_ != Kind::Object, "JSON set on a non-object");
    members_.emplace_back(std::move(key), std::move(v));
}

void
JsonValue::replace(const std::string &key, JsonValue v)
{
    fatalIf(kind_ != Kind::Object, "JSON replace on a non-object");
    for (auto &[k, value] : members_) {
        if (k == key) {
            value = std::move(v);
            return;
        }
    }
    members_.emplace_back(key, std::move(v));
}

bool
JsonValue::remove(const std::string &key)
{
    fatalIf(kind_ != Kind::Object, "JSON remove on a non-object");
    for (auto it = members_.begin(); it != members_.end(); ++it) {
        if (it->first == key) {
            members_.erase(it);
            return true;
        }
    }
    return false;
}

std::string
JsonValue::serialize() const
{
    switch (kind_) {
      case Kind::Null:
        return "null";
      case Kind::Bool:
        return bool_ ? "true" : "false";
      case Kind::Number:
        // %.17g round-trips every finite double exactly; non-finite
        // has no JSON literal and becomes null (see jsonNumber).
        if (!std::isfinite(number_))
            return "null";
        return strFormat("%.17g", number_);
      case Kind::String:
        return "\"" + jsonEscape(string_) + "\"";
      case Kind::Array: {
        std::string out = "[";
        for (std::size_t i = 0; i < items_.size(); ++i) {
            if (i)
                out += ",";
            out += items_[i].serialize();
        }
        return out + "]";
      }
      case Kind::Object: {
        std::string out = "{";
        for (std::size_t i = 0; i < members_.size(); ++i) {
            if (i)
                out += ",";
            out += "\"" + jsonEscape(members_[i].first) +
                   "\":" + members_[i].second.serialize();
        }
        return out + "}";
      }
    }
    return "null"; // unreachable
}

namespace {

/** Recursive-descent parser over one text buffer (see parseJson). */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    std::optional<JsonValue> run(std::string *error)
    {
        std::optional<JsonValue> v = value(0);
        if (v) {
            skipSpace();
            if (pos_ != text_.size()) {
                fail("trailing content after document");
                v.reset();
            }
        }
        if (!v && error)
            *error = error_;
        return v;
    }

  private:
    /** Nesting bound: a hostile "[[[[..." must not smash the stack. */
    static constexpr unsigned kMaxDepth = 64;

    void fail(const std::string &what)
    {
        if (error_.empty())
            error_ = what + strFormat(" (at byte %zu)", pos_);
    }

    void skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool literal(const char *word)
    {
        std::size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    /** Append one \uXXXX code point (with surrogate pairing) as UTF-8. */
    bool unicodeEscape(std::string &out)
    {
        auto hex4 = [&](std::uint32_t &cp) {
            if (pos_ + 4 > text_.size())
                return false;
            cp = 0;
            for (int i = 0; i < 4; ++i) {
                char c = text_[pos_ + i];
                cp <<= 4;
                if (c >= '0' && c <= '9')
                    cp |= std::uint32_t(c - '0');
                else if (c >= 'a' && c <= 'f')
                    cp |= std::uint32_t(c - 'a' + 10);
                else if (c >= 'A' && c <= 'F')
                    cp |= std::uint32_t(c - 'A' + 10);
                else
                    return false;
            }
            pos_ += 4;
            return true;
        };

        std::uint32_t cp = 0;
        if (!hex4(cp)) {
            fail("bad \\u escape");
            return false;
        }
        if (cp >= 0xd800 && cp <= 0xdbff) {
            std::uint32_t lo = 0;
            if (!literal("\\u") || !hex4(lo) || lo < 0xdc00 ||
                lo > 0xdfff) {
                fail("unpaired surrogate in \\u escape");
                return false;
            }
            cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
        } else if (cp >= 0xdc00 && cp <= 0xdfff) {
            fail("unpaired surrogate in \\u escape");
            return false;
        }

        if (cp < 0x80) {
            out += char(cp);
        } else if (cp < 0x800) {
            out += char(0xc0 | (cp >> 6));
            out += char(0x80 | (cp & 0x3f));
        } else if (cp < 0x10000) {
            out += char(0xe0 | (cp >> 12));
            out += char(0x80 | ((cp >> 6) & 0x3f));
            out += char(0x80 | (cp & 0x3f));
        } else {
            out += char(0xf0 | (cp >> 18));
            out += char(0x80 | ((cp >> 12) & 0x3f));
            out += char(0x80 | ((cp >> 6) & 0x3f));
            out += char(0x80 | (cp & 0x3f));
        }
        return true;
    }

    std::optional<std::string> stringBody()
    {
        // Opening quote already consumed.
        std::string out;
        for (;;) {
            if (pos_ >= text_.size()) {
                fail("unterminated string");
                return std::nullopt;
            }
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20) {
                fail("raw control character in string");
                return std::nullopt;
            }
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) {
                fail("unterminated escape");
                return std::nullopt;
            }
            char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u':
                if (!unicodeEscape(out))
                    return std::nullopt;
                break;
              default:
                fail("unknown escape");
                return std::nullopt;
            }
        }
    }

    std::optional<JsonValue> value(unsigned depth)
    {
        if (depth > kMaxDepth) {
            fail("nesting too deep");
            return std::nullopt;
        }
        skipSpace();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return std::nullopt;
        }
        char c = text_[pos_];
        if (c == '{')
            return object(depth);
        if (c == '[')
            return array(depth);
        if (c == '"') {
            ++pos_;
            std::optional<std::string> s = stringBody();
            if (!s)
                return std::nullopt;
            return JsonValue::string(std::move(*s));
        }
        if (literal("true"))
            return JsonValue::boolean(true);
        if (literal("false"))
            return JsonValue::boolean(false);
        if (literal("null"))
            return JsonValue();
        return number();
    }

    std::optional<JsonValue> number()
    {
        const char *start = text_.c_str() + pos_;
        char *end = nullptr;
        double v = std::strtod(start, &end);
        if (end == start) {
            fail("expected a JSON value");
            return std::nullopt;
        }
        // strtod accepts "nan"/"inf"/hex floats; JSON does not.
        for (const char *p = start; p != end; ++p) {
            char d = *p;
            bool ok = (d >= '0' && d <= '9') || d == '-' || d == '+' ||
                      d == '.' || d == 'e' || d == 'E';
            if (!ok) {
                fail("expected a JSON value");
                return std::nullopt;
            }
        }
        pos_ += std::size_t(end - start);
        return JsonValue::number(v);
    }

    std::optional<JsonValue> array(unsigned depth)
    {
        ++pos_; // '['
        JsonValue out = JsonValue::array();
        skipSpace();
        if (consume(']'))
            return out;
        for (;;) {
            std::optional<JsonValue> v = value(depth + 1);
            if (!v)
                return std::nullopt;
            out.push(std::move(*v));
            skipSpace();
            if (consume(']'))
                return out;
            if (!consume(',')) {
                fail("expected ',' or ']' in array");
                return std::nullopt;
            }
        }
    }

    std::optional<JsonValue> object(unsigned depth)
    {
        ++pos_; // '{'
        JsonValue out = JsonValue::object();
        skipSpace();
        if (consume('}'))
            return out;
        for (;;) {
            skipSpace();
            if (!consume('"')) {
                fail("expected a string key in object");
                return std::nullopt;
            }
            std::optional<std::string> key = stringBody();
            if (!key)
                return std::nullopt;
            skipSpace();
            if (!consume(':')) {
                fail("expected ':' after object key");
                return std::nullopt;
            }
            std::optional<JsonValue> v = value(depth + 1);
            if (!v)
                return std::nullopt;
            out.set(std::move(*key), std::move(*v));
            skipSpace();
            if (consume('}'))
                return out;
            if (!consume(',')) {
                fail("expected ',' or '}' in object");
                return std::nullopt;
            }
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    std::string error_;
};

} // namespace

std::optional<JsonValue>
parseJson(const std::string &text, std::string *error)
{
    return Parser(text).run(error);
}

} // namespace ploop
