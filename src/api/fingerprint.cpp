#include "api/fingerprint.hpp"

#include <cstring>

#include "common/math_util.hpp"

namespace ploop {

namespace {

/** Field-list visitor hashing semantic fields only (see header). */
class RequestFingerprinter
{
  public:
    explicit RequestFingerprinter(std::uint64_t seed)
        : h_(mix64(seed))
    {}

    void field(const FieldMeta &m, double &v)
    {
        if (!m.semantic)
            return;
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        mixTagged(m, bits);
    }

    void field(const FieldMeta &m, std::uint64_t &v)
    {
        if (m.semantic)
            mixTagged(m, v);
    }

    void field(const FieldMeta &m, unsigned &v)
    {
        if (m.semantic)
            mixTagged(m, v);
    }

    void field(const FieldMeta &m, bool &v)
    {
        if (m.semantic)
            mixTagged(m, v ? 1 : 0);
    }

    void field(const FieldMeta &m, std::string &v)
    {
        if (m.semantic)
            mixTagged(m, stringValueHash(v));
    }

    void numberList(const FieldMeta &m, std::vector<double> &v)
    {
        if (!m.semantic)
            return;
        mixTagged(m, v.size());
        for (double d : v) {
            std::uint64_t bits;
            std::memcpy(&bits, &d, sizeof(bits));
            h_ = mix64(h_ ^ bits);
        }
    }

    template <class T, class Names>
    void enumField(const FieldMeta &m, T &v, const Names &)
    {
        if (m.semantic)
            mixTagged(m, static_cast<std::uint64_t>(v));
    }

    /** The arch component is its full-config key, by contract. */
    void object(const FieldMeta &m, AlbireoConfig &cfg)
    {
        if (m.semantic)
            mixTagged(m, albireoConfigKey(cfg));
    }

    template <class T> void object(const FieldMeta &m, T &sub)
    {
        if (!m.semantic)
            return;
        mixTagged(m, 0);
        describeFields(*this, sub);
    }

    template <class T>
    void objectList(const FieldMeta &m, std::vector<T> &v)
    {
        if (!m.semantic)
            return;
        mixTagged(m, v.size());
        for (T &item : v)
            describeFields(*this, item);
    }

    template <class F> void checkpoint(F &&) {}

    std::uint64_t value() const { return h_; }

  private:
    void mixTagged(const FieldMeta &m, std::uint64_t v)
    {
        h_ = mix64(h_ ^ fieldNameHash(m.name));
        h_ = mix64(h_ ^ v);
    }

    std::uint64_t h_;
};

template <class T>
std::uint64_t
fingerprintOf(T req)
{
    RequestFingerprinter f(
        fieldNameHash(requestName(&req)));
    describeFields(f, req);
    return f.value();
}

} // namespace

std::uint64_t
requestFingerprint(const EvaluateRequest &req)
{
    return fingerprintOf(req);
}

std::uint64_t
requestFingerprint(const SearchRequest &req)
{
    return fingerprintOf(req);
}

std::uint64_t
requestFingerprint(const SweepRequest &req)
{
    return fingerprintOf(req);
}

std::uint64_t
requestFingerprint(const NetworkRequest &req)
{
    return fingerprintOf(req);
}

} // namespace ploop
