#include "api/fingerprint.hpp"

#include <cmath>
#include <cstring>

#include "common/math_util.hpp"

namespace ploop {

namespace {

/** Field-list visitor hashing semantic fields only (see header). */
class RequestFingerprinter
{
  public:
    explicit RequestFingerprinter(std::uint64_t seed)
        : h_(mix64(seed))
    {}

    void field(const FieldMeta &m, double &v)
    {
        if (!m.semantic)
            return;
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        mixTagged(m, bits);
    }

    void field(const FieldMeta &m, std::uint64_t &v)
    {
        if (m.semantic)
            mixTagged(m, v);
    }

    void field(const FieldMeta &m, unsigned &v)
    {
        if (m.semantic)
            mixTagged(m, v);
    }

    void field(const FieldMeta &m, bool &v)
    {
        if (m.semantic)
            mixTagged(m, v ? 1 : 0);
    }

    void field(const FieldMeta &m, std::string &v)
    {
        if (m.semantic)
            mixTagged(m, stringValueHash(v));
    }

    void numberList(const FieldMeta &m, std::vector<double> &v)
    {
        if (!m.semantic)
            return;
        mixTagged(m, v.size());
        for (double d : v) {
            std::uint64_t bits;
            std::memcpy(&bits, &d, sizeof(bits));
            h_ = mix64(h_ ^ bits);
        }
    }

    template <class T, class Names>
    void enumField(const FieldMeta &m, T &v, const Names &)
    {
        if (m.semantic)
            mixTagged(m, static_cast<std::uint64_t>(v));
    }

    /** The arch component is its full-config key, by contract. */
    void object(const FieldMeta &m, AlbireoConfig &cfg)
    {
        if (m.semantic)
            mixTagged(m, albireoConfigKey(cfg));
    }

    template <class T> void object(const FieldMeta &m, T &sub)
    {
        if (!m.semantic)
            return;
        mixTagged(m, 0);
        describeFields(*this, sub);
    }

    template <class T>
    void objectList(const FieldMeta &m, std::vector<T> &v)
    {
        if (!m.semantic)
            return;
        mixTagged(m, v.size());
        for (T &item : v)
            describeFields(*this, item);
    }

    template <class F> void checkpoint(F &&) {}

    std::uint64_t value() const { return h_; }

  private:
    void mixTagged(const FieldMeta &m, std::uint64_t v)
    {
        h_ = mix64(h_ ^ fieldNameHash(m.name));
        h_ = mix64(h_ ^ v);
    }

    std::uint64_t h_;
};

template <class T>
std::uint64_t
fingerprintOf(T req)
{
    RequestFingerprinter f(
        fieldNameHash(requestName(&req)));
    describeFields(f, req);
    return f.value();
}

/**
 * Lenient field-list decoder for the routing fast path (see
 * requestLineFingerprint() in the header): assigns a field only when
 * the JSON member exists with exactly the value the strict codec
 * would accept, and silently keeps the default otherwise.  No
 * duplicate-key scan, no unknown-field pass, no error strings --
 * and, critically, no fatal(): routing must never throw.
 */
class LenientFieldReader
{
  public:
    explicit LenientFieldReader(const JsonValue &obj) : obj_(&obj) {}

    void field(const FieldMeta &m, double &v)
    {
        const JsonValue *j = obj_->get(m.name);
        if (j && j->isNumber() && std::isfinite(j->asNumber()))
            v = j->asNumber();
    }

    void field(const FieldMeta &m, std::uint64_t &v)
    {
        integer(m, 18446744073709551616.0 /* 2^64 */, v);
    }

    void field(const FieldMeta &m, unsigned &v)
    {
        std::uint64_t wide = v;
        integer(m, 4294967296.0 /* 2^32 */, wide);
        v = static_cast<unsigned>(wide);
    }

    void field(const FieldMeta &m, bool &v)
    {
        const JsonValue *j = obj_->get(m.name);
        if (j && j->isBool())
            v = j->asBool();
    }

    void field(const FieldMeta &m, std::string &v)
    {
        const JsonValue *j = obj_->get(m.name);
        if (j && j->isString())
            v = j->asString();
    }

    void numberList(const FieldMeta &m, std::vector<double> &v)
    {
        const JsonValue *j = obj_->get(m.name);
        if (!j || !j->isArray())
            return;
        v.clear();
        for (const JsonValue &item : j->items())
            if (item.isNumber() && std::isfinite(item.asNumber()))
                v.push_back(item.asNumber());
    }

    template <class T, class Names>
    void enumField(const FieldMeta &m, T &v, const Names &names)
    {
        const JsonValue *j = obj_->get(m.name);
        if (!j || !j->isString())
            return;
        for (const auto &n : names) {
            if (j->asString() == n.name) {
                v = n.value;
                return;
            }
        }
    }

    template <class T> void object(const FieldMeta &m, T &sub)
    {
        const JsonValue *j = obj_->get(m.name);
        if (j && j->isObject()) {
            LenientFieldReader r(*j);
            describeFields(r, sub);
        }
    }

    template <class T>
    void objectList(const FieldMeta &m, std::vector<T> &out)
    {
        const JsonValue *j = obj_->get(m.name);
        if (!j || !j->isArray())
            return;
        out.clear();
        for (const JsonValue &item : j->items()) {
            T decoded{};
            if (item.isObject()) {
                LenientFieldReader r(item);
                describeFields(r, decoded);
            }
            out.push_back(std::move(decoded));
        }
    }

    /** Decode-order hook (the arch baseline re-derivation): runs
     *  immediately, exactly like the strict decoder. */
    template <class F> void checkpoint(F &&fixup) { fixup(); }

  private:
    void integer(const FieldMeta &m, double limit, std::uint64_t &v)
    {
        const JsonValue *j = obj_->get(m.name);
        if (!j || !j->isNumber())
            return;
        double d = j->asNumber();
        // Same acceptance set as the strict decoder (non-negative,
        // integral, in range); anything else keeps the default.
        if (d >= 0 && d < limit && d == std::floor(d))
            v = static_cast<std::uint64_t>(d);
    }

    const JsonValue *obj_;
};

template <class T>
std::uint64_t
lenientFingerprint(const JsonValue &obj)
{
    T req{};
    LenientFieldReader r(obj);
    describeFields(r, req);
    return requestFingerprint(req);
}

} // namespace

std::uint64_t
requestFingerprint(const EvaluateRequest &req)
{
    return fingerprintOf(req);
}

std::uint64_t
requestFingerprint(const SearchRequest &req)
{
    return fingerprintOf(req);
}

std::uint64_t
requestFingerprint(const SweepRequest &req)
{
    return fingerprintOf(req);
}

std::uint64_t
requestFingerprint(const NetworkRequest &req)
{
    return fingerprintOf(req);
}

std::optional<std::uint64_t>
requestLineFingerprint(const JsonValue &parsed)
{
    if (!parsed.isObject())
        return std::nullopt;
    const JsonValue *opv = parsed.get("op");
    if (!opv || !opv->isString())
        return std::nullopt;
    const std::string &op = opv->asString();
    if (op == "evaluate")
        return lenientFingerprint<EvaluateRequest>(parsed);
    if (op == "search")
        return lenientFingerprint<SearchRequest>(parsed);
    if (op == "sweep")
        return lenientFingerprint<SweepRequest>(parsed);
    if (op == "network")
        return lenientFingerprint<NetworkRequest>(parsed);
    return std::nullopt;
}

} // namespace ploop
