/**
 * @file
 * Minimal JSON document model for the evaluation-service protocol:
 * a parse function for incoming request lines and a builder/serializer
 * for responses.  Deliberately small -- the protocol needs objects,
 * arrays, strings (with escapes), doubles, bools and null, nothing
 * else (no streaming, no comments, no 64-bit-exact integers beyond
 * the 2^53 doubles give us; exact values travel as hex strings).
 *
 * Robustness: parseJson() never throws on malformed input -- it
 * returns std::nullopt with a position-annotated error message, and
 * it bounds recursion depth, so a hostile request line cannot crash
 * a long-lived server.  serialize() emits compact one-line JSON with
 * every string routed through jsonEscape() (control characters
 * included) and doubles at %.17g (round-trip exact); non-finite
 * doubles become null, as everywhere else in PhotonLoop.
 */

#ifndef PHOTONLOOP_API_JSON_HPP
#define PHOTONLOOP_API_JSON_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace ploop {

/** One JSON value (see file comment). */
class JsonValue
{
  public:
    enum class Kind : std::uint8_t {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    /** Null by default. */
    JsonValue() = default;

    static JsonValue boolean(bool b);
    static JsonValue number(double v);
    static JsonValue string(std::string s);
    static JsonValue array();
    static JsonValue object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Value accessors; fatal() on kind mismatch. */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;

    /** Array elements; fatal() unless array. */
    const std::vector<JsonValue> &items() const;

    /** Object members in insertion order; fatal() unless object. */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const;

    /**
     * Object member lookup: nullptr when absent (or when this is not
     * an object) -- the protocol treats absent fields as defaults.
     */
    const JsonValue *get(const std::string &key) const;

    /** Mutable member lookup (the router grafts a worker's span
     *  subtree into its own rendered trace); nullptr when absent or
     *  not an object. */
    JsonValue *getMutable(const std::string &key);

    /** Mutable array elements; fatal() unless array. */
    std::vector<JsonValue> &itemsMutable();

    /** Append to an array; fatal() unless array. */
    void push(JsonValue v);

    /** Set an object member (appends; no duplicate-key replacement --
     *  builders set each key once).  fatal() unless object. */
    void set(std::string key, JsonValue v);

    /**
     * Replace an existing member's value IN PLACE (member order is
     * preserved -- the cluster router rewrites "id" on forwarded
     * lines and must not perturb the rest of the document), or
     * append when absent.  fatal() unless object.
     */
    void replace(const std::string &key, JsonValue v);

    /** Remove a member (first occurrence); false when absent.
     *  fatal() unless object. */
    bool remove(const std::string &key);

    /** Compact one-line rendering (see file comment). */
    std::string serialize() const;

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0;
    std::string string_;
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

/**
 * Parse one JSON document (the whole text, surrounding whitespace
 * allowed).  Returns std::nullopt on any syntax error, trailing
 * content, or nesting beyond a fixed depth bound, with a
 * human-readable message in @p error.
 */
std::optional<JsonValue> parseJson(const std::string &text,
                                   std::string *error = nullptr);

} // namespace ploop

#endif // PHOTONLOOP_API_JSON_HPP
