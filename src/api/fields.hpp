/**
 * @file
 * The declarative request layer's foundation: every request type is
 * described ONCE as a field list (a `describeFields(visitor, obj)`
 * function template), and everything the API needs is derived
 * mechanically by running a visitor over that list:
 *
 *  - JSON decode with strict validation (codec.hpp): unknown and
 *    duplicate fields are rejected BY NAME, types are checked, absent
 *    fields keep the struct's defaults;
 *  - canonical JSON encode (codec.hpp): every field, in description
 *    order -- one canonical wire form per request;
 *  - the canonical request fingerprint (fingerprint.hpp): semantic
 *    fields only, independent of JSON key order by construction;
 *  - the machine-readable schema served by the `capabilities` op
 *    (schema.hpp): names, types, defaults, semantic flags.
 *
 * There is no code generation: a visitor is any type providing the
 * member functions below (duck typing), and a field list is ordinary
 * code, so adding a request field is a one-line change that updates
 * the wire format, the fingerprint and the schema together.
 *
 * Visitor concept (all members required; Meta is FieldMeta):
 *
 *   void field(Meta, double&);          // JSON number
 *   void field(Meta, std::uint64_t&);   // non-negative integer
 *   void field(Meta, unsigned&);        // non-negative integer < 2^32
 *   void field(Meta, bool&);            // true/false
 *   void field(Meta, std::string&);     // string
 *   void numberList(Meta, std::vector<double>&);
 *   template <class T, class Names>
 *   void enumField(Meta, T&, const Names&);   // string from a closed set
 *   template <class T> void object(Meta, T&); // nested described type
 *   template <class T> void objectList(Meta, std::vector<T>&);
 *   template <class F> void checkpoint(F&&);  // decode-order hook
 *
 * checkpoint() runs its callback between fields DURING DECODE only
 * (encode/fingerprint/schema visitors ignore it); the arch request
 * uses it to re-derive profile defaults once `scaling`/`with_dram`
 * are known, before overrides apply.
 */

#ifndef PHOTONLOOP_API_FIELDS_HPP
#define PHOTONLOOP_API_FIELDS_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace ploop {

/** Per-field description (the first argument of every visitor call). */
struct FieldMeta
{
    /** Wire name (JSON object key). */
    const char *name;

    /** One-line description, surfaced in the capabilities schema. */
    const char *doc = "";

    /**
     * Folded into requestFingerprint()?  Non-semantic fields (e.g.
     * SearchOptions::threads) change how a request is computed, never
     * what it computes, so cached results survive changes to them.
     */
    bool semantic = true;
};

/** Convenience for non-semantic fields. */
inline FieldMeta
nonSemantic(const char *name, const char *doc = "")
{
    return FieldMeta{name, doc, false};
}

/** One (wire name, value) pair of a closed string-valued field. */
template <class T> struct EnumName
{
    const char *name;
    T value;
};

/** FNV-1a, for field-name tags in fingerprints. */
inline std::uint64_t
fieldNameHash(const char *s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (; *s; ++s) {
        h ^= static_cast<unsigned char>(*s);
        h *= 1099511628211ull;
    }
    return h;
}

/** FNV-1a over all bytes plus the length (NUL-safe: request strings
 *  may legally contain embedded NULs via unicode escapes). */
inline std::uint64_t
stringValueHash(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ull ^ s.size();
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace ploop

#endif // PHOTONLOOP_API_FIELDS_HPP
