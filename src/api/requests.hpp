/**
 * @file
 * The unified declarative request API.  Every operation the system
 * performs -- evaluate one mapping, search one layer, sweep a grid of
 * architecture knobs, run a whole network -- is a plain request
 * struct described as a field list (fields.hpp), so the in-process
 * API (EvalService), the line protocol (ServeSession/ploop_serve)
 * and --script files all speak the SAME requests with one canonical
 * serialization, one fingerprint, and one schema.
 *
 * Derived mechanically from the field lists here:
 *  - codec.hpp      strict JSON decode / canonical encode
 *  - fingerprint.hpp  requestFingerprint() (semantic fields only)
 *  - schema.hpp     the capabilities schema listing
 *
 * Grid sweeps: SweepRequest carries a ParamGrid -- an ordered list of
 * named knob axes (sweepKnobNames()) whose cartesian product defines
 * the sweep points; each point's architecture is derived from the
 * base config via applySweepKnob().  Axis order is semantic: it fixes
 * the point enumeration order (last axis fastest), exactly like
 * nested loops written in axis order.
 */

#ifndef PHOTONLOOP_API_REQUESTS_HPP
#define PHOTONLOOP_API_REQUESTS_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "albireo/albireo_config.hpp"
#include "api/fields.hpp"
#include "core/network_runner.hpp"
#include "core/sweep.hpp"
#include "mapper/mapper.hpp"
#include "report/export.hpp"

namespace ploop {

/** Protocol/schema version served by the capabilities op.  Bumped on
 *  any change to a request field list or response shape.  v3: the
 *  `metrics` op, the `trace` transport key, and the stats op's
 *  latency section. */
constexpr int kApiVersion = 3;

/** Hash of every AlbireoConfig field: the arch-registry key, and the
 *  arch component of every request fingerprint. */
std::uint64_t albireoConfigKey(const AlbireoConfig &cfg);

/**
 * Apply one named sweep knob to a base configuration; fatal() on an
 * unknown knob (see sweepKnobNames()).
 */
AlbireoConfig applySweepKnob(const AlbireoConfig &base,
                             const std::string &knob, double value);

/** Knobs applySweepKnob() understands. */
std::vector<std::string> sweepKnobNames();

/** Closed string sets for enum-valued request fields. */
const std::vector<EnumName<ScalingProfile>> &scalingEnumNames();
const std::vector<EnumName<Objective>> &objectiveEnumNames();
const std::vector<EnumName<bool>> &layerKindEnumNames();

/** A layer described over the request API (conv by default). */
struct LayerRequest
{
    std::string name = "layer";
    bool fully_connected = false;
    std::uint64_t n = 1, k = 1, c = 1;
    std::uint64_t p = 1, q = 1, r = 1, s = 1;
    std::uint64_t hstride = 1, wstride = 1;

    /** Materialize (validates); fatal() on bad shapes. */
    LayerShape toLayer() const;
};

/** Evaluate one deterministic mapping (no search). */
struct EvaluateRequest
{
    AlbireoConfig arch;
    LayerRequest layer;

    /** "greedy", "outer", or a dataflow name ("weight-stationary",
     *  "output-stationary", "input-stationary"). */
    std::string mapping = "greedy";
};

struct EvaluateResponse
{
    ResultRow row;           ///< Flattened full evaluation.
    std::string mapping_str; ///< Rendering of the evaluated mapping.
};

/** Run the mapper for one layer. */
struct SearchRequest
{
    AlbireoConfig arch;
    LayerRequest layer;
    SearchOptions options;
};

struct SearchResponse
{
    Mapping mapping;            ///< Best mapping found.
    std::string mapping_str;    ///< Its rendering.
    std::uint64_t mapping_key;  ///< mappingKey(mapping) (bit-exact id).
    double best_value;          ///< Objective value (lower = better).
    QuickEval best;             ///< Exact energy/runtime of the best.
    SearchStats stats;          ///< This request's own search stats.
    ResultRow row;              ///< Flattened full evaluation.

    /** requestFingerprint() of the request this answers. */
    std::uint64_t fingerprint = 0;

    /** True when the whole response was served from the service-side
     *  ResultCache (stats are then this request's -- all zero). */
    bool from_result_cache = false;
};

/** One axis of a parameter grid: a named knob and its sample values. */
struct GridAxis
{
    std::string knob; ///< See sweepKnobNames().
    std::vector<double> values;
};

/**
 * A multi-knob parameter grid: the cartesian product of its axes, in
 * row-major order (first axis slowest, last axis fastest).
 */
struct ParamGrid
{
    std::vector<GridAxis> axes;

    /** Number of grid points (product of axis sizes; 0 when empty). */
    std::size_t points() const;

    /**
     * Every grid point as one coordinate vector per point (same
     * length/order as axes), in enumeration order.  fatal() unless
     * valid (see validate()).
     */
    std::vector<std::vector<double>> coords() const;

    /** The architecture at one grid point: applySweepKnob per axis. */
    AlbireoConfig configAt(const AlbireoConfig &base,
                           const std::vector<double> &coord) const;

    /**
     * Request-level validation, fatal() with a field-naming message
     * on: no axes, an axis with no values, an unknown or duplicate
     * knob, or a grid larger than @p max_points.
     */
    void validate(std::size_t max_points = kMaxPoints) const;

    /** Hard cap on grid size (hostile-request guard). */
    static constexpr std::size_t kMaxPoints = 65536;
};

/** Sweep a parameter grid, re-mapping the layer at each point. */
struct SweepRequest
{
    AlbireoConfig arch; ///< Base configuration.
    LayerRequest layer;
    ParamGrid grid;
    SearchOptions options;
};

struct SweepResponse
{
    std::vector<std::string> axes; ///< Axis knob names, grid order.
    std::vector<SweepPoint> points; ///< One per grid point, in order.
    SearchStats stats; ///< Aggregate over all points.
};

/** Map and evaluate a whole network. */
struct NetworkRequest
{
    AlbireoConfig arch;

    /** Model-zoo name ("alexnet", "vgg16", "resnet18", "resnet34");
     *  leave empty to use @p layers instead. */
    std::string network;
    std::uint64_t batch = 1;

    /** Inline layer list (used when @p network is empty). */
    std::vector<LayerRequest> layers;

    SearchOptions options;
};

struct NetworkResponse
{
    NetworkRunResult result;
    SearchStats stats; ///< Aggregate over all layers.
};

// ------------------------------------------------------------------
// Field lists.  THE single source of truth for the wire format, the
// fingerprint and the schema of each type.  Order matters twice: it
// is the canonical encode order, and (for arch) the decode order
// around the checkpoint.
// ------------------------------------------------------------------

template <class V>
void
describeFields(V &v, AlbireoConfig &c)
{
    // scaling/with_dram select the paper-default baseline; the
    // checkpoint re-derives it before the remaining fields override.
    v.enumField(FieldMeta{"scaling", "technology scaling profile"},
                c.scaling, scalingEnumNames());
    v.field(FieldMeta{"with_dram", "include the DRAM level"},
            c.with_dram);
    v.checkpoint([&c] {
        c = AlbireoConfig::paperDefault(c.scaling, c.with_dram);
    });
    v.field(FieldMeta{"input_reuse", "IR: MACs per input conversion"},
            c.input_reuse);
    v.field(FieldMeta{"input_window_reuse",
                      "window-derived part of IR"},
            c.input_window_reuse);
    v.field(FieldMeta{"output_reuse",
                      "OR: partials per PD+ADC sample"},
            c.output_reuse);
    v.field(FieldMeta{"weight_reuse", "WR: MRRs per weight DAC"},
            c.weight_reuse);
    v.field(FieldMeta{"unit_r", "kernel-row unroll per cluster"},
            c.unit_r);
    v.field(FieldMeta{"unit_s", "kernel-column unroll per cluster"},
            c.unit_s);
    v.field(FieldMeta{"unit_k", "filter banks per cluster"}, c.unit_k);
    v.field(FieldMeta{"unit_c", "wavelength channels per cluster"},
            c.unit_c);
    v.field(FieldMeta{"chip_k", "clusters along K"}, c.chip_k);
    v.field(FieldMeta{"chip_p", "clusters along P"}, c.chip_p);
    v.field(FieldMeta{"clock_hz", "modulation clock"}, c.clock_hz);
    v.field(FieldMeta{"gb_capacity_words", "global buffer capacity"},
            c.gb_capacity_words);
    v.field(FieldMeta{"regs_capacity_words",
                      "operand register capacity"},
            c.regs_capacity_words);
    v.field(FieldMeta{"word_bits", "operand word width"}, c.word_bits);
    v.field(FieldMeta{"gb_bandwidth_words",
                      "global buffer words/cycle"},
            c.gb_bandwidth_words);
    v.field(FieldMeta{"dram_bandwidth_words", "DRAM words/cycle"},
            c.dram_bandwidth_words);
    v.field(FieldMeta{"dram_energy_per_bit", "DRAM J/bit"},
            c.dram_energy_per_bit);
    v.field(FieldMeta{"fuse_bypass_dram_inputs",
                      "fusion: inputs stay in the global buffer"},
            c.fuse_bypass_dram_inputs);
    v.field(FieldMeta{"fuse_bypass_dram_outputs",
                      "fusion: outputs stay in the global buffer"},
            c.fuse_bypass_dram_outputs);
    v.field(FieldMeta{"model_window_effects",
                      "model optical-window breakage on strides"},
            c.model_window_effects);
    v.field(FieldMeta{"model_laser_static",
                      "charge the laser as static power"},
            c.model_laser_static);
    v.field(FieldMeta{"model_adc_growth",
                      "grow ADC resolution with output reuse"},
            c.model_adc_growth);
}

template <class V>
void
describeFields(V &v, LayerRequest &l)
{
    v.field(FieldMeta{"name", "layer label (echoed in result rows)"},
            l.name);
    v.enumField(FieldMeta{"kind", "layer kind"}, l.fully_connected,
                layerKindEnumNames());
    v.field(FieldMeta{"n", "batch"}, l.n);
    v.field(FieldMeta{"k", "output channels"}, l.k);
    v.field(FieldMeta{"c", "input channels"}, l.c);
    v.field(FieldMeta{"p", "output rows"}, l.p);
    v.field(FieldMeta{"q", "output columns"}, l.q);
    v.field(FieldMeta{"r", "kernel rows"}, l.r);
    v.field(FieldMeta{"s", "kernel columns"}, l.s);
    v.field(FieldMeta{"hstride", "vertical stride"}, l.hstride);
    v.field(FieldMeta{"wstride", "horizontal stride"}, l.wstride);
}

template <class V>
void
describeFields(V &v, SearchOptions &o)
{
    v.enumField(FieldMeta{"objective", "what the mapper minimizes"},
                o.objective, objectiveEnumNames());
    v.field(FieldMeta{"random_samples", "random candidates to try"},
            o.random_samples);
    v.field(FieldMeta{"hill_climb_rounds", "improvement sweeps"},
            o.hill_climb_rounds);
    v.field(FieldMeta{"seed", "RNG seed (reproducible runs)"},
            o.seed);
    // Worker count changes HOW a search runs, never its result (the
    // determinism contract), so it stays out of the fingerprint:
    // warm result-cache hits survive thread-count changes.
    v.field(nonSemantic("threads", "worker lanes (0 = automatic)"),
            o.threads);
    // A deadline changes WHETHER a search finishes, never what a
    // finished search returns, so like threads it stays out of the
    // fingerprint: a warm hit answers instantly whatever budget the
    // retry carries, and a timed-out request never populates the
    // result cache in the first place.
    v.field(nonSemantic("timeout_ms",
                        "request deadline in ms (0 = none)"),
            o.timeout_ms);
}

template <class V>
void
describeFields(V &v, GridAxis &a)
{
    v.field(FieldMeta{"knob", "swept knob (see sweepKnobNames())"},
            a.knob);
    v.numberList(FieldMeta{"values", "sample values, >= 1"},
                 a.values);
}

template <class V>
void
describeFields(V &v, EvaluateRequest &r)
{
    v.object(FieldMeta{"arch", "architecture configuration"}, r.arch);
    v.object(FieldMeta{"layer", "workload layer"}, r.layer);
    v.field(FieldMeta{"mapping",
                      "greedy, outer, or a dataflow name"},
            r.mapping);
}

template <class V>
void
describeFields(V &v, SearchRequest &r)
{
    v.object(FieldMeta{"arch", "architecture configuration"}, r.arch);
    v.object(FieldMeta{"layer", "workload layer"}, r.layer);
    v.object(FieldMeta{"options", "mapper budget"}, r.options);
}

template <class V>
void
describeFields(V &v, SweepRequest &r)
{
    v.object(FieldMeta{"arch", "base architecture configuration"},
             r.arch);
    v.object(FieldMeta{"layer", "workload layer"}, r.layer);
    v.objectList(FieldMeta{"grid",
                           "knob axes; points = cartesian product"},
                 r.grid.axes);
    v.object(FieldMeta{"options", "mapper budget per point"},
             r.options);
}

template <class V>
void
describeFields(V &v, NetworkRequest &r)
{
    v.object(FieldMeta{"arch", "architecture configuration"}, r.arch);
    v.field(FieldMeta{"network", "model-zoo name (or use layers)"},
            r.network);
    v.field(FieldMeta{"batch", "network batch size"}, r.batch);
    v.objectList(FieldMeta{"layers",
                           "inline layers (when network is empty)"},
                 r.layers);
    v.object(FieldMeta{"options", "mapper budget per layer"},
             r.options);
}

/** Wire name of each request type (the protocol op). */
inline const char *requestName(const EvaluateRequest *) { return "evaluate"; }
inline const char *requestName(const SearchRequest *) { return "search"; }
inline const char *requestName(const SweepRequest *) { return "sweep"; }
inline const char *requestName(const NetworkRequest *) { return "network"; }

/** Schema name of each nested described type. */
inline const char *typeName(const AlbireoConfig *) { return "arch"; }
inline const char *typeName(const LayerRequest *) { return "layer"; }
inline const char *typeName(const SearchOptions *) { return "options"; }
inline const char *typeName(const GridAxis *) { return "grid_axis"; }

} // namespace ploop

#endif // PHOTONLOOP_API_REQUESTS_HPP
