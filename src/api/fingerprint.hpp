/**
 * @file
 * Canonical request fingerprints, derived from the field lists in
 * requests.hpp: a 64-bit key identifying WHAT a request computes.
 *
 * What is folded in: a per-request-type tag, albireoConfigKey() for
 * the (resolved) architecture configuration, every layer field
 * (name included -- responses echo it), and every SEMANTIC search
 * option; for sweeps, the grid axes in order (axis order fixes the
 * point enumeration order); for networks, the zoo name/batch or the
 * inline layer list.
 *
 * What is NOT folded in: non-semantic fields (FieldMeta::semantic ==
 * false) -- today exactly SearchOptions::threads, which changes how
 * a search runs but never its result (the engine's determinism
 * contract), so result-cache hits survive thread-count changes.
 * JSON key order never matters: fingerprints are computed over the
 * DECODED struct in field-list order, not over the wire bytes.
 *
 * The fingerprint keys the service-side ResultCache (whole
 * SearchResponse memoization); a collision would serve a wrong
 * response, so the 64-bit space is deliberately fed through mix64
 * per field with distinct field-name tags (same birthday math as the
 * EvalCache keys: ~10^-10 collision odds at a million cached
 * requests).
 */

#ifndef PHOTONLOOP_API_FINGERPRINT_HPP
#define PHOTONLOOP_API_FINGERPRINT_HPP

#include <optional>

#include "api/json.hpp"
#include "api/requests.hpp"

namespace ploop {

std::uint64_t requestFingerprint(const EvaluateRequest &req);
std::uint64_t requestFingerprint(const SearchRequest &req);
std::uint64_t requestFingerprint(const SweepRequest &req);
std::uint64_t requestFingerprint(const NetworkRequest &req);

/**
 * Fingerprint-only fast-path decode for routing (the cluster
 * router): map a parsed request line straight to its fingerprint
 * WITHOUT the strict codec.  Field values are read leniently --
 * absent, mistyped or out-of-range members keep their defaults
 * instead of failing -- so this never throws; the worker that
 * ultimately executes the request still applies the strict decode
 * and owns the error message.
 *
 * Contract (asserted in tests): for any request the strict decoder
 * accepts, the result equals requestFingerprint() of the strictly
 * decoded struct -- a router using this key agrees with the
 * workers' ResultCache keys, which is what makes consistent-hash
 * placement equal cache affinity.
 *
 * std::nullopt when the line is not an object or its "op" is not
 * one of the fingerprintable request ops (evaluate, search, sweep,
 * network) -- those are session-level ops the router handles by
 * policy instead.
 */
std::optional<std::uint64_t>
requestLineFingerprint(const JsonValue &parsed);

} // namespace ploop

#endif // PHOTONLOOP_API_FINGERPRINT_HPP
