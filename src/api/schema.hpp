/**
 * @file
 * Machine-readable schema of the request API, derived from the field
 * lists in requests.hpp and served by the `capabilities` protocol op:
 *
 *   {
 *     "version": <kApiVersion>,
 *     "requests": { "evaluate": {"fields": [...]}, "search": ...,
 *                   "sweep": ..., "network": ... },
 *     "types":    { "arch": {"fields": [...]}, "layer": ...,
 *                   "options": ..., "grid_axis": ... },
 *     "sweep_knobs": ["input_reuse", ...]
 *   }
 *
 * Every field entry lists name, wire type, the default value (from a
 * default-constructed request), whether the field is semantic (folded
 * into requestFingerprint()), the allowed values for enum fields, the
 * element type for object lists, and the one-line doc string.  The
 * listing is STABLE: it changes exactly when a field list changes,
 * and kApiVersion is bumped with it -- clients can pin a version and
 * validate requests offline.
 */

#ifndef PHOTONLOOP_API_SCHEMA_HPP
#define PHOTONLOOP_API_SCHEMA_HPP

#include "api/json.hpp"

namespace ploop {

/** The full schema document (see file comment). */
JsonValue apiSchemaJson();

} // namespace ploop

#endif // PHOTONLOOP_API_SCHEMA_HPP
