/**
 * @file
 * JSON codec for the declarative request API, derived mechanically
 * from the field lists in requests.hpp.
 *
 * Decode (decodeRequestJson<T>) is STRICT: unknown fields are
 * rejected by name (listing the known ones), duplicate keys are
 * rejected, every field's type is checked with a message naming the
 * field path ("arch.unit_k"), and integers must be integral,
 * non-negative and in range.  Absent fields keep the request's
 * defaults, so minimal requests stay minimal.  The protocol's
 * transport keys ("op", "id") are allowed at the top level only.
 * All failures fatal() -- callers (ServeSession) turn them into
 * per-request error responses.
 *
 * Encode (encodeRequestJson) emits every field in description order:
 * one canonical wire form per request, re-decodable to an identical
 * request (round-trip identity is tested).
 *
 * Response serialization for the line protocol lives here too
 * (responseJson overloads), so ServeSession is a thin transport.
 */

#ifndef PHOTONLOOP_API_CODEC_HPP
#define PHOTONLOOP_API_CODEC_HPP

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "api/json.hpp"
#include "api/requests.hpp"
#include "common/error.hpp"

namespace ploop {

/** Strict decoding visitor (see file comment). */
class JsonFieldDecoder
{
  public:
    /**
     * @param obj The JSON object to decode (fatal() unless object).
     * @param path Field-path prefix for messages ("" at top level).
     */
    JsonFieldDecoder(const JsonValue &obj, std::string path)
        : obj_(obj), path_(std::move(path))
    {
        fatalIf(!obj.isObject(),
                where("request") + " must be a JSON object");
        std::set<std::string> seen;
        for (const auto &[key, value] : obj.members()) {
            (void)value;
            fatalIf(!seen.insert(key).second,
                    "duplicate field '" + join(key) + "'");
        }
    }

    /** Allow the protocol transport keys (top level only).
     *  "trace" lives here rather than in any field list: it asks the
     *  TRANSPORT to attach a span tree to the response, changes no
     *  request semantics, and therefore must stay out of
     *  requestFingerprint() -- which it does by construction, since
     *  fingerprints hash described fields only (asserted in tests
     *  like timeout_ms). */
    void allowTransportKeys()
    {
        known_.push_back("op");
        known_.push_back("id");
        known_.push_back("trace");
    }

    void field(const FieldMeta &m, double &v)
    {
        if (const JsonValue *j = lookup(m)) {
            // JSON has no literal for non-finite values, but an
            // overflowing literal (1e999) parses to inf -- reject it
            // here so no request field can smuggle inf/NaN into the
            // model (and the ResultCache).
            fatalIf(!j->isNumber() ||
                        !std::isfinite(j->asNumber()),
                    "field '" + join(m.name) +
                        "' must be a finite number");
            v = j->asNumber();
        }
    }

    void field(const FieldMeta &m, std::uint64_t &v)
    {
        v = integer(m, 18446744073709551616.0 /* 2^64 */, v);
    }

    void field(const FieldMeta &m, unsigned &v)
    {
        v = static_cast<unsigned>(
            integer(m, 4294967296.0 /* 2^32 */, v));
    }

    void field(const FieldMeta &m, bool &v)
    {
        if (const JsonValue *j = lookup(m)) {
            fatalIf(!j->isBool(), "field '" + join(m.name) +
                                      "' must be true or false");
            v = j->asBool();
        }
    }

    void field(const FieldMeta &m, std::string &v)
    {
        if (const JsonValue *j = lookup(m)) {
            fatalIf(!j->isString(),
                    "field '" + join(m.name) + "' must be a string");
            v = j->asString();
        }
    }

    void numberList(const FieldMeta &m, std::vector<double> &v)
    {
        if (const JsonValue *j = lookup(m)) {
            fatalIf(!j->isArray(), "field '" + join(m.name) +
                                       "' must be an array of "
                                       "numbers");
            v.clear();
            for (const JsonValue &item : j->items()) {
                fatalIf(!item.isNumber() ||
                            !std::isfinite(item.asNumber()),
                        "field '" + join(m.name) +
                            "' must contain only finite numbers");
                v.push_back(item.asNumber());
            }
        }
    }

    template <class T, class Names>
    void enumField(const FieldMeta &m, T &v, const Names &names)
    {
        const JsonValue *j = lookup(m);
        if (!j)
            return;
        fatalIf(!j->isString(),
                "field '" + join(m.name) + "' must be a string");
        for (const auto &n : names) {
            if (j->asString() == n.name) {
                v = n.value;
                return;
            }
        }
        std::string allowed;
        for (const auto &n : names)
            allowed += std::string(allowed.empty() ? "" : ", ") +
                       n.name;
        fatal("field '" + join(m.name) + "' must be one of: " +
              allowed + " (got '" + j->asString() + "')");
    }

    template <class T> void object(const FieldMeta &m, T &sub)
    {
        if (const JsonValue *j = lookup(m)) {
            fatalIf(!j->isObject(),
                    "field '" + join(m.name) + "' must be an object");
            JsonFieldDecoder d(*j, join(m.name));
            describeFields(d, sub);
            d.finish();
        }
    }

    template <class T>
    void objectList(const FieldMeta &m, std::vector<T> &out)
    {
        const JsonValue *j = lookup(m);
        if (!j)
            return;
        fatalIf(!j->isArray(), "field '" + join(m.name) +
                                   "' must be an array of objects");
        out.clear();
        std::size_t i = 0;
        for (const JsonValue &item : j->items()) {
            std::string elem_path =
                join(m.name) + "[" + std::to_string(i++) + "]";
            fatalIf(!item.isObject(),
                    "field '" + elem_path + "' must be an object");
            T decoded{};
            JsonFieldDecoder d(item, elem_path);
            describeFields(d, decoded);
            d.finish();
            out.push_back(std::move(decoded));
        }
    }

    /** Decode-order hook (see fields.hpp): runs immediately. */
    template <class F> void checkpoint(F &&fixup) { fixup(); }

    /** Reject members no field() call consumed, by name. */
    void finish()
    {
        for (const auto &[key, value] : obj_.members()) {
            (void)value;
            bool known = false;
            for (const std::string &k : known_)
                known = known || k == key;
            if (known)
                continue;
            std::string list;
            for (const std::string &k : known_)
                list += (list.empty() ? "" : ", ") + k;
            fatal("unknown field '" + join(key) + "' (known: " +
                  list + ")");
        }
    }

  private:
    std::string join(const std::string &name) const
    {
        return path_.empty() ? name : path_ + "." + name;
    }

    std::string where(const char *what) const
    {
        return path_.empty() ? what : "field '" + path_ + "'";
    }

    const JsonValue *lookup(const FieldMeta &m)
    {
        known_.push_back(m.name);
        return obj_.get(m.name);
    }

    std::uint64_t integer(const FieldMeta &m, double limit,
                          std::uint64_t dflt = 0)
    {
        const JsonValue *j = obj_.get(m.name);
        known_.push_back(m.name);
        if (!j)
            return dflt;
        double d = j->isNumber() ? j->asNumber() : -1.0;
        // !(d >= 0) also rejects NaN; the upper bound rejects inf
        // and anything the uint64 cast would make undefined; the
        // floor check rejects fractions.
        fatalIf(!j->isNumber() || !(d >= 0) || d >= limit ||
                    d != std::floor(d),
                "field '" + join(m.name) +
                    "' must be a non-negative integer below " +
                    (limit >= 18446744073709551616.0 ? "2^64"
                                                     : "2^32"));
        return static_cast<std::uint64_t>(d);
    }

    const JsonValue &obj_;
    std::string path_;
    std::vector<std::string> known_;
};

/** Canonical encoding visitor: every field, description order. */
class JsonFieldEncoder
{
  public:
    void field(const FieldMeta &m, double &v)
    {
        out_.set(m.name, JsonValue::number(v));
    }

    void field(const FieldMeta &m, std::uint64_t &v)
    {
        out_.set(m.name, JsonValue::number(double(v)));
    }

    void field(const FieldMeta &m, unsigned &v)
    {
        out_.set(m.name, JsonValue::number(double(v)));
    }

    void field(const FieldMeta &m, bool &v)
    {
        out_.set(m.name, JsonValue::boolean(v));
    }

    void field(const FieldMeta &m, std::string &v)
    {
        out_.set(m.name, JsonValue::string(v));
    }

    void numberList(const FieldMeta &m, std::vector<double> &v)
    {
        JsonValue arr = JsonValue::array();
        for (double d : v)
            arr.push(JsonValue::number(d));
        out_.set(m.name, std::move(arr));
    }

    template <class T, class Names>
    void enumField(const FieldMeta &m, T &v, const Names &names)
    {
        for (const auto &n : names) {
            if (n.value == v) {
                out_.set(m.name, JsonValue::string(n.name));
                return;
            }
        }
        fatal(std::string("field '") + m.name +
              "' holds a value outside its enum");
    }

    template <class T> void object(const FieldMeta &m, T &sub)
    {
        JsonFieldEncoder e;
        describeFields(e, sub);
        out_.set(m.name, e.take());
    }

    template <class T>
    void objectList(const FieldMeta &m, std::vector<T> &v)
    {
        JsonValue arr = JsonValue::array();
        for (T &item : v) {
            JsonFieldEncoder e;
            describeFields(e, item);
            arr.push(e.take());
        }
        out_.set(m.name, std::move(arr));
    }

    template <class F> void checkpoint(F &&) {}

    JsonValue take() { return std::move(out_); }

  private:
    JsonValue out_ = JsonValue::object();
};

/**
 * Decode one request object (a protocol line's parsed JSON, or any
 * object following the same schema).  Strict -- see file comment.
 */
template <class T>
T
decodeRequestJson(const JsonValue &obj)
{
    T out{};
    JsonFieldDecoder d(obj, "");
    d.allowTransportKeys();
    describeFields(d, out);
    d.finish();
    return out;
}

/** Canonical JSON form of a request (round-trips via decode). */
template <class T>
JsonValue
encodeRequestJson(T req)
{
    JsonFieldEncoder e;
    describeFields(e, req);
    return e.take();
}

// ---- response serialization (the line protocol's output side) ----

/** {"evaluated":..,"cache_hits":..,...} for a response's stats. */
JsonValue statsJson(const SearchStats &stats);

/** Flattened metric row as an object ("label" plus every metric). */
JsonValue rowJson(const ResultRow &row);

/** "0x%016x" rendering of exact bit patterns. */
std::string hexU64(std::uint64_t v);

JsonValue responseJson(const EvaluateResponse &r);
JsonValue responseJson(const SearchRequest &req,
                       const SearchResponse &r);
JsonValue responseJson(const SweepRequest &req,
                       const SweepResponse &r);
JsonValue responseJson(const NetworkResponse &r);

} // namespace ploop

#endif // PHOTONLOOP_API_CODEC_HPP
