#include "api/codec.hpp"

#include <cstring>

#include "common/string_util.hpp"

namespace ploop {

JsonValue
statsJson(const SearchStats &stats)
{
    JsonValue out = JsonValue::object();
    out.set("evaluated", JsonValue::number(double(stats.evaluated)));
    out.set("invalid", JsonValue::number(double(stats.invalid)));
    out.set("cache_hits",
            JsonValue::number(double(stats.cache_hits)));
    out.set("cache_misses",
            JsonValue::number(double(stats.cache_misses)));
    // freshEvals() == 0 is the machine-checkable "fully warm" signal
    // (every valid candidate answered from cache).
    out.set("fresh_evals",
            JsonValue::number(double(stats.freshEvals())));
    out.set("wall_time_s", JsonValue::number(stats.wall_time_s));
    return out;
}

JsonValue
rowJson(const ResultRow &row)
{
    JsonValue out = JsonValue::object();
    out.set("label", JsonValue::string(row.label));
    for (const auto &[key, v] : row.values)
        out.set(key, JsonValue::number(v));
    return out;
}

std::string
hexU64(std::uint64_t v)
{
    return strFormat("0x%016llx", static_cast<unsigned long long>(v));
}

JsonValue
responseJson(const EvaluateResponse &r)
{
    JsonValue resp = JsonValue::object();
    resp.set("ok", JsonValue::boolean(true));
    resp.set("result", rowJson(r.row));
    resp.set("mapping", JsonValue::string(r.mapping_str));
    return resp;
}

JsonValue
responseJson(const SearchRequest &req, const SearchResponse &r)
{
    JsonValue resp = JsonValue::object();
    resp.set("ok", JsonValue::boolean(true));
    resp.set("objective",
             JsonValue::string(objectiveName(req.options.objective)));
    resp.set("best_value", JsonValue::number(r.best_value));
    resp.set("energy_j", JsonValue::number(r.best.energy_j));
    resp.set("runtime_s", JsonValue::number(r.best.runtime_s));
    // Exact bit patterns: warm-start bit-identity is assertable by
    // plain string comparison from any client (the smoke script
    // greps these).
    std::uint64_t ebits, rbits;
    static_assert(sizeof(double) == sizeof(std::uint64_t), "");
    std::memcpy(&ebits, &r.best.energy_j, sizeof(ebits));
    std::memcpy(&rbits, &r.best.runtime_s, sizeof(rbits));
    resp.set("energy_bits", JsonValue::string(hexU64(ebits)));
    resp.set("runtime_bits", JsonValue::string(hexU64(rbits)));
    resp.set("mapping_key", JsonValue::string(hexU64(r.mapping_key)));
    resp.set("mapping", JsonValue::string(r.mapping_str));
    resp.set("fingerprint", JsonValue::string(hexU64(r.fingerprint)));
    resp.set("from_result_cache",
             JsonValue::boolean(r.from_result_cache));
    resp.set("stats", statsJson(r.stats));
    resp.set("result", rowJson(r.row));
    return resp;
}

JsonValue
responseJson(const SweepRequest &req, const SweepResponse &r)
{
    JsonValue resp = JsonValue::object();
    resp.set("ok", JsonValue::boolean(true));
    JsonValue axes = JsonValue::array();
    for (const std::string &knob : r.axes)
        axes.push(JsonValue::string(knob));
    resp.set("axes", std::move(axes));
    JsonValue points = JsonValue::array();
    for (const SweepPoint &p : r.points) {
        JsonValue pt = JsonValue::object();
        JsonValue coords = JsonValue::object();
        for (std::size_t i = 0;
             i < p.coords.size() && i < r.axes.size(); ++i)
            coords.set(r.axes[i], JsonValue::number(p.coords[i]));
        pt.set("coords", std::move(coords));
        pt.set("energy_per_mac_j",
               JsonValue::number(p.result.energyPerMac()));
        pt.set("macs_per_cycle",
               JsonValue::number(p.result.throughput.macs_per_cycle));
        pt.set("utilization",
               JsonValue::number(p.result.throughput.utilization));
        pt.set("energy_total_j",
               JsonValue::number(p.result.totalEnergy()));
        points.push(std::move(pt));
    }
    resp.set("points", std::move(points));
    resp.set("stats", statsJson(r.stats));
    (void)req;
    return resp;
}

JsonValue
responseJson(const NetworkResponse &r)
{
    JsonValue resp = JsonValue::object();
    resp.set("ok", JsonValue::boolean(true));
    resp.set("total_energy_j",
             JsonValue::number(r.result.total_energy_j));
    resp.set("total_macs", JsonValue::number(r.result.total_macs));
    resp.set("macs_per_cycle",
             JsonValue::number(r.result.macsPerCycle()));
    resp.set("energy_per_mac_j",
             JsonValue::number(r.result.energyPerMac()));
    JsonValue layers = JsonValue::array();
    for (const LayerRunResult &lr : r.result.layers) {
        JsonValue l = JsonValue::object();
        l.set("name", JsonValue::string(lr.layer_name));
        l.set("energy_j", JsonValue::number(lr.result.totalEnergy()));
        l.set("macs_per_cycle",
              JsonValue::number(lr.result.throughput.macs_per_cycle));
        l.set("utilization",
              JsonValue::number(lr.result.throughput.utilization));
        layers.push(std::move(l));
    }
    resp.set("layers", std::move(layers));
    resp.set("stats", statsJson(r.stats));
    return resp;
}

} // namespace ploop
