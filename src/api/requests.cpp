#include "api/requests.hpp"

#include <cmath>
#include <cstring>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/string_util.hpp"

namespace ploop {

namespace {

std::uint64_t
mixDouble(std::uint64_t h, double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return mix64(h ^ bits);
}

std::uint64_t
mixU64(std::uint64_t h, std::uint64_t v)
{
    return mix64(h ^ v);
}

} // namespace

std::uint64_t
albireoConfigKey(const AlbireoConfig &cfg)
{
    // Every field participates: two configs differing anywhere get
    // distinct registry slots (the cheap pre-build key; EvalCache
    // scoping uses the post-build model fingerprint, so two configs
    // that RESOLVE to the same model still share cache entries).
    std::uint64_t h = mixU64(0x414c4249u, std::uint64_t(cfg.scaling));
    h = mixDouble(h, cfg.input_reuse);
    h = mixDouble(h, cfg.input_window_reuse);
    h = mixDouble(h, cfg.output_reuse);
    h = mixDouble(h, cfg.weight_reuse);
    h = mixU64(h, cfg.unit_r);
    h = mixU64(h, cfg.unit_s);
    h = mixU64(h, cfg.unit_k);
    h = mixU64(h, cfg.unit_c);
    h = mixU64(h, cfg.chip_k);
    h = mixU64(h, cfg.chip_p);
    h = mixDouble(h, cfg.clock_hz);
    h = mixU64(h, cfg.gb_capacity_words);
    h = mixU64(h, cfg.regs_capacity_words);
    h = mixU64(h, cfg.word_bits);
    h = mixDouble(h, cfg.gb_bandwidth_words);
    h = mixDouble(h, cfg.dram_bandwidth_words);
    h = mixU64(h, cfg.with_dram ? 1 : 0);
    h = mixDouble(h, cfg.dram_energy_per_bit);
    h = mixU64(h, cfg.fuse_bypass_dram_inputs ? 1 : 0);
    h = mixU64(h, cfg.fuse_bypass_dram_outputs ? 1 : 0);
    h = mixU64(h, cfg.model_window_effects ? 1 : 0);
    h = mixU64(h, cfg.model_laser_static ? 1 : 0);
    h = mixU64(h, cfg.model_adc_growth ? 1 : 0);
    return h;
}

namespace {

/** Integer-knob values must survive the uint64 cast exactly: the
 *  strict decoder enforces this for arch fields, and grid axis
 *  values (plain JSON numbers) get the same contract here. */
std::uint64_t
knobInteger(const std::string &knob, double value)
{
    fatalIf(!(value >= 0) || value >= 18446744073709551616.0 ||
                value != std::floor(value),
            "sweep knob '" + knob +
                "' needs a non-negative integer value");
    return static_cast<std::uint64_t>(value);
}

} // namespace

AlbireoConfig
applySweepKnob(const AlbireoConfig &base, const std::string &knob,
               double value)
{
    fatalIf(!std::isfinite(value),
            "sweep knob '" + knob + "' needs a finite value");
    AlbireoConfig cfg = base;
    if (knob == "input_reuse") {
        cfg.input_reuse = value;
    } else if (knob == "input_window_reuse") {
        cfg.input_window_reuse = value;
    } else if (knob == "output_reuse") {
        cfg.output_reuse = value;
    } else if (knob == "weight_reuse") {
        cfg.weight_reuse = value;
    } else if (knob == "unit_k") {
        cfg.unit_k = knobInteger(knob, value);
    } else if (knob == "unit_c") {
        cfg.unit_c = knobInteger(knob, value);
    } else if (knob == "chip_k") {
        cfg.chip_k = knobInteger(knob, value);
    } else if (knob == "chip_p") {
        cfg.chip_p = knobInteger(knob, value);
    } else if (knob == "clock_hz") {
        cfg.clock_hz = value;
    } else if (knob == "gb_capacity_words") {
        cfg.gb_capacity_words = knobInteger(knob, value);
    } else if (knob == "dram_bandwidth_words") {
        cfg.dram_bandwidth_words = value;
    } else {
        std::string known;
        for (const std::string &k : sweepKnobNames())
            known += (known.empty() ? "" : ", ") + k;
        fatal("unknown sweep knob '" + knob + "' (known: " + known +
              ")");
    }
    return cfg;
}

std::vector<std::string>
sweepKnobNames()
{
    return {"input_reuse", "input_window_reuse", "output_reuse",
            "weight_reuse", "unit_k", "unit_c", "chip_k", "chip_p",
            "clock_hz", "gb_capacity_words", "dram_bandwidth_words"};
}

const std::vector<EnumName<ScalingProfile>> &
scalingEnumNames()
{
    static const std::vector<EnumName<ScalingProfile>> names = [] {
        std::vector<EnumName<ScalingProfile>> out;
        for (ScalingProfile p : allScalingProfiles())
            out.push_back({scalingProfileName(p), p});
        return out;
    }();
    return names;
}

const std::vector<EnumName<Objective>> &
objectiveEnumNames()
{
    static const std::vector<EnumName<Objective>> names = {
        {"energy", Objective::Energy},
        {"delay", Objective::Delay},
        {"edp", Objective::Edp},
    };
    return names;
}

const std::vector<EnumName<bool>> &
layerKindEnumNames()
{
    static const std::vector<EnumName<bool>> names = {
        {"conv", false},
        {"fc", true},
    };
    return names;
}

LayerShape
LayerRequest::toLayer() const
{
    if (fully_connected)
        return LayerShape::fullyConnected(name, n, k, c);
    return LayerShape::conv(name, n, k, c, p, q, r, s, hstride,
                            wstride);
}

std::size_t
ParamGrid::points() const
{
    if (axes.empty())
        return 0;
    std::size_t n = 1;
    for (const GridAxis &a : axes) {
        if (a.values.empty())
            return 0;
        // Saturating multiply: validate() reports oversized grids
        // with the real bound, not an overflowed product.
        if (n > kMaxPoints * 16 / a.values.size())
            return kMaxPoints + 1;
        n *= a.values.size();
    }
    return n;
}

void
ParamGrid::validate(std::size_t max_points) const
{
    fatalIf(axes.empty(),
            "sweep grid needs >= 1 axis (field 'grid' is empty)");
    for (const GridAxis &a : axes)
        fatalIf(a.values.empty(), "grid axis '" + a.knob +
                                      "' needs >= 1 value (field "
                                      "'values' is empty)");
    for (std::size_t i = 0; i < axes.size(); ++i) {
        // Unknown knobs and out-of-domain values (non-finite, or
        // non-integral for integer knobs) fail here, before any
        // point runs -- same messages as applySweepKnob.
        for (double v : axes[i].values)
            applySweepKnob(AlbireoConfig{}, axes[i].knob, v);
        for (std::size_t j = i + 1; j < axes.size(); ++j)
            fatalIf(axes[i].knob == axes[j].knob,
                    "duplicate grid knob '" + axes[i].knob + "'");
    }
    std::size_t n = points();
    fatalIf(n > max_points,
            strFormat("grid has %zu points, more than the %zu "
                      "allowed",
                      n, max_points));
}

std::vector<std::vector<double>>
ParamGrid::coords() const
{
    validate();
    std::vector<std::vector<double>> out;
    out.reserve(points());
    std::vector<std::size_t> idx(axes.size(), 0);
    for (;;) {
        std::vector<double> coord(axes.size());
        for (std::size_t i = 0; i < axes.size(); ++i)
            coord[i] = axes[i].values[idx[i]];
        out.push_back(std::move(coord));
        // Odometer increment, last axis fastest.
        std::size_t i = axes.size();
        while (i > 0) {
            --i;
            if (++idx[i] < axes[i].values.size())
                break;
            idx[i] = 0;
            if (i == 0)
                return out;
        }
    }
}

AlbireoConfig
ParamGrid::configAt(const AlbireoConfig &base,
                    const std::vector<double> &coord) const
{
    fatalIf(coord.size() != axes.size(),
            "grid coordinate arity mismatch");
    AlbireoConfig cfg = base;
    for (std::size_t i = 0; i < axes.size(); ++i)
        cfg = applySweepKnob(cfg, axes[i].knob, coord[i]);
    return cfg;
}

} // namespace ploop
