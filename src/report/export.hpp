/**
 * @file
 * Result export: serialize evaluation results to CSV and a minimal
 * JSON, so downstream plotting (the paper's figures are bar charts)
 * can consume PhotonLoop output directly.
 */

#ifndef PHOTONLOOP_REPORT_EXPORT_HPP
#define PHOTONLOOP_REPORT_EXPORT_HPP

#include <string>
#include <vector>

#include "model/evaluator.hpp"

namespace ploop {

/**
 * Escape and quote a CSV field per RFC 4180 (quotes doubled, fields
 * containing separators/quotes/newlines wrapped in quotes).
 */
std::string csvField(const std::string &value);

/** One row of labeled numeric results. */
struct ResultRow
{
    std::string label;
    std::vector<std::pair<std::string, double>> values;
};

/**
 * Render rows as CSV: header from the first row's keys (all rows
 * must share the same keys, checked), one line per row.
 */
std::string toCsv(const std::vector<ResultRow> &rows);

/** Render rows as a JSON array of objects. */
std::string toJson(const std::vector<ResultRow> &rows);

/**
 * Flatten an EvalResult into a ResultRow: total/per-MAC energy,
 * cycles, utilization, MACs/cycle, area, and per-component energy
 * (keys "energy.<component>").
 */
ResultRow flattenResult(const std::string &label,
                        const EvalResult &result);

/** Write @p content to @p path; fatal() on I/O failure. */
void writeFile(const std::string &path, const std::string &content);

} // namespace ploop

#endif // PHOTONLOOP_REPORT_EXPORT_HPP
