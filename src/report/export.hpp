/**
 * @file
 * Result export: serialize evaluation results to CSV and a minimal
 * JSON, so downstream plotting (the paper's figures are bar charts)
 * can consume PhotonLoop output directly.
 */

#ifndef PHOTONLOOP_REPORT_EXPORT_HPP
#define PHOTONLOOP_REPORT_EXPORT_HPP

#include <string>
#include <vector>

#include "model/evaluator.hpp"

namespace ploop {

/**
 * Escape and quote a CSV field per RFC 4180 (quotes doubled, fields
 * containing separators/quotes/newlines wrapped in quotes).
 */
std::string csvField(const std::string &value);

/** One row of labeled numeric results. */
struct ResultRow
{
    std::string label;
    std::vector<std::pair<std::string, double>> values;
};

/**
 * Render rows as CSV: header from the first row's keys (all rows
 * must share the same keys, checked), one line per row.
 */
std::string toCsv(const std::vector<ResultRow> &rows);

/**
 * Escape a string for embedding in a JSON string literal: quotes and
 * backslashes, the short control escapes (\n \r \t \b \f), and every
 * other control character as \u00XX (JSON forbids raw controls in
 * strings).  Every JSON emitter -- values AND keys -- must route
 * strings through this; the service protocol reuses it.
 */
std::string jsonEscape(const std::string &s);

/**
 * Render a double as a JSON number token.  JSON has no NaN/Inf
 * literals, so non-finite values (an unreachable throughput, a 0/0
 * ratio) render as "null" -- a bare "nan"/"inf" token would make the
 * whole document unparseable.  Every JSON emitter must route doubles
 * through this.
 */
std::string jsonNumber(double v);

/** Render rows as a JSON array of objects. */
std::string toJson(const std::vector<ResultRow> &rows);

/**
 * Flatten an EvalResult into a ResultRow: total/per-MAC energy,
 * cycles, utilization, MACs/cycle, area, and per-component energy
 * (keys "energy.<component>").
 */
ResultRow flattenResult(const std::string &label,
                        const EvalResult &result);

/** Write @p content to @p path; fatal() on I/O failure. */
void writeFile(const std::string &path, const std::string &content);

} // namespace ploop

#endif // PHOTONLOOP_REPORT_EXPORT_HPP
