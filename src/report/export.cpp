#include "report/export.hpp"

#include <cmath>
#include <fstream>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace ploop {

std::string
csvField(const std::string &value)
{
    bool needs_quotes =
        value.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quotes)
        return value;
    std::string out = "\"";
    for (char c : value) {
        if (c == '"')
            out += "\"\"";
        else
            out += c;
    }
    out += "\"";
    return out;
}

std::string
toCsv(const std::vector<ResultRow> &rows)
{
    if (rows.empty())
        return "label\n";
    std::string out = "label";
    for (const auto &[key, v] : rows.front().values)
        out += "," + csvField(key);
    out += "\n";
    for (const ResultRow &row : rows) {
        fatalIf(row.values.size() != rows.front().values.size(),
                "CSV rows must share the same keys (row '" +
                    row.label + "' differs)");
        out += csvField(row.label);
        for (std::size_t i = 0; i < row.values.size(); ++i) {
            fatalIf(row.values[i].first !=
                        rows.front().values[i].first,
                    "CSV rows must share the same keys (key '" +
                        row.values[i].first + "' differs)");
            out += strFormat(",%.9g", row.values[i].second);
        }
        out += "\n";
    }
    return out;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default:
            // JSON forbids ALL raw control characters in strings,
            // not just the ones with short escapes: a stray \x1b in
            // a label must not break the document.
            if (static_cast<unsigned char>(c) < 0x20)
                out += strFormat("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    return strFormat("%.9g", v);
}

std::string
toJson(const std::vector<ResultRow> &rows)
{
    std::string out = "[\n";
    for (std::size_t r = 0; r < rows.size(); ++r) {
        out += "  {\"label\": \"" + jsonEscape(rows[r].label) + "\"";
        for (const auto &[key, v] : rows[r].values)
            out += strFormat(", \"%s\": %s",
                             jsonEscape(key).c_str(),
                             jsonNumber(v).c_str());
        out += r + 1 < rows.size() ? "},\n" : "}\n";
    }
    out += "]\n";
    return out;
}

ResultRow
flattenResult(const std::string &label, const EvalResult &result)
{
    ResultRow row;
    row.label = label;
    row.values.emplace_back("energy_total_j", result.totalEnergy());
    row.values.emplace_back("energy_per_mac_j",
                            result.energyPerMac());
    row.values.emplace_back("macs", result.counts.macs);
    row.values.emplace_back("cycles", result.throughput.cycles);
    row.values.emplace_back("utilization",
                            result.throughput.utilization);
    row.values.emplace_back("macs_per_cycle",
                            result.throughput.macs_per_cycle);
    row.values.emplace_back("runtime_s",
                            result.throughput.runtime_s);
    row.values.emplace_back("area_m2", result.area_m2);
    for (const auto &[component, joules] :
         result.energy.byComponent()) {
        row.values.emplace_back("energy." + component, joules);
    }
    return row;
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary);
    fatalIf(!out.is_open(), "cannot open '" + path + "' for writing");
    out << content;
    fatalIf(!out.good(), "write to '" + path + "' failed");
}

} // namespace ploop
