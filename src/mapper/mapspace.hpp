/**
 * @file
 * Mapspace construction: deterministic seed mappings and random
 * sampling of the (tiling x spatial-unrolling) space for one
 * (arch, layer) pair.  Bypass sets and converter placements are part
 * of the architecture, not the mapspace (as in the paper's tool).
 */

#ifndef PHOTONLOOP_MAPPER_MAPSPACE_HPP
#define PHOTONLOOP_MAPPER_MAPSPACE_HPP

#include <cstdint>
#include <random>

#include "arch/arch_spec.hpp"
#include "mapping/mapping.hpp"
#include "workload/layer.hpp"

namespace ploop {

/** Seed/sample generator for mappings. */
class Mapspace
{
  public:
    /**
     * @param arch Architecture (must outlive the mapspace).
     * @param layer Layer (same rule).
     */
    Mapspace(const ArchSpec &arch, const LayerShape &layer);

    /**
     * Deterministic greedy seed: every level's spatial fanout caps are
     * filled inner-to-outer (maximizing parallelism and analog/optical
     * reuse), remaining bounds become temporal loops, placed at the
     * innermost level whose capacity accepts them, overflowing
     * outward.
     */
    Mapping greedySeed() const;

    /**
     * greedySeed() with an explicit innermost-first temporal
     * placement priority (used by the dataflow presets).
     */
    Mapping greedySeedOrdered(
        const std::array<Dim, kNumDims> &order) const;

    /**
     * Trivial seed: spatial filled as in greedySeed, all temporal
     * residue at the outermost level.  Always capacity-valid.
     */
    Mapping outerSeed() const;

    /** A random sample (may be capacity-invalid; caller validates). */
    Mapping randomSample(std::mt19937_64 &rng) const;

  private:
    /** Fill spatial factors into @p map per the fanout caps. */
    void fillSpatial(Mapping &map) const;

    /** Bound residue for dim @p d after @p map's factors. */
    std::uint64_t residue(const Mapping &map, Dim d) const;

    const ArchSpec &arch_;
    const LayerShape &layer_;
};

} // namespace ploop

#endif // PHOTONLOOP_MAPPER_MAPSPACE_HPP
