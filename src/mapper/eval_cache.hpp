/**
 * @file
 * Memoization cache for mapping evaluations.  Hill-climb
 * neighborhoods overlap between rounds (inverse moves regenerate
 * earlier points) and random sampling can redraw candidates; caching
 * turns those repeats into hash lookups.
 *
 * Keys are 64-bit hashes of the mapping's temporal and spatial
 * factor tuples; every entry also stores the flattened tuples and
 * verifies them on lookup, so a hash collision degrades to a miss
 * instead of returning another mapping's result (the determinism
 * contract survives collisions; the colliding mapping just stays
 * uncached).  Permutations are deliberately excluded from the key
 * and the tuples: the model is permutation-independent (see
 * mapping.hpp), so mappings differing only in loop order evaluate
 * identically and share an entry.
 *
 * Entries are objective-only QuickEvals (16 bytes + tuples): search
 * ranks candidates by energy/runtime and never reads the structured
 * breakdown, so caching full EvalResults (strings, vectors,
 * attribute maps) would waste memory and copy time.  Only VALID
 * mappings are stored, so a hit also proves validity and lets the
 * caller skip validation entirely.
 *
 * Thread safety: the table is sharded by key with one mutex per
 * shard, so concurrent hill-climb probes rarely contend.  Hit/miss
 * counters are atomics.
 *
 * Bounding: a long-lived cache (the evaluation service keeps one per
 * process) can opt into an entry cap via setMaxEntries().  The cap is
 * enforced per shard (ceil(cap / shards) entries each), and inserting
 * into a full shard evicts an arbitrary resident entry first -- O(1),
 * no recency bookkeeping on the hot path.  Eviction never changes
 * values, only hit rates: an evicted mapping is simply re-evaluated
 * (bit-identically) on its next probe, so the determinism contract is
 * untouched.  Evictions are counted for the service's stats.
 *
 * Persistence: entries are plain (key, factor tuple, QuickEval)
 * records, exposed through forEach()/insertRaw() so CacheStore (see
 * cache_store.hpp) can serialize a warm cache to disk and merge it
 * back on startup.  Loaded entries keep their collision-verification
 * tuples, so a merged cache is exactly as safe as a live one.
 *
 * Scope and sharing: every key folds in evalScopeKey(arch
 * fingerprint, layer shape), so ONE cache can safely span layers,
 * searches and sweep points -- runSweepEvaluators and runNetwork share a
 * cache across all their Mapper calls, and identical (arch, layer)
 * scopes hit warm entries from earlier points.  The hit/miss
 * counters here are therefore GLOBAL -- cumulative over the cache's
 * life and mixed across every search sharing it; per-search
 * statistics must be accounted from evaluateThrough() outcomes
 * instead (see CacheDeltaScope in search.hpp).
 */

#ifndef PHOTONLOOP_MAPPER_EVAL_CACHE_HPP
#define PHOTONLOOP_MAPPER_EVAL_CACHE_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/annotations.hpp"
#include "mapping/mapping.hpp"
#include "model/evaluator.hpp"

namespace ploop {

/** 64-bit hash of a mapping's factor tuples (permutation-blind). */
std::uint64_t mappingKey(const Mapping &mapping);

/**
 * True when @p a and @p b have identical temporal and spatial factor
 * tuples (permutation-blind, the equality mappingKey() approximates).
 */
bool sameFactorTuples(const Mapping &a, const Mapping &b);

/**
 * Fingerprint of an evaluation scope: the same factor tuples mean
 * different results on a different architecture, energy registry or
 * layer shape, so cache lookups mix this into the key.  Combines the
 * evaluator's MODEL fingerprint -- its arch CONTENT fingerprint plus
 * the resolved energy coefficients, so reconstructed-but-identical
 * (arch, registry) pairs (e.g. the same sweep point re-built) share
 * a scope, and same-arch evaluators under different registries do
 * not -- with the layer's bounds and strides; two identically-shaped
 * layers share a scope by design (they evaluate identically).
 */
std::uint64_t evalScopeKey(const Evaluator &evaluator,
                           const LayerShape &layer);

/** Outcome of EvalCache::evaluateThrough(). */
enum class CachedEval : std::uint8_t {
    Invalid,  ///< Mapping failed validation (never cached).
    Hit,      ///< Served from the cache (validity proven).
    Computed, ///< Freshly evaluated and stored.
};

/** See file comment. */
class EvalCache
{
  public:
    EvalCache() = default;

    EvalCache(const EvalCache &) = delete;
    EvalCache &operator=(const EvalCache &) = delete;

    /**
     * Memoized quick evaluation: the one lookup protocol every
     * search phase shares.  Scope (arch, layer) is folded into the
     * key, so one cache can safely span layers or sweep points.
     *
     * @param out Receives the evaluation unless Invalid is returned.
     */
    CachedEval evaluateThrough(const Evaluator &evaluator,
                               const LayerShape &layer,
                               const Mapping &mapping, QuickEval &out);

    /**
     * Arena-backed variant: misses evaluate through
     * Evaluator::quickEvaluateWith against @p scratch, so a worker
     * looping over candidates performs no per-candidate allocation.
     */
    CachedEval evaluateThrough(const Evaluator &evaluator,
                               const LayerShape &layer,
                               const Mapping &mapping,
                               EvalScratch &scratch, QuickEval &out);

    /**
     * Incremental variant for hill-climb probes: misses evaluate
     * through Evaluator::quickEvaluateDelta (see its precondition --
     * scratch.tiles analyzed for a base mapping differing from
     * @p mapping only in dim @p moved).  Hits skip the delta
     * entirely; the arena is left synced to the base either way.
     */
    CachedEval evaluateThroughDelta(const Evaluator &evaluator,
                                    const LayerShape &layer,
                                    const Mapping &mapping, Dim moved,
                                    EvalScratch &scratch,
                                    QuickEval &out);

    /**
     * Pre-store a known-valid evaluation (e.g. the hill-climb
     * incumbent) so later lookups hit.
     */
    void store(const Evaluator &evaluator, const LayerShape &layer,
               const Mapping &mapping, const QuickEval &result);

    /**
     * Low-level lookup under an explicit @p scope: false on miss,
     * else true with the entry copied into @p out (copy-out, not a
     * pointer: entries can be evicted by concurrent inserts when a
     * cap is set, so references must not escape the shard lock).
     * Counts a hit or miss.
     *
     * @param out Receives the cached evaluation on a hit; may be
     *            null for a presence probe.
     * @param key_out Receives the scoped key when non-null, for
     *                reuse in a subsequent insert() on the miss path.
     */
    bool find(std::uint64_t scope, const Mapping &mapping,
              QuickEval *out, std::uint64_t *key_out = nullptr);

    /**
     * Low-level store of a VALID mapping's evaluation under @p key
     * (from find()).  No-op if the key is already occupied -- by
     * this mapping, or by a hash-colliding one (first writer wins;
     * the loser is simply never cached).
     */
    void insert(const Mapping &mapping, std::uint64_t key,
                const QuickEval &result);

    /**
     * Store a deserialized entry (CacheStore load path): @p factors
     * is the flattened tuple list exactly as flattenFactors() built
     * it (and forEach() reported it).  Same first-writer-wins and
     * eviction semantics as insert().  @p hits seeds the entry's
     * reuse count, so a loaded store keeps its most-reused-first
     * ordering across save/load generations.
     */
    void insertRaw(std::uint64_t key, std::vector<std::uint64_t> factors,
                   const QuickEval &result, std::uint64_t hits = 0);

    /**
     * Visit every resident entry as (scoped key, flattened factor
     * tuples, result, lookup hits), shard by shard under the shard
     * locks -- CacheStore's serialization walk.  The per-entry hit
     * count orders size-bounded saves (most-reused entries persist
     * first).  @p fn must not call back into the cache.
     */
    void forEach(const std::function<void(
                     std::uint64_t, const std::vector<std::uint64_t> &,
                     const QuickEval &, std::uint64_t)> &fn) const;

    /**
     * Bound the cache to roughly @p cap entries (0 = unbounded, the
     * default).  Enforced as ceil(cap / shards) per shard, so the
     * effective ceiling is at most cap + shards - 1 entries.
     * Shrinking the cap evicts lazily, on the next insert into each
     * over-full shard.
     */
    void setMaxEntries(std::size_t cap)
    {
        max_entries_.store(cap, std::memory_order_relaxed);
    }

    /** Entry cap (0 = unbounded). */
    std::size_t maxEntries() const
    {
        return max_entries_.load(std::memory_order_relaxed);
    }

    /** Entries evicted to honor the cap so far. */
    std::uint64_t evictions() const
    {
        return evictions_.load(std::memory_order_relaxed);
    }

    /** Lookup hits so far. */
    std::uint64_t hits() const
    {
        return hits_.load(std::memory_order_relaxed);
    }

    /** Lookup misses so far. */
    std::uint64_t misses() const
    {
        return misses_.load(std::memory_order_relaxed);
    }

    /** Distinct mappings stored. */
    std::size_t size() const;

  private:
    static constexpr unsigned kNumShards = 16;

    struct Entry
    {
        /** Flattened factor tuples for collision verification. */
        std::vector<std::uint64_t> factors;
        QuickEval result;

        /** Lookup hits on THIS entry (guarded transitively by the
         *  owning shard's mutex, via Shard::map's GUARDED_BY --
         *  entries are only reachable through the map);
         *  size-bounded CacheStore saves persist high-hit entries
         *  first. */
        std::uint64_t hits = 0;
    };

    struct Shard
    {
        mutable Mutex mu;
        std::unordered_map<std::uint64_t, Entry> map GUARDED_BY(mu);
    };

    Shard &shardFor(std::uint64_t key)
    {
        return shards_[key % kNumShards];
    }

    /** Per-shard entry cap for the current max_entries_ (0 = none). */
    std::size_t shardCap() const
    {
        std::size_t cap = max_entries_.load(std::memory_order_relaxed);
        return cap ? (cap + kNumShards - 1) / kNumShards : 0;
    }

    Shard shards_[kNumShards];

    // Statistics and the entry cap are lock-free with relaxed
    // ordering: each is an independent monotonic counter (or a
    // standalone limit) read only for reporting / sizing -- no other
    // data is published through them, so no acquire/release pairing
    // is needed and torn cross-counter snapshots are acceptable.
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::size_t> max_entries_{0};
    std::atomic<std::uint64_t> evictions_{0};
};

} // namespace ploop

#endif // PHOTONLOOP_MAPPER_EVAL_CACHE_HPP
