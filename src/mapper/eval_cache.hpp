/**
 * @file
 * Memoization cache for mapping evaluations.  Hill-climb
 * neighborhoods overlap between rounds (inverse moves regenerate
 * earlier points) and random sampling can redraw candidates; caching
 * turns those repeats into hash lookups.
 *
 * Keys are 64-bit hashes of the mapping's temporal and spatial
 * factor tuples; every entry also stores the flattened tuples and
 * verifies them on lookup, so a hash collision degrades to a miss
 * instead of returning another mapping's result (the determinism
 * contract survives collisions; the colliding mapping just stays
 * uncached).  Permutations are deliberately excluded from the key
 * and the tuples: the model is permutation-independent (see
 * mapping.hpp), so mappings differing only in loop order evaluate
 * identically and share an entry.
 *
 * Entries are objective-only QuickEvals (16 bytes + tuples): search
 * ranks candidates by energy/runtime and never reads the structured
 * breakdown, so caching full EvalResults (strings, vectors,
 * attribute maps) would waste memory and copy time.  Only VALID
 * mappings are stored, so a hit also proves validity and lets the
 * caller skip validation entirely.
 *
 * Thread safety: the table is sharded by key with one mutex per
 * shard, so concurrent hill-climb probes rarely contend.  Hit/miss
 * counters are atomics.  A cache is scoped to one (architecture,
 * layer) pair -- the Mapper creates a fresh one per search.
 */

#ifndef PHOTONLOOP_MAPPER_EVAL_CACHE_HPP
#define PHOTONLOOP_MAPPER_EVAL_CACHE_HPP

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "mapping/mapping.hpp"
#include "model/evaluator.hpp"

namespace ploop {

/** 64-bit hash of a mapping's factor tuples (permutation-blind). */
std::uint64_t mappingKey(const Mapping &mapping);

/**
 * True when @p a and @p b have identical temporal and spatial factor
 * tuples (permutation-blind, the equality mappingKey() approximates).
 */
bool sameFactorTuples(const Mapping &a, const Mapping &b);

/**
 * Fingerprint of an evaluation scope: the same factor tuples mean
 * different results on a different architecture or layer shape, so
 * cache lookups mix this into the key.  Combines the evaluator's
 * arch CONTENT fingerprint (so reconstructed-but-identical archs --
 * e.g. the same sweep point re-built -- share a scope, and
 * different archs at a reused address do not) with the layer's
 * bounds and strides; two identically-shaped layers share a scope
 * by design (they evaluate identically).
 */
std::uint64_t evalScopeKey(const Evaluator &evaluator,
                           const LayerShape &layer);

/** Outcome of EvalCache::evaluateThrough(). */
enum class CachedEval : std::uint8_t {
    Invalid,  ///< Mapping failed validation (never cached).
    Hit,      ///< Served from the cache (validity proven).
    Computed, ///< Freshly evaluated and stored.
};

/** See file comment. */
class EvalCache
{
  public:
    EvalCache() = default;

    EvalCache(const EvalCache &) = delete;
    EvalCache &operator=(const EvalCache &) = delete;

    /**
     * Memoized quick evaluation: the one lookup protocol every
     * search phase shares.  Scope (arch, layer) is folded into the
     * key, so one cache can safely span layers or sweep points.
     *
     * @param out Receives the evaluation unless Invalid is returned.
     */
    CachedEval evaluateThrough(const Evaluator &evaluator,
                               const LayerShape &layer,
                               const Mapping &mapping, QuickEval &out);

    /**
     * Pre-store a known-valid evaluation (e.g. the hill-climb
     * incumbent) so later lookups hit.
     */
    void store(const Evaluator &evaluator, const LayerShape &layer,
               const Mapping &mapping, const QuickEval &result);

    /**
     * Low-level lookup under an explicit @p scope: nullptr on miss,
     * else a pointer valid for the cache's lifetime (entries are
     * never erased and node-based maps keep element references
     * stable).  Counts a hit or miss.
     *
     * @param key_out Receives the scoped key when non-null, for
     *                reuse in a subsequent insert() on the miss path.
     */
    const QuickEval *find(std::uint64_t scope, const Mapping &mapping,
                          std::uint64_t *key_out = nullptr);

    /**
     * Low-level store of a VALID mapping's evaluation under @p key
     * (from find()).  No-op if the key is already occupied -- by
     * this mapping, or by a hash-colliding one (first writer wins;
     * the loser is simply never cached).
     */
    void insert(const Mapping &mapping, std::uint64_t key,
                const QuickEval &result);

    /** Lookup hits so far. */
    std::uint64_t hits() const
    {
        return hits_.load(std::memory_order_relaxed);
    }

    /** Lookup misses so far. */
    std::uint64_t misses() const
    {
        return misses_.load(std::memory_order_relaxed);
    }

    /** Distinct mappings stored. */
    std::size_t size() const;

  private:
    static constexpr unsigned kNumShards = 16;

    struct Entry
    {
        /** Flattened factor tuples for collision verification. */
        std::vector<std::uint64_t> factors;
        QuickEval result;
    };

    struct Shard
    {
        mutable std::mutex mu;
        std::unordered_map<std::uint64_t, Entry> map;
    };

    Shard &shardFor(std::uint64_t key)
    {
        return shards_[key % kNumShards];
    }

    Shard shards_[kNumShards];
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
};

} // namespace ploop

#endif // PHOTONLOOP_MAPPER_EVAL_CACHE_HPP
