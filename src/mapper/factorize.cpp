#include "mapper/factorize.hpp"

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace ploop {

std::vector<std::uint64_t>
greedyCappedSplit(std::uint64_t bound,
                  const std::vector<std::uint64_t> &caps)
{
    fatalIf(bound == 0, "cannot split bound 0");
    fatalIf(caps.empty(), "greedyCappedSplit needs >= 1 part");
    std::vector<std::uint64_t> out(caps.size(), 1);
    std::uint64_t rem = bound;
    for (std::size_t i = 0; i + 1 < caps.size(); ++i) {
        std::uint64_t f = std::min(caps[i], rem);
        f = std::max<std::uint64_t>(f, 1);
        out[i] = f;
        rem = ceilDiv(rem, f);
    }
    // The last part is capped like every other (the seed wrote the
    // raw remainder here, silently exceeding caps.back()).  No
    // residue can be pushed back into earlier parts: a remainder
    // above the last cap implies every earlier part is already
    // filled exactly to its cap (an under-cap part collapses the
    // remainder to 1), so an unfittable bound is a hard error.
    std::uint64_t last = std::min(rem, std::max<std::uint64_t>(
                                           caps.back(), 1));
    out.back() = last;
    rem = ceilDiv(rem, last);
    fatalIf(rem > 1,
            "greedyCappedSplit: bound " + std::to_string(bound) +
                " cannot fit the caps (residual " +
                std::to_string(rem) + ")");
    return out;
}

namespace {

void
splitsRec(std::uint64_t rem, unsigned parts,
          std::vector<std::uint64_t> &cur,
          std::vector<std::vector<std::uint64_t>> &out)
{
    if (parts == 1) {
        cur.push_back(rem);
        out.push_back(cur);
        cur.pop_back();
        return;
    }
    for (std::uint64_t d : divisors(rem)) {
        cur.push_back(d);
        splitsRec(ceilDiv(rem, d), parts - 1, cur, out);
        cur.pop_back();
    }
}

} // namespace

std::vector<std::vector<std::uint64_t>>
divisorSplits(std::uint64_t bound, unsigned parts)
{
    fatalIf(parts == 0, "divisorSplits needs >= 1 part");
    std::vector<std::vector<std::uint64_t>> out;
    std::vector<std::uint64_t> cur;
    splitsRec(bound, parts, cur, out);
    return out;
}

bool
moveFactor(std::uint64_t &from, std::uint64_t &to, std::uint64_t ratio)
{
    fatalIf(ratio < 2, "moveFactor ratio must be >= 2");
    if (from <= 1)
        return false;
    std::uint64_t r = std::min(ratio, from);
    from = ceilDiv(from, r);
    to *= r;
    return true;
}

} // namespace ploop
