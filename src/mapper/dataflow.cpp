#include "mapper/dataflow.hpp"

#include "common/error.hpp"

namespace ploop {

const char *
dataflowName(Dataflow df)
{
    switch (df) {
      case Dataflow::WeightStationary: return "weight-stationary";
      case Dataflow::OutputStationary: return "output-stationary";
      case Dataflow::InputStationary: return "input-stationary";
    }
    panic("dataflowName: bad dataflow");
}

std::array<Dataflow, 3>
allDataflows()
{
    return {Dataflow::WeightStationary, Dataflow::OutputStationary,
            Dataflow::InputStationary};
}

std::array<Dim, kNumDims>
dataflowOrder(Dataflow df)
{
    switch (df) {
      case Dataflow::WeightStationary:
        // Output/batch loops innermost: the weight tile stays put.
        return {Dim::Q, Dim::P, Dim::N, Dim::C, Dim::K, Dim::R,
                Dim::S};
      case Dataflow::OutputStationary:
        // Reduction loops innermost: psums accumulate in place.
        return {Dim::R, Dim::S, Dim::C, Dim::Q, Dim::P, Dim::K,
                Dim::N};
      case Dataflow::InputStationary:
        // Filter loop innermost: the input tile is re-consumed.
        return {Dim::K, Dim::R, Dim::S, Dim::Q, Dim::P, Dim::C,
                Dim::N};
    }
    panic("dataflowOrder: bad dataflow");
}

Mapping
presetMapping(const ArchSpec &arch, const LayerShape &layer,
              Dataflow df)
{
    return Mapspace(arch, layer).greedySeedOrdered(dataflowOrder(df));
}

} // namespace ploop
