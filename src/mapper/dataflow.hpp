/**
 * @file
 * Canonical dataflow presets: deterministic mappings expressing the
 * classic accelerator taxonomies (weight- / output- / input-
 * stationary) on any PhotonLoop architecture.  Presets are both a
 * user convenience (reproducible, explainable mappings) and mapper
 * seeds that often beat random restarts.
 *
 * A dataflow here is a temporal-placement priority: the dims whose
 * loops sit innermost determine which tensor stays resident at the
 * inner levels.  Keeping P/Q/N innermost reuses weights
 * (weight-stationary); keeping C/R/S innermost accumulates outputs in
 * place (output-stationary); keeping K innermost reuses inputs
 * (input-stationary).
 */

#ifndef PHOTONLOOP_MAPPER_DATAFLOW_HPP
#define PHOTONLOOP_MAPPER_DATAFLOW_HPP

#include <array>
#include <cstdint>
#include <string>

#include "mapper/mapspace.hpp"

namespace ploop {

/** The classic dataflow taxonomy. */
enum class Dataflow : std::uint8_t {
    WeightStationary,
    OutputStationary,
    InputStationary,
};

/** Dataflow name ("weight-stationary", ...). */
const char *dataflowName(Dataflow df);

/** All dataflows. */
std::array<Dataflow, 3> allDataflows();

/**
 * The innermost-first temporal placement priority that realizes
 * @p df.
 */
std::array<Dim, kNumDims> dataflowOrder(Dataflow df);

/**
 * Deterministic mapping implementing dataflow @p df for (arch,
 * layer): spatial fanouts filled as in Mapspace::greedySeed(), then
 * temporal residues placed innermost-first in dataflowOrder(df),
 * overflowing outward on capacity.  Always valid on architectures
 * with a capacity-unbounded outermost level.
 */
Mapping presetMapping(const ArchSpec &arch, const LayerShape &layer,
                      Dataflow df);

} // namespace ploop

#endif // PHOTONLOOP_MAPPER_DATAFLOW_HPP
