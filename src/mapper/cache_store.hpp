/**
 * @file
 * CacheStore: persistent on-disk serialization of warm EvalCache
 * entries, so repeated runs of the same study -- CLI re-runs, CI
 * jobs, evaluation-service restarts -- start with the previous run's
 * evaluations instead of a cold cache.
 *
 * Format: a flat sequence of 64-bit words.
 *
 *   [magic][format version][store fingerprint][entry count]
 *   per entry: [scoped key][#factors][factors...][energy][runtime]
 *              [hits]
 *   [checksum]
 *
 * The per-entry hit count records how often the live cache served the
 * entry; it rides along so size-bounded saves can persist the
 * most-reused entries first, and so that ordering survives
 * save/load/save generations (a compaction never forgets which
 * entries earn their keep).
 *
 * Doubles travel as raw bit patterns, so a loaded entry is
 * bit-identical to the evaluation that produced it -- a search
 * answered from a loaded cache returns exactly the cold run's result.
 * The trailing checksum chains mix64 over every preceding word.
 *
 * Failure policy: loading NEVER produces a wrong hit and never
 * throws on damaged input.  A missing, truncated, corrupted,
 * version-mismatched or fingerprint-mismatched file yields
 * {loaded = false, reason} and an untouched cache -- a clean cold
 * start.  The whole file is parsed and verified before the first
 * entry is merged, so a failure mid-file cannot half-load.  Entries
 * keep their collision-verification factor tuples, and scoped keys
 * fold in Evaluator::modelFingerprint(), so even a store written for
 * a different architecture could only waste memory, never corrupt
 * results (its scopes match no live evaluator).
 *
 * Writes are atomic: the store is written to "<path>.tmp" and
 * rename()d over the destination, so a crash mid-save leaves the old
 * store intact and readers never observe a partial file.
 *
 * The store fingerprint is the caller's identity check (e.g. an
 * Evaluator::modelFingerprint() for single-model tools, or the
 * serving tool's session constant): it guards against *pointing a
 * tool at the wrong file*, while per-entry scoped keys guard
 * correctness.
 */

#ifndef PHOTONLOOP_MAPPER_CACHE_STORE_HPP
#define PHOTONLOOP_MAPPER_CACHE_STORE_HPP

#include <cstdint>
#include <string>

#include "mapper/eval_cache.hpp"

namespace ploop {

/** CacheStore format version; bump on layout changes.
 *  v2 added the per-entry reuse (hit) count. */
constexpr std::uint64_t kCacheStoreVersion = 2;

/** Outcome of loadCacheStore(). */
struct CacheStoreLoad
{
    /** True when the file existed, verified, and was merged. */
    bool loaded = false;

    /** Entries merged into the cache (0 unless loaded). */
    std::size_t entries = 0;

    /** Human-readable summary ("merged 815 entries") or the cold-
     *  start reason ("checksum mismatch", "fingerprint mismatch"). */
    std::string detail;
};

/**
 * Atomically persist resident entries of @p cache to @p path (write
 * to "<path>.tmp", then rename).  fatal() on I/O errors --
 * persistence failures are user-environment problems, not corruption
 * hazards (the old store survives).
 *
 * @param fingerprint Store identity recorded in the header; load
 *                    with the same value (see file comment).
 * @param max_entries Size bound: 0 persists everything; otherwise
 *                    the @p max_entries MOST-REUSED entries (highest
 *                    lookup-hit counts, ties broken by key for a
 *                    deterministic file) are kept and the long tail
 *                    of never-reused evaluations is dropped.
 * @return Entries written.
 */
std::size_t saveCacheStore(const EvalCache &cache,
                           const std::string &path,
                           std::uint64_t fingerprint,
                           std::size_t max_entries = 0);

/**
 * Verify @p path and merge its entries into @p cache (first writer
 * wins, same as live inserts; an entry cap applies as usual).  Any
 * damage or mismatch returns {loaded = false, reason} with the cache
 * untouched.  Never throws on file content; see the file comment's
 * failure policy.
 */
CacheStoreLoad loadCacheStore(EvalCache &cache, const std::string &path,
                              std::uint64_t fingerprint);

} // namespace ploop

#endif // PHOTONLOOP_MAPPER_CACHE_STORE_HPP
