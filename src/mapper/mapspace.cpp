#include "mapper/mapspace.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "mapping/validate.hpp"
#include "model/tile_analysis.hpp"

namespace ploop {

Mapspace::Mapspace(const ArchSpec &arch, const LayerShape &layer)
    : arch_(arch), layer_(layer)
{}

void
Mapspace::fillSpatial(Mapping &map) const
{
    // Inner to outer: give each boundary as much spatial unrolling as
    // its caps and the remaining bound allow.
    std::array<std::uint64_t, kNumDims> rem{};
    for (Dim d : kAllDims)
        rem[dimIndex(d)] = layer_.bound(d);
    for (std::size_t l = 0; l < arch_.numLevels(); ++l) {
        const SpatialFanout &fanout = arch_.level(l).fanout;
        std::uint64_t total = 1;
        std::uint64_t total_cap =
            fanout.max_total == 0 ? UINT64_MAX : fanout.max_total;
        for (const auto &[d, cap] : fanout.dim_caps) {
            std::uint64_t want =
                std::min<std::uint64_t>(cap, rem[dimIndex(d)]);
            // Respect the total cap.
            while (want > 1 && total * want > total_cap)
                --want;
            map.level(l).setS(d, want);
            total *= want;
            rem[dimIndex(d)] = ceilDiv(rem[dimIndex(d)], want);
        }
    }
}

std::uint64_t
Mapspace::residue(const Mapping &map, Dim d) const
{
    return ceilDiv(layer_.bound(d), map.coverage(d));
}

Mapping
Mapspace::outerSeed() const
{
    Mapping map(arch_.numLevels());
    fillSpatial(map);
    LevelMapping &outer = map.level(arch_.numLevels() - 1);
    for (Dim d : kAllDims)
        outer.setT(d, residue(map, d) * outer.t(d));
    return map;
}

Mapping
Mapspace::greedySeed() const
{
    // Default priority: reuse-heavy dims (P, Q keep weights resident;
    // C, K keep activations resident) land innermost first.
    return greedySeedOrdered({Dim::Q, Dim::P, Dim::C, Dim::K, Dim::R,
                              Dim::S, Dim::N});
}

Mapping
Mapspace::greedySeedOrdered(
    const std::array<Dim, kNumDims> &order) const
{
    Mapping map(arch_.numLevels());
    fillSpatial(map);
    // Place each dim's temporal residue as far in as capacities
    // allow, in the given priority order.
    for (Dim d : order) {
        std::uint64_t rem = residue(map, d);
        if (rem == 1)
            continue;
        bool placed = false;
        for (std::size_t l = 0; l < arch_.numLevels() && !placed; ++l) {
            // Try to place the full residue here; shrink while the
            // capacity check fails.
            std::uint64_t original = map.level(l).t(d);
            for (std::uint64_t f = rem; f >= 2; f = f / 2) {
                map.level(l).setT(d, original * f);
                TileAnalysis tiles(arch_, layer_, map);
                if (tiles.fitsCapacities()) {
                    rem = ceilDiv(rem, f);
                    placed = (rem == 1);
                    break;
                }
                map.level(l).setT(d, original);
            }
        }
        if (rem > 1) {
            // Overflow to the outermost level (capacity-unbounded in
            // sane architectures: DRAM).
            LevelMapping &outer = map.level(arch_.numLevels() - 1);
            outer.setT(d, outer.t(d) * rem);
        }
    }
    return map;
}

Mapping
Mapspace::randomSample(std::mt19937_64 &rng) const
{
    Mapping map(arch_.numLevels());
    const std::size_t nlevels = arch_.numLevels();

    // Random spatial: for each capped dim, a random factor in
    // [1, cap].
    for (std::size_t l = 0; l < nlevels; ++l) {
        const SpatialFanout &fanout = arch_.level(l).fanout;
        std::uint64_t total = 1;
        std::uint64_t total_cap =
            fanout.max_total == 0 ? UINT64_MAX : fanout.max_total;
        for (const auto &[d, cap] : fanout.dim_caps) {
            std::uint64_t hi = std::min<std::uint64_t>(
                cap, layer_.bound(d));
            std::uniform_int_distribution<std::uint64_t> dist(1, hi);
            std::uint64_t f = dist(rng);
            while (f > 1 && total * f > total_cap)
                --f;
            map.level(l).setS(d, f);
            total *= f;
        }
    }

    // Random temporal: split each residue across levels by a random
    // walk from inner to outer.
    for (Dim d : kAllDims) {
        std::uint64_t rem = residue(map, d);
        for (std::size_t l = 0; l + 1 < nlevels && rem > 1; ++l) {
            std::uniform_int_distribution<std::uint64_t> dist(1, rem);
            std::uint64_t f = dist(rng);
            map.level(l).setT(d, map.level(l).t(d) * f);
            rem = ceilDiv(rem, f);
        }
        LevelMapping &outer = map.level(nlevels - 1);
        outer.setT(d, outer.t(d) * rem);
    }
    return map;
}

} // namespace ploop
