#include "mapper/cache_store.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/string_util.hpp"

namespace ploop {

namespace {

/** "PLOOPEC\1" little-endian: identifies a PhotonLoop eval cache. */
constexpr std::uint64_t kMagic = 0x01434550504f4f4cull;

std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

double
bitsDouble(std::uint64_t bits)
{
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

/** Checksum chain over the words preceding the checksum itself. */
std::uint64_t
chainChecksum(const std::uint64_t *words, std::size_t n)
{
    std::uint64_t h = kMagic;
    for (std::size_t i = 0; i < n; ++i)
        h = mix64(h ^ words[i]);
    return h;
}

} // namespace

std::size_t
saveCacheStore(const EvalCache &cache, const std::string &path,
               std::uint64_t fingerprint, std::size_t max_entries)
{
    // Snapshot first: a bounded save must rank ALL entries by reuse
    // before deciding which make the cut.
    struct Snap
    {
        std::uint64_t key;
        std::vector<std::uint64_t> factors;
        QuickEval result;
        std::uint64_t hits;
    };
    std::vector<Snap> snaps;
    cache.forEach([&](std::uint64_t key,
                      const std::vector<std::uint64_t> &factors,
                      const QuickEval &result, std::uint64_t hits) {
        snaps.push_back(Snap{key, factors, result, hits});
    });

    // Deterministic file contents regardless of shard/hash order:
    // most-reused first, ties by key.  The sort also defines WHICH
    // entries a bounded save keeps.
    std::sort(snaps.begin(), snaps.end(),
              [](const Snap &a, const Snap &b) {
                  if (a.hits != b.hits)
                      return a.hits > b.hits;
                  return a.key < b.key;
              });
    if (max_entries && snaps.size() > max_entries)
        snaps.resize(max_entries);

    std::vector<std::uint64_t> words;
    words.push_back(kMagic);
    words.push_back(kCacheStoreVersion);
    words.push_back(fingerprint);
    words.push_back(snaps.size());
    for (const Snap &s : snaps) {
        words.push_back(s.key);
        words.push_back(s.factors.size());
        words.insert(words.end(), s.factors.begin(), s.factors.end());
        words.push_back(doubleBits(s.result.energy_j));
        words.push_back(doubleBits(s.result.runtime_s));
        words.push_back(s.hits);
    }
    words.push_back(chainChecksum(words.data(), words.size()));

    // Write-then-rename: a crash mid-write leaves the previous store
    // intact, and readers never see a partial file.
    std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        fatalIf(!out.is_open(),
                "cannot open '" + tmp + "' for writing");
        out.write(reinterpret_cast<const char *>(words.data()),
                  static_cast<std::streamsize>(words.size() *
                                               sizeof(std::uint64_t)));
        out.flush();
        fatalIf(!out.good(), "write to '" + tmp + "' failed");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        fatal("cannot rename '" + tmp + "' to '" + path + "'");
    }
    return snaps.size();
}

CacheStoreLoad
loadCacheStore(EvalCache &cache, const std::string &path,
               std::uint64_t fingerprint)
{
    CacheStoreLoad out;

    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in.is_open()) {
        out.detail = "no store file at '" + path + "' (cold start)";
        return out;
    }
    std::streamsize bytes = in.tellg();
    in.seekg(0);
    if (bytes < 0 ||
        static_cast<std::size_t>(bytes) % sizeof(std::uint64_t) != 0 ||
        static_cast<std::size_t>(bytes) < 5 * sizeof(std::uint64_t)) {
        out.detail = "truncated store (" + std::to_string(bytes) +
                     " bytes); cold start";
        return out;
    }
    std::vector<std::uint64_t> words(
        static_cast<std::size_t>(bytes) / sizeof(std::uint64_t));
    in.read(reinterpret_cast<char *>(words.data()), bytes);
    if (!in.good()) {
        out.detail = "read of '" + path + "' failed; cold start";
        return out;
    }

    if (words[0] != kMagic) {
        out.detail = "bad magic (not a cache store); cold start";
        return out;
    }
    if (words[1] != kCacheStoreVersion) {
        out.detail = strFormat(
            "version mismatch (store v%llu, expected v%llu); "
            "cold start",
            static_cast<unsigned long long>(words[1]),
            static_cast<unsigned long long>(kCacheStoreVersion));
        return out;
    }
    if (words[2] != fingerprint) {
        out.detail = strFormat(
            "fingerprint mismatch (store %016llx, expected %016llx); "
            "cold start",
            static_cast<unsigned long long>(words[2]),
            static_cast<unsigned long long>(fingerprint));
        return out;
    }
    if (chainChecksum(words.data(), words.size() - 1) != words.back()) {
        out.detail = "checksum mismatch (corrupt store); cold start";
        return out;
    }

    // Structure walk: parse every entry into a staging list BEFORE
    // merging anything, so a malformed body can never half-load.
    struct Staged
    {
        std::uint64_t key;
        std::vector<std::uint64_t> factors;
        QuickEval result;
        std::uint64_t hits;
    };
    std::vector<Staged> staged;
    std::uint64_t claimed = words[3];
    std::size_t pos = 4;
    std::size_t end = words.size() - 1; // checksum excluded
    staged.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(claimed, 1u << 20)));
    for (std::uint64_t e = 0; e < claimed; ++e) {
        if (pos + 2 > end) {
            out.detail = "entry table overruns file; cold start";
            return out;
        }
        std::uint64_t key = words[pos];
        std::uint64_t nfactors = words[pos + 1];
        pos += 2;
        if (nfactors > end - pos || end - pos - nfactors < 3) {
            out.detail = "entry table overruns file; cold start";
            return out;
        }
        Staged s;
        s.key = key;
        s.factors.assign(words.begin() + pos,
                         words.begin() + pos + nfactors);
        pos += nfactors;
        s.result.energy_j = bitsDouble(words[pos]);
        s.result.runtime_s = bitsDouble(words[pos + 1]);
        s.hits = words[pos + 2];
        pos += 3;
        staged.push_back(std::move(s));
    }
    if (pos != end) {
        out.detail = "trailing bytes after entry table; cold start";
        return out;
    }

    for (Staged &s : staged)
        cache.insertRaw(s.key, std::move(s.factors), s.result, s.hits);
    out.loaded = true;
    out.entries = staged.size();
    out.detail = strFormat("merged %zu warm entries from '%s'",
                           staged.size(), path.c_str());
    return out;
}

} // namespace ploop
