#include "mapper/search.hpp"

#include <algorithm>
#include <random>
#include <vector>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/string_util.hpp"
#include "common/thread_pool.hpp"
#include "mapper/factorize.hpp"

namespace ploop {

const char *
objectiveName(Objective o)
{
    switch (o) {
      case Objective::Energy: return "energy";
      case Objective::Delay: return "delay";
      case Objective::Edp: return "edp";
    }
    panic("objectiveName: bad objective");
}

double
objectiveValue(Objective o, const EvalResult &result)
{
    switch (o) {
      case Objective::Energy: return result.totalEnergy();
      case Objective::Delay: return result.throughput.runtime_s;
      case Objective::Edp: return result.edp();
    }
    panic("objectiveValue: bad objective");
}

double
objectiveValue(Objective o, const QuickEval &result)
{
    switch (o) {
      case Objective::Energy: return result.energy_j;
      case Objective::Delay: return result.runtime_s;
      case Objective::Edp: return result.edp();
    }
    panic("objectiveValue: bad objective");
}

std::string
SearchStats::str() const
{
    return strFormat(
        "evaluated=%llu invalid=%llu cache_hits=%llu "
        "cache_misses=%llu hit_rate=%.1f%% wall=%.3fs",
        static_cast<unsigned long long>(evaluated),
        static_cast<unsigned long long>(invalid),
        static_cast<unsigned long long>(cache_hits),
        static_cast<unsigned long long>(cache_misses),
        cacheHitRate() * 100.0, wall_time_s);
}

namespace {

/**
 * Random-search shard count.  Fixed (not tied to the thread count) so
 * the sample partition, and therefore the search result, is identical
 * at any parallelism; thread counts above it just leave lanes idle.
 */
constexpr unsigned kRandomShards = 16;

} // namespace

std::optional<QuickCandidate>
randomSearchQuick(const Evaluator &evaluator, const LayerShape &layer,
                  const Mapspace &mapspace, const SearchOptions &options,
                  SearchStats &stats, EvalCache *cache,
                  const CancelToken *cancel, SpanRef span)
{
    if (options.random_samples == 0)
        return std::nullopt;
    throwIfCancelled(cancel);
    SpanScope phase(span, "random_search");

    EvalCache local_cache;
    if (!cache)
        cache = &local_cache;
    CacheDeltaScope delta(stats);
    ThreadPool &pool = ThreadPool::forThreads(options.threads);

    const unsigned shards =
        std::min(kRandomShards, options.random_samples);
    struct ShardBest
    {
        std::optional<QuickCandidate> best;
        double val = 0.0;
        std::uint64_t evaluated = 0;
        std::uint64_t invalid = 0;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
    };
    std::vector<ShardBest> results(shards);

    pool.parallelFor(shards, [&](std::size_t s) {
        // Independent, decorrelated stream per shard; shard s always
        // draws the same candidates no matter which lane runs it.
        // The seed is mixed BEFORE combining with the shard id so
        // nearby user seeds don't alias across shards (a bare
        // seed ^ s would give seed=42/shard=1 the same stream as
        // seed=43/shard=0).
        SpanScope batch(phase.ref(), "sample_batch",
                        static_cast<std::int64_t>(s));
        std::mt19937_64 rng(mix64(options.seed) +
                            static_cast<std::uint64_t>(s));
        unsigned count = options.random_samples / shards +
                         (s < options.random_samples % shards ? 1 : 0);
        ShardBest &out = results[s];
        // One arena per shard: every candidate this shard computes
        // reuses the same tile-analysis/access-count buffers.
        EvalScratch scratch;
        for (unsigned i = 0; i < count; ++i) {
            // Cooperative deadline: bail out of the shard; the
            // post-join checkpoint below throws, discarding every
            // shard's partial best (determinism is preserved by
            // never RETURNING a partial result).
            if (cancel && cancel->expired())
                return;
            Mapping candidate = mapspace.randomSample(rng);
            // Cache first: only valid mappings are stored, so a hit
            // skips validation as well as evaluation.
            QuickEval result;
            CachedEval outcome = cache->evaluateThrough(
                evaluator, layer, candidate, scratch, result);
            if (outcome == CachedEval::Hit)
                ++out.hits;
            else
                ++out.misses;
            if (outcome == CachedEval::Invalid) {
                ++out.invalid;
                continue;
            }
            ++out.evaluated;
            double val = objectiveValue(options.objective, result);
            // Strict < keeps the earliest index on ties.
            if (!out.best || val < out.val) {
                out.val = val;
                out.best =
                    QuickCandidate(std::move(candidate), result);
            }
        }
    });

    throwIfCancelled(cancel);

    // (value, shard, index) reduction: within a shard the earliest
    // index already won; across shards strict < keeps the lowest
    // shard id on ties.
    std::optional<QuickCandidate> best;
    double best_val = 0.0;
    for (ShardBest &out : results) {
        stats.evaluated += out.evaluated;
        stats.invalid += out.invalid;
        delta.add(out.hits, out.misses);
        if (out.best && (!best || out.val < best_val)) {
            best_val = out.val;
            best = std::move(out.best);
        }
    }
    return best;
}

std::optional<Candidate>
randomSearch(const Evaluator &evaluator, const LayerShape &layer,
             const Mapspace &mapspace, const SearchOptions &options,
             SearchStats &stats, EvalCache *cache,
             const CancelToken *cancel)
{
    std::optional<QuickCandidate> best = randomSearchQuick(
        evaluator, layer, mapspace, options, stats, cache, cancel);
    if (!best)
        return std::nullopt;
    EvalResult full =
        evaluator.evaluateValidated(layer, best->first);
    return Candidate(std::move(best->first), std::move(full));
}

namespace {

/** One hill-climb neighbor: move a ~ratio factor of dim d from level
 *  a to level b. */
struct Move
{
    Dim d;
    std::size_t a, b;
    std::uint64_t ratio;
};

/** The full neighborhood, in the order that defines tie-breaks. */
std::vector<Move>
enumerateMoves(std::size_t nlevels)
{
    std::vector<Move> moves;
    for (Dim d : kAllDims)
        for (std::size_t a = 0; a < nlevels; ++a)
            for (std::size_t b = 0; b < nlevels; ++b) {
                if (a == b)
                    continue;
                for (std::uint64_t ratio : {2ull, 3ull, 5ull, 7ull})
                    moves.push_back(Move{d, a, b, ratio});
            }
    return moves;
}

/** Apply @p m to @p mapping in place. */
void
applyMove(Mapping &mapping, const Move &m)
{
    std::uint64_t from = mapping.level(m.a).t(m.d);
    std::uint64_t to = mapping.level(m.b).t(m.d);
    moveFactor(from, to, m.ratio);
    mapping.level(m.a).setT(m.d, from);
    mapping.level(m.b).setT(m.d, to);
}

} // namespace

QuickCandidate
hillClimbQuick(const Evaluator &evaluator, const LayerShape &layer,
               QuickCandidate start, const SearchOptions &options,
               SearchStats &stats, EvalCache *cache,
               const CancelToken *cancel, SpanRef span)
{
    SpanScope phase(span, "hill_climb");
    EvalCache local_cache;
    if (!cache)
        cache = &local_cache;
    CacheDeltaScope delta(stats);
    ThreadPool &pool = ThreadPool::forThreads(options.threads);

    QuickCandidate best = std::move(start);
    double best_val = objectiveValue(options.objective, best.second);
    const std::size_t nlevels = best.first.numLevels();
    // Seed the cache with the incumbent: inverse moves regenerate it
    // every round and should not pay a model evaluation.
    cache->store(evaluator, layer, best.first, best.second);

    const std::vector<Move> moves = enumerateMoves(nlevels);
    const unsigned max_chunks = pool.size();

    /** One improving neighbor found during a round's batch. */
    struct Improving
    {
        double val;
        std::size_t move;
        QuickEval eval;
    };
    struct ChunkOut
    {
        std::vector<Improving> improving; ///< In move-index order.
        std::uint64_t evaluated = 0;
        std::uint64_t invalid = 0;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
    };

    for (unsigned round = 0; round < options.hill_climb_rounds;
         ++round) {
        throwIfCancelled(cancel);
        SpanScope round_span(phase.ref(), "round",
                             static_cast<std::int64_t>(round));
        std::vector<ChunkOut> chunk_out(max_chunks);

        pool.parallelForChunked(
            moves.size(),
            [&](std::size_t begin, std::size_t end, unsigned chunk) {
                // One scratch copy per chunk; each probe mutates the
                // two touched factors and restores them afterwards
                // instead of copying the whole Mapping.
                Mapping scratch = best.first;
                // One arena per chunk, analyzed once for the
                // incumbent: a probe differs from it in a single dim
                // column, so only that column is recomputed
                // (TileAnalysis::applyDelta) and restored per probe.
                EvalScratch arena;
                arena.tiles.analyze(evaluator.arch(), layer,
                                    best.first);
                ChunkOut &out = chunk_out[chunk];
                for (std::size_t i = begin; i < end; ++i) {
                    // Deadline poll per probe; the post-batch
                    // checkpoint throws before anything commits.
                    if (cancel && cancel->expired())
                        return;
                    const Move &m = moves[i];
                    const std::uint64_t orig_from =
                        scratch.level(m.a).t(m.d);
                    const std::uint64_t orig_to =
                        scratch.level(m.b).t(m.d);
                    std::uint64_t from = orig_from, to = orig_to;
                    if (!moveFactor(from, to, m.ratio))
                        continue;
                    scratch.level(m.a).setT(m.d, from);
                    scratch.level(m.b).setT(m.d, to);
                    // Cache first: a hit proves validity and skips
                    // both validation and the model.
                    QuickEval result;
                    CachedEval outcome = cache->evaluateThroughDelta(
                        evaluator, layer, scratch, m.d, arena,
                        result);
                    if (outcome == CachedEval::Hit)
                        ++out.hits;
                    else
                        ++out.misses;
                    if (outcome != CachedEval::Invalid) {
                        ++out.evaluated;
                        double val = objectiveValue(options.objective,
                                                    result);
                        if (val < best_val)
                            out.improving.push_back(
                                Improving{val, i, result});
                    } else {
                        ++out.invalid;
                    }
                    scratch.level(m.a).setT(m.d, orig_from);
                    scratch.level(m.b).setT(m.d, orig_to);
                }
            });

        // An expired deadline means this round's batch is partial:
        // throw BEFORE gathering, so no partially evaluated round
        // can ever commit a move.
        throwIfCancelled(cancel);

        // Gather improving moves; chunks are contiguous index ranges,
        // so concatenating by chunk id preserves move-index order.
        std::vector<Improving> improving;
        for (ChunkOut &out : chunk_out) {
            stats.evaluated += out.evaluated;
            stats.invalid += out.invalid;
            delta.add(out.hits, out.misses);
            improving.insert(improving.end(), out.improving.begin(),
                             out.improving.end());
        }
        if (improving.empty())
            break; // converged: no improving move

        // (value, move-index) order: deterministic regardless of
        // chunking or thread count.
        std::sort(improving.begin(), improving.end(),
                  [](const Improving &x, const Improving &y) {
                      return x.val != y.val ? x.val < y.val
                                            : x.move < y.move;
                  });

        // Commit the best move plus every further improving move
        // touching disjoint (level, dim) factor slots -- the batch
        // analogue of the classic sweep that commits many moves per
        // round, which converges in far fewer (batched) rounds than
        // one-move-per-round steepest descent.
        std::vector<char> touched(nlevels * kNumDims, 0);
        auto slot = [](std::size_t level, Dim d) {
            return level * kNumDims + dimIndex(d);
        };
        Mapping combined = best.first;
        unsigned committed = 0;
        for (const Improving &h : improving) {
            const Move &m = moves[h.move];
            if (touched[slot(m.a, m.d)] || touched[slot(m.b, m.d)])
                continue;
            // Untouched slots still hold the base factors, so this
            // reproduces exactly the probe that was evaluated.
            applyMove(combined, m);
            touched[slot(m.a, m.d)] = touched[slot(m.b, m.d)] = 1;
            ++committed;
        }

        const Improving &top = improving.front();
        QuickEval chosen_eval;
        double chosen_val = 0.0;
        bool use_combined = false;
        if (committed > 1) {
            // The combination is not guaranteed better than its best
            // member (or even valid): accept it only when it is.
            QuickEval combined_eval;
            CachedEval outcome = cache->evaluateThrough(
                evaluator, layer, combined, combined_eval);
            delta.record(outcome);
            if (outcome != CachedEval::Invalid) {
                ++stats.evaluated;
                double val =
                    objectiveValue(options.objective, combined_eval);
                if (val <= top.val) {
                    use_combined = true;
                    chosen_eval = combined_eval;
                    chosen_val = val;
                }
            } else {
                ++stats.invalid;
            }
        }
        if (!use_combined) {
            // The top move alone; its evaluation was kept from the
            // batch, so no lookup is needed.
            combined = best.first;
            applyMove(combined, moves[top.move]);
            chosen_eval = top.eval;
            chosen_val = top.val;
        }

        best.first = std::move(combined);
        best.second = chosen_eval;
        best_val = chosen_val;
    }
    return best;
}

Candidate
hillClimb(const Evaluator &evaluator, const LayerShape &layer,
          Candidate start, const SearchOptions &options,
          SearchStats &stats, EvalCache *cache,
          const CancelToken *cancel)
{
    QuickEval start_quick;
    start_quick.energy_j = start.second.totalEnergy();
    start_quick.runtime_s = start.second.throughput.runtime_s;
    QuickCandidate refined = hillClimbQuick(
        evaluator, layer, QuickCandidate(start.first, start_quick),
        options, stats, cache, cancel);
    if (sameFactorTuples(refined.first, start.first)) {
        // No move improved: the caller's full result is still exact.
        return Candidate(std::move(refined.first),
                         std::move(start.second));
    }
    EvalResult full =
        evaluator.evaluateValidated(layer, refined.first);
    return Candidate(std::move(refined.first), std::move(full));
}

} // namespace ploop
