#include "mapper/search.hpp"

#include <random>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/string_util.hpp"
#include "mapper/factorize.hpp"

namespace ploop {

const char *
objectiveName(Objective o)
{
    switch (o) {
      case Objective::Energy: return "energy";
      case Objective::Delay: return "delay";
      case Objective::Edp: return "edp";
    }
    panic("objectiveName: bad objective");
}

double
objectiveValue(Objective o, const EvalResult &result)
{
    switch (o) {
      case Objective::Energy: return result.totalEnergy();
      case Objective::Delay: return result.throughput.runtime_s;
      case Objective::Edp: return result.edp();
    }
    panic("objectiveValue: bad objective");
}

std::string
SearchStats::str() const
{
    return strFormat("evaluated=%llu invalid=%llu",
                     static_cast<unsigned long long>(evaluated),
                     static_cast<unsigned long long>(invalid));
}

std::optional<Candidate>
randomSearch(const Evaluator &evaluator, const LayerShape &layer,
             const Mapspace &mapspace, const SearchOptions &options,
             SearchStats &stats)
{
    std::mt19937_64 rng(options.seed);
    std::optional<Candidate> best;
    double best_val = 0.0;
    for (unsigned i = 0; i < options.random_samples; ++i) {
        Mapping candidate = mapspace.randomSample(rng);
        if (!evaluator.isValidMapping(layer, candidate)) {
            ++stats.invalid;
            continue;
        }
        EvalResult result = evaluator.evaluate(layer, candidate);
        ++stats.evaluated;
        double val = objectiveValue(options.objective, result);
        if (!best || val < best_val) {
            best_val = val;
            best = Candidate(std::move(candidate), std::move(result));
        }
    }
    return best;
}

Candidate
hillClimb(const Evaluator &evaluator, const LayerShape &layer,
          Candidate start, const SearchOptions &options,
          SearchStats &stats)
{
    Candidate best = std::move(start);
    double best_val = objectiveValue(options.objective, best.second);
    const std::size_t nlevels = best.first.numLevels();

    for (unsigned round = 0; round < options.hill_climb_rounds;
         ++round) {
        bool improved = false;
        for (Dim d : kAllDims) {
            for (std::size_t a = 0; a < nlevels; ++a) {
                for (std::size_t b = 0; b < nlevels; ++b) {
                    if (a == b)
                        continue;
                    for (std::uint64_t ratio : {2ull, 3ull, 5ull, 7ull}) {
                        Mapping cand = best.first;
                        std::uint64_t from = cand.level(a).t(d);
                        std::uint64_t to = cand.level(b).t(d);
                        if (!moveFactor(from, to, ratio))
                            continue;
                        cand.level(a).setT(d, from);
                        cand.level(b).setT(d, to);
                        if (!evaluator.isValidMapping(layer, cand)) {
                            ++stats.invalid;
                            continue;
                        }
                        EvalResult result =
                            evaluator.evaluate(layer, cand);
                        ++stats.evaluated;
                        double val = objectiveValue(options.objective,
                                                    result);
                        if (val < best_val) {
                            best_val = val;
                            best = Candidate(std::move(cand),
                                             std::move(result));
                            improved = true;
                        }
                    }
                }
            }
        }
        if (!improved)
            break;
    }
    return best;
}

} // namespace ploop
