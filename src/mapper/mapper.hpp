/**
 * @file
 * The Mapper: finds a good mapping for one layer on one architecture
 * by combining a deterministic greedy seed, hill climbing, and random
 * restarts.  It is the "mapper" of the paper's §II, which "finds
 * mappings that leverage available reuse to minimize energy-intensive
 * conversions and DRAM accesses".
 */

#ifndef PHOTONLOOP_MAPPER_MAPPER_HPP
#define PHOTONLOOP_MAPPER_MAPPER_HPP

#include "mapper/search.hpp"
#include "model/evaluator.hpp"

namespace ploop {

/** Mapper output: the chosen mapping, its evaluation, and stats. */
struct MapperResult
{
    Mapping mapping;
    EvalResult result;
    SearchStats stats;

    MapperResult(Mapping m, EvalResult r, SearchStats s)
        : mapping(std::move(m)), result(std::move(r)), stats(s)
    {}
};

/** See file comment. */
class Mapper
{
  public:
    /**
     * @param evaluator Evaluator for the target architecture (must
     *                  outlive the mapper).
     * @param options Search configuration.
     */
    explicit Mapper(const Evaluator &evaluator,
                    SearchOptions options = {});

    /** Search options in use. */
    const SearchOptions &options() const { return options_; }

    /**
     * Find a mapping for @p layer.  Always succeeds on sane
     * architectures: the outer seed (all-temporal at the outermost
     * level) is valid whenever the outermost level is
     * capacity-unbounded.
     *
     * @param shared_cache Optional cross-search memoization cache.
     *     EvalCache keys fold in the (arch fingerprint, layer shape)
     *     scope, so one cache may be shared across layers, searches
     *     and sweep points (runSweepEvaluators/runNetwork do): repeated scopes
     *     hit warm entries from earlier searches.  Cached values are
     *     bit-identical to fresh evaluations, so sharing never
     *     changes the search result.  The reported cache stats are
     *     this search's own lookups only (delta accounting).  When
     *     null, a private cache spanning this search's phases is
     *     used.
     * @param cancel Optional cooperative deadline (see
     *     common/cancel.hpp): polled between seeds, per random-search
     *     candidate and per hill-climb probe.  An expired token
     *     throws CancelledError; no partial result is returned, and
     *     cache entries already computed stay valid (they are
     *     bit-identical to fresh evaluations, so a retry starts
     *     warm).
     * @param span Optional trace parent, threaded exactly like the
     *     CancelToken: inert by default, and when a request carries
     *     `trace: true` the search's phases ("seeds",
     *     "random_search" with per-shard batches, "hill_climb" with
     *     per-round children) land in the span tree.
     */
    MapperResult search(const LayerShape &layer,
                        EvalCache *shared_cache = nullptr,
                        const CancelToken *cancel = nullptr,
                        SpanRef span = {}) const;

  private:
    const Evaluator &evaluator_;
    SearchOptions options_;
};

} // namespace ploop

#endif // PHOTONLOOP_MAPPER_MAPPER_HPP
