#include "mapper/mapper.hpp"

#include "common/error.hpp"
#include "mapper/dataflow.hpp"

namespace ploop {

Mapper::Mapper(const Evaluator &evaluator, SearchOptions options)
    : evaluator_(evaluator), options_(options)
{}

MapperResult
Mapper::search(const LayerShape &layer) const
{
    Mapspace mapspace(evaluator_.arch(), layer);
    SearchStats stats;

    // Collect seeds; at least the outer seed must be valid.
    std::optional<Candidate> best;
    double best_val = 0.0;
    auto consider = [&](const Mapping &mapping) {
        if (!evaluator_.isValidMapping(layer, mapping)) {
            ++stats.invalid;
            return;
        }
        EvalResult result = evaluator_.evaluate(layer, mapping);
        ++stats.evaluated;
        double val = objectiveValue(options_.objective, result);
        if (!best || val < best_val) {
            best_val = val;
            best = Candidate(mapping, std::move(result));
        }
    };

    consider(mapspace.greedySeed());
    consider(mapspace.outerSeed());
    // The classic dataflows make strong seeds: one of them is usually
    // near-optimal for the dominant tensor of the layer.
    for (Dataflow df : allDataflows())
        consider(presetMapping(evaluator_.arch(), layer, df));
    fatalIf(!best,
            "no valid seed mapping for layer '" + layer.name() +
                "'; is the outermost level capacity-unbounded?");

    // Random restarts.
    if (options_.random_samples > 0) {
        auto rnd = randomSearch(evaluator_, layer, mapspace, options_,
                                stats);
        if (rnd) {
            double val = objectiveValue(options_.objective, rnd->second);
            if (val < best_val) {
                best_val = val;
                best = std::move(rnd);
            }
        }
    }

    // Refine the incumbent.
    Candidate refined = hillClimb(evaluator_, layer, std::move(*best),
                                  options_, stats);
    return MapperResult(std::move(refined.first),
                        std::move(refined.second), stats);
}

} // namespace ploop
