#include "mapper/mapper.hpp"

#include <chrono>

#include "common/error.hpp"
#include "mapper/dataflow.hpp"
#include "mapper/eval_cache.hpp"

namespace ploop {

Mapper::Mapper(const Evaluator &evaluator, SearchOptions options)
    : evaluator_(evaluator), options_(options)
{}

MapperResult
Mapper::search(const LayerShape &layer) const
{
    auto t0 = std::chrono::steady_clock::now();

    Mapspace mapspace(evaluator_.arch(), layer);
    SearchStats stats;
    // One memoization cache spans seeds, random restarts and hill
    // climb: any candidate revisited across phases is evaluated once.
    // The whole search runs in the quick (objective-only) domain; the
    // final mapping is materialized into a full EvalResult at the end.
    EvalCache cache;

    // Collect seeds; at least the outer seed must be valid.
    std::optional<QuickCandidate> best;
    double best_val = 0.0;
    auto consider = [&](const Mapping &mapping) {
        QuickEval result;
        if (cache.evaluateThrough(evaluator_, layer, mapping, result) ==
            CachedEval::Invalid) {
            ++stats.invalid;
            return;
        }
        ++stats.evaluated;
        double val = objectiveValue(options_.objective, result);
        if (!best || val < best_val) {
            best_val = val;
            best = QuickCandidate(mapping, result);
        }
    };

    consider(mapspace.greedySeed());
    consider(mapspace.outerSeed());
    // The classic dataflows make strong seeds: one of them is usually
    // near-optimal for the dominant tensor of the layer.
    for (Dataflow df : allDataflows())
        consider(presetMapping(evaluator_.arch(), layer, df));
    fatalIf(!best,
            "no valid seed mapping for layer '" + layer.name() +
                "'; is the outermost level capacity-unbounded?");
    // Seed-phase cache traffic (randomSearchQuick/hillClimbQuick
    // account for their own phases the same way).
    stats.cache_hits += cache.hits();
    stats.cache_misses += cache.misses();

    // Random restarts.
    if (options_.random_samples > 0) {
        auto rnd = randomSearchQuick(evaluator_, layer, mapspace,
                                     options_, stats, &cache);
        if (rnd) {
            double val = objectiveValue(options_.objective, rnd->second);
            if (val < best_val) {
                best_val = val;
                best = std::move(rnd);
            }
        }
    }

    // Refine the incumbent.
    QuickCandidate refined =
        hillClimbQuick(evaluator_, layer, std::move(*best), options_,
                       stats, &cache);

    // One full evaluation for the winner (breakdown, area, counts).
    EvalResult full =
        evaluator_.evaluateValidated(layer, refined.first);

    stats.wall_time_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    return MapperResult(std::move(refined.first), std::move(full),
                        stats);
}

} // namespace ploop
