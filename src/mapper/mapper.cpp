#include "mapper/mapper.hpp"

#include <chrono>

#include "common/error.hpp"
#include "mapper/dataflow.hpp"
#include "mapper/eval_cache.hpp"

namespace ploop {

Mapper::Mapper(const Evaluator &evaluator, SearchOptions options)
    : evaluator_(evaluator), options_(options)
{}

MapperResult
Mapper::search(const LayerShape &layer, EvalCache *shared_cache,
               const CancelToken *cancel, SpanRef span) const
{
    auto t0 = std::chrono::steady_clock::now();

    Mapspace mapspace(evaluator_.arch(), layer);
    SearchStats stats;
    // One memoization cache spans seeds, random restarts and hill
    // climb: any candidate revisited across phases is evaluated once.
    // Callers may pass a cache shared across searches (sweep points,
    // network layers) for cross-search warm hits; keys are scoped, so
    // sharing is always safe.  The whole search runs in the quick
    // (objective-only) domain; the final mapping is materialized into
    // a full EvalResult at the end.
    EvalCache local_cache;
    EvalCache &cache = shared_cache ? *shared_cache : local_cache;

    // Collect seeds; at least the outer seed must be valid.
    std::optional<QuickCandidate> best;
    double best_val = 0.0;
    {
        // Seed-phase cache traffic, accounted from lookup OUTCOMES:
        // the cache's global counters include every other search
        // sharing it (absolute counts or counter deltas would
        // attribute -- and double-count -- their traffic here).
        // randomSearchQuick/hillClimbQuick account for their own
        // phases the same way.
        CacheDeltaScope seed_delta(stats);
        SpanScope seeds(span, "seeds");
        EvalScratch scratch;
        auto consider = [&](const Mapping &mapping) {
            throwIfCancelled(cancel);
            QuickEval result;
            CachedEval outcome = cache.evaluateThrough(
                evaluator_, layer, mapping, scratch, result);
            seed_delta.record(outcome);
            if (outcome == CachedEval::Invalid) {
                ++stats.invalid;
                return;
            }
            ++stats.evaluated;
            double val = objectiveValue(options_.objective, result);
            if (!best || val < best_val) {
                best_val = val;
                best = QuickCandidate(mapping, result);
            }
        };

        consider(mapspace.greedySeed());
        consider(mapspace.outerSeed());
        // The classic dataflows make strong seeds: one of them is
        // usually near-optimal for the dominant tensor of the layer.
        for (Dataflow df : allDataflows())
            consider(presetMapping(evaluator_.arch(), layer, df));
    }
    fatalIf(!best,
            "no valid seed mapping for layer '" + layer.name() +
                "'; is the outermost level capacity-unbounded?");

    // Random restarts.
    if (options_.random_samples > 0) {
        auto rnd =
            randomSearchQuick(evaluator_, layer, mapspace, options_,
                              stats, &cache, cancel, span);
        if (rnd) {
            double val = objectiveValue(options_.objective, rnd->second);
            if (val < best_val) {
                best_val = val;
                best = std::move(rnd);
            }
        }
    }

    // Refine the incumbent.
    QuickCandidate refined =
        hillClimbQuick(evaluator_, layer, std::move(*best), options_,
                       stats, &cache, cancel, span);

    // One full evaluation for the winner (breakdown, area, counts).
    EvalResult full =
        evaluator_.evaluateValidated(layer, refined.first);

    stats.wall_time_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    return MapperResult(std::move(refined.first), std::move(full),
                        stats);
}

} // namespace ploop
