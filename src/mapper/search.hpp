/**
 * @file
 * Mapping-search strategies: objective functions, random sampling and
 * hill climbing over temporal factor placement.
 */

#ifndef PHOTONLOOP_MAPPER_SEARCH_HPP
#define PHOTONLOOP_MAPPER_SEARCH_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "mapper/mapspace.hpp"
#include "model/evaluator.hpp"

namespace ploop {

/** What the mapper minimizes. */
enum class Objective : std::uint8_t {
    Energy, ///< Total joules.
    Delay,  ///< Runtime seconds.
    Edp,    ///< Energy-delay product.
};

/** Objective name. */
const char *objectiveName(Objective o);

/** Scalar value of @p o for a result (lower is better). */
double objectiveValue(Objective o, const EvalResult &result);

/** Search knobs. */
struct SearchOptions
{
    Objective objective = Objective::Energy;
    unsigned random_samples = 200; ///< Random candidates to try.
    unsigned hill_climb_rounds = 64; ///< Improvement sweeps.
    std::uint64_t seed = 42;       ///< RNG seed (reproducible runs).
};

/** Search accounting. */
struct SearchStats
{
    std::uint64_t evaluated = 0; ///< Mappings evaluated.
    std::uint64_t invalid = 0;   ///< Candidates rejected as invalid.

    std::string str() const;
};

/** A (mapping, result) candidate. */
using Candidate = std::pair<Mapping, EvalResult>;

/**
 * Evaluate random samples from @p mapspace, returning the best valid
 * candidate (if any).
 */
std::optional<Candidate>
randomSearch(const Evaluator &evaluator, const LayerShape &layer,
             const Mapspace &mapspace, const SearchOptions &options,
             SearchStats &stats);

/**
 * Greedy local search: repeatedly try moving temporal factors between
 * levels, keeping improving moves, until a sweep yields no
 * improvement or the round budget is exhausted.
 */
Candidate hillClimb(const Evaluator &evaluator, const LayerShape &layer,
                    Candidate start, const SearchOptions &options,
                    SearchStats &stats);

} // namespace ploop

#endif // PHOTONLOOP_MAPPER_SEARCH_HPP
